"""Design-choice ablations called out in Sec. 4.4.

* bias-clamp encoding vs exact (unencodable) FP6 replacement — the paper
  reports a perplexity deviation of at most 0.02;
* top-1 vs top-2 metadata allocation — near-identical accuracy;
* subgroup size — 8 is the near-Pareto-optimal choice of Sec. 6.1.
"""

from __future__ import annotations

import numpy as np

from ..core.elem_em import ElemEM
from ..core.m2xfp import M2XFP
from ..eval.perplexity import quantized_perplexity
from ..formats.grouping import from_groups, to_groups
from ..formats.registry import FP4_E2M1, FP6_E2M3
from ..models.profiles import load_runtime
from ..mx.base import TensorFormat
from ..mx.scale_rules import shared_scale_exponent
from .report import ExperimentResult

__all__ = ["run", "ExactFP6ElemEM"]


class ExactFP6ElemEM(TensorFormat):
    """Elem-EM with the top-1 stored as *exact* FP6 (no bias clamp).

    Not realizable in 2 metadata bits — this is the upper bound the
    bias-clamp encoding approximates (paper: within 0.02 perplexity).
    """

    name = "elem-em-exact-fp6"

    def __init__(self, group_size: int = 32, sub_size: int = 8) -> None:
        self.group_size = group_size
        self.sub_size = sub_size

    @property
    def ebw(self) -> float:
        return ElemEM(self.group_size, self.sub_size).ebw

    def quantize(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        groups, view = to_groups(x, self.group_size, axis=axis)
        n, k = groups.shape
        n_sub = k // self.sub_size
        amax = np.max(np.abs(groups), axis=1)
        exps = shared_scale_exponent(amax, FP4_E2M1, "floor")
        scales = np.exp2(exps.astype(np.float64))
        scaled = groups / scales[:, None]
        dq = FP4_E2M1.quantize(scaled)
        mag = FP4_E2M1.encode(scaled)[1].reshape(n, n_sub, self.sub_size)
        top = np.argmax(mag, axis=2)[:, :, None]
        sub_scaled = scaled.reshape(n, n_sub, self.sub_size)
        exact = FP6_E2M3.quantize(np.take_along_axis(sub_scaled, top, axis=2))
        out = dq.reshape(n, n_sub, self.sub_size).copy()
        np.put_along_axis(out, top, exact, axis=2)
        return from_groups(out.reshape(n, k) * scales[:, None], view)


def run(profile_key: str = "llama2-7b", fast: bool = False) -> ExperimentResult:
    """Three ablations on one profile."""
    n_seq, seq_len = (8, 64) if fast else (None, None)
    rt = load_runtime(profile_key, n_seq=n_seq, seq_len=seq_len)
    headers = ["variant", "perplexity", "ebw"]
    rows = [["fp16", rt.fp16_ppl, 16.0]]

    clamp = ElemEM(sub_size=8, top_k=1)
    exact = ExactFP6ElemEM()
    ppl_clamp = quantized_perplexity(rt, clamp)
    ppl_exact = quantized_perplexity(rt, exact)
    rows.append(["elem-em bias-clamp", ppl_clamp, clamp.ebw])
    rows.append(["elem-em exact fp6", ppl_exact, exact.ebw])
    rows.append(["elem-em top2", quantized_perplexity(rt, ElemEM(top_k=2)),
                 ElemEM(top_k=2).ebw])
    for sub in (16, 8, 4):
        fmt = M2XFP(sub_size=sub)
        rows.append([f"m2xfp subgroup {sub}", quantized_perplexity(rt, fmt), fmt.ebw])
    notes = (f"bias-clamp vs exact FP6 deviation: "
             f"{abs(ppl_clamp - ppl_exact):.4f} ppl (paper reports <= 0.02)")
    return ExperimentResult("ablations", "Design-choice ablations", headers,
                            rows, notes=notes,
                            extras={"clamp_vs_exact": abs(ppl_clamp - ppl_exact)})
