"""Fig. 6: encoding DSE under the fixed shared scale (MSE vs EBW)."""

from __future__ import annotations

from ..dse import explore
from ..models.profiles import load_runtime
from .report import ExperimentResult

__all__ = ["run", "DEFAULT_PROFILES"]

DEFAULT_PROFILES = ("llama2-7b", "llama3-8b", "falcon-7b", "mistral-7b")


def run(profile_keys: tuple[str, ...] = DEFAULT_PROFILES,
        fast: bool = False, adaptive: bool = False) -> ExperimentResult:
    """Strategy sweep; Elem-EM should dominate the 4.5-4.75 EBW band."""
    keys = profile_keys[:2] if fast else profile_keys
    n_seq, seq_len = (8, 64) if fast else (None, None)
    sub_sizes = (16, 8, 4) if fast else (32, 16, 8, 4, 2)
    headers = ["model", "strategy", "subgroup", "ebw", "output mse"]
    rows = []
    for key in keys:
        rt = load_runtime(key, n_seq=n_seq, seq_len=seq_len)
        curves = explore(rt, adaptive=adaptive, sub_sizes=sub_sizes)
        for kind, points in curves.items():
            for p in points:
                rows.append([rt.profile.display_name, kind, p.sub_size or "-",
                             p.ebw, p.mse])
    mode = "adaptive" if adaptive else "fixed"
    exp_id = "fig7" if adaptive else "fig6"
    return ExperimentResult(exp_id, f"Encoding DSE ({mode} shared scale)",
                            headers, rows,
                            notes="MSE is normalized model-output MSE vs FP16")
