"""Tbl. 3: Wikitext perplexity vs the MX accelerator baselines."""

from __future__ import annotations

from ..algos import BlockDialect, MicroScopiQ, MXAnt, MXMAnt, MXOliVe
from ..core.m2xfp import M2XFP
from ..eval.perplexity import perplexity_table
from .report import ExperimentResult

__all__ = ["run", "PAPER_TBL3", "DEFAULT_PROFILES"]

DEFAULT_PROFILES = ("llama2-7b", "llama3-8b", "llama3-70b", "opt-6.7b",
                    "mistral-7b", "falcon-7b")

#: Paper-reported rows for side-by-side comparison in EXPERIMENTS.md.
PAPER_TBL3 = {
    "fp16": [5.47, 6.14, 2.85, 10.86, 5.32, 6.59],
    "mxfp4": [7.15, 8.30, 4.84, 19.21, 6.56, 7.59],
    "mx-ant": [6.30, 8.22, 4.65, 12.76, 6.04, 7.35],
    "mx-m-ant": [6.12, 7.83, 4.54, 12.45, 5.89, 7.32],
    "mx-olive": [7.46, 11.33, 6.84, 36.80, 6.77, 8.40],
    "microscopiq": [6.24, 8.33, 4.75, 12.65, 6.00, 7.45],
    "blockdialect": [5.84, 7.05, 3.76, 11.31, 5.65, 6.94],
    "m2xfp": [5.77, 6.84, 3.56, 11.34, 5.58, 6.88],
}


def _formats():
    from ..mx import MXFP4
    return {"mxfp4": MXFP4(), "mx-ant": MXAnt(), "mx-m-ant": MXMAnt(),
            "mx-olive": MXOliVe(), "microscopiq": MicroScopiQ(),
            "blockdialect": BlockDialect(), "m2xfp": M2XFP()}


def run(profile_keys: tuple[str, ...] = DEFAULT_PROFILES,
        fast: bool = False) -> ExperimentResult:
    """Perplexity grid; M2XFP should post the lowest row on most models."""
    keys = profile_keys[:2] if fast else profile_keys
    n_seq, seq_len = (8, 64) if fast else (None, None)
    fmts = _formats()
    table = perplexity_table(list(keys), fmts, n_seq=n_seq, seq_len=seq_len)
    headers = ["method"] + list(keys)
    rows = [[method] + [table[method][k] for k in keys] for method in table]
    fmt = fmts["m2xfp"]
    notes = ("lower is better; fp16 row is the calibration anchor; "
             f"m2xfp ebw {fmt.ebw:.4g} "
             f"(weight {fmt.weight_ebw:.4g} / activation {fmt.activation_ebw:.4g})")
    return ExperimentResult("tbl3", "Wikitext perplexity vs accelerators",
                            headers, rows, notes=notes,
                            extras={"table": table})
