"""Tbl. 5: area and power of the M2XFP core components at 28 nm."""

from __future__ import annotations

from ..accel.area import CoreAreaModel, pe_tile_area_um2
from .report import ExperimentResult

__all__ = ["run", "PAPER_TBL5"]

PAPER_TBL5 = {
    "PE Tile": (128, 0.2739, 27.021, 2140.12),
    "Top-1 Decode Unit": (4, 0.0003, 0.064, 82.91),
    "Quantization Engine": (1, 0.0024, 0.663, 2451.47),
    "Buffer (324KB)": (1, 0.7740, 176.268, None),
    "Total": (None, 1.051, 204.02, None),
}

PAPER_PE_VARIANTS = {"mxfp4": 2057.6, "nvfp4": 2104.7, "m2xfp": 2140.1}


def run(fast: bool = False) -> ExperimentResult:
    """Component breakdown plus the PE-variant area comparison."""
    model = CoreAreaModel()
    headers = ["component", "count", "area (mm2)", "power (mW)",
               "paper area (mm2)", "paper power (mW)"]
    rows = []
    for comp in model.components():
        p_count, p_area, p_power, _ = PAPER_TBL5[comp.name]
        rows.append([comp.name, comp.count, comp.total_area_mm2,
                     comp.total_power_mw, p_area, p_power])
    rows.append(["Total", "", model.total_area_mm2, model.total_power_mw,
                 PAPER_TBL5["Total"][1], PAPER_TBL5["Total"][2]])
    variant_rows = {v: pe_tile_area_um2(variant=v) for v in PAPER_PE_VARIANTS}
    notes = ("PE tile variants (um2): "
             + ", ".join(f"{v}={a:.1f} (paper {PAPER_PE_VARIANTS[v]})"
                         for v, a in variant_rows.items())
             + f"; metadata units are {model.metadata_overhead_fraction()*100:.2f}% "
               "of core area (paper: 0.26%)")
    return ExperimentResult("tbl5", "Area and power breakdown (28 nm)",
                            headers, rows, notes=notes,
                            extras={"pe_variants": variant_rows})
