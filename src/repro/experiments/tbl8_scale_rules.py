"""Tbl. 8: shared-scale calculation rules, MXFP4 vs M2XFP."""

from __future__ import annotations

from ..core.m2xfp import M2XFP
from ..eval.perplexity import quantized_perplexity
from ..models.profiles import load_runtime
from ..mx import MXFP4
from .report import ExperimentResult

__all__ = ["run", "RULES", "PAPER_TBL8"]

RULES = ("floor", "ceil", "rtn1", "rtn2")

PAPER_TBL8 = {  # llama2-7b: (mxfp4, m2xfp), llama3-8b: (mxfp4, m2xfp)
    "floor": ((7.15, 5.77), (8.30, 6.84)),
    "ceil": ((6.21, 5.80), (7.97, 6.96)),
    "rtn1": ((9.21, 5.79), (9.34, 6.87)),
    "rtn2": ((6.26, 5.81), (8.08, 7.01)),
}


def run(profile_keys: tuple[str, ...] = ("llama2-7b", "llama3-8b"),
        fast: bool = False) -> ExperimentResult:
    """M2XFP should improve over MXFP4 under every scale rule."""
    keys = profile_keys[:1] if fast else profile_keys
    n_seq, seq_len = (8, 64) if fast else (None, None)
    headers = ["rule"] + [f"{k} {m}" for k in keys for m in ("mxfp4", "m2xfp")]
    rows = []
    extras = {}
    for rule in RULES:
        row: list = [rule]
        for key in keys:
            rt = load_runtime(key, n_seq=n_seq, seq_len=seq_len)
            mx = quantized_perplexity(rt, MXFP4(scale_rule=rule))
            m2 = quantized_perplexity(rt, M2XFP(scale_rule=rule))
            row += [mx, m2]
            extras[(rule, key)] = (mx, m2)
        rows.append(row)
    notes = ("rtne is identical to ceil for FP4 (M = 1.5 P), matching the "
             "paper's combined ceil/RTNE row")
    return ExperimentResult("tbl8", "Shared-scale rules", headers, rows,
                            notes=notes, extras={"cells": extras})
