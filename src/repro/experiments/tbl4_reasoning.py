"""Tbl. 4: reasoning-task accuracy, MXFP4 vs M2XFP."""

from __future__ import annotations

from ..core.m2xfp import M2XFP
from ..eval.harness import accuracy_table, average_accuracy_loss
from ..eval.tasks import REASONING_TASKS
from ..mx import MXFP4
from .report import ExperimentResult

__all__ = ["run", "PAPER_FP16_REASONING"]

PAPER_FP16_REASONING: dict[str, dict[str, float]] = {
    "r1-qwen-1.5b": {"aime": 21.11, "math-500": 85.40, "gsm8k": 84.76,
                     "gpqa": 36.36, "livecodebench": 17.54},
    "r1-qwen-7b": {"aime": 45.56, "math-500": 93.80, "gsm8k": 90.83,
                   "gpqa": 50.51, "livecodebench": 35.82},
}


def run(profile_keys: tuple[str, ...] = ("r1-qwen-1.5b", "r1-qwen-7b"),
        fast: bool = False) -> ExperimentResult:
    """MXFP4 should collapse on reasoning; M2XFP should recover most of it."""
    keys = profile_keys[:1] if fast else profile_keys
    n_seq, seq_len = (8, 64) if fast else (None, None)
    task_names = list(REASONING_TASKS)
    headers = ["model", "method"] + task_names + ["avg", "avg loss"]
    rows = []
    extras = {}
    for key in keys:
        table = accuracy_table(key, REASONING_TASKS, PAPER_FP16_REASONING[key],
                               {"mxfp4": MXFP4(), "m2xfp": M2XFP()},
                               n_seq=n_seq, seq_len=seq_len)
        for method, cells in table.items():
            avg = sum(cells.values()) / len(cells)
            loss = 0.0 if method == "fp16" else average_accuracy_loss(table, method)
            rows.append([key, method] + [cells[t] for t in task_names] + [avg, loss])
            extras[(key, method)] = loss
    return ExperimentResult("tbl4", "Reasoning accuracy (R1-Distill-Qwen)",
                            headers, rows,
                            notes="reasoning margins are tight, so 4-bit noise "
                                  "flips far more answers than on zero-shot QA",
                            extras={"loss": extras})
