"""Fig. 3: 4-bit perplexity with and without max-value preservation."""

from __future__ import annotations

from ..eval.perplexity import quantized_perplexity
from ..models.profiles import load_runtime
from ..mx import MXFP4, NVFP4, SMX4, GroupFP4, MaxPreserving
from .report import ExperimentResult

__all__ = ["run", "PAPER_SHAPE"]

PAPER_SHAPE = ("MXFP4 and SMX4 degrade sharply; preserving the group max in "
               "FP16 brings MXFP4 close to FP4/NVFP4")


def _formats():
    return {"fp4": GroupFP4(), "mxfp4": MXFP4(), "nvfp4": NVFP4(), "smx4": SMX4()}


def run(profile_keys: tuple[str, ...] = ("llama3-8b", "llama3-70b"),
        fast: bool = False) -> ExperimentResult:
    """Perplexity of the four 4-bit formats, +/- max preservation."""
    n_seq, seq_len = (8, 64) if fast else (None, None)
    headers = ["model", "format", "ppl (plain)", "ppl (+max fp16)", "fp16 ppl"]
    rows = []
    for key in profile_keys:
        rt = load_runtime(key, n_seq=n_seq, seq_len=seq_len)
        for name, fmt in _formats().items():
            plain = quantized_perplexity(rt, fmt)
            kept = quantized_perplexity(rt, MaxPreserving(fmt))
            rows.append([rt.profile.display_name, name, plain, kept, rt.fp16_ppl])
    return ExperimentResult("fig3", "Max-value preservation ablation",
                            headers, rows, notes=PAPER_SHAPE)
