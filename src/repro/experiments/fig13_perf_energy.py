"""Fig. 13: normalized latency and energy vs MX accelerator baselines."""

from __future__ import annotations

from ..accel.compare import fig13_comparison, speedup_vs
from .report import ExperimentResult

__all__ = ["run", "PAPER_HEADLINE"]

PAPER_HEADLINE = {"speedup_vs_microscopiq": 1.91, "energy_vs_microscopiq": 1.75}


def run(fast: bool = False) -> ExperimentResult:
    """Normalized bars (W8A8 MXINT8 reference = 1.0) + headline ratios."""
    grid = fig13_comparison()
    headers = ["workload", "accelerator", "norm latency", "norm energy",
               "core", "buffer", "dram", "static"]
    rows = []
    for wl, points in grid.items():
        for p in points:
            rows.append([wl, p.accelerator, p.norm_latency, p.norm_energy,
                         p.energy_breakdown["core"], p.energy_breakdown["buffer"],
                         p.energy_breakdown["dram"], p.energy_breakdown["static"]])
    speedup, energy = speedup_vs(grid["average"])
    notes = (f"m2xfp vs microscopiq (average): speedup {speedup:.2f}x "
             f"(paper {PAPER_HEADLINE['speedup_vs_microscopiq']}x), energy "
             f"{energy:.2f}x (paper {PAPER_HEADLINE['energy_vs_microscopiq']}x)")
    return ExperimentResult("fig13", "Normalized latency/energy comparison",
                            headers, rows, notes=notes,
                            extras={"speedup": speedup, "energy_ratio": energy})
