"""Experiment runners reproducing every table and figure of the paper."""

from .registry import EXPERIMENTS, list_experiments, run_experiment
from .report import ExperimentResult, format_table

__all__ = ["EXPERIMENTS", "run_experiment", "list_experiments",
           "ExperimentResult", "format_table"]
