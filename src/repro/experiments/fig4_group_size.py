"""Fig. 4: perplexity vs equivalent bit width across group sizes."""

from __future__ import annotations

import numpy as np

from ..eval.perplexity import quantized_perplexity
from ..formats.e8m0 import E8M0_BITS
from ..models.profiles import load_runtime
from ..mx import MXFP4
from ..mx.base import TensorFormat
from .report import ExperimentResult

__all__ = ["run", "GROUP_SIZES", "ChannelMXFP4"]

GROUP_SIZES = (256, 128, 64, 32, 16)


class ChannelMXFP4(TensorFormat):
    """Per-channel MXFP4: the group spans the whole reduction axis."""

    name = "mxfp4-channel"

    @property
    def ebw(self) -> float:
        # The scale amortizes over the full channel; effectively 4 bits.
        return 4.0

    def quantize(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return MXFP4(group_size=x.shape[axis]).quantize(x, axis=axis)


def run(profile_key: str = "llama2-7b", fast: bool = False) -> ExperimentResult:
    """Group-size sweep: EBW rises, perplexity gains diminish below g-32."""
    n_seq, seq_len = (8, 64) if fast else (None, None)
    rt = load_runtime(profile_key, n_seq=n_seq, seq_len=seq_len)
    headers = ["granularity", "ebw", "perplexity"]
    rows = [["channel", 4.0, quantized_perplexity(rt, ChannelMXFP4())]]
    for g in GROUP_SIZES:
        fmt = MXFP4(group_size=g)
        rows.append([f"g-{g}", 4.0 + E8M0_BITS / g, quantized_perplexity(rt, fmt)])
    rows.append(["fp16", 16.0, rt.fp16_ppl])
    notes = ("perplexity decreases with finer groups but the improvement "
             "diminishes beyond g-32 while EBW keeps rising")
    return ExperimentResult("fig4", "Perplexity vs equivalent bit width",
                            headers, rows, notes=notes)
