"""Tbl. 6: NVFP4 vs M2-NVFP4 (metadata augmentation generalizes)."""

from __future__ import annotations

from ..core.m2xfp import M2NVFP4
from ..eval.perplexity import perplexity_table
from ..mx import NVFP4
from .report import ExperimentResult
from .tbl3_wikitext_ppl import DEFAULT_PROFILES

__all__ = ["run", "PAPER_TBL6"]

PAPER_TBL6 = {
    "nvfp4": [5.81, 7.18, 3.63, 11.46, 5.76, 6.90],
    "m2-nvfp4": [5.77, 6.85, 3.57, 11.32, 5.58, 6.88],
}


def run(profile_keys: tuple[str, ...] = DEFAULT_PROFILES,
        fast: bool = False) -> ExperimentResult:
    """M2-NVFP4 should lower NVFP4's perplexity on every model."""
    keys = profile_keys[:2] if fast else profile_keys
    n_seq, seq_len = (8, 64) if fast else (None, None)
    table = perplexity_table(list(keys), {"nvfp4": NVFP4(), "m2-nvfp4": M2NVFP4()},
                             n_seq=n_seq, seq_len=seq_len)
    headers = ["method"] + list(keys)
    rows = [[m] + [table[m][k] for k in keys] for m in table]
    notes = ("the metadata raises NVFP4's effective width from 4.5 to 5.0 "
             "bits because of its group size of 16")
    return ExperimentResult("tbl6", "NVFP4 with M2XFP metadata", headers, rows,
                            notes=notes, extras={"table": table})
