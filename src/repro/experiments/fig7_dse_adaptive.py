"""Fig. 7: encoding DSE with the adaptive shared scale enabled."""

from __future__ import annotations

from .fig6_dse_fixed import DEFAULT_PROFILES
from .fig6_dse_fixed import run as _run_fixed
from .report import ExperimentResult

__all__ = ["run"]


def run(profile_keys: tuple[str, ...] = DEFAULT_PROFILES,
        fast: bool = False) -> ExperimentResult:
    """Same sweep as Fig. 6 with MSE-searched shared scales."""
    return _run_fixed(profile_keys, fast=fast, adaptive=True)
