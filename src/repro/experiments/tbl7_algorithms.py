"""Tbl. 7: comparison with algorithmic schemes (rotations, MR-GPTQ)."""

from __future__ import annotations

from ..algos.gptq import GPTQQuantizedLM
from ..algos.rotation import duquant, quarot
from ..core.m2xfp import M2XFP
from ..models.profiles import load_runtime
from ..models.quantized import QuantizedLM
from ..mx import MXFP4
from ..mx.fp_group import GroupFP4
from .report import ExperimentResult

__all__ = ["run", "PAPER_TBL7"]

PAPER_TBL7 = {
    "quarot": [5.84, 7.13], "duquant": [6.28, 7.90], "mr-gptq": [5.97, 7.17],
    "m2xfp": [5.77, 6.84], "mr-gptq-m2xfp": [5.73, 6.84],
}


def run(profile_keys: tuple[str, ...] = ("llama2-7b", "llama3-8b"),
        fast: bool = False) -> ExperimentResult:
    """MR-GPTQ + M2XFP should be best; the combination gain incremental."""
    keys = profile_keys[:1] if fast else profile_keys
    n_seq, seq_len = (8, 64) if fast else (None, None)
    headers = ["method"] + list(keys)
    cols: dict[str, list[float]] = {m: [] for m in
                                    ("fp16", "quarot", "duquant", "mr-gptq",
                                     "m2xfp", "mr-gptq-m2xfp")}
    for key in keys:
        rt = load_runtime(key, n_seq=n_seq, seq_len=seq_len)
        base = GroupFP4()  # INT-style group quantizer inside the rotations
        cols["fp16"].append(rt.fp16_ppl)
        cols["quarot"].append(
            QuantizedLM(rt.model, quarot(base)).perplexity(rt.tokens))
        cols["duquant"].append(
            QuantizedLM(rt.model, duquant(base)).perplexity(rt.tokens))
        cols["mr-gptq"].append(
            GPTQQuantizedLM(rt.model, MXFP4(), rt.calib_tokens).perplexity(rt.tokens))
        m2 = M2XFP()
        cols["m2xfp"].append(QuantizedLM(rt.model, m2).perplexity(rt.tokens))
        cols["mr-gptq-m2xfp"].append(
            GPTQQuantizedLM(rt.model, m2, rt.calib_tokens,
                            mode="sg-em").perplexity(rt.tokens))
    rows = [[m] + vals for m, vals in cols.items()]
    return ExperimentResult("tbl7", "Comparison with algorithm schemes",
                            headers, rows,
                            notes="group size 32 everywhere; Wikitext-style ppl",
                            extras={"table": cols})
