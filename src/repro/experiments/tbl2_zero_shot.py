"""Tbl. 2: zero-shot accuracy on six tasks, five formats, three models."""

from __future__ import annotations

from ..core.m2xfp import M2XFP
from ..eval.harness import accuracy_table, average_accuracy_loss
from ..eval.tasks import ZERO_SHOT_TASKS
from ..mx import MXFP4, NVFP4, SMX4
from .report import ExperimentResult

__all__ = ["run", "PAPER_FP16_ACCURACY"]

#: The paper's FP16 rows — the calibration anchor for each (model, task).
PAPER_FP16_ACCURACY: dict[str, dict[str, float]] = {
    "llama2-7b": {"arc-e": 74.58, "arc-c": 46.25, "hellaswag": 75.99,
                  "piqa": 79.11, "winogrande": 69.06, "boolq": 77.71},
    "llama3-8b": {"arc-e": 77.49, "arc-c": 53.33, "hellaswag": 79.15,
                  "piqa": 80.85, "winogrande": 72.53, "boolq": 81.28},
    "mistral-7b": {"arc-e": 78.24, "arc-c": 52.13, "hellaswag": 80.46,
                   "piqa": 82.26, "winogrande": 73.80, "boolq": 82.14},
}


def _formats():
    return {"smx4": SMX4(), "mxfp4": MXFP4(), "nvfp4": NVFP4(), "m2xfp": M2XFP()}


def run(profile_keys: tuple[str, ...] = ("llama2-7b", "llama3-8b", "mistral-7b"),
        fast: bool = False) -> ExperimentResult:
    """Zero-shot grid; M2XFP should post the lowest average loss."""
    keys = profile_keys[:1] if fast else profile_keys
    n_seq, seq_len = (8, 64) if fast else (None, None)
    task_names = list(ZERO_SHOT_TASKS)
    headers = ["model", "method"] + task_names + ["avg", "avg loss"]
    rows = []
    losses: dict[str, list[float]] = {}
    for key in keys:
        table = accuracy_table(key, ZERO_SHOT_TASKS, PAPER_FP16_ACCURACY[key],
                               _formats(), n_seq=n_seq, seq_len=seq_len)
        for method, cells in table.items():
            avg = sum(cells.values()) / len(cells)
            loss = 0.0 if method == "fp16" else average_accuracy_loss(table, method)
            losses.setdefault(method, []).append(loss)
            rows.append([key, method] + [cells[t] for t in task_names] + [avg, loss])
    mean_loss = {m: sum(v) / len(v) for m, v in losses.items() if m != "fp16"}
    notes = ("mean accuracy loss (points): "
             + ", ".join(f"{m}={v:.2f}" for m, v in sorted(mean_loss.items())))
    return ExperimentResult("tbl2", "Zero-shot accuracy", headers, rows,
                            notes=notes, extras={"mean_loss": mean_loss})
