"""Experiment registry: id -> runner, one per paper table/figure."""

from __future__ import annotations

from typing import Callable

from . import (ablations, fig3_max_preservation, fig4_group_size,
               fig6_dse_fixed, fig7_dse_adaptive, fig13_perf_energy,
               tbl2_zero_shot, tbl3_wikitext_ppl, tbl4_reasoning,
               tbl5_area_power, tbl6_m2_nvfp4, tbl7_algorithms,
               tbl8_scale_rules)
from .report import ExperimentResult

__all__ = ["EXPERIMENTS", "run_experiment", "list_experiments"]

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "fig3": fig3_max_preservation.run,
    "fig4": fig4_group_size.run,
    "fig6": fig6_dse_fixed.run,
    "fig7": fig7_dse_adaptive.run,
    "tbl2": tbl2_zero_shot.run,
    "tbl3": tbl3_wikitext_ppl.run,
    "tbl4": tbl4_reasoning.run,
    "tbl5": tbl5_area_power.run,
    "fig13": fig13_perf_energy.run,
    "tbl6": tbl6_m2_nvfp4.run,
    "tbl7": tbl7_algorithms.run,
    "tbl8": tbl8_scale_rules.run,
    "ablations": ablations.run,
}


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment by id (e.g. ``"tbl3"``)."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {experiment_id!r}; "
                       f"available: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[experiment_id](**kwargs)


def list_experiments() -> list[str]:
    """All experiment ids in paper order."""
    return list(EXPERIMENTS)
