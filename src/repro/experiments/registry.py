"""Experiment registry: id -> runner, one per paper table/figure."""

from __future__ import annotations

import inspect
from typing import Callable

from ..errors import ConfigError
from . import (ablations, fig3_max_preservation, fig4_group_size,
               fig6_dse_fixed, fig7_dse_adaptive, fig13_perf_energy,
               tbl2_zero_shot, tbl3_wikitext_ppl, tbl4_reasoning,
               tbl5_area_power, tbl6_m2_nvfp4, tbl7_algorithms,
               tbl8_scale_rules)
from .report import ExperimentResult

__all__ = ["EXPERIMENTS", "run_experiment", "list_experiments",
           "experiment_kwargs", "validate_experiment_kwargs"]

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "fig3": fig3_max_preservation.run,
    "fig4": fig4_group_size.run,
    "fig6": fig6_dse_fixed.run,
    "fig7": fig7_dse_adaptive.run,
    "tbl2": tbl2_zero_shot.run,
    "tbl3": tbl3_wikitext_ppl.run,
    "tbl4": tbl4_reasoning.run,
    "tbl5": tbl5_area_power.run,
    "fig13": fig13_perf_energy.run,
    "tbl6": tbl6_m2_nvfp4.run,
    "tbl7": tbl7_algorithms.run,
    "tbl8": tbl8_scale_rules.run,
    "ablations": ablations.run,
}


def experiment_kwargs(experiment_id: str) -> list[str]:
    """The keyword arguments an experiment's runner accepts."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {experiment_id!r}; "
                       f"available: {sorted(EXPERIMENTS)}")
    return list(inspect.signature(EXPERIMENTS[experiment_id]).parameters)


def validate_experiment_kwargs(experiment_id: str, kwargs: dict) -> None:
    """Reject unknown kwargs up front with the accepted names.

    Without this, a typo'd kwarg surfaces as a bare ``TypeError`` from
    deep inside the experiment module (or, worse, from a pool worker).
    Shared by :func:`run_experiment` and the parent-side check in
    :class:`repro.runner.ExperimentRunner` so the two cannot drift.
    """
    accepted = experiment_kwargs(experiment_id)  # raises KeyError on bad id
    unknown = sorted(set(kwargs) - set(accepted))
    if unknown:
        raise ConfigError(
            f"experiment {experiment_id!r} got unknown kwargs {unknown}; "
            f"accepted: {accepted}")


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment by id (e.g. ``"tbl3"``)."""
    validate_experiment_kwargs(experiment_id, kwargs)
    return EXPERIMENTS[experiment_id](**kwargs)


def list_experiments() -> list[str]:
    """All experiment ids in paper order."""
    return list(EXPERIMENTS)
