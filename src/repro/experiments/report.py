"""Result containers and ASCII table rendering for experiment runners."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ExperimentResult", "format_table"]


def _jsonable(value):
    """Project a result value onto the JSON-serializable subset.

    Experiment extras carry NumPy scalars/arrays, tuples and tuple-keyed
    dicts (e.g. tbl8's per-cell map); artifacts must be plain JSON. The
    projection is a fixpoint: applying it to already-projected data is
    the identity, which is what makes ``to_json -> from_json -> to_json``
    byte-stable.
    """
    import numpy as np

    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted((_jsonable(v) for v in value), key=repr)
    if isinstance(value, dict):
        return {_key_str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


def _key_str(key) -> str:
    """Dict keys must be strings in JSON; join tuple keys readably."""
    if isinstance(key, str):
        return key
    if isinstance(key, tuple):
        return "|".join(str(k) for k in key)
    return str(key)


def format_table(headers: list[str], rows: list[list]) -> str:
    """Render a plain-text table with right-aligned numeric cells."""
    def cell(v) -> str:
        if isinstance(v, float):
            return f"{v:.3f}" if abs(v) < 100 else f"{v:.1f}"
        return str(v)

    text_rows = [[cell(v) for v in row] for row in rows]
    widths = [max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows
              else len(headers[i]) for i in range(len(headers))]
    lines = [" | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    lines.append("-+-".join("-" * w for w in widths))
    for r in text_rows:
        lines.append(" | ".join(r[i].rjust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """A reproduced table/figure: rows plus provenance notes."""

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list]
    notes: str = ""
    extras: dict = field(default_factory=dict)

    def render(self) -> str:
        """Human-readable report block."""
        out = [f"== {self.experiment_id}: {self.title} ==",
               format_table(self.headers, self.rows)]
        if self.notes:
            out.append(f"notes: {self.notes}")
        return "\n".join(out)

    def to_json(self) -> dict:
        """JSON-serializable projection of the result.

        NumPy scalars become Python scalars, tuples become lists and
        tuple dict keys are joined with ``|``; the projection is stable
        under round-tripping (``from_json(r.to_json()).to_json() ==
        r.to_json()``), which the runner relies on for byte-identical
        artifacts between fresh and cache-served runs.
        """
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headers": _jsonable(self.headers),
            "rows": _jsonable(self.rows),
            "notes": self.notes,
            "extras": _jsonable(self.extras),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_json` output."""
        return cls(experiment_id=payload["experiment_id"],
                   title=payload["title"],
                   headers=list(payload["headers"]),
                   rows=[list(r) for r in payload["rows"]],
                   notes=payload.get("notes", ""),
                   extras=dict(payload.get("extras", {})))
