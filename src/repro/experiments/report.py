"""Result containers and ASCII table rendering for experiment runners."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ExperimentResult", "format_table"]


def format_table(headers: list[str], rows: list[list]) -> str:
    """Render a plain-text table with right-aligned numeric cells."""
    def cell(v) -> str:
        if isinstance(v, float):
            return f"{v:.3f}" if abs(v) < 100 else f"{v:.1f}"
        return str(v)

    text_rows = [[cell(v) for v in row] for row in rows]
    widths = [max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows
              else len(headers[i]) for i in range(len(headers))]
    lines = [" | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    lines.append("-+-".join("-" * w for w in widths))
    for r in text_rows:
        lines.append(" | ".join(r[i].rjust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """A reproduced table/figure: rows plus provenance notes."""

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list]
    notes: str = ""
    extras: dict = field(default_factory=dict)

    def render(self) -> str:
        """Human-readable report block."""
        out = [f"== {self.experiment_id}: {self.title} ==",
               format_table(self.headers, self.rows)]
        if self.notes:
            out.append(f"notes: {self.notes}")
        return "\n".join(out)
