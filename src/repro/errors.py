"""Exception hierarchy for the repro library."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class FormatError(ReproError):
    """A numeric format was mis-specified or a value cannot be encoded."""


class ShapeError(ReproError):
    """An array does not have the shape an operation requires."""


class ConfigError(ReproError):
    """An experiment or hardware configuration is invalid."""


class CodecError(ReproError):
    """A packed tensor container is malformed or cannot be (de)serialized."""


class ProtocolError(ReproError):
    """A quantization-server wire frame is malformed or mis-versioned."""


class ServerBusy(ReproError):
    """The quantization server hit its in-flight bound (back off and retry)."""


class ServerError(ReproError):
    """The quantization server failed internally processing a request."""
