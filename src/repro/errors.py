"""Exception hierarchy for the repro library."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class FormatError(ReproError):
    """A numeric format was mis-specified or a value cannot be encoded."""


class ShapeError(ReproError):
    """An array does not have the shape an operation requires."""


class ConfigError(ReproError):
    """An experiment or hardware configuration is invalid."""


class CodecError(ReproError):
    """A packed tensor container is malformed or cannot be (de)serialized."""
