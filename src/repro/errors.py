"""Exception hierarchy for the repro library."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class FormatError(ReproError):
    """A numeric format was mis-specified or a value cannot be encoded."""


class ShapeError(ReproError):
    """An array does not have the shape an operation requires."""


class ConfigError(ReproError):
    """An experiment or hardware configuration is invalid."""


class CodecError(ReproError):
    """A packed tensor container is malformed or cannot be (de)serialized."""


class ProtocolError(ReproError):
    """A quantization-server wire frame is malformed or mis-versioned."""


class ConnectionLost(ProtocolError):
    """The server connection died mid-conversation (retryable).

    Subclasses :class:`ProtocolError` so pre-existing ``except
    ProtocolError`` handlers keep working, but carries the retry
    semantics: quantization requests are idempotent, so a client may
    reconnect and resubmit without risk of double effects.
    """


class RequestTimeout(ReproError, TimeoutError):
    """A client-side per-request deadline expired (retryable).

    Also a :class:`TimeoutError`, so generic timeout handling sees it.
    """


class RetryBudgetExceeded(ReproError):
    """A resilient client exhausted its retry budget (``__cause__`` holds
    the last underlying failure)."""


class ServerBusy(ReproError):
    """The quantization server hit its in-flight bound (back off and retry)."""


class ServerDraining(ServerBusy):
    """The server is draining for shutdown; reconnect and retry elsewhere."""


class SessionLost(ReproError):
    """A streaming session's server-side state is gone or out of step.

    Raised for unknown session ids, appends whose sequence number the
    server cannot reconcile (state lost to a crash/restart), and reads
    against a session the replica no longer holds. Deliberately *not*
    retryable: blind resubmission could silently corrupt the stream —
    the client must reopen the session and replay from its own copy.
    """


class ServerError(ReproError):
    """The quantization server failed internally processing a request."""


class WorkerCrashLoop(ServerError):
    """A supervised server worker exceeded its restart budget."""
