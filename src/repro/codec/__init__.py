"""Packed-tensor codec: catalog formats serialized at true bit widths.

The rest of the library *simulates* low-bit quantization (dequantized
float64 arrays); this package makes the storage story real. A
:class:`PackedTensor` holds the element codes, the per-group scale codes
and the metadata fields of any catalog format as densely packed
bitstreams behind a self-describing header, and round-trips **bit-exactly**
through the same kernel-dispatched quantizers the experiments use.

Example::

    import numpy as np
    from repro.codec import encode, decode
    from repro.runner.formats import make_format

    fmt = make_format("m2xfp")
    w = np.random.default_rng(0).standard_normal((64, 128))
    pt = encode(fmt, w, op="weight")
    assert decode(pt).tobytes() == fmt.quantize_weight(w).tobytes()
    print(pt.bits_per_element)          # ~4.5 measured, vs fmt.weight_ebw
    blob = pt.to_bytes()                # ships as one contiguous buffer
"""

from .bitstream import bits_needed, pack_bits, packed_nbytes, unpack_bits
from .codecs import (FUSED_PACK_ENV, codec_for, collect_encode_stats, decode,
                     encode, fused_pack_enabled, supports)
from .container import CONTAINER_VERSION, MAGIC, PackedTensor, Stream

__all__ = [
    "encode", "decode", "codec_for", "supports",
    "FUSED_PACK_ENV", "fused_pack_enabled", "collect_encode_stats",
    "PackedTensor", "Stream", "MAGIC", "CONTAINER_VERSION",
    "pack_bits", "unpack_bits", "packed_nbytes", "bits_needed",
]
