"""The ``PackedTensor`` container: header + named bitstream sections.

Wire layout (all little-endian)::

    bytes 0..3   magic  b"RPT1"
    bytes 4..7   uint32 header length H
    bytes 8..8+H canonical JSON header (ascii, sorted keys)
    remainder    the stream sections, concatenated in header order

The header is self-describing: it carries the catalog format name, a
configuration fingerprint (the format's ``repr``), the original tensor
shape/axis, the group size, the operand path (``weight`` or
``activation``), per-stream ``(name, width, count, nbytes)`` records and
a codec-specific ``extra`` dict (floats stored as ``float.hex()`` text so
round-trips are bit-exact). :func:`repro.codec.decode` needs nothing but
these bytes plus the format catalog.

Example::

    from repro.codec import encode, decode
    pt = encode(make_format("m2xfp"), w, op="weight")
    blob = pt.to_bytes()                  # contiguous bytes, ships anywhere
    w_hat = decode(PackedTensor.from_bytes(blob))
    # w_hat == M2XFP().quantize_weight(w) bit for bit
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field

import numpy as np

from ..errors import CodecError

__all__ = ["MAGIC", "CONTAINER_VERSION", "Stream", "PackedTensor"]

MAGIC = b"RPT1"
CONTAINER_VERSION = 1


@dataclass
class Stream:
    """One named, densely packed section of a :class:`PackedTensor`."""

    name: str
    data: bytes
    width: int   # bits per field (accounting; raw streams use 8 * itemsize)
    count: int   # number of fields

    @property
    def nbytes(self) -> int:
        """Serialized size of this section."""
        return len(self.data)


@dataclass
class PackedTensor:
    """A tensor serialized to true-width bitstreams plus a header.

    ``streams`` preserve insertion order — the serialization order — and
    ``extra`` holds codec-specific scalars (e.g. NVFP4's tensor scale as
    a ``float.hex()`` string).
    """

    format_name: str
    fingerprint: str
    op: str
    shape: tuple[int, ...]
    axis: int
    group_size: int
    streams: dict[str, Stream] = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Stream plumbing
    # ------------------------------------------------------------------
    def add_stream(self, name: str, data: bytes | np.ndarray,
                   width: int, count: int) -> None:
        """Append a section; duplicate names are a codec bug."""
        if name in self.streams:
            raise CodecError(f"duplicate stream {name!r}")
        if isinstance(data, np.ndarray):
            data = data.tobytes()
        self.streams[name] = Stream(name, bytes(data), width, count)

    def stream(self, name: str) -> Stream:
        """Fetch a section by name with a decode-friendly error."""
        if name not in self.streams:
            raise CodecError(f"container has no stream {name!r} "
                             f"(has: {', '.join(self.streams) or 'none'})")
        return self.streams[name]

    # ------------------------------------------------------------------
    # Footprint accounting
    # ------------------------------------------------------------------
    @property
    def n_elements(self) -> int:
        """Logical element count of the original tensor."""
        return int(np.prod(self.shape, dtype=np.int64)) if self.shape else 1

    @property
    def payload_bytes(self) -> int:
        """Total bytes of the packed streams (excluding the header)."""
        return sum(s.nbytes for s in self.streams.values())

    @property
    def header_bytes(self) -> int:
        """Bytes of magic + length word + JSON header."""
        return len(MAGIC) + 4 + len(self._header_json())

    @property
    def total_bytes(self) -> int:
        """Full serialized size, header included."""
        return self.header_bytes + self.payload_bytes

    @property
    def bits_per_element(self) -> float:
        """Measured storage cost (payload only), comparable to nominal EBW.

        Partial trailing groups are padded to ``group_size`` before
        packing, so on group-aligned shapes this is exactly the sum of
        the per-stream widths amortized over the elements.
        """
        return self.payload_bytes * 8 / max(1, self.n_elements)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def _header_json(self) -> bytes:
        header = {
            "version": CONTAINER_VERSION,
            "format": self.format_name,
            "fingerprint": self.fingerprint,
            "op": self.op,
            "shape": list(self.shape),
            "axis": self.axis,
            "group_size": self.group_size,
            "streams": [[s.name, s.width, s.count, s.nbytes]
                        for s in self.streams.values()],
            "extra": self.extra,
        }
        return json.dumps(header, sort_keys=True,
                          separators=(",", ":")).encode("ascii")

    def to_bytes(self) -> bytes:
        """Serialize to one contiguous, self-describing byte string."""
        head = self._header_json()
        parts = [MAGIC, struct.pack("<I", len(head)), head]
        parts += [s.data for s in self.streams.values()]
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "PackedTensor":
        """Parse bytes produced by :meth:`to_bytes`."""
        blob = bytes(blob)
        if len(blob) < len(MAGIC) + 4 or blob[:len(MAGIC)] != MAGIC:
            raise CodecError("not a packed tensor container (bad magic)")
        (hlen,) = struct.unpack_from("<I", blob, len(MAGIC))
        start = len(MAGIC) + 4
        if len(blob) < start + hlen:
            raise CodecError("truncated container header")
        try:
            header = json.loads(blob[start:start + hlen].decode("ascii"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CodecError(f"unreadable container header: {exc}") from exc
        if header.get("version") != CONTAINER_VERSION:
            raise CodecError(f"unsupported container version "
                             f"{header.get('version')!r}")
        pt = cls(format_name=header["format"],
                 fingerprint=header["fingerprint"], op=header["op"],
                 shape=tuple(header["shape"]), axis=int(header["axis"]),
                 group_size=int(header["group_size"]),
                 extra=header.get("extra", {}))
        offset = start + hlen
        for name, width, count, nbytes in header["streams"]:
            data = blob[offset:offset + nbytes]
            if len(data) != nbytes:
                raise CodecError(f"truncated stream {name!r}")
            pt.add_stream(name, data, int(width), int(count))
            offset += nbytes
        return pt
