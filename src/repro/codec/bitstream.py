"""Arbitrary-width bit field packing for the tensor codec.

:mod:`repro.core.packing` handles the Sec. 5.2 accelerator layout, whose
field widths (4-bit nibbles, 2-bit metadata) happen to divide a byte.
The serialized container cannot afford that restriction: SMX6 mantissa
codes are 5 bits, Elem-EE refinement codes are 3, MaxPreserving indices
are ``ceil(log2(k))``. These helpers pack any fixed width ``1..64``
densely, LSB-first within the stream, so a stream of ``count`` fields
costs exactly ``ceil(count * width / 8)`` bytes — the property the
measured-vs-nominal EBW assertions in ``tests/test_codec.py`` rest on.

Example::

    buf = pack_bits(np.array([5, 2, 7]), width=3)   # 9 bits -> 2 bytes
    vals = unpack_bits(buf, width=3, count=3)       # array([5, 2, 7])
"""

from __future__ import annotations

import numpy as np

from ..errors import CodecError

__all__ = ["pack_bits", "unpack_bits", "packed_nbytes", "bits_needed"]


def bits_needed(n_values: int) -> int:
    """Width of the smallest field that can hold codes ``0..n_values-1``."""
    if n_values < 1:
        raise CodecError("bits_needed requires at least one code value")
    return max(1, int(n_values - 1).bit_length())


def packed_nbytes(count: int, width: int) -> int:
    """Bytes :func:`pack_bits` emits for ``count`` fields of ``width`` bits."""
    return (count * width + 7) // 8


def pack_bits(values: np.ndarray, width: int) -> np.ndarray:
    """Pack non-negative integers into a dense LSB-first bitstream.

    Returns a ``uint8`` array of :func:`packed_nbytes` bytes; the unused
    high bits of the final byte are zero, so equal field sequences always
    serialize to equal bytes. Widths 4, 8 and 16 — the FP4 nibbles,
    E8M0/FP8 scale bytes and FP16 scale codes that dominate every real
    container — take direct nibble/byte paths instead of the per-bit
    expansion; ``tests/test_codec.py`` asserts the emitted bytes equal
    the generic path's, and the pinned golden containers are unchanged.
    """
    if not 1 <= width <= 64:
        raise CodecError(f"field width must be in [1, 64], got {width}")
    values = np.asarray(values, dtype=np.int64).reshape(-1)
    if values.size and (values.min() < 0 or
                        (width < 64 and values.max() >= (1 << width))):
        raise CodecError(f"field values must fit in {width} unsigned bits")
    if values.size == 0:
        return np.zeros(0, dtype=np.uint8)
    if width == 8:
        return values.astype(np.uint8)
    if width == 16:
        return values.astype("<u2").view(np.uint8)
    if width == 4:
        lo = values[0::2].astype(np.uint8)
        out = np.zeros(packed_nbytes(values.size, 4), dtype=np.uint8)
        out[: lo.size] = lo
        hi = values[1::2].astype(np.uint8)
        out[: hi.size] |= hi << np.uint8(4)
        return out
    return _pack_bits_generic(values, width)


def _pack_bits_generic(values: np.ndarray, width: int) -> np.ndarray:
    """Per-bit expansion path for arbitrary widths (and parity checks)."""
    shifts = np.arange(width, dtype=np.uint64)
    bits = (values.astype(np.uint64)[:, None] >> shifts) & np.uint64(1)
    return np.packbits(bits.astype(np.uint8).reshape(-1), bitorder="little")


def unpack_bits(buf: bytes | np.ndarray, width: int, count: int) -> np.ndarray:
    """Invert :func:`pack_bits` into ``count`` int64 fields."""
    if not 1 <= width <= 64:
        raise CodecError(f"field width must be in [1, 64], got {width}")
    raw = np.frombuffer(memoryview(buf), dtype=np.uint8)
    if raw.size < packed_nbytes(count, width):
        raise CodecError(f"bitstream truncated: need "
                         f"{packed_nbytes(count, width)} bytes, have {raw.size}")
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    if width == 8:
        return raw[:count].astype(np.int64)
    if width == 16:
        return raw[: 2 * count].view("<u2").astype(np.int64)
    if width == 4:
        used = raw[: packed_nbytes(count, 4)]
        fields = np.empty(2 * used.size, dtype=np.int64)
        fields[0::2] = used & 0x0F
        fields[1::2] = used >> 4
        return fields[:count]
    return _unpack_bits_generic(raw, width, count)


def _unpack_bits_generic(raw: np.ndarray, width: int, count: int) -> np.ndarray:
    """Per-bit expansion path for arbitrary widths (and parity checks)."""
    bits = np.unpackbits(raw, count=count * width, bitorder="little")
    shifts = np.arange(width, dtype=np.uint64)
    fields = (bits.reshape(count, width).astype(np.uint64) << shifts).sum(axis=1)
    return fields.astype(np.int64)
