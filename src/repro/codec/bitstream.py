"""Arbitrary-width bit field packing for the tensor codec.

:mod:`repro.core.packing` handles the Sec. 5.2 accelerator layout, whose
field widths (4-bit nibbles, 2-bit metadata) happen to divide a byte.
The serialized container cannot afford that restriction: SMX6 mantissa
codes are 5 bits, Elem-EE refinement codes are 3, MaxPreserving indices
are ``ceil(log2(k))``. These helpers pack any fixed width ``1..64``
densely, LSB-first within the stream, so a stream of ``count`` fields
costs exactly ``ceil(count * width / 8)`` bytes — the property the
measured-vs-nominal EBW assertions in ``tests/test_codec.py`` rest on.

Example::

    buf = pack_bits(np.array([5, 2, 7]), width=3)   # 9 bits -> 2 bytes
    vals = unpack_bits(buf, width=3, count=3)       # array([5, 2, 7])
"""

from __future__ import annotations

import numpy as np

from ..errors import CodecError

__all__ = ["pack_bits", "unpack_bits", "packed_nbytes", "bits_needed"]


def bits_needed(n_values: int) -> int:
    """Width of the smallest field that can hold codes ``0..n_values-1``."""
    if n_values < 1:
        raise CodecError("bits_needed requires at least one code value")
    return max(1, int(n_values - 1).bit_length())


def packed_nbytes(count: int, width: int) -> int:
    """Bytes :func:`pack_bits` emits for ``count`` fields of ``width`` bits."""
    return (count * width + 7) // 8


def pack_bits(values: np.ndarray, width: int) -> np.ndarray:
    """Pack non-negative integers into a dense LSB-first bitstream.

    Returns a ``uint8`` array of :func:`packed_nbytes` bytes; the unused
    high bits of the final byte are zero, so equal field sequences always
    serialize to equal bytes. Widths 4, 8 and 16 — the FP4 nibbles,
    E8M0/FP8 scale bytes and FP16 scale codes that dominate every real
    container — take direct nibble/byte paths, and every other sub-byte
    width above one bit (the 2-bit metadata, 3-bit Elem-EE refinements,
    5-bit SMX6 mantissas, ...) goes through a whole-word path: fields
    are OR-merged in three pairwise-doubling passes into uint64 words
    of eight, whose low ``w`` bytes are the stream bytes. Width 1 is
    ``np.packbits`` itself (the per-bit expansion degenerates to it),
    and only widths above 16 still hit the per-bit expansion.
    ``tests/test_codec.py`` asserts every fast path's bytes equal the
    generic path's, and the pinned golden containers are unchanged.
    """
    if not 1 <= width <= 64:
        raise CodecError(f"field width must be in [1, 64], got {width}")
    values = np.asarray(values, dtype=np.int64).reshape(-1)
    if values.size:
        # One reduction pass validates both bounds: the OR of the
        # fields is negative iff any field is (sign bit), and has a
        # bit at or above ``width`` iff any field does.
        merged = int(np.bitwise_or.reduce(values))
        if merged < 0 or (width < 64 and merged >= (1 << width)):
            raise CodecError(
                f"field values must fit in {width} unsigned bits")
    if values.size == 0:
        return np.zeros(0, dtype=np.uint8)
    if width == 8:
        return values.astype(np.uint8)
    if width == 16:
        return values.astype("<u2").view(np.uint8)
    if width == 4:
        lo = values[0::2].astype(np.uint8)
        out = np.zeros(packed_nbytes(values.size, 4), dtype=np.uint8)
        out[: lo.size] = lo
        hi = values[1::2].astype(np.uint8)
        out[: hi.size] |= hi << np.uint8(4)
        return out
    if 1 < width < 8:
        return _pack_bits_words(values, width)
    return _pack_bits_generic(values, width)


def _pack_bits_words(values: np.ndarray, width: int) -> np.ndarray:
    """Whole-word path for widths 2..7.

    Eight ``width``-bit fields span exactly ``width`` bytes, so each
    group of eight packs as one little-endian uint64 — assembled by
    OR-merging adjacent fields in three pairwise-doubling passes
    (``w``-bit fields → ``2w`` → ``4w`` → ``8w``-bit words), which
    touches each element ~3 times instead of materializing the 8-wide
    shift matrix. The word's low ``width`` bytes are the stream bytes —
    identical, bit for bit, to the LSB-first per-bit expansion.
    """
    m = -(-values.size // 8)
    v = np.zeros(8 * m, dtype=np.uint64)
    v[: values.size] = values.astype(np.uint64)
    a = v[0::2] | (v[1::2] << np.uint64(width))
    b = a[0::2] | (a[1::2] << np.uint64(2 * width))
    words = b[0::2] | (b[1::2] << np.uint64(4 * width))
    out = np.ascontiguousarray(
        words.astype("<u8").view(np.uint8).reshape(m, 8)[:, :width])
    return out.reshape(-1)[: packed_nbytes(values.size, width)]


def _pack_bits_generic(values: np.ndarray, width: int) -> np.ndarray:
    """Per-bit expansion path for arbitrary widths (and parity checks)."""
    shifts = np.arange(width, dtype=np.uint64)
    bits = (values.astype(np.uint64)[:, None] >> shifts) & np.uint64(1)
    return np.packbits(bits.astype(np.uint8).reshape(-1), bitorder="little")


def unpack_bits(buf: bytes | np.ndarray, width: int, count: int) -> np.ndarray:
    """Invert :func:`pack_bits` into ``count`` int64 fields."""
    if not 1 <= width <= 64:
        raise CodecError(f"field width must be in [1, 64], got {width}")
    raw = np.frombuffer(memoryview(buf), dtype=np.uint8)
    if raw.size < packed_nbytes(count, width):
        raise CodecError(f"bitstream truncated: need "
                         f"{packed_nbytes(count, width)} bytes, have {raw.size}")
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    if width == 8:
        return raw[:count].astype(np.int64)
    if width == 16:
        return raw[: 2 * count].view("<u2").astype(np.int64)
    if width == 4:
        used = raw[: packed_nbytes(count, 4)]
        fields = np.empty(2 * used.size, dtype=np.int64)
        fields[0::2] = used & 0x0F
        fields[1::2] = used >> 4
        return fields[:count]
    if width < 8:
        return _unpack_bits_words(raw, width, count)
    return _unpack_bits_generic(raw, width, count)


def _unpack_bits_words(raw: np.ndarray, width: int, count: int) -> np.ndarray:
    """Invert :func:`_pack_bits_words`: uint64 words back to fields."""
    m = -(-count // 8)
    nbytes = packed_nbytes(count, width)
    buf = np.zeros(m * width, dtype=np.uint8)
    buf[:nbytes] = raw[:nbytes]
    b = np.zeros((m, 8), dtype=np.uint8)
    b[:, :width] = buf.reshape(m, width)
    words = b.view("<u8").reshape(-1)
    shifts = np.arange(8, dtype=np.uint64) * np.uint64(width)
    mask = np.uint64((1 << width) - 1)
    fields = (words[:, None] >> shifts) & mask
    return fields.reshape(-1)[:count].astype(np.int64)


def _unpack_bits_generic(raw: np.ndarray, width: int, count: int) -> np.ndarray:
    """Per-bit expansion path for arbitrary widths (and parity checks)."""
    bits = np.unpackbits(raw, count=count * width, bitorder="little")
    shifts = np.arange(width, dtype=np.uint64)
    fields = (bits.reshape(count, width).astype(np.uint64) << shifts).sum(axis=1)
    return fields.astype(np.int64)
