"""Per-family tensor codecs: catalog formats to packed bytes and back.

Every format in the sweep catalog (``repro.runner.formats``) simulates
quantization in float64; the codecs here serialize the *true* storage
representation — element codes, per-group E8M0 / FP8 / FP16 scale codes,
and Elem-EM / Sg-EM / Sg-EE / SMX metadata fields, each packed at its
real bit width — and reconstruct the dequantized tensor **bit-exactly**
equal to the format's own ``quantize_weight`` / ``quantize_activation``
output under every kernel dispatch mode. That contract is what turns the
repo's simulated EBW table into a measured bytes-on-the-wire number
(``PackedTensor.bits_per_element``), and it is enforced format-by-format
in ``tests/test_codec.py``.

How each family packs:

* **Block formats** (MXFP4/6/8, MXINT8, MSFP, GroupFP4) — one element
  stream at the scalar's ``total_bits`` plus one scale stream (E8M0
  exponent byte, or FP16 codes for GroupFP4).
* **SMX** — block layout plus a 1-bit micro-exponent per element pair.
* **NVFP4** — FP4 element stream, E4M3 group-scale codes, and the FP32
  tensor scale in the header (as ``float.hex()`` text).
* **Elem-EM / Sg-EM / Sg-EE** — the bit-level encodings from
  :mod:`repro.core` with their 2-bit metadata streams.
* **Elem-EE** — baseline FP4 codes plus, per subgroup, the 2-bit offset
  *and* a 3-bit refined magnitude code. The extra 3 bits/subgroup over
  the format's nominal EBW are unavoidable for a self-contained decode
  (the nominal accounting assumes the refined code replaces the stored
  one, which would break the decoder's top-element re-identification);
  the overhead is pinned exactly in ``tests/test_codec.py``.
* **M2XFP** — delegates to Sg-EM (weights) or Elem-EM (activations).
* **M2-NVFP4** — NVFP4 two-level scales plus the Sg-EM multiplier /
  bias search codes (weights) or the Elem-EM bias-clamp metadata
  (activations).
* **fp16** — stores IEEE float16 words when the tensor is exactly
  fp16-representable; otherwise falls back to raw float64 (flagged in
  the header) because the catalog's ``Fp16Format`` is an identity
  transfer function.

Example::

    from repro.codec import encode, decode
    pt = encode(make_format("m2xfp"), w, op="weight")
    assert decode(pt).tobytes() == make_format("m2xfp").quantize_weight(w).tobytes()
    pt.bits_per_element        # ~4.5 — the paper's EBW, now measured
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager

import numpy as np

from .. import obs as _obs
from ..core.elem_em import META_BITS_PER_VALUE, ElemEM, ElemEMEncoding, \
    elem_em_decode, elem_em_encode
from ..core.elem_ee import ElemEE
from ..core.m2xfp import M2NVFP4, M2XFP
from ..core.sg_em import SG_EM_MULTIPLIERS, SgEM, SgEMEncoding, sg_em_decode, \
    sg_em_encode
from ..core.sg_ee import SgEE, SgEEEncoding, sg_ee_decode, sg_ee_encode
from ..errors import CodecError
from ..formats.floatspec import FloatSpec, quantize_to_grid
from ..formats.grouping import GroupView, from_groups, to_groups
from ..formats.intspec import GridSpec, IntSpec
from ..formats.registry import FP4_E2M1, FP6_E2M3, FP8_E4M3, FP16
from ..kernels.elem import elem_ee_select
from ..kernels.search import candidate_search, gather_candidate_codes, \
    hierarchical_select
from ..models.quantized import Fp16Format
from ..mx.base import BlockFormat
from ..mx.fp_group import GroupFP4
from ..mx.max_preserve import MaxPreserving
from ..mx.msfp import MSFP
from ..mx.nvfp import NVFP4
from ..mx.smx import SMX
from .bitstream import bits_needed, pack_bits, unpack_bits
from .container import PackedTensor, Stream

__all__ = ["encode", "decode", "codec_for", "supports",
           "FUSED_PACK_ENV", "fused_pack_enabled", "collect_encode_stats"]

_OPS = ("weight", "activation")

#: Environment variable disabling the fused quantize→pack path ("=1"
#: turns it off; every encode then re-derives codes from dequantized
#: floats exactly as before the fused path existed).
FUSED_PACK_ENV = "REPRO_NO_FUSED_PACK"


def fused_pack_enabled() -> bool:
    """True unless ``REPRO_NO_FUSED_PACK=1`` is exported."""
    return os.environ.get(FUSED_PACK_ENV, "0") != "1"


_STAGE_SINK = threading.local()

#: Process-wide encode tally surfaced through the metrics registry as
#: the ``codec`` collector (the per-call sink above stays the precise,
#: caller-scoped instrument; this is the always-on global view).
_ENCODE_TOTALS = {"encodes": 0, "fused_encodes": 0}
_ENCODE_TOTALS_LOCK = threading.Lock()

_obs.registry().register_collector(
    "codec", lambda: dict(_ENCODE_TOTALS))


@contextmanager
def collect_encode_stats():
    """Collect per-stage encode timings from :func:`encode` calls.

    Yields a dict accumulated in place by every :func:`encode` on this
    thread while the context is active: ``encodes`` / ``fused_encodes``
    call counts and ``quantize_s`` / ``pack_s`` / ``verify_s`` stage
    seconds (the legacy path cannot split quantize from pack, so its
    whole ``encode_into`` lands in ``quantize_s``). Nestable — the inner
    context shadows the outer one.
    """
    stats = {"encodes": 0, "fused_encodes": 0,
             "quantize_s": 0.0, "pack_s": 0.0, "verify_s": 0.0}
    prev = getattr(_STAGE_SINK, "stats", None)
    _STAGE_SINK.stats = stats
    try:
        yield stats
    finally:
        _STAGE_SINK.stats = prev


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _element_width(element) -> int:
    """Packed bits per element code for any scalar spec."""
    if isinstance(element, FloatSpec):
        return element.total_bits
    if isinstance(element, IntSpec):
        return element.bits
    if isinstance(element, GridSpec):
        return 1 + bits_needed(element.grid.shape[0])
    raise CodecError(f"no element packing for {type(element).__name__}")


def _element_codes(element, scaled: np.ndarray) -> np.ndarray:
    """Integer codes quantizing ``scaled`` values (idempotent on-grid)."""
    if isinstance(element, FloatSpec):
        sign, mag = element.encode(scaled)
        return (sign << (element.exp_bits + element.man_bits)) | mag
    if isinstance(element, IntSpec):
        q = element.quantize(scaled)
        sign = np.signbit(q).astype(np.int64)
        mag = np.abs(q).astype(np.int64)
        return (sign << (element.bits - 1)) | mag
    if isinstance(element, GridSpec):
        q = element.quantize(scaled)
        sign = np.signbit(q).astype(np.int64)
        idx = np.searchsorted(element.grid, np.abs(q))
        return (sign << bits_needed(element.grid.shape[0])) | idx
    raise CodecError(f"no element packing for {type(element).__name__}")


def _element_values(element, codes: np.ndarray) -> np.ndarray:
    """Invert :func:`_element_codes` back to float64 grid values."""
    if isinstance(element, FloatSpec):
        shift = element.exp_bits + element.man_bits
        return element.decode(codes >> shift, codes & ((1 << shift) - 1))
    if isinstance(element, IntSpec):
        mag = (codes & ((1 << (element.bits - 1)) - 1)).astype(np.float64)
        return np.where((codes >> (element.bits - 1)) != 0, -mag, mag)
    if isinstance(element, GridSpec):
        shift = bits_needed(element.grid.shape[0])
        vals = element.grid[codes & ((1 << shift) - 1)]
        return np.where((codes >> shift) != 0, -vals, vals)
    raise CodecError(f"no element packing for {type(element).__name__}")


def _put_exponents(pt: PackedTensor, name: str, scales: np.ndarray) -> None:
    """Store power-of-two scales as E8M0 bytes (bias 127)."""
    e = np.log2(scales)
    ei = e.astype(np.int64)
    if np.any(ei != e) or np.any(np.exp2(ei.astype(np.float64)) != scales):
        raise CodecError("scales are not exact powers of two")
    if ei.size and (ei.min() < -127 or ei.max() > 127):
        raise CodecError("scale exponent outside the E8M0 range "
                         f"[{ei.min()}, {ei.max()}]; the container stores "
                         "E8M0-range scales only")
    pt.add_stream(name, pack_bits(ei + 127, 8), 8, ei.size)


def _get_exponent_scales(pt: PackedTensor, name: str, count: int) -> np.ndarray:
    """Invert :func:`_put_exponents` into float64 power-of-two scales."""
    e = unpack_bits(pt.stream(name).data, 8, count) - 127
    return np.exp2(e.astype(np.float64))


def _view(pt: PackedTensor) -> GroupView:
    """Rebuild the :class:`GroupView` that inverts the encode grouping."""
    axis_len = pt.shape[pt.axis]
    padded = -(-axis_len // pt.group_size) * pt.group_size
    return GroupView(shape=pt.shape, axis=pt.axis, group_size=pt.group_size,
                     axis_len=axis_len, padded_len=padded)


def _n_groups(pt: PackedTensor) -> int:
    view = _view(pt)
    lead = 1
    for i, s in enumerate(pt.shape):
        if i != pt.axis:
            lead *= s
    return lead * (view.padded_len // pt.group_size)


def _hex(value: float) -> str:
    return float(value).hex()


def _unhex(text: str) -> float:
    return float.fromhex(text)


# ----------------------------------------------------------------------
# Codec classes
# ----------------------------------------------------------------------
class Codec:
    """Base class: encode a format's streams into / out of a container."""

    #: Stream names the fused code-space path supplies, in packing
    #: order; None means the family has no fused layout and always
    #: encodes from floats.
    code_streams: tuple[str, ...] | None = None

    def encode_into(self, fmt, x: np.ndarray, pt: PackedTensor) -> None:
        raise NotImplementedError

    def decode(self, fmt, pt: PackedTensor) -> np.ndarray:
        raise NotImplementedError

    def code_layout(self, fmt, pt: PackedTensor) -> tuple[str, ...] | None:
        """Expected fused stream layout for this container, or None."""
        return self.code_streams

    def encode_from_codes(self, fmt, cs, pt: PackedTensor) -> None:
        """Pack a plan executor's :class:`CodeSpaceResult` directly.

        The code arrays are already the exact integers ``encode_into``
        would derive from the dequantized floats (the executor/codec
        parity contract, DESIGN.md §11), so packing is a pure bitstream
        write — no quantization arithmetic at all.
        """
        expected = self.code_layout(fmt, pt)
        if expected is None:
            raise CodecError(f"{type(self).__name__} has no fused "
                             "code-space layout")
        if cs.stream_names != tuple(expected):
            raise CodecError(f"code-space streams {cs.stream_names} do not "
                             f"match the {type(self).__name__} layout "
                             f"{tuple(expected)}")
        for s in cs.streams:
            values = np.asarray(s.values).reshape(-1)
            pt.add_stream(s.name, pack_bits(values, s.width),
                          s.width, values.size)


class Fp16Codec(Codec):
    """The identity ``Fp16Format``: float16 words when exact, else raw."""

    def encode_into(self, fmt, x, pt):
        x = np.asarray(x, dtype=np.float64)
        y16 = x.astype("<f2")
        if y16.astype(np.float64).tobytes() == x.tobytes():
            pt.extra["storage"] = "f16"
            pt.add_stream("elements", y16.reshape(-1), 16, x.size)
        else:
            # Not fp16-representable: the catalog Fp16Format is an
            # identity function, so raw float64 is the only exact store.
            pt.extra["storage"] = "f64"
            pt.add_stream("elements", x.astype("<f8").reshape(-1), 64, x.size)

    def decode(self, fmt, pt):
        raw = pt.stream("elements").data
        if pt.extra.get("storage") == "f16":
            flat = np.frombuffer(raw, dtype="<f2").astype(np.float64)
        else:
            flat = np.frombuffer(raw, dtype="<f8").astype(np.float64)
        return flat.reshape(pt.shape)


class BlockCodec(Codec):
    """Plain :class:`BlockFormat`: element codes + E8M0 exponent bytes."""

    code_streams = ("scales", "elements")

    def _scales(self, fmt, groups: np.ndarray) -> np.ndarray:
        return fmt.group_scales(groups)

    def _scaled(self, fmt, groups: np.ndarray, scales: np.ndarray) -> np.ndarray:
        return groups / scales[:, None]

    def encode_into(self, fmt, x, pt):
        groups, _ = to_groups(x, fmt.group_size, axis=pt.axis)
        scales = self._scales(fmt, groups)
        codes = _element_codes(fmt.element, self._scaled(fmt, groups, scales))
        self._put_scales(pt, scales)
        width = _element_width(fmt.element)
        pt.add_stream("elements", pack_bits(codes.reshape(-1), width),
                      width, codes.size)

    def _put_scales(self, pt, scales):
        _put_exponents(pt, "scales", scales)

    def _get_scales(self, fmt, pt, n):
        return _get_exponent_scales(pt, "scales", n)

    def decode(self, fmt, pt):
        view = _view(pt)
        n = _n_groups(pt)
        k = pt.group_size
        width = _element_width(fmt.element)
        codes = unpack_bits(pt.stream("elements").data, width, n * k)
        vals = _element_values(fmt.element, codes).reshape(n, k)
        scales = self._get_scales(fmt, pt, n)
        return from_groups(vals * scales[:, None], view)


class MSFPCodec(BlockCodec):
    #: No plan executor compiles for the subclass, so the inherited
    #: layout is never exercised; cleared to keep that explicit.
    code_streams = None
    """MSFP's ceil-rule exponent: take the scales the format computed."""

    def _scales(self, fmt, groups):
        return fmt.quantize_groups(groups).scales


class GroupFP4Codec(BlockCodec):
    code_streams = None
    """FP16 group scales; zero groups flush to +0.0 exactly like the format."""

    def _scales(self, fmt, groups):
        return fmt.quantize_groups(groups).scales

    def _scaled(self, fmt, groups, scales):
        safe = np.where(scales > 0, scales, 1.0)
        return groups / safe[:, None]

    def _put_scales(self, pt, scales):
        codes = _element_codes(FP16, scales)
        pt.add_stream("scales", pack_bits(codes, 16), 16, codes.size)

    def _get_scales(self, fmt, pt, n):
        return _element_values(FP16, unpack_bits(pt.stream("scales").data, 16, n))

    def decode(self, fmt, pt):
        view = _view(pt)
        n, k = _n_groups(pt), pt.group_size
        width = _element_width(fmt.element)
        codes = unpack_bits(pt.stream("elements").data, width, n * k)
        vals = _element_values(fmt.element, codes).reshape(n, k)
        scales = self._get_scales(fmt, pt, n)
        safe = np.where(scales > 0, scales, 1.0)
        dq = np.where(scales[:, None] > 0, vals * safe[:, None], 0.0)
        return from_groups(dq, view)


class SMXCodec(Codec):
    """SMX: element codes + E8M0 exponents + 1-bit pair micro-exponents."""

    def encode_into(self, fmt, x, pt):
        groups, _ = to_groups(x, fmt.group_size, axis=pt.axis)
        res = fmt.quantize_groups(groups)
        scales, micro = res.scales, res.details["micro_exponents"]
        n, k = groups.shape
        pairs = groups.reshape(n, k // fmt.sub_size, fmt.sub_size)
        local = scales[:, None] / np.exp2(micro)
        q = fmt.element.quantize(pairs / local[:, :, None])
        codes = _element_codes(fmt.element, q)
        _put_exponents(pt, "scales", scales)
        pt.add_stream("meta", pack_bits(micro.astype(np.int64).reshape(-1), 1),
                      1, micro.size)
        width = _element_width(fmt.element)
        pt.add_stream("elements", pack_bits(codes.reshape(-1), width),
                      width, codes.size)

    def decode(self, fmt, pt):
        view = _view(pt)
        n, k = _n_groups(pt), pt.group_size
        n_pairs = k // fmt.sub_size
        scales = _get_exponent_scales(pt, "scales", n)
        micro = unpack_bits(pt.stream("meta").data, 1,
                            n * n_pairs).astype(np.float64).reshape(n, n_pairs)
        width = _element_width(fmt.element)
        codes = unpack_bits(pt.stream("elements").data, width, n * k)
        vals = _element_values(fmt.element, codes).reshape(n, n_pairs, fmt.sub_size)
        local = scales[:, None] / np.exp2(micro)
        dq = (vals * local[:, :, None]).reshape(n, k)
        return from_groups(dq, view)


def _nvfp4_put_scales(element, scale_format, groups: np.ndarray,
                      pt: PackedTensor,
                      tensor_amax: float | None = None) -> np.ndarray | None:
    """Serialize NVFP4's two-level scales (E4M3 codes + header tensor
    scale); returns the raw group scales ``s8 * ts``, or None for the
    zero-tensor case (no scale stream, ``tensor_scale`` pinned to 0).

    Shared by :class:`NVFP4Codec` and :class:`M2NVFP4Codec` so the scale
    derivation cannot drift between the base format and its M2 extension.
    """
    if tensor_amax is None:
        tensor_amax = float(np.max(np.abs(groups), initial=0.0))
    if tensor_amax == 0.0:
        pt.extra["tensor_scale"] = _hex(0.0)
        return None
    ts = tensor_amax / (element.max_value * scale_format.max_value)
    pt.extra["tensor_scale"] = _hex(ts)
    group_amax = np.max(np.abs(groups), axis=1)
    ideal = group_amax / (element.max_value * ts)
    s8 = scale_format.quantize(ideal)
    _, s8_codes = scale_format.encode(s8)
    pt.add_stream("scales", pack_bits(s8_codes, 8), 8, s8_codes.size)
    return s8 * ts


def _nvfp4_get_scales(scale_format, pt: PackedTensor,
                      n: int) -> np.ndarray | None:
    """Invert :func:`_nvfp4_put_scales` (None for the zero-tensor case)."""
    ts = _unhex(pt.extra["tensor_scale"])
    if ts == 0.0:
        return None
    s8 = scale_format.decode(np.zeros(n, dtype=np.int64),
                             unpack_bits(pt.stream("scales").data, 8, n))
    return s8 * ts


class NVFP4Codec(Codec):
    """Two-level NVFP4: E4M3 scale codes + the FP32 tensor scale in-header."""

    def encode_into(self, fmt, x, pt, tensor_amax: float | None = None):
        groups, _ = to_groups(x, fmt.group_size, axis=pt.axis)
        scales = _nvfp4_put_scales(fmt.element, fmt.scale_format, groups, pt,
                                   tensor_amax)
        if scales is None:
            codes = _element_codes(fmt.element, groups)
        else:
            safe = np.where(scales > 0, scales, 1.0)
            codes = _element_codes(fmt.element, groups / safe[:, None])
        pt.add_stream("elements", pack_bits(codes.reshape(-1), 4), 4, codes.size)

    def decode(self, fmt, pt):
        view = _view(pt)
        n, k = _n_groups(pt), pt.group_size
        codes = unpack_bits(pt.stream("elements").data, 4, n * k)
        vals = _element_values(fmt.element, codes).reshape(n, k)
        scales = _nvfp4_get_scales(fmt.scale_format, pt, n)
        if scales is None:
            return from_groups(vals, view)
        safe = np.where(scales > 0, scales, 1.0)
        dq = np.where(scales[:, None] > 0, vals * safe[:, None], 0.0)
        return from_groups(dq, view)


class MaxPreserveCodec(Codec):
    """Inner-format streams with the group max re-stored as FP16 + index.

    When the wrapper and inner group sizes agree, the inner element code
    at the max position is *dropped* from the element stream (the decoder
    overwrites it anyway), so the measured footprint matches the format's
    nominal EBW accounting exactly.
    """

    def encode_into(self, fmt, x, pt):
        if getattr(fmt.inner, "group_size", None) != fmt.group_size:
            raise CodecError("MaxPreserving codec requires the wrapper and "
                             "inner formats to share a group size")
        inner_codec = codec_for(fmt.inner)
        inner_codec.encode_into(fmt.inner, x, pt)
        orig, _ = to_groups(x, fmt.group_size, axis=pt.axis)
        rows = np.arange(orig.shape[0])
        idx = np.argmax(np.abs(orig), axis=1)
        maxq = FP16.quantize(orig[rows, idx])
        idx_bits = max(1, int(np.ceil(np.log2(fmt.group_size))))
        pt.add_stream("max_idx", pack_bits(idx, idx_bits), idx_bits, idx.size)
        max_codes = _element_codes(FP16, maxq)
        pt.add_stream("max_val", pack_bits(max_codes, 16), 16, max_codes.size)
        dropped = "elements" in pt.streams
        pt.extra["dropped_max"] = bool(dropped)
        if dropped:
            elems = pt.streams.pop("elements")
            codes = unpack_bits(elems.data, elems.width, elems.count)
            k = fmt.group_size
            keep = np.delete(codes, rows * k + idx)
            pt.add_stream("elements", pack_bits(keep, elems.width),
                          elems.width, keep.size)

    def decode(self, fmt, pt):
        inner_codec = codec_for(fmt.inner)
        n, k = _n_groups(pt), pt.group_size
        rows = np.arange(n)
        idx_bits = max(1, int(np.ceil(np.log2(k))))
        idx = unpack_bits(pt.stream("max_idx").data, idx_bits, n)
        if pt.extra.get("dropped_max"):
            # Re-insert placeholder codes at the dropped max positions on
            # a shallow copy: decode must never mutate a (possibly
            # shared) container, so the original streams stay untouched.
            elems = pt.stream("elements")
            kept = unpack_bits(elems.data, elems.width, elems.count)
            full = np.insert(kept, rows * (k - 1) + idx, 0)
            tmp = PackedTensor(format_name=pt.format_name,
                               fingerprint=pt.fingerprint, op=pt.op,
                               shape=pt.shape, axis=pt.axis,
                               group_size=pt.group_size,
                               streams=dict(pt.streams), extra=pt.extra)
            tmp.streams["elements"] = Stream(
                "elements", pack_bits(full, elems.width).tobytes(),
                elems.width, full.size)
            dq = inner_codec.decode(fmt.inner, tmp)
        else:
            dq = inner_codec.decode(fmt.inner, pt)
        max_codes = unpack_bits(pt.stream("max_val").data, 16, n)
        maxv = _element_values(FP16, max_codes)
        quant, view = to_groups(dq, k, axis=pt.axis)
        quant[rows, idx] = maxv
        return from_groups(quant, view)


class ElemEMCodec(Codec):
    """Elem-EM: FP4 codes + E8M0 exponents + 2-bit top-k metadata."""

    code_streams = ("elements", "scales", "meta")

    def encode_into(self, fmt, x, pt):
        groups, _ = to_groups(x, fmt.group_size, axis=pt.axis)
        enc = elem_em_encode(groups, fmt.sub_size, fmt.top_k, fmt.scale_rule)
        codes = (enc.sign_codes << 3) | enc.mag_codes
        pt.add_stream("elements", pack_bits(codes.reshape(-1), 4), 4, codes.size)
        pt.add_stream("scales", pack_bits(enc.scale_exponents + 127, 8),
                      8, enc.scale_exponents.size)
        pt.add_stream("meta", pack_bits(enc.metadata.reshape(-1),
                                        META_BITS_PER_VALUE),
                      META_BITS_PER_VALUE, enc.metadata.size)

    def decode(self, fmt, pt):
        view = _view(pt)
        n, k = _n_groups(pt), pt.group_size
        n_sub = k // fmt.sub_size
        codes = unpack_bits(pt.stream("elements").data, 4, n * k).reshape(n, k)
        exps = unpack_bits(pt.stream("scales").data, 8, n) - 127
        meta = unpack_bits(pt.stream("meta").data, META_BITS_PER_VALUE,
                           n * n_sub * fmt.top_k).reshape(n, n_sub, fmt.top_k)
        enc = ElemEMEncoding(sign_codes=codes >> 3, mag_codes=codes & 0x7,
                             scale_exponents=exps, metadata=meta,
                             sub_size=fmt.sub_size, top_k=fmt.top_k)
        return from_groups(elem_em_decode(enc), view)


class SgEMCodec(Codec):
    """Sg-EM: FP4 codes + stored (bias-folded) exponents + 2-bit sg codes."""

    code_streams = ("elements", "scales", "meta")

    def encode_into(self, fmt, x, pt):
        groups, _ = to_groups(x, fmt.group_size, axis=pt.axis)
        enc = sg_em_encode(groups, fmt.sub_size, fmt.adaptive, fmt.scale_rule)
        codes = (enc.sign_codes << 3) | enc.mag_codes
        pt.add_stream("elements", pack_bits(codes.reshape(-1), 4), 4, codes.size)
        pt.add_stream("scales", pack_bits(enc.scale_exponents + 127, 8),
                      8, enc.scale_exponents.size)
        pt.add_stream("meta", pack_bits(enc.sg_codes.reshape(-1), 2),
                      2, enc.sg_codes.size)

    def decode(self, fmt, pt):
        view = _view(pt)
        n, k = _n_groups(pt), pt.group_size
        n_sub = k // fmt.sub_size
        codes = unpack_bits(pt.stream("elements").data, 4, n * k).reshape(n, k)
        exps = unpack_bits(pt.stream("scales").data, 8, n) - 127
        sg = unpack_bits(pt.stream("meta").data, 2, n * n_sub).reshape(n, n_sub)
        enc = SgEMEncoding(sign_codes=codes >> 3, mag_codes=codes & 0x7,
                           scale_exponents=exps, sg_codes=sg,
                           sub_size=fmt.sub_size)
        return from_groups(sg_em_decode(enc), view)


class SgEECodec(Codec):
    """Sg-EE: FP4 codes + exponents + per-subgroup decrement codes."""

    code_streams = ("elements", "scales", "meta")

    def encode_into(self, fmt, x, pt):
        groups, _ = to_groups(x, fmt.group_size, axis=pt.axis)
        enc = sg_ee_encode(groups, fmt.sub_size, fmt.meta_bits, fmt.adaptive,
                           fmt.scale_rule)
        codes = (enc.sign_codes << 3) | enc.mag_codes
        pt.add_stream("elements", pack_bits(codes.reshape(-1), 4), 4, codes.size)
        pt.add_stream("scales", pack_bits(enc.scale_exponents + 127, 8),
                      8, enc.scale_exponents.size)
        pt.add_stream("meta", pack_bits(enc.sg_decrements.reshape(-1),
                                        fmt.meta_bits),
                      fmt.meta_bits, enc.sg_decrements.size)

    def decode(self, fmt, pt):
        view = _view(pt)
        n, k = _n_groups(pt), pt.group_size
        n_sub = k // fmt.sub_size
        codes = unpack_bits(pt.stream("elements").data, 4, n * k).reshape(n, k)
        exps = unpack_bits(pt.stream("scales").data, 8, n) - 127
        decs = unpack_bits(pt.stream("meta").data, fmt.meta_bits,
                           n * n_sub).reshape(n, n_sub)
        enc = SgEEEncoding(sign_codes=codes >> 3, mag_codes=codes & 0x7,
                           scale_exponents=exps, sg_decrements=decs,
                           sub_size=fmt.sub_size, meta_bits=fmt.meta_bits)
        return from_groups(sg_ee_decode(enc), view)


class ElemEECodec(Codec):
    """Elem-EE: baseline FP4 codes + per-subgroup (offset, refined-code).

    The baseline code at the top position stays in the element stream so
    the decoder can re-identify the top element by code ``argmax`` (as
    the other element-metadata decoders do); the refined magnitude code
    therefore needs its own 3-bit field — see the module docstring for
    why this exceeds the nominal metadata budget.
    """

    code_streams = ("elements", "scales", "meta", "refined")

    def encode_into(self, fmt, x, pt):
        from ..mx.scale_rules import shared_scale_exponent
        groups, _ = to_groups(x, fmt.group_size, axis=pt.axis)
        n, k = groups.shape
        n_sub = k // fmt.sub_size
        o_max = (1 << fmt.meta_bits) - 1
        amax = np.max(np.abs(groups), axis=1)
        exps = shared_scale_exponent(amax, FP4_E2M1, fmt.scale_rule)
        scaled = groups / np.exp2(exps.astype(np.float64))[:, None]
        sign, mag = FP4_E2M1.encode(scaled)
        codes = (sign << 3) | mag
        mag_sub = mag.reshape(n, n_sub, fmt.sub_size)
        top_idx = np.argmax(mag_sub, axis=2)[:, :, None]
        top_val = np.take_along_axis(scaled.reshape(n, n_sub, fmt.sub_size),
                                     top_idx, axis=2)[:, :, 0]
        # The offset search is shared with the format's own kernel path
        # (first-strict-improvement semantics), not re-derived here.
        ref_codes, _, pick = elem_ee_select(top_val, o_max, FP4_E2M1)
        refined = np.take_along_axis(ref_codes, pick[..., None], axis=-1)[..., 0]
        pt.add_stream("elements", pack_bits(codes.reshape(-1), 4), 4, codes.size)
        pt.add_stream("scales", pack_bits(exps + 127, 8), 8, exps.size)
        pt.add_stream("meta", pack_bits(pick.reshape(-1), fmt.meta_bits),
                      fmt.meta_bits, pick.size)
        pt.add_stream("refined", pack_bits(refined.reshape(-1), 3),
                      3, refined.size)

    def decode(self, fmt, pt):
        view = _view(pt)
        n, k = _n_groups(pt), pt.group_size
        n_sub = k // fmt.sub_size
        codes = unpack_bits(pt.stream("elements").data, 4, n * k).reshape(n, k)
        scales = _get_exponent_scales(pt, "scales", n)
        pick = unpack_bits(pt.stream("meta").data, fmt.meta_bits,
                           n * n_sub).reshape(n, n_sub)
        refined = unpack_bits(pt.stream("refined").data, 3,
                              n * n_sub).reshape(n, n_sub)
        sign, mag = codes >> 3, codes & 0x7
        dq = FP4_E2M1.decode(sign, mag)
        mag_sub = mag.reshape(n, n_sub, fmt.sub_size)
        top_idx = np.argmax(mag_sub, axis=2)[:, :, None]
        top_sign = np.take_along_axis(sign.reshape(n, n_sub, fmt.sub_size),
                                      top_idx, axis=2)[:, :, 0]
        best = FP4_E2M1.grid[refined] * np.exp2(pick.astype(np.float64))
        best = np.where(top_sign != 0, -best, best)
        out = dq.reshape(n, n_sub, fmt.sub_size).copy()
        np.put_along_axis(out, top_idx, best[:, :, None], axis=2)
        return from_groups(out.reshape(n, k) * scales[:, None], view)


class M2XFPCodec(Codec):
    """M2XFP: Sg-EM streams for weights, Elem-EM streams for activations."""

    def _delegate(self, fmt, pt):
        if pt.op == "weight":
            return SgEMCodec(), fmt.weight_format
        return ElemEMCodec(), fmt.activation_format

    def encode_into(self, fmt, x, pt):
        codec, sub_fmt = self._delegate(fmt, pt)
        codec.encode_into(sub_fmt, x, pt)

    def code_layout(self, fmt, pt):
        return self._delegate(fmt, pt)[0].code_layout(fmt, pt)

    def encode_from_codes(self, fmt, cs, pt):
        codec, sub_fmt = self._delegate(fmt, pt)
        codec.encode_from_codes(sub_fmt, cs, pt)

    def decode(self, fmt, pt):
        codec, sub_fmt = self._delegate(fmt, pt)
        return codec.decode(sub_fmt, pt)


class M2NVFP4Codec(Codec):
    """M2-NVFP4: the NVFP4 two-level scales plus M2XFP metadata streams."""

    def _scales_for_encode(self, fmt, groups, pt) -> np.ndarray:
        raw = _nvfp4_put_scales(fmt.base.element, fmt.base.scale_format,
                                groups, pt)
        if raw is None:     # zero tensor: base.quantize_detailed says ones
            return np.ones(groups.shape[0])
        return np.where(raw > 0, raw, 1.0)

    def _scales_for_decode(self, fmt, pt, n) -> np.ndarray:
        raw = _nvfp4_get_scales(fmt.base.scale_format, pt, n)
        if raw is None:
            return np.ones(n)
        return np.where(raw > 0, raw, 1.0)

    def encode_into(self, fmt, x, pt):
        groups, _ = to_groups(x, fmt.group_size, axis=pt.axis)
        scales = self._scales_for_encode(fmt, groups, pt)
        n, k = groups.shape
        n_sub = k // fmt.sub_size
        if pt.op == "weight":
            subs = groups.reshape(n, n_sub, fmt.sub_size)
            biases = (0.5, 1.0, 2.0) if fmt.adaptive else (1.0,)
            mult = np.asarray(SG_EM_MULTIPLIERS)
            cand = ((scales[:, None] * np.asarray(biases))[:, :, None]
                    * mult).reshape(n, -1)
            codes, err = candidate_search(subs, cand, FP4_E2M1.grid,
                                          FP4_E2M1.boundaries)
            outer, inner, invalid = hierarchical_select(
                err, len(biases), len(mult), fallback_outer=biases.index(1.0))
            if invalid.any():
                raise CodecError("M2-NVFP4 weight search produced an invalid "
                                 "group; inputs must be finite")
            mag = gather_candidate_codes(codes, outer, inner, len(mult))
            sign = np.signbit(subs).astype(np.int64)
            elem = (sign << 3) | mag.reshape(n, n_sub, fmt.sub_size)
            pt.add_stream("elements", pack_bits(elem.reshape(-1), 4),
                          4, elem.size)
            pt.add_stream("meta", pack_bits(inner.reshape(-1), 2), 2, inner.size)
            pt.add_stream("bias", pack_bits(outer, 2), 2, outer.size)
        else:
            scaled = groups / scales[:, None]
            sign, mag = FP4_E2M1.encode(scaled)
            elem = (sign << 3) | mag
            mag_sub = mag.reshape(n, n_sub, fmt.sub_size)
            top_idx = np.argmax(mag_sub, axis=2)[:, :, None]
            abs_sub = np.abs(scaled).reshape(n, n_sub, fmt.sub_size)
            top_abs = np.take_along_axis(abs_sub, top_idx, axis=2)
            fp6 = quantize_to_grid(top_abs, FP6_E2M3.grid)
            fp4_top = np.take_along_axis(mag_sub, top_idx, axis=2)
            lo = fp4_top << META_BITS_PER_VALUE
            meta = (np.clip(fp6 + 1, lo, lo + 3) - lo)[:, :, 0]
            pt.add_stream("elements", pack_bits(elem.reshape(-1), 4),
                          4, elem.size)
            pt.add_stream("meta", pack_bits(meta.reshape(-1), 2), 2, meta.size)

    def decode(self, fmt, pt):
        view = _view(pt)
        n, k = _n_groups(pt), pt.group_size
        n_sub = k // fmt.sub_size
        scales = self._scales_for_decode(fmt, pt, n)
        codes = unpack_bits(pt.stream("elements").data, 4, n * k)
        sign, mag = codes >> 3, codes & 0x7
        if pt.op == "weight":
            biases = (0.5, 1.0, 2.0) if fmt.adaptive else (1.0,)
            mult = np.asarray(SG_EM_MULTIPLIERS)
            cand = ((scales[:, None] * np.asarray(biases))[:, :, None]
                    * mult).reshape(n, -1)
            inner = unpack_bits(pt.stream("meta").data, 2,
                                n * n_sub).reshape(n, n_sub)
            outer = unpack_bits(pt.stream("bias").data, 2, n)
            s_sel = np.take_along_axis(
                cand, outer[:, None] * len(SG_EM_MULTIPLIERS) + inner, axis=1)
            q = FP4_E2M1.grid[mag.reshape(n, n_sub, fmt.sub_size)]
            signs = sign.reshape(n, n_sub, fmt.sub_size)
            dq = np.where(signs != 0, -q, q) * s_sel[:, :, None]
            return from_groups(dq.reshape(n, k), view)
        meta = unpack_bits(pt.stream("meta").data, 2,
                           n * n_sub).reshape(n, n_sub)
        dq = FP4_E2M1.decode(sign, mag).reshape(n, k)
        mag_sub = mag.reshape(n, n_sub, fmt.sub_size)
        top_idx = np.argmax(mag_sub, axis=2)[:, :, None]
        fp4_top = np.take_along_axis(mag_sub, top_idx, axis=2)[:, :, 0]
        lo = fp4_top << META_BITS_PER_VALUE
        decoded = np.clip((lo | meta) - 1, 0, FP6_E2M3.code_count - 1)
        refined = FP6_E2M3.grid[decoded]
        sign_sub = sign.reshape(n, n_sub, fmt.sub_size)
        top_sign = np.take_along_axis(sign_sub, top_idx, axis=2)[:, :, 0]
        signed = np.where(top_sign != 0, -refined, refined)
        out = dq.reshape(n, n_sub, fmt.sub_size).copy()
        np.put_along_axis(out, top_idx, signed[:, :, None], axis=2)
        return from_groups(out.reshape(n, k) * scales[:, None], view)


# ----------------------------------------------------------------------
# Registry and the public API
# ----------------------------------------------------------------------
#: Most-derived first: the first isinstance match wins.
_CODECS: tuple[tuple[type, Codec], ...] = (
    (MaxPreserving, MaxPreserveCodec()),
    (M2XFP, M2XFPCodec()),
    (M2NVFP4, M2NVFP4Codec()),
    (NVFP4, NVFP4Codec()),
    (ElemEM, ElemEMCodec()),
    (ElemEE, ElemEECodec()),
    (SgEM, SgEMCodec()),
    (SgEE, SgEECodec()),
    (SMX, SMXCodec()),
    (MSFP, MSFPCodec()),
    (GroupFP4, GroupFP4Codec()),
    (BlockFormat, BlockCodec()),
    (Fp16Format, Fp16Codec()),
)


def codec_for(fmt) -> Codec:
    """The codec handling ``fmt``, or :class:`CodecError` if none does."""
    for cls, codec in _CODECS:
        if isinstance(fmt, cls):
            return codec
    raise CodecError(f"no codec registered for {type(fmt).__name__}")


def supports(fmt) -> bool:
    """Whether :func:`encode` can serialize this format."""
    try:
        codec_for(fmt)
        return True
    except CodecError:
        return False


_NAME_BY_REPR: dict[str, str] = {}


def _catalog_name(fmt) -> str:
    """Catalog name whose factory builds a format configured like ``fmt``."""
    if not _NAME_BY_REPR:
        from ..runner.formats import FORMAT_REGISTRY
        for name, factory in FORMAT_REGISTRY.items():
            _NAME_BY_REPR[repr(factory())] = name
    return _NAME_BY_REPR.get(repr(fmt), "")


def _dispatch_quantize(fmt, x, op: str, axis: int) -> np.ndarray:
    return (fmt.quantize_weight(x, axis=axis) if op == "weight"
            else fmt.quantize_activation(x, axis=axis))


def encode(fmt, x: np.ndarray, op: str = "activation", axis: int = -1,
           verify: bool = False, **kwargs) -> PackedTensor:
    """Serialize ``x`` under ``fmt`` into a :class:`PackedTensor`.

    ``op`` selects the operand path (hybrid formats quantize weights and
    activations differently). ``verify=True`` decodes the fresh container
    and cross-checks it bit-for-bit against the format's own quantize
    output — cheap insurance when integrating a new format. Extra
    ``kwargs`` go to the codec (e.g. NVFP4's calibrated ``tensor_amax``).

    When a compiled plan with a code-space sibling exists for
    ``(fmt, op, shape, axis)`` and ``REPRO_NO_FUSED_PACK`` is unset, the
    container is packed straight from the executor's integer codes — no
    dequantize/re-derive round trip, byte-identical output — and
    ``verify=True`` degrades from re-quantizing everything to an
    O(bytes) cross-check: each packed stream is unpacked and compared
    against the executor's code arrays, catching bitstream truncation
    and round-trip bugs without ever materializing floats (the
    code-vs-float parity itself is pinned statically by
    ``tests/test_fused_pack.py``).
    """
    if op not in _OPS:
        raise CodecError(f"op must be one of {_OPS}, got {op!r}")
    x = np.asarray(x, dtype=np.float64)
    axis = axis % x.ndim if x.ndim else 0
    codec = codec_for(fmt)
    pt = PackedTensor(format_name=_catalog_name(fmt), fingerprint=repr(fmt),
                      op=op, shape=x.shape, axis=axis,
                      group_size=int(getattr(fmt, "group_size", 1)))
    sink = getattr(_STAGE_SINK, "stats", None)
    tr = _obs.current_trace()
    run_codes = None
    if not kwargs and fused_pack_enabled() \
            and codec.code_layout(fmt, pt) is not None:
        from ..plan.cache import lookup_plan
        plan = lookup_plan(fmt, op, x, axis)
        if plan is not None and plan.run_codes is not None:
            run_codes = plan.run_codes
    if _obs.metrics_enabled():
        with _ENCODE_TOTALS_LOCK:
            _ENCODE_TOTALS["encodes"] += 1
            _ENCODE_TOTALS["fused_encodes"] += run_codes is not None
    if sink is not None:
        sink["encodes"] += 1
        sink["fused_encodes"] += run_codes is not None
    timed = sink is not None or tr is not None

    def _mark(stage: str, t0: float) -> float:
        """Close one stage: feed the sink counter and the trace span."""
        t1 = time.perf_counter()
        if sink is not None:
            sink[stage + "_s"] += t1 - t0
        if tr is not None:
            tr.add_span(stage, t0, t1)
        return t1

    if timed:
        t0 = time.perf_counter()
    if run_codes is not None:
        cs = run_codes(x)
        if timed:
            t0 = _mark("quantize", t0)
        codec.encode_from_codes(fmt, cs, pt)
        if timed:
            t0 = _mark("pack", t0)
        if verify:
            for s in cs.streams:
                stored = pt.stream(s.name)
                back = unpack_bits(stored.data, stored.width, stored.count)
                if not np.array_equal(back,
                                      np.asarray(s.values).reshape(-1)):
                    raise CodecError(
                        f"fused pack round-trip mismatch for {fmt!r} "
                        f"({op}), stream {s.name!r}")
            if timed:
                _mark("verify", t0)
        return pt
    codec.encode_into(fmt, x, pt, **kwargs)
    if timed:
        t0 = _mark("quantize", t0)
    if verify:
        expect = _dispatch_quantize(fmt, x, op, axis)
        got = codec.decode(fmt, pt)
        if got.tobytes() != np.asarray(expect, dtype=np.float64).tobytes():
            raise CodecError(f"round-trip mismatch for {fmt!r} ({op})")
        if timed:
            _mark("verify", t0)
    return pt


def decode(packed: PackedTensor | bytes, fmt=None) -> np.ndarray:
    """Reconstruct the dequantized tensor from a container (or its bytes).

    Without ``fmt`` the format is rebuilt from the header's catalog name
    and checked against the stored fingerprint; pass ``fmt`` explicitly
    for non-catalog configurations.
    """
    if isinstance(packed, (bytes, bytearray, memoryview)):
        packed = PackedTensor.from_bytes(bytes(packed))
    if fmt is None:
        if not packed.format_name:
            raise CodecError("container has no catalog format name; pass the "
                             "format instance to decode() explicitly")
        from ..runner.formats import make_format
        fmt = make_format(packed.format_name)
    if repr(fmt) != packed.fingerprint:
        raise CodecError(f"format fingerprint mismatch: container was packed "
                         f"with {packed.fingerprint}, decoding with {fmt!r}")
    return codec_for(fmt).decode(fmt, packed)
