"""Compiled quantization plans.

A :class:`QuantPlan` is a reusable program compiled once per
``(format fingerprint, dispatch mode, op, axis, shape signature)`` that
holds everything a quantize call otherwise re-derives per invocation:
group/pad reshape geometry, boundary and bisected-threshold arrays,
candidate scale grids for the adaptive searches, and resolved
dispatch/env state — the hot path performs no ``os.environ`` reads and
no lazy imports. Plans are bit-identical to the legacy kernel-dispatched
paths by construction and by test (``tests/test_plan.py``, the golden
vectors, and the kernel parity matrix).

Entry points: ``TensorFormat.quantize_weight`` /
``quantize_activation`` consult :func:`lookup_plan` transparently, so
`QuantizedLM`, `QuantService` and the evaluation engine all ride the
cache; ``REPRO_NO_PLANS=1`` restores the legacy paths globally.

Example::

    from repro.plan import get_plan
    from repro.core import ElemEM

    fmt = ElemEM()
    plan = get_plan(fmt, "activation", x.shape, axis=-1)
    for step in range(1000):          # amortized: no per-call re-derivation
        out = plan.run(x)
    assert (out == fmt.quantize_activation(x, axis=-1)).all()
"""

from .cache import (MAX_PLANS, PLANS_ENV, QuantPlan, clear_plan_cache,
                    get_plan, lookup_plan, plan_cache_stats, plans_enabled)
from .codespace import CodeSpaceResult, CodeStream
from .geometry import GroupGeometry

__all__ = ["QuantPlan", "GroupGeometry", "CodeSpaceResult", "CodeStream",
           "PLANS_ENV", "MAX_PLANS",
           "plans_enabled", "get_plan", "lookup_plan", "clear_plan_cache",
           "plan_cache_stats"]
