"""Fused primitives shared by the compiled plan executors.

Everything here is bit-exact by construction against the corresponding
reference formulation (the argument is given per function); the plan
parity tests in ``tests/test_plan.py`` re-assert each equivalence over
adversarial tensors rather than trusting the proofs.

Two library-wide facts carry most of the speed:

* dividing by a power of two equals multiplying by its (exactly
  representable) reciprocal, bit for bit, for every float64 input —
  both are single correctly-rounded operations on the same real value.
  Shared MX scales are powers of two, so every ``groups / scale`` on a
  hot path becomes one multiply;
* FP4's eight-entry grid makes both the encode (seven vectorized
  compares accumulated into an int8 counter, replacing a per-element
  binary search) and the decode (three int8 arithmetic ops instead of a
  gather) cheap enough that the grid search stops dominating.
"""

from __future__ import annotations

import numpy as np

from ..errors import FormatError
from ..formats.registry import FP4_E2M1, FP6_E2M3

__all__ = ["tree_amax", "validate_amax", "cmp_accumulate", "fp4_codes",
           "fp4_half_ints",
           "fp4_half_values", "small_grid_encoder", "subgroup_top1",
           "fp6_window_codes", "fp6_window_refine"]

#: The boundary array of the standard FP4 E2M1 grid (seven entries).
_FP4_BOUNDS = FP4_E2M1.boundaries

#: FP6 E2M3 boundaries with a -inf sentinel in front, so the Elem-EM
#: clamp window can be gathered at ``lo - 1`` without branching.
_FP6_BOUNDS_PAD = np.concatenate(([-np.inf], FP6_E2M3.boundaries))


def tree_amax(a: np.ndarray) -> np.ndarray:
    """Rowwise max of a 2-D array by pairwise folding.

    Equals ``a.max(axis=1)`` bit for bit — ``max`` is exact and
    commutative, and ``np.maximum`` propagates NaN exactly like the
    reduction — but runs as a handful of full-width vector ops instead
    of one short reduction per row. The overlapping split handles odd
    widths (duplicated elements cannot change a max).
    """
    w = a.shape[1]
    if w == 0:
        return np.full(a.shape[0], -np.inf)
    while w > 1:
        h = (w + 1) // 2
        a = np.maximum(a[:, :h], a[:, w - h:w])
        w = h
    return a[:, 0]


def validate_amax(amax: np.ndarray) -> None:
    """The ``to_groups`` finiteness contract, checked on group maxima.

    ``amax`` must be per-group maxima of absolute values: any NaN or
    ±Inf element forces its group's maximum to NaN/Inf, so this check
    accepts and rejects exactly the tensors ``to_groups`` does — at
    ``1/group_size`` the cost. The error matches to the message so
    callers cannot tell the paths apart.
    """
    if not np.isfinite(amax).all():
        raise FormatError("non-finite values (nan/inf) cannot be "
                          "group-quantized")


def cmp_accumulate(ax: np.ndarray, cutoffs: np.ndarray,
                   inclusive: bool) -> np.ndarray:
    """Count cutoffs below ``ax`` into an int8 code array.

    One vectorized compare per cutoff, accumulated in int8 — the shared
    implementation behind every small-grid encode in the plan layer.
    ``inclusive=False`` counts ``cutoff < ax`` (RTNE boundary semantics,
    equal to ``searchsorted(..., side="left")``); ``inclusive=True``
    counts ``cutoff <= ax`` (bisected-threshold semantics, equal to
    ``side="right")``.
    """
    op = np.greater_equal if inclusive else np.greater
    c = op(ax, cutoffs[0]).view(np.int8).copy()
    for cut in cutoffs[1:]:
        c += op(ax, cut).view(np.int8)
    return c


def fp4_codes(ax: np.ndarray) -> np.ndarray:
    """FP4 magnitude codes of non-negative ``ax``, as int8.

    Seven ``>`` passes accumulated into an int8 counter compute the
    same count-of-boundaries-below as the boundary ``searchsorted``
    (``side="left"``), several times faster on the small grid.
    """
    return cmp_accumulate(ax, _FP4_BOUNDS, inclusive=False)


def fp4_half_ints(codes: np.ndarray) -> np.ndarray:
    """``2 * FP4_grid[codes]`` as int8, without a gather.

    The doubled FP4 grid is the integer sequence
    ``[0, 1, 2, 3, 4, 6, 8, 12]``, which is ``c + relu(c - 4) +
    2 * relu(c - 6)`` — three int8 ops. Callers fold the ``/2`` into
    the scale (``value * s`` becomes ``half_value * (s / 2)``, the same
    single rounding since ``s / 2`` is exact for every
    power-of-two-times-small-mantissa scale).
    """
    t = np.maximum(codes, 4)
    t -= 4
    v2 = codes + t
    t = np.maximum(codes, 6)
    t -= 6
    t += t
    v2 += t
    return v2


def fp4_half_values(codes: np.ndarray) -> np.ndarray:
    """:func:`fp4_half_ints` converted to float64."""
    return fp4_half_ints(codes).astype(np.float64)


def small_grid_encoder(grid: np.ndarray):
    """Compile a compare-accumulate encoder for an arbitrary small grid.

    Returns ``encode(ax) -> int8 codes`` matching the fast
    ``quantize_to_grid`` dispatch for non-negative magnitudes: exact
    RTNE boundaries with strict ``>`` when the grid qualifies, bisected
    decision thresholds with ``>=`` otherwise (see
    :mod:`repro.kernels.lut`). Both count the same reference codes.
    """
    from ..kernels.lut import cached_boundaries, cached_thresholds

    bounds = cached_boundaries(grid)
    if bounds is not None:
        return lambda ax: cmp_accumulate(ax, bounds, inclusive=False)
    thresholds = cached_thresholds(grid)
    return lambda ax: cmp_accumulate(ax, thresholds, inclusive=True)


def subgroup_top1(codes_sub: np.ndarray) -> np.ndarray:
    """First-max index per subgroup of int8 codes, via a composite key.

    ``codes_sub`` is ``(n, n_sub, S)`` with codes in ``[0, 7]``. Packing
    ``(code << bits) | (S' - 1 - position)`` into one integer makes a
    plain elementwise max reproduce ``np.argmax``'s first-maximum tie
    rule: equal codes are ordered by descending position complement,
    i.e. ascending position. A handful of folds replaces the short-axis
    ``argmax`` reduction.
    """
    n, n_sub, s = codes_sub.shape
    bits = max(1, (s - 1).bit_length())
    span = 1 << bits
    dtype = np.int8 if (8 << bits) <= 127 else np.int16
    pos = np.arange(s, dtype=dtype)
    key = np.left_shift(codes_sub.astype(dtype, copy=False), bits)
    key += (span - 1) - pos
    w = s
    while w > 1:
        h = (w + 1) // 2
        key = np.maximum(key[..., :h], key[..., w - h:w])
        w = h
    best = key[..., 0]
    return ((span - 1) - (best & (span - 1))).astype(np.int64)


def fp6_window_codes(top_abs: np.ndarray,
                     top_codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Elem-EM's FP6 bias-clamp refinement, reduced to a 3-wide window.

    Implements ``clip(clip(fp6_code + 1, lo, lo + 3) - 1, 0, 63)`` for
    ``lo = fp4_code << 2`` without the full FP6 grid search: the clamp
    makes only the three FP6 boundaries at ``lo - 1 .. lo + 1`` matter,
    so the refined code is ``lo - 1 +`` the count of those boundaries
    below the value (a ``-inf`` sentinel covers ``lo = 0``). That count
    is also exactly the 2-bit wire metadata the codec derives as
    ``clip(fp6_code + 1, lo, lo + 3) - lo``: both equal the number of
    the window's boundaries the value exceeds (for ``lo = 0`` the
    sentinel contributes the same fixed 1 the clamp floor does).

    Returns ``(meta, refined2)``: the metadata counts in ``[0, 3]`` and
    the doubled refined magnitudes (exact — the FP6 grid is dyadic), to
    be scaled by ``s / 2`` like :func:`fp4_half_values` output.
    """
    lo = top_codes << 2
    meta = (top_abs > _FP6_BOUNDS_PAD[lo]).view(np.int8).astype(np.int64)
    meta += (top_abs > _FP6_BOUNDS_PAD[lo + 1]).view(np.int8)
    meta += (top_abs > _FP6_BOUNDS_PAD[lo + 2]).view(np.int8)
    return meta, FP6_E2M3.grid[lo + (meta - 1)] * 2.0


def fp6_window_refine(top_abs: np.ndarray, top_codes: np.ndarray) -> np.ndarray:
    """The doubled refined magnitudes of :func:`fp6_window_codes` alone."""
    return fp6_window_codes(top_abs, top_codes)[1]
