"""Per-format-family plan compilers.

Each compiler takes ``(fmt, op, geometry)`` and returns a fused
``run(x) -> dequantized`` closure — or ``None`` when the configuration
is out of its scope (the cache then records "no plan" and the entry
point stays on the legacy path). Closures capture everything the legacy
path re-derives per call: reshape geometry, boundary/threshold arrays,
candidate scale grids, subgroup index bases, resolved element kinds.
They perform *exactly* the reference arithmetic (same single-rounding
operations, same comparison and tie order, same trailing-axis
reductions), so their outputs are bit-identical to the kernel-dispatched
legacy paths — asserted format-by-format in ``tests/test_plan.py`` and
by the golden-vector conformance suite.

The families with a matching codec stream layout additionally compile a
``run_codes(x) -> CodeSpaceResult`` sibling: the same search, but
returning the element/scale/metadata *codes* the codec would re-derive
from floats, in the codec's stream order, with the dequantized tensor
left lazy (see :mod:`repro.plan.codespace` and DESIGN.md §11). The
codec's fused ``encode`` path packs these arrays directly.

Registered families (exact instance type):

* ``BlockFormat`` — MXFP4/6/8, MXINT8: fused scale + element encode.
* ``MXAnt`` / ``MXMAnt`` — per-group adaptive-type candidate loops
  (no code-space sibling: the codec has no per-group-type layout).
* ``SgEM`` — the Sg-EM (bias x multiplier) search, running-best form.
* ``SgEE`` — fixed decrements and the adaptive (bias x decrement) search.
* ``ElemEM`` (top-1) / ``ElemEE`` — fused top-element refinement.
* ``M2XFP`` — delegates to the operand-path formats above.
"""

from __future__ import annotations

import numpy as np

from ..algos.ant import ANT_TYPES, MXAnt
from ..algos.mant import MANT_TYPES, MXMAnt
from ..core.elem_em import META_BITS_PER_VALUE, ElemEM
from ..core.elem_ee import ElemEE
from ..core.m2xfp import M2XFP
from ..core.sg_em import ADAPTIVE_BIASES, SG_EM_MULTIPLIERS, SgEM
from ..core.sg_ee import SgEE, _fixed_decrements
from ..formats.e8m0 import clamp_exponent
from ..formats.floatspec import FloatSpec
from ..formats.intspec import GridSpec, IntSpec
from ..formats.registry import FP4_E2M1
from ..kernels.elem import elem_ee_select
from ..kernels.search import (candidate_search, gather_candidate_codes,
                              hierarchical_select)
from ..mx.base import BlockFormat
from ..mx.scale_rules import shared_scale_exponent
from .codespace import CodeSpaceResult, CodeStream
from .geometry import GroupGeometry
from .ops import (fp4_codes, fp4_half_ints, fp6_window_codes,
                  small_grid_encoder, subgroup_top1, tree_amax, validate_amax)

__all__ = ["EXECUTOR_COMPILERS", "compile_executor"]


def _exp2(e: np.ndarray) -> np.ndarray:
    """``2**e`` for integer exponent arrays (always exact)."""
    return np.exp2(e.astype(np.float64))


# ----------------------------------------------------------------------
# BlockFormat: plain group-wise element quantization
# ----------------------------------------------------------------------
def _compile_block(fmt: BlockFormat, op: str, geom: GroupGeometry):
    elem, rule = fmt.element, fmt.scale_rule

    if isinstance(elem, FloatSpec) and elem is FP4_E2M1:
        def run(x: np.ndarray) -> np.ndarray:
            groups = geom.pack(x)
            ax = np.abs(groups)
            amax = tree_amax(ax)
            validate_amax(amax)
            e = shared_scale_exponent(amax, elem, rule)
            ax *= _exp2(-e)[:, None]
            v = fp4_half_ints(fp4_codes(ax)).astype(np.float64)
            v *= _exp2(e - 1)[:, None]
            return geom.unpack(np.copysign(v, groups))

        def run_codes(x: np.ndarray) -> CodeSpaceResult:
            groups = geom.pack(x)
            ax = np.abs(groups)
            amax = tree_amax(ax)
            validate_amax(amax)
            e = shared_scale_exponent(amax, elem, rule)
            ax *= _exp2(-e)[:, None]
            c = fp4_codes(ax)
            elems = np.signbit(groups).astype(np.int64) << 3
            elems |= c

            def dequantize() -> np.ndarray:
                v = fp4_half_ints(c).astype(np.float64)
                v *= _exp2(e - 1)[:, None]
                return geom.unpack(np.copysign(v, groups))
            return CodeSpaceResult(
                (CodeStream("scales", e + 127, 8),
                 CodeStream("elements", elems, 4)), dequantize)
        return run, run_codes

    if isinstance(elem, FloatSpec) and elem.boundaries is not None:
        bounds, grid = elem.boundaries, elem.grid
        width = elem.total_bits
        mag_bits = elem.exp_bits + elem.man_bits

        def run(x: np.ndarray) -> np.ndarray:
            groups = geom.pack(x)
            ax = np.abs(groups)
            amax = tree_amax(ax)
            validate_amax(amax)
            e = shared_scale_exponent(amax, elem, rule)
            ax *= _exp2(-e)[:, None]
            v = grid[np.searchsorted(bounds, ax, side="left")]
            v *= _exp2(e)[:, None]
            return geom.unpack(np.copysign(v, groups))

        def run_codes(x: np.ndarray) -> CodeSpaceResult:
            groups = geom.pack(x)
            ax = np.abs(groups)
            amax = tree_amax(ax)
            validate_amax(amax)
            e = shared_scale_exponent(amax, elem, rule)
            ax *= _exp2(-e)[:, None]
            # The magnitude code IS the boundary count, so the same
            # searchsorted that feeds ``run``'s grid gather yields the
            # wire codes directly. (The uint64-view masked-bit-pattern
            # encode — kernels/bittwiddle.encode_packed — derives
            # identical codes from the raw float64 representation, but
            # its ~30 elementwise passes lose to the boundary cache's
            # single binary search on vectorized NumPy; it stays the
            # REPRO_BITTWIDDLE dispatch analog, parity-pinned in
            # tests/test_fused_pack.py.)
            idx = np.searchsorted(bounds, ax, side="left")
            elems = np.signbit(groups).astype(np.int64) << mag_bits
            elems |= idx

            def dequantize() -> np.ndarray:
                v = grid[idx]
                v *= _exp2(e)[:, None]
                return geom.unpack(np.copysign(v, groups))
            return CodeSpaceResult(
                (CodeStream("scales", e + 127, 8),
                 CodeStream("elements", elems, width)), dequantize)
        return run, run_codes

    if isinstance(elem, IntSpec):
        def run(x: np.ndarray) -> np.ndarray:
            groups = geom.pack(x)
            amax = tree_amax(np.abs(groups))
            validate_amax(amax)
            e = shared_scale_exponent(amax, elem, rule)
            q = elem.quantize(groups * _exp2(-e)[:, None])
            q *= _exp2(e)[:, None]
            return geom.unpack(q)

        def run_codes(x: np.ndarray) -> CodeSpaceResult:
            groups = geom.pack(x)
            amax = tree_amax(np.abs(groups))
            validate_amax(amax)
            e = shared_scale_exponent(amax, elem, rule)
            q = elem.quantize(groups * _exp2(-e)[:, None])
            elems = np.signbit(q).astype(np.int64) << (elem.bits - 1)
            elems |= np.abs(q).astype(np.int64)

            def dequantize() -> np.ndarray:
                return geom.unpack(q * _exp2(e)[:, None])
            return CodeSpaceResult(
                (CodeStream("scales", e + 127, 8),
                 CodeStream("elements", elems, elem.bits)), dequantize)
        return run, run_codes

    return None


# ----------------------------------------------------------------------
# MX-ANT / MX-M-ANT: adaptive per-group type selection
# ----------------------------------------------------------------------
def _compile_type_adaptive(fmt, op: str, geom: GroupGeometry, types):
    kernels = []
    for typ in types:
        if isinstance(typ, GridSpec):
            kernels.append((typ, small_grid_encoder(typ.grid), typ.grid))
        elif isinstance(typ, IntSpec):
            kernels.append((typ, None, None))
        else:
            return None

    def run(x: np.ndarray) -> np.ndarray:
        groups = geom.pack(x)
        n = groups.shape[0]
        amax = tree_amax(np.abs(groups))
        validate_amax(amax)
        best_err = np.full(n, np.inf)
        best_dq = np.zeros_like(groups)
        pos = amax > 0
        safe_amax = np.where(pos, amax, 1.0)
        for typ, encode, grid in kernels:
            with np.errstate(divide="ignore"):
                e = np.where(pos, np.ceil(np.log2(safe_amax / typ.max_value)),
                             0.0)
            e = np.clip(e, -127, 127)
            scaled = groups * np.exp2(-e)[:, None]
            if encode is None:
                dq = typ.quantize(scaled)
            else:
                dq = np.copysign(grid.take(encode(np.abs(scaled))), scaled)
            dq *= np.exp2(e)[:, None]
            err = np.sum((dq - groups) ** 2, axis=1)
            better = err < best_err
            best_err = np.where(better, err, best_err)
            best_dq = np.where(better[:, None], dq, best_dq)
        return geom.unpack(best_dq)
    return run


def _compile_ant(fmt: MXAnt, op: str, geom: GroupGeometry):
    return _compile_type_adaptive(fmt, op, geom, ANT_TYPES)


def _compile_mant(fmt: MXMAnt, op: str, geom: GroupGeometry):
    return _compile_type_adaptive(fmt, op, geom, MANT_TYPES)


# ----------------------------------------------------------------------
# Sg-EM / Sg-EE: subgroup metadata searches in running-best form
# ----------------------------------------------------------------------
#: Above this many candidate-elements the Sg searches switch from the
#: one-shot broadcast evaluation to the streaming per-candidate loop
#: (whose working set stays a single tensor wide).
_SG_BROADCAST_LIMIT = 1_500_000


def _bisect_threshold(r: float, bound: float) -> float:
    """Smallest float64 ``u`` with ``fl(u / r) > bound`` (bisection).

    ``u -> fl(u / r)`` is monotone and ``fl`` is exact on the probe
    values, so the flip point is a single float pinned by bit-pattern
    bisection — the same technique as
    :func:`repro.kernels.lut.compiled_thresholds`, applied to the
    division the candidate search performs.
    """
    lo = 0.0
    hi = float(np.nextafter(bound * r * 4.0, np.inf))
    while not float(np.float64(hi) / r) > bound:  # pragma: no cover
        hi *= 2.0
    lo_bits = int(np.float64(lo).view(np.uint64))
    hi_bits = int(np.float64(hi).view(np.uint64))
    while hi_bits - lo_bits > 1:
        mid_bits = (lo_bits + hi_bits) // 2
        v = float(np.uint64(mid_bits).view(np.float64))
        if float(np.float64(v) / r) > bound:
            hi_bits = mid_bits
        else:
            lo_bits = mid_bits
    return float(np.uint64(hi_bits).view(np.float64))


#: Safety floor for the u-space error equivalence: with every nonzero
#: magnitude (raw and group-normalized) at least this large and no
#: E8M0 clamping, every intermediate of the error chain is normal in
#: both spaces, so scaling by the group's power of two commutes with
#: every rounding and the u-space argmin equals the reference argmin.
_U_SPACE_MIN = 2.0 ** -400


class _SgUSpace:
    """Compile-time-scaled Sg candidate search (the small-input engine).

    Dividing the data once by ``2^(base_e - 1)`` (exact) turns every
    candidate scale ``2^(base_e + b) * m`` into the *compile-time
    scalar* ``r = 2^(b+1) * m``, so the per-candidate work collapses to
    seven compares against pre-bisected thresholds plus a scalar
    multiply — no per-group candidate arrays at all. Selection runs on
    u-space errors, which equal the reference errors times the group
    constant ``2^(2 base_e - 2)``; in the guarded regime (no E8M0
    clamping, no nonzero magnitude below ``_U_SPACE_MIN``) that scaling
    is an exact order-and-equality-preserving bijection, so the
    hierarchical argmin picks the identical candidate. Calls outside
    the guarded regime take the caller-supplied exact fallback.
    """

    def __init__(self, n_sub: int, sub: int, rule: str, biases, inner,
                 fallback, fallback_codes) -> None:
        self.n_sub, self.sub, self.rule = n_sub, sub, rule
        self.n_bias, self.n_inner = len(biases), len(inner)
        self.biases_arr = np.asarray(biases)
        self.fallback_outer = list(biases).index(0)
        self.fallback = fallback
        self.fallback_codes = fallback_codes
        bounds = FP4_E2M1.boundaries
        self.ratios = []
        thresholds = []
        for b in biases:
            for m, _ in inner:
                r = float(2.0 ** (b + 1) * m)
                self.ratios.append(r)
                thresholds.append([_bisect_threshold(r, float(bd))
                                   for bd in bounds])
        #: (n_cand * 7, 1, 1) stack for one broadcast compare per call.
        self.t_stack = np.asarray(thresholds).reshape(-1, 1, 1)
        self.half_ratios = np.asarray([r * 0.5 for r in self.ratios])

    def _eval(self, groups: np.ndarray):
        """The shared search; None when outside the guarded regime."""
        n = groups.shape[0]
        n_sub, sub = self.n_sub, self.sub
        k = n_sub * sub
        ax = np.abs(groups)
        amax = tree_amax(ax)
        validate_amax(amax)
        base_e = shared_scale_exponent(amax, FP4_E2M1, self.rule)
        if int(base_e.max(initial=0)) > 126 or \
                int(base_e.min(initial=0)) < -126 or \
                float(np.where(ax > 0.0, ax, 1.0).min(initial=1.0)) \
                < _U_SPACE_MIN:
            return None
        u = ax * _exp2(-(base_e - 1))[:, None]
        if float(np.where(u > 0.0, u, 1.0).min(initial=1.0)) < _U_SPACE_MIN:
            return None

        n_cand = self.n_bias * self.n_inner
        # One broadcast compare against all candidates' thresholds, an
        # integer reduction per 7-threshold block (order-free), then the
        # whole error chain as a handful of full-width ops.
        cmp = u.reshape(1, n, k) >= self.t_stack
        codes = np.add.reduce(
            cmp.view(np.int8).reshape(n_cand, 7, n, k), axis=1, dtype=np.int8)
        v2_all = fp4_half_ints(codes)
        qf = v2_all * self.half_ratios[:, None, None]
        qf -= u
        qf *= qf
        q4 = qf.reshape(n_cand, n, n_sub, sub)
        if sub == 8:
            # Adjacent-pair tree — the exact grouping NumPy's pairwise
            # trailing-axis sum uses for length 8 — as three adds.
            while q4.shape[-1] > 1:
                q4 = q4[..., 0::2] + q4[..., 1::2]
            esum = q4[..., 0]
        else:
            esum = q4.sum(axis=-1)
        err = np.ascontiguousarray(np.moveaxis(esum, 0, 2))

        outer, inner_idx, _ = hierarchical_select(
            err, self.n_bias, self.n_inner, fallback_outer=self.fallback_outer)
        cand_idx = (outer[:, None] * self.n_inner + inner_idx).ravel()
        return n, base_e, codes, v2_all, outer, inner_idx, cand_idx

    def __call__(self, groups: np.ndarray) -> np.ndarray:
        sel = self._eval(groups)
        if sel is None:
            return self.fallback(groups)
        n, base_e, _codes, v2_all, _outer, _inner_idx, cand_idx = sel
        n_sub, sub = self.n_sub, self.sub
        win = v2_all.reshape(-1, n * n_sub, sub)[cand_idx,
                                                 np.arange(n * n_sub)]
        s_half = self.half_ratios[cand_idx].reshape(n, n_sub) \
            * _exp2(base_e - 1)[:, None]
        dq = win.reshape(n, n_sub, sub) * s_half[:, :, None]
        return np.copysign(dq.reshape(n, n_sub * sub), groups)

    def codes(self, groups: np.ndarray):
        """Code-space twin of ``__call__``: gathers the winning magnitude
        codes instead of their half-values; dequantization stays lazy."""
        sel = self._eval(groups)
        if sel is None:
            return self.fallback_codes(groups)
        n, base_e, codes, _v2_all, outer, inner_idx, cand_idx = sel
        n_sub, sub = self.n_sub, self.sub
        k = n_sub * sub
        mag = codes.reshape(-1, n * n_sub, sub)[cand_idx,
                                                np.arange(n * n_sub)]
        elems = np.signbit(groups).astype(np.int64) << 3
        elems |= mag.reshape(n, k)
        exps = clamp_exponent(base_e + self.biases_arr[outer])
        s_half = self.half_ratios[cand_idx].reshape(n, n_sub) \
            * _exp2(base_e - 1)[:, None]

        def dequantize() -> np.ndarray:
            dq = fp4_half_ints(mag).reshape(n, n_sub, sub) \
                * s_half[:, :, None]
            return np.copysign(dq.reshape(n, k), groups)
        return elems, exps, inner_idx, dequantize


def _sg_broadcast(n_sub: int, sub: int, rule: str, biases, inner):
    """One-shot (bias x inner) candidate evaluation, small-tensor regime.

    Mirrors the ``candidate_search`` + ``hierarchical_select`` pipeline
    operation for operation — same broadcast divisions, same error
    expression, same trailing-axis sums, the selection function itself —
    with the FP4 grid gather replaced by the exact int8 half-value
    arithmetic. About 25 NumPy calls regardless of input size, which is
    what makes it several times faster than the legacy path on the
    micro-batch activations a serving front end sees.

    Returns the ``(run_groups, codes_groups)`` pair; the codes variant
    gathers the winning magnitude codes at the same indices the value
    variant gathers half-values, so both modes share one evaluation.
    """
    k = n_sub * sub
    n_inner = len(inner)
    biases_arr = np.asarray(biases)
    inner_mults = np.asarray([m for m, _ in inner])
    fallback = list(biases).index(0)

    def evaluate(groups: np.ndarray):
        n = groups.shape[0]
        ax = np.abs(groups)
        amax = tree_amax(ax)
        validate_amax(amax)
        base_e = shared_scale_exponent(amax, FP4_E2M1, rule)

        exps_all = clamp_exponent(base_e[:, None] + biases_arr)
        scales_all = np.exp2(exps_all.astype(np.float64))
        cand = (scales_all[:, :, None] * inner_mults).reshape(n, -1)
        ax4 = ax.reshape(n, n_sub, 1, sub)
        s4 = cand[:, None, :, None]
        scaled = ax4 / s4
        c = fp4_codes(scaled)
        v2 = fp4_half_ints(c)
        q = v2 * (s4 * 0.5)
        q -= ax4
        q *= q
        err = q.sum(axis=3)

        outer, inner_idx, _ = hierarchical_select(err, len(biases), n_inner,
                                                  fallback_outer=fallback)
        cand_idx = outer[:, None] * n_inner + inner_idx
        return n, c, v2, cand, exps_all, outer, inner_idx, cand_idx

    def run_groups(groups: np.ndarray) -> np.ndarray:
        n, _c, v2, cand, _exps, _outer, _inner, cand_idx = evaluate(groups)
        win = v2.reshape(n * n_sub, -1, sub)[np.arange(n * n_sub),
                                             cand_idx.ravel()]
        s_win = np.take_along_axis(cand, cand_idx, axis=1)
        dq = win.reshape(n, n_sub, sub) * (s_win * 0.5)[:, :, None]
        return np.copysign(dq.reshape(n, k), groups)

    def codes_groups(groups: np.ndarray):
        n, c, _v2, cand, exps_all, outer, inner_idx, cand_idx = \
            evaluate(groups)
        mag = c.reshape(n * n_sub, -1, sub)[np.arange(n * n_sub),
                                            cand_idx.ravel()]
        elems = np.signbit(groups).astype(np.int64) << 3
        elems |= mag.reshape(n, k)
        exps = exps_all[np.arange(n), outer]
        s_win = np.take_along_axis(cand, cand_idx, axis=1)

        def dequantize() -> np.ndarray:
            dq = fp4_half_ints(mag).reshape(n, n_sub, sub) \
                * (s_win * 0.5)[:, :, None]
            return np.copysign(dq.reshape(n, k), groups)
        return elems, exps, inner_idx, dequantize

    return run_groups, codes_groups


def _sg_search(n_sub: int, sub: int, rule: str, biases, inner):
    """Shared skeleton of the Sg-EM / Sg-EE adaptive searches.

    ``inner`` is the ordered inner-candidate spec: a list of
    ``(mult, pow2_shift)`` pairs where the candidate scale is
    ``2^e * mult`` (Sg-EM's fractional multipliers, ``pow2_shift`` None)
    or ``2^(e - d)`` (Sg-EE's decrements, ``pow2_shift = d``). Each
    candidate's scaled data is produced by the exact single-rounding
    equivalent of the reference division: a multiply by ``2^(d - e)``
    for power-of-two scales, the division itself otherwise.

    The running strict-``<`` updates reproduce the reference's
    hierarchical argmin (first minimum at both levels); groups whose
    candidates all overflow to non-finite error are re-encoded at the
    fallback (bias 0, first inner) candidate, matching
    ``hierarchical_select``'s ``invalid`` semantics.

    Returns the ``(run_groups, codes_groups)`` pair. The codes variant
    runs the same candidate grid through the chunked
    :func:`~repro.kernels.search.candidate_search` kernel (preallocated
    scratch, boundary-compare code assignment) and gathers the winning
    magnitude codes directly. Every candidate scale is a power of two
    times a small exact multiplier, so the kernel's division matches the
    streaming loop's single-rounding shortcuts bit for bit — selections,
    codes and dequantized values are identical between the two variants
    (asserted across all dispatch modes in ``tests/test_fused_pack.py``).
    """
    k = n_sub * sub
    n_inner = len(inner)
    biases_arr = np.asarray(biases)
    inner_mults = np.asarray([m for m, _ in inner])
    fallback = list(biases).index(0)

    def scaled_for(ax, t_b, e_b, scale_b, mult, shift):
        if shift is not None:
            return t_b if shift == 0 else ax * _exp2(shift - e_b)[:, None]
        return t_b if mult == 1.0 else ax / (scale_b * mult)[:, None]

    def search(groups: np.ndarray) -> np.ndarray:
        n = groups.shape[0]
        ax = np.abs(groups)
        amax = tree_amax(ax)
        validate_amax(amax)
        base_e = shared_scale_exponent(amax, FP4_E2M1, rule)
        shape_sub = (n, n_sub, sub)

        best_err = np.full(n, np.inf)
        best_v2 = np.zeros(shape_sub, dtype=np.int8)
        best_sh = np.zeros((n, n_sub))
        for bias in biases:
            e_b = clamp_exponent(base_e + bias)
            scale_b = _exp2(e_b)
            t_b = ax * _exp2(-e_b)[:, None]
            sub_err = np.full((n, n_sub), np.inf)
            sub_v2 = np.zeros(shape_sub, dtype=np.int8)
            sub_sh = np.zeros((n, n_sub))
            for mult, shift in inner:
                scaled = scaled_for(ax, t_b, e_b, scale_b, mult, shift)
                s_half = scale_b * (mult * 0.5)
                q = fp4_half_ints(fp4_codes(scaled))
                qf = q.astype(np.float64)
                qf *= s_half[:, None]
                qf -= ax
                qf *= qf
                err = qf.reshape(shape_sub).sum(axis=2)
                better = err < sub_err
                sub_err = np.where(better, err, sub_err)
                sub_v2 = np.where(better[:, :, None], q.reshape(shape_sub),
                                  sub_v2)
                sub_sh = np.where(better, s_half[:, None], sub_sh)
            group_err = sub_err.sum(axis=1)
            improved = group_err < best_err
            best_err = np.where(improved, group_err, best_err)
            best_v2 = np.where(improved[:, None, None], sub_v2, best_v2)
            best_sh = np.where(improved[:, None], sub_sh, best_sh)

        invalid = ~np.isfinite(best_err)
        if invalid.any():
            e0 = clamp_exponent(base_e[invalid] + 0)
            t0 = ax[invalid] * _exp2(-e0)[:, None]
            m0, s0 = inner[0]
            scaled0 = t0 if (s0 == 0 or m0 == 1.0) \
                else t0 / (_exp2(e0) * m0)[:, None]
            best_v2[invalid] = fp4_half_ints(fp4_codes(scaled0)) \
                .reshape(-1, n_sub, sub)
            best_sh[invalid] = (_exp2(e0) * (m0 * 0.5))[:, None]

        dq = best_v2.astype(np.float64).reshape(shape_sub)
        dq *= best_sh[:, :, None]
        return np.copysign(dq.reshape(n, k), groups)

    def search_codes(groups: np.ndarray):
        n = groups.shape[0]
        ax = np.abs(groups)
        amax = tree_amax(ax)
        validate_amax(amax)
        base_e = shared_scale_exponent(amax, FP4_E2M1, rule)
        exps_all = clamp_exponent(base_e[:, None] + biases_arr)
        cand = (_exp2(exps_all)[:, :, None] * inner_mults).reshape(n, -1)
        codes, err = candidate_search(groups.reshape(n, n_sub, sub), cand,
                                      FP4_E2M1.grid, FP4_E2M1.boundaries)
        outer, inner_idx, _ = hierarchical_select(err, len(biases), n_inner,
                                                  fallback_outer=fallback)
        mag = gather_candidate_codes(codes, outer, inner_idx, n_inner)
        elems = np.signbit(groups).astype(np.int64) << 3
        elems |= mag.reshape(n, k)
        rows = np.arange(n)
        best_e = exps_all[rows, outer]

        def dequantize() -> np.ndarray:
            # half-value x (scale / 2): the same single rounding as the
            # run variant's ``v2 * (scale_b * (mult * 0.5))``.
            s_half = cand[rows[:, None],
                          outer[:, None] * n_inner + inner_idx] * 0.5
            dq = fp4_half_ints(mag).astype(np.float64)
            dq *= s_half[:, :, None]
            return np.copysign(dq.reshape(n, k), groups)
        return elems, best_e, inner_idx, dequantize

    return search, search_codes


def _pick_sg_variant(geom: GroupGeometry, n_sub: int, sub: int, rule: str,
                     biases, inner):
    """U-space engine for small inputs, streaming loop for large ones.

    The u-space engine's rare out-of-regime calls fall back to the
    broadcast evaluation, which is exact everywhere.
    """
    cand_elems = geom.n_groups * n_sub * sub * len(biases) * len(inner)
    if cand_elems <= _SG_BROADCAST_LIMIT:
        exact_run, exact_codes = _sg_broadcast(n_sub, sub, rule, biases, inner)
        engine = _SgUSpace(n_sub, sub, rule, biases, inner,
                           fallback=exact_run, fallback_codes=exact_codes)
        return engine, engine.codes
    return _sg_search(n_sub, sub, rule, biases, inner)


def _sg_codespace(geom: GroupGeometry, search_codes, meta_width: int):
    """Wrap a Sg ``codes_groups`` closure into the codec's stream layout.

    All three Sg engines return the same ``(elems, exps, meta,
    dequantize)`` quadruple; the stream order (elements, scales, meta)
    and the ``exps + 127`` E8M0 bias match the SgEM/SgEE codecs.
    """
    def run_codes(x: np.ndarray) -> CodeSpaceResult:
        elems, exps, meta, dequantize = search_codes(geom.pack(x))
        return CodeSpaceResult(
            (CodeStream("elements", elems, 4),
             CodeStream("scales", exps + 127, 8),
             CodeStream("meta", meta, meta_width)),
            lambda: geom.unpack(dequantize()))
    return run_codes


def _compile_sg_em(fmt: SgEM, op: str, geom: GroupGeometry):
    n_sub = fmt.group_size // fmt.sub_size
    biases = list(ADAPTIVE_BIASES) if fmt.adaptive else [0]
    # Reference candidate order: bias outer (-1, 0, +1), multiplier inner.
    inner = [(m, None if m != 1.0 else 0) for m in SG_EM_MULTIPLIERS]
    search, search_codes = _pick_sg_variant(geom, n_sub, fmt.sub_size,
                                            fmt.scale_rule, biases, inner)

    def run(x: np.ndarray) -> np.ndarray:
        return geom.unpack(search(geom.pack(x)))
    return run, _sg_codespace(geom, search_codes, 2)


def _compile_sg_ee(fmt: SgEE, op: str, geom: GroupGeometry):
    n_sub = fmt.group_size // fmt.sub_size
    sub = fmt.sub_size
    d_max = (1 << fmt.meta_bits) - 1
    rule = fmt.scale_rule

    if fmt.adaptive:
        inner = [(1.0 / (1 << d), d) for d in range(d_max + 1)]
        search, search_codes = _pick_sg_variant(geom, n_sub, sub, rule,
                                                list(ADAPTIVE_BIASES), inner)

        def run(x: np.ndarray) -> np.ndarray:
            return geom.unpack(search(geom.pack(x)))
        return run, _sg_codespace(geom, search_codes, fmt.meta_bits)

    def _encode(x: np.ndarray):
        groups = geom.pack(x)
        n = groups.shape[0]
        ax = np.abs(groups)
        amax = tree_amax(ax)
        validate_amax(amax)
        e = shared_scale_exponent(amax, FP4_E2M1, rule)
        scale = _exp2(e)
        subs = groups.reshape(n, n_sub, sub)
        decs = _fixed_decrements(subs, scale, d_max)
        # local = 2^e / 2^d: power-of-two, so scaling by its reciprocal
        # is the same correctly-rounded division, bit for bit.
        axs = ax.reshape(n, n_sub, sub) * _exp2(decs - e[:, None])[:, :, None]
        return groups, n, e, decs, fp4_codes(axs)

    def run(x: np.ndarray) -> np.ndarray:
        groups, n, e, decs, c = _encode(x)
        v = fp4_half_ints(c).astype(np.float64)
        v *= _exp2(e[:, None] - decs - 1)[:, :, None]
        return geom.unpack(np.copysign(v.reshape(n, n_sub * sub), groups))

    def run_codes(x: np.ndarray) -> CodeSpaceResult:
        groups, n, e, decs, c = _encode(x)
        elems = np.signbit(groups).astype(np.int64) << 3
        elems |= c.reshape(n, n_sub * sub)

        def dequantize() -> np.ndarray:
            v = fp4_half_ints(c).astype(np.float64)
            v *= _exp2(e[:, None] - decs - 1)[:, :, None]
            return geom.unpack(np.copysign(v.reshape(n, n_sub * sub),
                                           groups))
        return CodeSpaceResult(
            (CodeStream("elements", elems, 4),
             CodeStream("scales", e + 127, 8),
             CodeStream("meta", decs, fmt.meta_bits)), dequantize)
    return run, run_codes


# ----------------------------------------------------------------------
# Elem-EM / Elem-EE: fused top-element refinement
# ----------------------------------------------------------------------
def _compile_elem_em(fmt: ElemEM, op: str, geom: GroupGeometry):
    if fmt.top_k != 1:
        return None
    sub = fmt.sub_size
    n_sub_total = geom.n_groups * (fmt.group_size // sub)
    flat_base = np.arange(n_sub_total) * sub
    rule = fmt.scale_rule

    def _encode(x: np.ndarray):
        groups = geom.pack(x)
        n, k = groups.shape
        ax = np.abs(groups)
        amax = tree_amax(ax)
        validate_amax(amax)
        e = shared_scale_exponent(amax, FP4_E2M1, rule)
        ax *= _exp2(-e)[:, None]
        c = fp4_codes(ax)
        top = subgroup_top1(c.reshape(n, k // sub, sub))
        flat = flat_base + top.ravel()
        meta, refined2 = fp6_window_codes(ax.reshape(-1)[flat],
                                          c.reshape(-1)[flat]
                                          .astype(np.int64))
        return groups, n, e, c, flat, meta, refined2

    def _finish(groups, n, e, c, flat, refined2) -> np.ndarray:
        v = fp4_half_ints(c).astype(np.float64)
        v.reshape(-1)[flat] = refined2
        v *= _exp2(e - 1)[:, None]
        np.copysign(v, groups, out=v)
        return geom.unpack(v)

    def run(x: np.ndarray) -> np.ndarray:
        groups, n, e, c, flat, _meta, refined2 = _encode(x)
        return _finish(groups, n, e, c, flat, refined2)

    def run_codes(x: np.ndarray) -> CodeSpaceResult:
        groups, n, e, c, flat, meta, refined2 = _encode(x)
        elems = np.signbit(groups).astype(np.int64) << 3
        elems |= c
        return CodeSpaceResult(
            (CodeStream("elements", elems, 4),
             CodeStream("scales", e + 127, 8),
             CodeStream("meta", meta, META_BITS_PER_VALUE)),
            lambda: _finish(groups, n, e, c, flat, refined2))
    return run, run_codes


def _compile_elem_ee(fmt: ElemEE, op: str, geom: GroupGeometry):
    sub = fmt.sub_size
    n_sub_total = geom.n_groups * (fmt.group_size // sub)
    flat_base = np.arange(n_sub_total) * sub
    o_max = (1 << fmt.meta_bits) - 1
    rule = fmt.scale_rule

    def _encode(x: np.ndarray):
        groups = geom.pack(x)
        n, k = groups.shape
        ax = np.abs(groups)
        amax = tree_amax(ax)
        validate_amax(amax)
        e = shared_scale_exponent(amax, FP4_E2M1, rule)
        ax *= _exp2(-e)[:, None]
        c = fp4_codes(ax)
        top = subgroup_top1(c.reshape(n, k // sub, sub))
        flat = flat_base + top.ravel()
        top_val = np.copysign(ax.reshape(-1)[flat],
                              np.asarray(groups).reshape(-1)[flat])
        ref_codes, cand, pick = elem_ee_select(top_val, o_max, FP4_E2M1)
        return groups, n, e, c, flat, ref_codes, cand, pick

    def _finish(groups, n, e, c, flat, cand, pick) -> np.ndarray:
        v = fp4_half_ints(c).astype(np.float64)
        best = np.take_along_axis(cand, pick[..., None], axis=-1)[..., 0]
        v.reshape(-1)[flat] = np.abs(best) * 2.0
        v *= _exp2(e - 1)[:, None]
        np.copysign(v, groups, out=v)
        return geom.unpack(v)

    def run(x: np.ndarray) -> np.ndarray:
        groups, n, e, c, flat, _ref, cand, pick = _encode(x)
        return _finish(groups, n, e, c, flat, cand, pick)

    def run_codes(x: np.ndarray) -> CodeSpaceResult:
        groups, n, e, c, flat, ref_codes, cand, pick = _encode(x)
        elems = np.signbit(groups).astype(np.int64) << 3
        elems |= c
        refined = np.take_along_axis(ref_codes, pick[..., None],
                                     axis=-1)[..., 0]
        return CodeSpaceResult(
            (CodeStream("elements", elems, 4),
             CodeStream("scales", e + 127, 8),
             CodeStream("meta", pick, fmt.meta_bits),
             CodeStream("refined", refined, 3)),
            lambda: _finish(groups, n, e, c, flat, cand, pick))
    return run, run_codes


# ----------------------------------------------------------------------
# M2XFP: delegate to the operand-path formats
# ----------------------------------------------------------------------
def _compile_m2xfp(fmt: M2XFP, op: str, geom: GroupGeometry):
    inner = fmt.weight_format if op == "weight" else fmt.activation_format
    return compile_executor(inner, op, geom)


#: Exact instance type -> compiler. Subclasses do not inherit an entry:
#: an unknown subclass may override the semantics the executor fuses.
EXECUTOR_COMPILERS = {
    BlockFormat: _compile_block,
    MXAnt: _compile_ant,
    MXMAnt: _compile_mant,
    SgEM: _compile_sg_em,
    SgEE: _compile_sg_ee,
    ElemEM: _compile_elem_em,
    ElemEE: _compile_elem_ee,
    M2XFP: _compile_m2xfp,
}


def compile_executor(fmt, op: str, geom: GroupGeometry):
    """The ``(run, run_codes)`` pair for ``fmt``/``op``.

    ``run`` is the fused dequantizing closure (or None when the
    configuration is out of scope); ``run_codes`` is the code-space
    sibling, None for the families without a codec stream layout.
    """
    compiler = EXECUTOR_COMPILERS.get(type(fmt))
    if compiler is None:
        return None, None
    compiled = compiler(fmt, op, geom)
    if compiled is None:
        return None, None
    if isinstance(compiled, tuple):
        return compiled
    return compiled, None
