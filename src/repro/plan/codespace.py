"""The code-space result contract between plan executors and the codec.

A :class:`CodeSpaceResult` is what a fused executor hands the codec
instead of (or alongside) a dequantized float64 tensor: the integer
element codes, scale codes and metadata bits, already in the exact
values and stream order the format's codec packs, so ``PackedTensor``
bytes can be written straight from code space with no intermediate
dequantize/re-derive round trip.

Ownership and materialization rules (DESIGN.md §11):

* every stream's ``values`` array is freshly allocated by the executor
  and owned by the result — the codec packs it without copying or
  mutating it, and nothing the executor later does can alias it;
* the dequantized float64 tensor is **lazy**: it is not computed until
  :attr:`CodeSpaceResult.dequantized` is first read (the ``verify=True``
  path), so an unverified fused encode never materializes floats at all;
* stream order is the codec's packing order for the family (e.g.
  ``scales, elements`` for plain block formats; ``elements, scales,
  meta[, refined]`` for the metadata-augmented families), which lets the
  codec's ``encode_from_codes`` validate the pairing structurally.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

__all__ = ["CodeStream", "CodeSpaceResult"]


class CodeStream:
    """One named integer code stream, pack-ready: non-negative values
    strictly below ``2**width``, flattened row-major when packed."""

    __slots__ = ("name", "values", "width")

    def __init__(self, name: str, values: np.ndarray, width: int) -> None:
        self.name = name
        self.values = values
        self.width = int(width)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CodeStream({self.name!r}, shape={np.shape(self.values)}, "
                f"width={self.width})")


class CodeSpaceResult:
    """Element/scale/metadata code arrays plus a lazy dequantized view.

    ``dequantize`` is a zero-argument closure producing the float64
    tensor the executor's plain ``run`` path would have returned; it is
    invoked at most once, on first access of :attr:`dequantized`.
    """

    __slots__ = ("streams", "_dequantize", "_dequantized")

    def __init__(self, streams: Iterable[CodeStream],
                 dequantize: Callable[[], np.ndarray]) -> None:
        self.streams = tuple(streams)
        self._dequantize = dequantize
        self._dequantized = None

    @property
    def dequantized(self) -> np.ndarray:
        """The dequantized float64 tensor, materialized on first read."""
        if self._dequantized is None:
            self._dequantized = self._dequantize()
        return self._dequantized

    @property
    def stream_names(self) -> tuple:
        return tuple(s.name for s in self.streams)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CodeSpaceResult(streams={self.stream_names})"
