"""Bounded, thread-safe cache of compiled quantization plans.

Plans are keyed by the full identity of the computation they compile:
the format's configuration fingerprint (``weight_cache_key`` — class
name plus every scalar attribute, recursing into nested formats), the
kernel dispatch mode, the operand path, and the exact (shape, axis)
signature. Fast, reference and bit-twiddle dispatch never share an
entry; in fact only the default fast mode compiles at all — the
reference and bit-twiddle modes are the escape hatches whose code paths
must keep running unreplaced — so their entries are negative ("no
plan") and the entry points stay on the legacy implementations.

The cache is a lock-protected LRU bounded at :data:`MAX_PLANS`
entries; negative lookups are cached too, so unplannable formats cost
one dict probe per call, not a compile attempt.

``REPRO_NO_PLANS=1`` disables the layer entirely (every lookup returns
None), which is the escape hatch — and the baseline arm of
``scripts/bench_eval.py``.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .executors import compile_executor
from .geometry import GroupGeometry

__all__ = ["QuantPlan", "PLANS_ENV", "MAX_PLANS", "plans_enabled",
           "get_plan", "lookup_plan", "clear_plan_cache", "plan_cache_stats"]

#: Environment variable disabling plan compilation ("=1" turns it off).
PLANS_ENV = "REPRO_NO_PLANS"

#: Maximum number of cached (plan or no-plan) entries.
MAX_PLANS = 512

_OPS = ("weight", "activation")


@dataclass
class QuantPlan:
    """A compiled, reusable quantization program for one call signature.

    ``run_codes`` is the fused quantize→pack sibling: the same search
    returning a :class:`~repro.plan.codespace.CodeSpaceResult` instead
    of a dequantized tensor. It is None for the families without a
    matching codec stream layout; the codec falls back to the legacy
    encode for those.
    """

    key: tuple
    run: Callable[[np.ndarray], np.ndarray]
    geometry: GroupGeometry = field(repr=False, default=None)
    run_codes: Callable | None = field(repr=False, default=None)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.run(x)


_lock = threading.Lock()
_cache: "OrderedDict[tuple, QuantPlan | None]" = OrderedDict()
_stats = {"hits": 0, "misses": 0, "compiles": 0, "evictions": 0}


def plans_enabled() -> bool:
    """True unless ``REPRO_NO_PLANS=1`` is exported."""
    return os.environ.get(PLANS_ENV, "0") != "1"


def _group_size(fmt) -> int | None:
    size = getattr(fmt, "group_size", None)
    if size is None:
        inner = getattr(fmt, "activation_format", None)
        size = getattr(inner, "group_size", None)
    return size


def get_plan(fmt, op: str, shape: tuple, axis: int,
             mode: tuple[bool, bool] = (False, False)) -> QuantPlan | None:
    """The cached plan for ``(fmt, op, shape, axis, mode)``, or None.

    ``mode`` is the ``(use_reference, use_bittwiddle)`` dispatch pair;
    non-default modes always resolve to None (negative-cached). The
    fingerprint comes from ``fmt.weight_cache_key``; formats it cannot
    fingerprint are never planned.
    """
    if op not in _OPS:
        raise ValueError(f"op must be one of {_OPS}, got {op!r}")
    fingerprint = fmt.weight_cache_key
    if fingerprint is None or not shape:
        return None
    key = (fingerprint, op, tuple(shape), axis, tuple(mode))
    with _lock:
        if key in _cache:
            _cache.move_to_end(key)
            _stats["hits"] += 1
            return _cache[key]
        _stats["misses"] += 1
        plan = None
        if mode == (False, False):
            size = _group_size(fmt)
            if size is not None and shape[axis % len(shape)] is not None:
                geom = GroupGeometry(shape, axis, size)
                run, run_codes = compile_executor(fmt, op, geom)
                if run is not None:
                    plan = QuantPlan(key=key, run=run, geometry=geom,
                                     run_codes=run_codes)
                    _stats["compiles"] += 1
        _cache[key] = plan
        if len(_cache) > MAX_PLANS:
            _cache.popitem(last=False)
            _stats["evictions"] += 1
        return plan


def lookup_plan(fmt, op: str, x, axis: int) -> QuantPlan | None:
    """Entry-point helper: resolve dispatch state, then :func:`get_plan`."""
    if not plans_enabled():
        return None
    from ..kernels.dispatch import use_bittwiddle, use_reference
    mode = (use_reference(), use_bittwiddle())
    if mode != (False, False):
        return None
    shape = np.shape(x)
    if not shape:
        return None
    return get_plan(fmt, op, shape, axis, mode)


def clear_plan_cache() -> None:
    """Drop every cached plan (used by tests)."""
    with _lock:
        _cache.clear()


def plan_cache_stats() -> dict:
    """Counters plus the current entry count."""
    with _lock:
        return {**_stats, "entries": len(_cache)}


# The cache is module-global, so its registry entry is too: one
# ``plan_cache`` collector per process, registered at import time.
from ..obs import registry as _obs_registry  # noqa: E402

_obs_registry().register_collector("plan_cache", plan_cache_stats)
