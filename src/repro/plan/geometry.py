"""Compiled group-reshape geometry for a fixed (shape, axis, group size).

:func:`repro.formats.grouping.to_groups` re-derives the same facts on
every call: the normalized axis, whether a move/pad is needed, the
padded length, the 2-D group view. A :class:`GroupGeometry` derives them
once at plan-compile time and exposes ``pack``/``unpack`` closures that
only do the data movement. The data-dependent finiteness contract moves
to the (much cheaper) per-group maxima — see
:func:`repro.plan.ops.validate_amax` — so ``pack`` itself never scans
the full tensor.

Example::

    geom = GroupGeometry(shape=(12, 96, 128), axis=-1, group_size=32)
    groups = geom.pack(x)          # (n_groups, 32) float64, zero padded
    y = geom.unpack(out_groups)    # back to (12, 96, 128)
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError

__all__ = ["GroupGeometry"]


class GroupGeometry:
    """Precomputed ``to_groups``/``from_groups`` for one shape signature."""

    def __init__(self, shape: tuple[int, ...], axis: int, group_size: int) -> None:
        if group_size < 1:
            raise ShapeError(f"group_size must be >= 1, got {group_size}")
        self.shape = tuple(int(s) for s in shape)
        self.group_size = int(group_size)
        self.axis = axis % len(self.shape)
        self.axis_len = self.shape[self.axis]
        self.padded_len = -(-self.axis_len // group_size) * group_size
        self.needs_move = self.axis != len(self.shape) - 1
        self.needs_pad = self.padded_len != self.axis_len
        self.lead = [self.shape[i] for i in range(len(self.shape))
                     if i != self.axis]
        self.n_groups = (int(np.prod(self.lead)) * self.padded_len
                         // group_size if self.shape else 0)

    def pack(self, x: np.ndarray) -> np.ndarray:
        """``x`` as a ``(n_groups, group_size)`` float64 matrix (a copy)."""
        x = np.asarray(x, dtype=np.float64)
        moved = np.moveaxis(x, self.axis, -1) if self.needs_move else x
        if self.needs_pad:
            pad = [(0, 0)] * (moved.ndim - 1) + \
                [(0, self.padded_len - self.axis_len)]
            moved = np.pad(moved, pad)
        return moved.reshape(-1, self.group_size)

    def unpack(self, groups: np.ndarray) -> np.ndarray:
        """Invert :meth:`pack`, dropping any zero padding."""
        lead = self.lead
        moved = groups.reshape(*lead, self.padded_len) if lead \
            else groups.reshape(self.padded_len)
        if self.needs_pad:
            moved = moved[..., : self.axis_len]
        return np.moveaxis(moved, -1, self.axis) if self.needs_move else moved
