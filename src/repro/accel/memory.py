"""Memory organization of M2XFP tensors on the accelerator (Sec. 5.2).

Maps a packed tensor (see :mod:`repro.core.packing`) onto the three
separately contiguous on-chip regions — elements, scales, metadata — and
models the dispatch unit that serves aligned group records to the decode
units and PE array.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.packing import PackedGroups
from ..errors import ShapeError

__all__ = ["GroupRecord", "MemoryLayout", "DispatchUnit"]


@dataclass(frozen=True)
class GroupRecord:
    """One group's worth of aligned fields, as the dispatch unit emits it."""

    element_bytes: np.ndarray  # group_size/2 bytes of packed FP4 codes
    scale_byte: int            # E8M0 code
    meta_byte: int             # packed 2-bit metadata fields


@dataclass
class MemoryLayout:
    """Byte-level layout of a packed tensor in the three regions."""

    packed: PackedGroups

    @property
    def element_region_bytes(self) -> int:
        """Size of the packed-elements region."""
        return int(self.packed.elements.size)

    @property
    def scale_region_bytes(self) -> int:
        """Size of the scales region."""
        return int(self.packed.scales.size)

    @property
    def metadata_region_bytes(self) -> int:
        """Size of the metadata region."""
        return int(self.packed.metadata.size)

    @property
    def group_stride_bytes(self) -> int:
        """Element bytes per group (128 bits for group 32)."""
        return self.packed.group_size // 2

    def record(self, group_index: int) -> GroupRecord:
        """Fetch one group's aligned record."""
        if not 0 <= group_index < self.packed.n_groups:
            raise ShapeError(f"group index {group_index} out of range")
        stride = self.group_stride_bytes
        meta_per_group = self.packed.metadata.size // self.packed.n_groups
        start = group_index * meta_per_group
        meta = int(self.packed.metadata[start]) if meta_per_group == 1 else int(
            np.frombuffer(self.packed.metadata[start:start + meta_per_group]
                          .tobytes(), dtype=np.uint8)[0])
        return GroupRecord(
            element_bytes=self.packed.elements[group_index * stride:
                                               (group_index + 1) * stride],
            scale_byte=int(self.packed.scales[group_index]),
            meta_byte=meta)


class DispatchUnit:
    """Streams aligned group records; checks the layout stays fragment-free."""

    def __init__(self, layout: MemoryLayout) -> None:
        self.layout = layout

    def stream(self):
        """Yield every group record in address order."""
        for i in range(self.layout.packed.n_groups):
            yield self.layout.record(i)

    @property
    def is_aligned(self) -> bool:
        """All three regions are multiples of their record sizes."""
        p = self.layout.packed
        return (p.elements.size % self.layout.group_stride_bytes == 0
                and p.scales.size == p.n_groups
                and p.metadata.size % p.n_groups == 0)
