"""Top-1 Decode Unit (Fig. 10): LUT + three-level comparator tree.

The unit re-identifies the top-1 element of an 8-element subgroup from
FP4 codes alone, so the PE knows which lane receives the metadata
correction. FP4 is sign-magnitude, so an |value|-monotonic unsigned key
is just the 3-bit magnitude code — implemented as an explicit 16-entry
lookup table, like the hardware. Ties resolve to the lowest index because
every comparator prefers its left (lower-index) operand on equality.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError

__all__ = ["FP4_TO_UINT_LUT", "lut_key", "comparator_tree_top1", "Top1DecodeUnit"]

#: 16-entry table mapping a packed FP4 code (sign<<3 | mag) to an unsigned
#: magnitude key. Both signs of the same magnitude map to the same key.
FP4_TO_UINT_LUT = np.array([c & 0x7 for c in range(16)], dtype=np.int64)


def lut_key(packed_codes: np.ndarray) -> np.ndarray:
    """Magnitude keys for packed FP4 codes via the lookup table."""
    packed_codes = np.asarray(packed_codes, dtype=np.int64)
    if np.any((packed_codes < 0) | (packed_codes > 15)):
        raise ShapeError("packed FP4 codes must be 4-bit values")
    return FP4_TO_UINT_LUT[packed_codes]


def comparator_tree_top1(keys: np.ndarray) -> np.ndarray:
    """Winner indices of a 3-level comparator tree over 8 keys per row.

    Structurally mirrors the hardware: each level compares pairs and the
    left operand wins ties, which yields the lowest index overall.
    """
    keys = np.atleast_2d(np.asarray(keys, dtype=np.int64))
    if keys.shape[1] != 8:
        raise ShapeError("the decode unit compares exactly 8 lanes")
    idx = np.tile(np.arange(8, dtype=np.int64), (keys.shape[0], 1))
    vals = keys
    while vals.shape[1] > 1:
        left_v, right_v = vals[:, 0::2], vals[:, 1::2]
        left_i, right_i = idx[:, 0::2], idx[:, 1::2]
        take_left = left_v >= right_v
        vals = np.where(take_left, left_v, right_v)
        idx = np.where(take_left, left_i, right_i)
    return idx[:, 0]


class Top1DecodeUnit:
    """Functional + cost model of one decode unit (8 FP4 inputs/cycle)."""

    LANES = 8

    def top1(self, packed_codes: np.ndarray) -> np.ndarray:
        """Top-1 indices for ``(n, 8)`` packed FP4 codes."""
        return comparator_tree_top1(lut_key(packed_codes))

    def cycles(self, n_subgroups: int) -> int:
        """One subgroup per cycle, fully pipelined."""
        return int(n_subgroups)
