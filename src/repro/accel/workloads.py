"""LLM inference workloads: the GEMM shapes behind Fig. 13.

One prefill pass at sequence length 4096, batch 1, over the real
architectural dimensions of each evaluated model (hidden size, FFN size,
KV heads for GQA/MQA, layer count). Only the Linear-layer GEMMs are
modelled — the paper notes they dominate latency (~83%) at this length.
"""

from __future__ import annotations

from dataclasses import dataclass

from .systolic import GemmShape

__all__ = ["LLMWorkload", "WORKLOADS", "workload_for"]


@dataclass(frozen=True)
class LLMWorkload:
    """Per-layer projection shapes replicated over the layer count."""

    name: str
    d_model: int
    d_ff: int
    n_layers: int
    kv_dim: int            # K/V projection width (GQA/MQA shrink this)
    gated_mlp: bool = True  # SwiGLU (gate+up+down) vs plain up+down
    seq_len: int = 4096

    def gemms(self) -> list[GemmShape]:
        """All linear-layer GEMMs of one forward pass."""
        m, d, ff = self.seq_len, self.d_model, self.d_ff
        per_layer = [
            GemmShape(m, d, d),            # Q projection
            GemmShape(m, d, self.kv_dim),  # K projection
            GemmShape(m, d, self.kv_dim),  # V projection
            GemmShape(m, d, d),            # O projection
            GemmShape(m, d, ff),           # up (or first MLP matmul)
            GemmShape(m, ff, d),           # down
        ]
        if self.gated_mlp:
            per_layer.append(GemmShape(m, d, ff))  # gate
        return per_layer * self.n_layers

    @property
    def total_macs(self) -> int:
        """Total MAC count of the workload."""
        return sum(g.macs for g in self.gemms())


WORKLOADS: dict[str, LLMWorkload] = {w.name: w for w in (
    LLMWorkload("llama2-7b", d_model=4096, d_ff=11008, n_layers=32, kv_dim=4096),
    LLMWorkload("llama3-8b", d_model=4096, d_ff=14336, n_layers=32, kv_dim=1024),
    LLMWorkload("llama3-70b", d_model=8192, d_ff=28672, n_layers=80, kv_dim=1024),
    LLMWorkload("opt-6.7b", d_model=4096, d_ff=16384, n_layers=32, kv_dim=4096,
                gated_mlp=False),
    LLMWorkload("mistral-7b", d_model=4096, d_ff=14336, n_layers=32, kv_dim=1024),
    LLMWorkload("falcon-7b", d_model=4544, d_ff=18176, n_layers=32, kv_dim=128,
                gated_mlp=False),
)}


def workload_for(name: str) -> LLMWorkload:
    """Look up a workload with a helpful error."""
    if name not in WORKLOADS:
        raise KeyError(f"unknown workload {name!r}; available: {sorted(WORKLOADS)}")
    return WORKLOADS[name]
