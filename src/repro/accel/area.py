"""Analytical area/power model of the M2XFP core (Tbl. 5).

Components are sums of primitive units (multipliers, adders, comparators,
LUT entries, registers) whose per-unit costs were calibrated once against
the paper's Synopsys DC synthesis at TSMC 28 nm / 500 MHz. The model
therefore reproduces Tbl. 5 for the published configuration while scaling
sensibly with array size or lane count.

The PE-tile variants of Sec. 6.3 fall out of the same primitives:
MXFP4 (no metadata logic) = 2057.6 um^2, NVFP4 (+FP8 scale path)
= 2104.7 um^2, M2XFP (+aux MAC, subgroup scaler, metadata routing)
= 2140.1 um^2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .energy import BufferModel

__all__ = ["Primitives", "PRIM_28NM", "ComponentArea", "pe_tile_area_um2",
           "decode_unit_area_um2", "quant_engine_area_um2", "CoreAreaModel"]


@dataclass(frozen=True)
class Primitives:
    """Per-unit area (um^2) and power (uW) at 28 nm, 500 MHz."""

    mult4_um2: float = 156.6          # 4x4 sign-magnitude multiplier
    adder16_um2: float = 38.0         # 16-bit adder (tree stage)
    adder32_um2: float = 60.0         # 32-bit accumulator adder
    reg_bit_um2: float = 1.5          # pipeline/accumulator flop
    lut_entry_um2: float = 1.2        # one 4->3 bit LUT entry
    comparator4_um2: float = 3.65     # 4-bit magnitude comparator
    mux8_um2: float = 10.5            # 8:1 4-bit mux
    shift_add_um2: float = 46.0       # shift-and-add scale unit
    layout_overhead: float = 1.18     # routing / clock / DFT factor
    uw_per_um2: float = 0.0987        # power density of datapath logic
    decode_power_density: float = 1.96  # comparator trees toggle every lane
    qe_power_density: float = 2.74      # FP16 normalize stage is activity-heavy


PRIM_28NM = Primitives()


@dataclass
class ComponentArea:
    """Area/power of one component instance."""

    name: str
    area_um2: float
    power_mw: float
    count: int = 1

    @property
    def total_area_mm2(self) -> float:
        """Area of all instances in mm^2."""
        return self.area_um2 * self.count / 1e6

    @property
    def total_power_mw(self) -> float:
        """Power of all instances in mW."""
        return self.power_mw * self.count


def _logic_area(raw_um2: float, prim: Primitives) -> float:
    return raw_um2 * prim.layout_overhead


def pe_tile_area_um2(prim: Primitives = PRIM_28NM, lanes: int = 8,
                     variant: str = "m2xfp") -> float:
    """Area of one PE tile; ``variant`` in {mxfp4, nvfp4, m2xfp}."""
    base = (lanes * prim.mult4_um2                    # FP4 multiplier lanes
            + (lanes - 1) * prim.adder16_um2          # adder tree
            + prim.adder32_um2                        # accumulator add
            + 32 * prim.reg_bit_um2                   # accumulator register
            + 64 * prim.reg_bit_um2                   # pipeline registers
            + 2 * prim.mux8_um2)                      # operand routing
    if variant == "nvfp4":
        base += 0.255 * prim.mult4_um2                # FP8-scale align logic
    if variant == "m2xfp":
        base += (0.30 * prim.mult4_um2                # aux DeltaX MAC slice
                 + prim.shift_add_um2 * 0.4           # subgroup scaler
                 + 3 * prim.reg_bit_um2)              # metadata staging
    return _logic_area(base, prim)


def decode_unit_area_um2(prim: Primitives = PRIM_28NM, lanes: int = 8) -> float:
    """Area of one top-1 decode unit (LUT + comparator tree + packer)."""
    raw = (16 * prim.lut_entry_um2
           + (lanes - 1) * prim.comparator4_um2
           + prim.mux8_um2
           + 10 * prim.reg_bit_um2)
    return _logic_area(raw, prim)


def quant_engine_area_um2(prim: Primitives = PRIM_28NM,
                          group_size: int = 32) -> float:
    """Area of the streaming quantization engine (two pipeline stages)."""
    raw = (group_size * prim.comparator4_um2 * 1.5    # max tree over FP16
           + group_size * prim.adder16_um2 * 1.15     # normalize + round
           + 4 * (16 * prim.lut_entry_um2)            # FP6 encode LUTs
           + group_size * 6 * prim.reg_bit_um2        # stage registers
           + 2 * prim.shift_add_um2 + 4 * prim.mux8_um2)
    return _logic_area(raw, prim)


@dataclass
class CoreAreaModel:
    """Full core roll-up reproducing Tbl. 5."""

    n_pe_tiles: int = 128
    n_decode_units: int = 4
    n_quant_engines: int = 1
    buffer_kb: float = 324.0
    prim: Primitives = field(default_factory=lambda: PRIM_28NM)

    def components(self) -> list[ComponentArea]:
        """Component table (areas in um^2 per instance, power in mW)."""
        prim = self.prim
        pe = pe_tile_area_um2(prim)
        dec = decode_unit_area_um2(prim)
        qe = quant_engine_area_um2(prim)
        buf = BufferModel(self.buffer_kb)
        return [
            ComponentArea("PE Tile", pe, pe * prim.uw_per_um2 / 1e3, self.n_pe_tiles),
            ComponentArea("Top-1 Decode Unit", dec,
                          dec * prim.uw_per_um2 * prim.decode_power_density / 1e3,
                          self.n_decode_units),
            ComponentArea("Quantization Engine", qe,
                          qe * prim.uw_per_um2 * prim.qe_power_density / 1e3,
                          self.n_quant_engines),
            ComponentArea(f"Buffer ({int(self.buffer_kb)}KB)",
                          buf.area_mm2 * 1e6, buf.power_mw, 1),
        ]

    @property
    def total_area_mm2(self) -> float:
        """Total core area."""
        return sum(c.total_area_mm2 for c in self.components())

    @property
    def total_power_mw(self) -> float:
        """Total core power."""
        return sum(c.total_power_mw for c in self.components())

    def metadata_overhead_fraction(self) -> float:
        """Area fraction of the metadata units (decode + quant engine)."""
        comps = {c.name.split(" (")[0]: c for c in self.components()}
        meta = (comps["Top-1 Decode Unit"].total_area_mm2
                + comps["Quantization Engine"].total_area_mm2)
        return meta / self.total_area_mm2
