"""Normalized latency/energy comparison across accelerators (Fig. 13)."""

from __future__ import annotations

from dataclasses import dataclass

from .accelerator import (ACCELERATORS, REFERENCE_8BIT, AcceleratorSpec,
                          PerfResult, run_workload)
from .workloads import WORKLOADS, LLMWorkload

__all__ = ["NormalizedPoint", "compare_on_workload", "fig13_comparison",
           "speedup_vs"]


@dataclass
class NormalizedPoint:
    """One bar of Fig. 13: latency and energy relative to the W8A8 reference."""

    accelerator: str
    workload: str
    norm_latency: float
    norm_energy: float
    energy_breakdown: dict[str, float]


def compare_on_workload(workload: LLMWorkload,
                        specs: dict[str, AcceleratorSpec] | None = None
                        ) -> list[NormalizedPoint]:
    """Normalized points of every accelerator on one workload."""
    specs = specs or ACCELERATORS
    ref = run_workload(REFERENCE_8BIT, workload)
    points = []
    for spec in specs.values():
        res = run_workload(spec, workload)
        points.append(NormalizedPoint(
            accelerator=spec.name, workload=workload.name,
            norm_latency=res.cycles / ref.cycles,
            norm_energy=res.total_energy_j / ref.total_energy_j,
            energy_breakdown={
                "core": res.core_energy_j / ref.total_energy_j,
                "buffer": res.buffer_energy_j / ref.total_energy_j,
                "dram": res.dram_energy_j / ref.total_energy_j,
                "static": res.static_energy_j / ref.total_energy_j,
            }))
    return points


def fig13_comparison(workload_names: list[str] | None = None
                     ) -> dict[str, list[NormalizedPoint]]:
    """The full Fig. 13 grid plus an 'average' pseudo-workload."""
    names = workload_names or list(WORKLOADS)
    grid = {name: compare_on_workload(WORKLOADS[name]) for name in names}
    by_acc: dict[str, list[NormalizedPoint]] = {}
    for points in grid.values():
        for p in points:
            by_acc.setdefault(p.accelerator, []).append(p)
    grid["average"] = [
        NormalizedPoint(
            accelerator=acc, workload="average",
            norm_latency=sum(p.norm_latency for p in pts) / len(pts),
            norm_energy=sum(p.norm_energy for p in pts) / len(pts),
            energy_breakdown={
                key: sum(p.energy_breakdown[key] for p in pts) / len(pts)
                for key in pts[0].energy_breakdown})
        for acc, pts in by_acc.items()]
    return grid


def speedup_vs(points: list[NormalizedPoint], ours: str = "m2xfp",
               other: str = "microscopiq") -> tuple[float, float]:
    """(speedup, energy ratio) of ``ours`` over ``other`` on one workload."""
    by_name = {p.accelerator: p for p in points}
    a, b = by_name[other], by_name[ours]
    return a.norm_latency / b.norm_latency, a.norm_energy / b.norm_energy
