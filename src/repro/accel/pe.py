"""The M2XFP processing element (Fig. 11), simulated bit-accurately.

Each PE tile executes an 8-lane FP4xFP4 multiply-accumulate per cycle,
augmented with the two metadata paths of Sec. 5.4:

* **extra mantissa**: the activation top-1 lane contributes an extra
  ``W x DeltaX`` term, where ``DeltaX = X_fp6 - X_fp4`` is the FP6
  refinement (hidden bit zero, so it composes with the FP4 datapath);
* **subgroup scale refinement**: the partial sum is multiplied by
  {1.0, 1.25, 1.5, 1.75} selected by the weight's 2-bit Sg-EM code,
  realized as shift-and-add (P + P>>2 etc.);
* **dequantize & accumulate**: the fixed-point partial sum is scaled by
  ``2^(E_W + E_X)`` (exponent alignment only, since scales are E8M0).

Everything is integer arithmetic on dyadic fixed point, so the test suite
can require exact equality with the algorithmic reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError
from ..formats.registry import FP4_E2M1, FP6_E2M3
from .decode_unit import Top1DecodeUnit
from .fixedpoint import FRAC_ACC, to_fixed

__all__ = ["PETileInputs", "PETile"]

_SG_NUMERATORS = np.array([4, 5, 6, 7], dtype=np.int64)  # x1.0 .. x1.75


@dataclass
class PETileInputs:
    """One subgroup's worth of operands for a PE tile."""

    w_codes: np.ndarray       # (8,) packed FP4 weight codes
    x_codes: np.ndarray       # (8,) packed FP4 activation codes
    x_meta: int               # 2-bit Elem-EM metadata for the top-1 lane
    sg_code: int              # 2-bit Sg-EM subgroup-scale code
    w_exp: int                # weight shared-scale exponent (E8M0)
    x_exp: int                # activation shared-scale exponent (E8M0)


class PETile:
    """Bit-accurate functional model of one 8-lane M2XFP PE tile."""

    LANES = 8

    def __init__(self) -> None:
        self._decode = Top1DecodeUnit()

    def _fp6_refined(self, x_code: int, meta: int) -> float:
        """Decode the FP6 magnitude selected by the bias-clamp metadata."""
        mag = x_code & 0x7
        fp6_code = ((mag << 2) | meta) - 1
        fp6_code = max(0, min(FP6_E2M3.code_count - 1, fp6_code))
        value = FP6_E2M3.grid[fp6_code]
        return -value if x_code & 0x8 else value

    def multiply_accumulate(self, inputs: PETileInputs) -> float:
        """One subgroup's contribution to the output, exactly.

        Returns ``sg_mult * 2^(Ew+Ex) * sum_i w_i * x'_i`` where the top-1
        activation lane uses its FP6-refined value.
        """
        w_codes = np.asarray(inputs.w_codes, dtype=np.int64)
        x_codes = np.asarray(inputs.x_codes, dtype=np.int64)
        if w_codes.shape != (self.LANES,) or x_codes.shape != (self.LANES,):
            raise ShapeError("PE tile processes subgroups of exactly 8 lanes")

        w_vals = FP4_E2M1.value_of_code(w_codes)
        x_vals = FP4_E2M1.value_of_code(x_codes)
        w_fx = to_fixed(w_vals, 1)                     # multiples of 1/2
        x_fx = to_fixed(x_vals, 1)
        # Baseline FP4 MAC: products are multiples of 1/4; hold the
        # accumulator at FRAC_ACC fractional bits.
        acc = np.sum(w_fx * x_fx) << (FRAC_ACC - 2)

        # Extra-mantissa path: W x DeltaX on the decoded top-1 lane.
        top = int(self._decode.top1(x_codes[None, :])[0])
        delta = self._fp6_refined(int(x_codes[top]), int(inputs.x_meta)) - x_vals[top]
        delta_fx = to_fixed(delta, 4)                  # multiples of 1/16
        acc += (w_fx[top] * delta_fx) << (FRAC_ACC - 5)

        # Subgroup scale refinement via shift-and-add: (4 + code) / 4.
        acc = acc * _SG_NUMERATORS[int(inputs.sg_code)]

        # Dequantize: exponent alignment with the two E8M0 shared scales.
        return float(acc) / (1 << (FRAC_ACC + 2)) * 2.0 ** (inputs.w_exp + inputs.x_exp)

    def reference(self, inputs: PETileInputs) -> float:
        """Float reference of the same computation (for equivalence tests)."""
        w_vals = FP4_E2M1.value_of_code(np.asarray(inputs.w_codes, dtype=np.int64))
        x_vals = FP4_E2M1.value_of_code(np.asarray(inputs.x_codes, dtype=np.int64))
        top = int(self._decode.top1(np.asarray(inputs.x_codes)[None, :])[0])
        x_ref = x_vals.copy()
        x_ref[top] = self._fp6_refined(int(inputs.x_codes[top]), int(inputs.x_meta))
        sg_mult = 1.0 + int(inputs.sg_code) / 4.0
        return float(np.sum(w_vals * x_ref) * sg_mult
                     * 2.0 ** (inputs.w_exp + inputs.x_exp))
