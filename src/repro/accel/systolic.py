"""First-order cycle model of the 32x32 systolic GEMM pipeline.

The array computes a 32x32 output tile while streaming 8 reduction
elements per cycle into every PE tile (128 tiles x 8 lanes = one 32x32x8
MAC slab per cycle). Operands wider than 4 bits decompose into 4-bit
partial passes (2 passes per 8-bit operand), which is how the 8-bit
fallback of the baseline accelerators costs them throughput.

DRAM traffic follows a blocked-tiling reuse model: output tiles of side
``T`` (bounded by the FP32 output buffer) keep partial sums resident, so
each operand panel is streamed ``ceil(dim / T)`` times.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError

__all__ = ["GemmShape", "ArrayConfig", "gemm_compute_cycles", "gemm_dram_traffic",
           "gemm_buffer_traffic"]


@dataclass(frozen=True)
class GemmShape:
    """C[M, N] = A[M, K] @ B[K, N] (A: activations, B: weights)."""

    m: int
    k: int
    n: int

    @property
    def macs(self) -> int:
        """Multiply-accumulate count."""
        return self.m * self.k * self.n


@dataclass(frozen=True)
class ArrayConfig:
    """The modelled compute core (Tbl. 5 configuration)."""

    rows: int = 32
    cols: int = 32
    lanes: int = 8                      # MAC lanes per PE tile
    frequency_hz: float = 500e6
    dram_bytes_per_cycle: float = 256.0  # ~128 GB/s at 500 MHz
    act_buffer_bytes: int = 144 * 1024
    weight_buffer_bytes: int = 144 * 1024
    out_buffer_bytes: int = 36 * 1024

    @property
    def macs_per_cycle(self) -> int:
        """Peak 4-bit MACs per cycle."""
        return self.rows * self.cols * self.lanes

    def output_tile_side(self) -> int:
        """Largest square FP32 output tile the output buffer can hold."""
        t = int(np.sqrt(self.out_buffer_bytes / 4))
        return max(self.rows, (t // self.rows) * self.rows)


def _passes(bits: float) -> int:
    """4-bit partial-product passes needed per operand."""
    if bits <= 0:
        raise ConfigError("operand width must be positive")
    return max(1, int(np.ceil(bits / 4.0)))


def gemm_compute_cycles(shape: GemmShape, hw: ArrayConfig,
                        weight_bits: float = 4.0, act_bits: float = 4.0) -> int:
    """Cycles to compute one GEMM, including tile fill/drain overhead."""
    passes = _passes(weight_bits) * _passes(act_bits)
    tiles = int(np.ceil(shape.m / hw.rows)) * int(np.ceil(shape.n / hw.cols))
    per_tile = int(np.ceil(shape.k / hw.lanes)) * passes + hw.rows + hw.cols
    return tiles * per_tile


def gemm_dram_traffic(shape: GemmShape, hw: ArrayConfig,
                      weight_ebw: float = 4.5, act_ebw: float = 4.5,
                      out_bytes_per_el: float = 2.0) -> float:
    """DRAM bytes moved for one GEMM under blocked tiling."""
    t = hw.output_tile_side()
    a_bytes = shape.m * shape.k * act_ebw / 8.0
    w_bytes = shape.k * shape.n * weight_ebw / 8.0
    o_bytes = shape.m * shape.n * out_bytes_per_el
    return (a_bytes * np.ceil(shape.n / t)
            + w_bytes * np.ceil(shape.m / t)
            + o_bytes)


def gemm_buffer_traffic(shape: GemmShape, hw: ArrayConfig,
                        weight_ebw: float = 4.5, act_ebw: float = 4.5) -> float:
    """On-chip SRAM bytes read while streaming the GEMM.

    Every operand byte is read from SRAM once per output-tile pass at
    array granularity (the systolic broadcast amortizes the rest).
    """
    a_bytes = shape.m * shape.k * act_ebw / 8.0
    w_bytes = shape.k * shape.n * weight_ebw / 8.0
    return (a_bytes * np.ceil(shape.n / hw.cols)
            + w_bytes * np.ceil(shape.m / hw.rows)) / 4.0 + shape.m * shape.n * 4.0
