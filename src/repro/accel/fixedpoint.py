"""Exact dyadic fixed-point helpers for the bit-accurate PE model.

All FP4/FP6 values under a power-of-two scale are dyadic rationals, so the
PE datapath can be simulated exactly with integers: a value ``v`` with
``frac_bits`` fractional bits is stored as ``round(v * 2**frac_bits)``,
and every step of the pipeline is integer arithmetic. Tests then check
the PE result equals the float reference with zero error.
"""

from __future__ import annotations

import numpy as np

from ..errors import FormatError

__all__ = ["to_fixed", "from_fixed", "FRAC_FP4", "FRAC_FP6", "FRAC_ACC"]

#: FP4 E2M1 values are multiples of 1/2.
FRAC_FP4 = 1
#: FP6 E2M3 values are multiples of 1/16.
FRAC_FP6 = 4
#: Accumulator fractional bits: products of FP4*FP6 need 5, the subgroup
#: scale multipliers {1, 1.25, 1.5, 1.75} need 2 more.
FRAC_ACC = 7


def to_fixed(values: np.ndarray, frac_bits: int) -> np.ndarray:
    """Exactly convert dyadic rationals to integers with ``frac_bits``."""
    scaled = np.asarray(values, dtype=np.float64) * (1 << frac_bits)
    fixed = np.rint(scaled).astype(np.int64)
    if not np.allclose(fixed, scaled, rtol=0, atol=0):
        raise FormatError(f"values are not exact multiples of 2^-{frac_bits}")
    return fixed


def from_fixed(fixed: np.ndarray, frac_bits: int) -> np.ndarray:
    """Integer fixed-point back to float64 (exact for our ranges)."""
    return np.asarray(fixed, dtype=np.float64) / (1 << frac_bits)
