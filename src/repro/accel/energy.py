"""28 nm energy/power constants and the buffer (CACTI-style) model.

Per-operation energies are first-order constants calibrated so the
component totals of Tbl. 5 and the energy breakdown shape of Fig. 13 are
reproduced; they scale with counts, so architectural what-ifs (bigger
arrays, other bit widths) remain meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TechConstants", "TECH_28NM", "BufferModel"]


@dataclass(frozen=True)
class TechConstants:
    """Energy/area primitives at the modelled node and frequency."""

    frequency_hz: float = 500e6
    mac4_energy_pj: float = 0.22       # one FP4x FP4 MAC (incl. accumulate)
    sram_energy_pj_per_byte: float = 0.18
    dram_energy_pj_per_byte: float = 14.0
    decode_energy_pj_per_subgroup: float = 0.05
    quant_energy_pj_per_element: float = 0.11
    static_power_mw: float = 62.0      # leakage + clock tree of the core

    @property
    def cycle_time_s(self) -> float:
        """Seconds per cycle."""
        return 1.0 / self.frequency_hz


TECH_28NM = TechConstants()


@dataclass(frozen=True)
class BufferModel:
    """CACTI-v7-calibrated SRAM cost model (per Tbl. 5: 324 KB on chip)."""

    capacity_kb: float
    area_um2_per_byte: float = 2.3328
    power_mw_per_kb: float = 0.5441

    @property
    def area_mm2(self) -> float:
        """Macro area of the buffer."""
        return self.capacity_kb * 1024 * self.area_um2_per_byte / 1e6

    @property
    def power_mw(self) -> float:
        """Dynamic + leakage power at nominal activity."""
        return self.capacity_kb * self.power_mw_per_kb
