"""Accelerator configurations and the latency/energy roll-up (Fig. 13).

Every accelerator is the same 32x32 array; they differ in the format each
tensor is stored/computed in, the fraction of tensors that must fall back
to 8-bit to match accuracy (the paper's explanation of the baselines'
slowdown), and per-architecture decode/processing overheads:

* **MX-OliVe** falls back to 8-bit on >50% of tensors (Sec. 6.3);
* **MX-ANT / MX-M-ANT** need ~30% 8-bit fallback; M-ANT additionally pays
  shift-and-accumulate core energy for its 16 types;
* **MicroScopiQ** needs ~30% fallback plus ReCoN outlier-routing energy
  and structural metadata traffic (~1.5 extra weight bits per element);
* **M2XFP** runs everything at 4-bit + 0.5 bits of scale/metadata.

The reference for normalization is the same array running W8A8 MXINT8,
the common denominator all baselines are built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .energy import TECH_28NM, TechConstants
from .quant_engine import QuantizationEngine
from .systolic import (ArrayConfig, gemm_buffer_traffic, gemm_compute_cycles,
                       gemm_dram_traffic)
from .workloads import LLMWorkload

__all__ = ["AcceleratorSpec", "PerfResult", "ACCELERATORS", "REFERENCE_8BIT",
           "run_workload"]


@dataclass(frozen=True)
class AcceleratorSpec:
    """An architecture point in the Fig. 13 comparison."""

    name: str
    weight_bits: float = 4.0          # compute width of the weight operand
    act_bits: float = 4.0             # compute width of the activation operand
    weight_ebw: float = 4.5           # storage width incl. scale + metadata
    act_ebw: float = 4.5
    fallback_8bit_fraction: float = 0.0  # fraction of GEMMs run as W8A8
    core_energy_factor: float = 1.0      # decode/processing overhead on MACs
    decode_overhead_factor: float = 1.0  # extra cycles on compute
    uses_quant_engine: bool = True


@dataclass
class PerfResult:
    """Latency and an energy breakdown for one workload."""

    name: str
    cycles: float
    core_energy_j: float
    buffer_energy_j: float
    dram_energy_j: float
    static_energy_j: float
    details: dict = field(default_factory=dict)

    @property
    def latency_s(self) -> float:
        """Seconds at the modelled frequency."""
        return self.cycles / TECH_28NM.frequency_hz

    @property
    def total_energy_j(self) -> float:
        """Sum of all energy components."""
        return (self.core_energy_j + self.buffer_energy_j
                + self.dram_energy_j + self.static_energy_j)


ACCELERATORS: dict[str, AcceleratorSpec] = {s.name: s for s in (
    AcceleratorSpec("mx-olive", fallback_8bit_fraction=0.55,
                    core_energy_factor=1.10),
    AcceleratorSpec("mx-ant", fallback_8bit_fraction=0.30,
                    core_energy_factor=1.08),
    AcceleratorSpec("mx-m-ant", fallback_8bit_fraction=0.30,
                    core_energy_factor=1.22),  # shift-and-accumulate decode
    AcceleratorSpec("microscopiq", weight_ebw=4.25 + 1.5,
                    fallback_8bit_fraction=0.32,
                    core_energy_factor=1.16),  # ReCoN outlier processing
    AcceleratorSpec("m2xfp", weight_ebw=4.5, act_ebw=4.5,
                    core_energy_factor=1.02),  # aux MAC + subgroup scaler
)}

#: Normalization baseline: the same array running MXINT8 on everything.
REFERENCE_8BIT = AcceleratorSpec("mxint8-ref", weight_bits=8.0, act_bits=8.0,
                                 weight_ebw=8.25, act_ebw=8.25,
                                 uses_quant_engine=False)


def run_workload(spec: AcceleratorSpec, workload: LLMWorkload,
                 hw: ArrayConfig | None = None,
                 tech: TechConstants | None = None) -> PerfResult:
    """Latency/energy of one accelerator on one LLM workload."""
    hw = hw or ArrayConfig()
    tech = tech or TECH_28NM
    qe = QuantizationEngine()
    f8 = spec.fallback_8bit_fraction

    cycles = 0.0
    core_j = buffer_j = dram_j = 0.0
    for g in workload.gemms():
        # Weighted mix of native-precision and 8-bit fallback execution.
        c4 = gemm_compute_cycles(g, hw, spec.weight_bits, spec.act_bits)
        c8 = gemm_compute_cycles(g, hw, 8.0, 8.0)
        compute = ((1 - f8) * c4 + f8 * c8) * spec.decode_overhead_factor

        d4 = gemm_dram_traffic(g, hw, spec.weight_ebw, spec.act_ebw)
        d8 = gemm_dram_traffic(g, hw, 8.25, 8.25)
        dram_bytes = (1 - f8) * d4 + f8 * d8
        mem = dram_bytes / hw.dram_bytes_per_cycle

        quant = qe.cycles(g.m * g.k // qe.group_size) if spec.uses_quant_engine else 0
        # Double buffering overlaps compute and DRAM; the quantization
        # engine streams ahead of the array and only its fill shows up.
        cycles += max(compute, mem) + qe.PIPELINE_DEPTH

        mac_passes = g.macs * ((1 - f8) * (spec.weight_bits / 4.0) * (spec.act_bits / 4.0)
                               + f8 * 4.0)
        core_j += (mac_passes * tech.mac4_energy_pj * spec.core_energy_factor) * 1e-12
        if spec.uses_quant_engine:
            core_j += g.m * g.k * tech.quant_energy_pj_per_element * 1e-12
            core_j += (g.m * g.k / 8.0) * tech.decode_energy_pj_per_subgroup * 1e-12

        s4 = gemm_buffer_traffic(g, hw, spec.weight_ebw, spec.act_ebw)
        s8 = gemm_buffer_traffic(g, hw, 8.25, 8.25)
        buffer_j += ((1 - f8) * s4 + f8 * s8) * tech.sram_energy_pj_per_byte * 1e-12
        dram_j += dram_bytes * tech.dram_energy_pj_per_byte * 1e-12

    static_j = tech.static_power_mw * 1e-3 * (cycles / tech.frequency_hz)
    return PerfResult(name=spec.name, cycles=cycles, core_energy_j=core_j,
                      buffer_energy_j=buffer_j, dram_energy_j=dram_j,
                      static_energy_j=static_j,
                      details={"fallback": f8, "workload": workload.name})
