"""Streaming quantization engine (Fig. 12): online Elem-EM encoding.

A two-stage pipeline: stage 1 computes the group scale and the FP4/FP6
candidates (Scaling & Normalize Unit); stage 2 picks the subgroup top-1,
applies the bias-clamp encoding, and packs data + metadata (Encode Unit).
Functionally it is exactly Algorithm 1; the timing model processes one
group per cycle once the 2-cycle pipeline is filled, which is what makes
it streaming-safe in front of the systolic array.
"""

from __future__ import annotations

import numpy as np

from ..core.elem_em import ElemEMEncoding, elem_em_encode
from ..core.packing import PackedGroups, pack_elem_em
from ..errors import ShapeError

__all__ = ["QuantizationEngine"]


class QuantizationEngine:
    """Functional + timing model of the online activation quantizer."""

    PIPELINE_DEPTH = 2

    def __init__(self, group_size: int = 32, sub_size: int = 8) -> None:
        if group_size % sub_size != 0:
            raise ShapeError("group size must be a multiple of the subgroup size")
        self.group_size = int(group_size)
        self.sub_size = int(sub_size)

    def encode(self, groups: np.ndarray) -> ElemEMEncoding:
        """Run Algorithm 1 on ``(n_groups, k)`` activations."""
        return elem_em_encode(groups, sub_size=self.sub_size, top_k=1)

    def encode_packed(self, groups: np.ndarray) -> PackedGroups:
        """Encode and pack into the Sec. 5.2 memory layout."""
        return pack_elem_em(self.encode(groups))

    def cycles(self, n_groups: int) -> int:
        """One group per cycle after the pipeline fills."""
        if n_groups <= 0:
            return 0
        return int(n_groups) + self.PIPELINE_DEPTH - 1

    def stalls_systolic_array(self, groups_per_cycle_needed: float) -> bool:
        """True when the array would consume groups faster than 1/cycle."""
        return groups_per_cycle_needed > 1.0
