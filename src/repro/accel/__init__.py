"""Accelerator model: bit-accurate units + cycle/energy/area models."""

from .accelerator import (ACCELERATORS, REFERENCE_8BIT, AcceleratorSpec,
                          PerfResult, run_workload)
from .area import (CoreAreaModel, PRIM_28NM, Primitives, decode_unit_area_um2,
                   pe_tile_area_um2, quant_engine_area_um2)
from .compare import (NormalizedPoint, compare_on_workload, fig13_comparison,
                      speedup_vs)
from .decode_unit import (FP4_TO_UINT_LUT, Top1DecodeUnit,
                          comparator_tree_top1, lut_key)
from .energy import TECH_28NM, BufferModel, TechConstants
from .fixedpoint import FRAC_ACC, FRAC_FP4, FRAC_FP6, from_fixed, to_fixed
from .memory import DispatchUnit, GroupRecord, MemoryLayout
from .pe import PETile, PETileInputs
from .quant_engine import QuantizationEngine
from .systolic import (ArrayConfig, GemmShape, gemm_buffer_traffic,
                       gemm_compute_cycles, gemm_dram_traffic)
from .workloads import WORKLOADS, LLMWorkload, workload_for

__all__ = [
    "PETile", "PETileInputs", "Top1DecodeUnit", "comparator_tree_top1",
    "lut_key", "FP4_TO_UINT_LUT", "QuantizationEngine",
    "to_fixed", "from_fixed", "FRAC_FP4", "FRAC_FP6", "FRAC_ACC",
    "TechConstants", "TECH_28NM", "BufferModel",
    "Primitives", "PRIM_28NM", "CoreAreaModel", "pe_tile_area_um2",
    "decode_unit_area_um2", "quant_engine_area_um2",
    "GemmShape", "ArrayConfig", "gemm_compute_cycles", "gemm_dram_traffic",
    "gemm_buffer_traffic", "LLMWorkload", "WORKLOADS", "workload_for",
    "AcceleratorSpec", "PerfResult", "ACCELERATORS", "REFERENCE_8BIT",
    "run_workload", "NormalizedPoint", "compare_on_workload",
    "fig13_comparison", "speedup_vs", "MemoryLayout", "DispatchUnit",
    "GroupRecord",
]
