"""Stateful streaming KV-cache quantization sessions.

A :class:`KVCacheSession` models the tensor that actually lives in DRAM
between decode steps: per decode step the caller appends the new K/V
rows for each layer, the session quantizes them **through the
plan-compiled kernels** (the same ``quantize_weight`` /
``quantize_activation`` entry points the batch path uses — by default
every append cross-checks the packed bytes against that output and
raises on any mismatch, so streamed state is bit-exact *by
construction*), and only the packed :class:`~repro.codec.PackedTensor`
bytes are retained. Reads decode the retained blocks back to float64.

Eviction is by **token budget** per layer: once a layer holds more than
``max_tokens`` tokens, the oldest blocks are dropped — except blocks
that began inside the first ``sink_tokens`` positions ("attention
sinks"), which are never evicted. An append that cannot fit even after
evicting every evictable block is refused with
:class:`~repro.errors.ConfigError` and leaves the session unchanged —
the budget invariant is never violated, not even transiently.

Bit-exactness contract (asserted in ``tests/test_kv_session.py`` for
every catalog format under every dispatch mode):

* ``read(layer)`` equals the concatenation of one-shot quantizations of
  the retained blocks, bit for bit; and
* for every group-wise (batchable) format this also equals the one-shot
  quantization of the concatenated raw blocks — the streamed cache and
  the batch cache are the same bytes. Tensor-scoped formats (NVFP4 /
  M2-NVFP4 and MaxPreserving wrappers of them) are **block-scoped** by
  design: their tensor-level scale depends on the whole input, so each
  appended block is its own scaling scope (the session analogue of
  ``QuantService`` never cross-batching them).

Example::

    from repro.kv import KVCacheSession, KVPolicy

    policy = KVPolicy("m2xfp", overrides={0: "elem-em"})
    sess = KVCacheSession(n_layers=4, policy=policy,
                          max_tokens=512, sink_tokens=16)
    for step_k, step_v in decode_steps:          # (t, d_head) blocks
        for layer in range(4):
            sess.append(layer, step_k[layer], step_v[layer])
    k, v = sess.read(0)                           # dequantized float64
"""

from __future__ import annotations

import itertools
import threading

import numpy as np

from ..errors import ConfigError
from ..obs import measured_bits_per_element
from ..obs import registry as obs_registry
from ..serve.service import DISPATCH_MODES, _dispatch_scope

__all__ = ["KVCacheSession", "KVPolicy"]

_OPS = ("weight", "activation")

_session_counter = itertools.count(1)


class KVPolicy:
    """Per-layer format selection for a KV-cache session.

    Parameters
    ----------
    default:
        Catalog format name used for every layer without an override.
    overrides:
        ``{layer_index: format_name}`` exceptions — the mixed-precision
        knob (NxFP-style per-layer adaptation).
    op:
        Operand path the K/V blocks are quantized on. KV entries are
        right-hand GEMM operands cached across steps, so the lazy
        ``"weight"`` path is the default (paper Sec. 6.4).
    """

    def __init__(self, default: str = "m2xfp",
                 overrides: dict[int, str] | None = None,
                 op: str = "weight") -> None:
        if op not in _OPS:
            raise ConfigError(f"op must be one of {_OPS}, got {op!r}")
        from ..runner.formats import make_format
        self.default = str(default)
        self.op = op
        self.overrides: dict[int, str] = {}
        for layer, name in (overrides or {}).items():
            self.overrides[int(layer)] = str(name)
        # Validate every name once, up front, and share the format
        # objects across appends so the compiled-plan cache is keyed by
        # a stable fingerprint (and the session never rebuilds group
        # geometry per call).
        self._formats = {name: make_format(name)
                         for name in {self.default, *self.overrides.values()}}

    def name_for(self, layer: int) -> str:
        return self.overrides.get(int(layer), self.default)

    def format_for(self, layer: int):
        return self._formats[self.name_for(layer)]

    def spec(self) -> dict:
        """JSON-safe description (the wire/HTTP session-open encoding)."""
        return {"default": self.default, "op": self.op,
                "overrides": {str(k): v
                              for k, v in sorted(self.overrides.items())}}

    @classmethod
    def from_spec(cls, spec) -> "KVPolicy":
        if isinstance(spec, KVPolicy):
            return spec
        if isinstance(spec, str):
            return cls(spec)
        if not isinstance(spec, dict):
            raise ConfigError(f"policy must be a format name or a spec "
                              f"object, got {spec!r}")
        overrides = spec.get("overrides") or {}
        if not isinstance(overrides, dict):
            raise ConfigError(f"policy overrides must be an object, "
                              f"got {overrides!r}")
        try:
            overrides = {int(k): str(v) for k, v in overrides.items()}
        except (TypeError, ValueError):
            raise ConfigError(f"policy override keys must be layer "
                              f"indices, got {overrides!r}") from None
        return cls(spec.get("default", "m2xfp"), overrides=overrides,
                   op=spec.get("op", "weight"))

    def __repr__(self) -> str:  # stable — used in config comparisons
        return (f"KVPolicy(default={self.default!r}, "
                f"overrides={dict(sorted(self.overrides.items()))!r}, "
                f"op={self.op!r})")


class _Block:
    """One appended K/V block: packed bytes plus its stream position."""

    __slots__ = ("start", "tokens", "width", "k_blob", "v_blob")

    def __init__(self, start: int, tokens: int, width: int,
                 k_blob: bytes, v_blob: bytes) -> None:
        self.start = start
        self.tokens = tokens
        self.width = width
        self.k_blob = k_blob
        self.v_blob = v_blob


class KVCacheSession:
    """Append-only quantized KV cache with token-budget eviction.

    Parameters
    ----------
    n_layers:
        Number of transformer layers (independent K/V streams).
    policy:
        A :class:`KVPolicy`, a catalog format name, or a policy spec
        dict. Default: ``m2xfp`` on every layer, weight path.
    max_tokens:
        Per-layer token budget; ``None`` disables eviction.
    sink_tokens:
        Blocks beginning inside the first ``sink_tokens`` stream
        positions are never evicted (StreamingLM-style attention sinks).
    dispatch:
        Kernel dispatch mode pinned for every quantization this session
        runs (``inherit`` / ``fast`` / ``reference`` / ``bittwiddle`` —
        bit-identical by the parity contract).
    session_id:
        Stable identifier; auto-generated when omitted.
    verify:
        When True (default), every append cross-checks the fresh
        container: on the fused quantize→pack path each packed stream
        is unpacked and compared against the executor's code arrays
        (O(bytes)); on the ``REPRO_NO_FUSED_PACK=1`` fallback the
        container is decoded against the format's own plan-routed
        quantize output — streamed state can never silently diverge
        from the batch path.

    Thread-safe: one lock serializes appends/reads/close, so a server
    can drive the session from worker threads.
    """

    def __init__(self, n_layers: int, policy=None, *,
                 max_tokens: int | None = None, sink_tokens: int = 0,
                 dispatch: str = "inherit", session_id: str | None = None,
                 verify: bool = True) -> None:
        n_layers = int(n_layers)
        if n_layers < 1:
            raise ConfigError(f"n_layers must be >= 1, got {n_layers}")
        if dispatch not in DISPATCH_MODES:
            raise ConfigError(f"dispatch must be one of {DISPATCH_MODES}, "
                              f"got {dispatch!r}")
        if max_tokens is not None:
            max_tokens = int(max_tokens)
            if max_tokens < 1:
                raise ConfigError(f"max_tokens must be >= 1 or None, "
                                  f"got {max_tokens}")
        sink_tokens = int(sink_tokens)
        if sink_tokens < 0:
            raise ConfigError(f"sink_tokens must be >= 0, "
                              f"got {sink_tokens}")
        if max_tokens is not None and sink_tokens >= max_tokens:
            raise ConfigError(f"sink_tokens ({sink_tokens}) must be < "
                              f"max_tokens ({max_tokens}); the sink "
                              f"region alone would exhaust the budget")
        self.n_layers = n_layers
        self.policy = KVPolicy() if policy is None \
            else KVPolicy.from_spec(policy)
        self.max_tokens = max_tokens
        self.sink_tokens = sink_tokens
        self.dispatch = dispatch
        self.verify = bool(verify)
        self.session_id = session_id if session_id \
            else f"kv-{next(_session_counter)}"
        self._lock = threading.Lock()
        self._closed = False
        self._blocks: list[list[_Block]] = [[] for _ in range(n_layers)]
        self._next_pos = [0] * n_layers
        self._stats = {"appends": 0, "tokens_appended": 0,
                       "evicted_blocks": 0, "evicted_tokens": 0,
                       "payload_bytes": 0, "header_bytes": 0,
                       "packed_elements": 0}
        # Per-stage encode timings, kept out of stats(): the wire CLOSE
        # ack pins that dict's JSON in the golden frames, and seconds
        # are not reproducible bytes.
        self._encode_stats = {"fused_encodes": 0, "quantize_s": 0.0,
                              "pack_s": 0.0, "verify_s": 0.0}
        obs_registry().register_collector(f"kv.{self.session_id}",
                                          self._collect_metrics)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def append(self, layer: int, k: np.ndarray, v: np.ndarray) -> dict:
        """Quantize and retain one (t, d_head) K/V block for ``layer``.

        Returns an acknowledgement dict (stream position, tokens held,
        eviction counts — the payload of the wire-protocol APPEND ack).
        """
        layer = self._check_layer(layer)
        k = np.asarray(k, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        if k.ndim != 2 or v.ndim != 2:
            raise ConfigError(f"K/V blocks must be 2-D (tokens, d_head); "
                              f"got k{k.shape} v{v.shape}")
        if k.shape != v.shape:
            raise ConfigError(f"K and V blocks must share a shape; "
                              f"got k{k.shape} v{v.shape}")
        if k.shape[0] < 1 or k.shape[1] < 1:
            raise ConfigError(f"K/V blocks must be non-empty; "
                              f"got shape {tuple(k.shape)}")
        tokens, width = k.shape
        fmt = self.policy.format_for(layer)
        from ..codec import collect_encode_stats, encode
        with _dispatch_scope(self.dispatch), collect_encode_stats() as es:
            pk = encode(fmt, k, op=self.policy.op, axis=-1,
                        verify=self.verify)
            pv = encode(fmt, v, op=self.policy.op, axis=-1,
                        verify=self.verify)
        k_blob, v_blob = pk.to_bytes(), pv.to_bytes()
        with self._lock:
            self._check_open()
            blocks = self._blocks[layer]
            if blocks and blocks[0].width != width:
                raise ConfigError(
                    f"layer {layer} blocks are {blocks[0].width} wide; "
                    f"an append of width {width} cannot join the stream")
            start = self._next_pos[layer]
            block = _Block(start, tokens, width, k_blob, v_blob)
            evicted = self._evict_for(blocks, block)
            blocks.append(block)
            self._next_pos[layer] = start + tokens
            self._stats["appends"] += 1
            self._stats["tokens_appended"] += tokens
            self._stats["evicted_blocks"] += len(evicted)
            evicted_tokens = sum(b.tokens for b in evicted)
            self._stats["evicted_tokens"] += evicted_tokens
            self._stats["payload_bytes"] += pk.payload_bytes \
                + pv.payload_bytes
            self._stats["header_bytes"] += pk.header_bytes \
                + pv.header_bytes
            self._stats["packed_elements"] += pk.n_elements + pv.n_elements
            self._encode_stats["fused_encodes"] += es["fused_encodes"]
            self._encode_stats["quantize_s"] += es["quantize_s"]
            self._encode_stats["pack_s"] += es["pack_s"]
            self._encode_stats["verify_s"] += es["verify_s"]
            held = sum(b.tokens for b in blocks)
        return {"session_id": self.session_id, "layer": layer,
                "start": start, "tokens": tokens, "tokens_held": held,
                "evicted_blocks": len(evicted),
                "evicted_tokens": evicted_tokens,
                "format": self.policy.name_for(layer)}

    def read(self, layer: int) -> tuple[np.ndarray, np.ndarray]:
        """Dequantize the retained cache for ``layer`` as (K, V).

        The concatenation (in stream order) of every retained block's
        decoded bytes; empty layers yield two ``(0, 0)`` arrays.
        """
        layer = self._check_layer(layer)
        with self._lock:
            self._check_open()
            blocks = list(self._blocks[layer])
        if not blocks:
            empty = np.zeros((0, 0), dtype=np.float64)
            return empty, empty.copy()
        from ..codec import decode
        fmt = self.policy.format_for(layer)
        ks = [decode(b.k_blob, fmt=fmt) for b in blocks]
        vs = [decode(b.v_blob, fmt=fmt) for b in blocks]
        return (np.concatenate(ks, axis=0), np.concatenate(vs, axis=0))

    def positions(self, layer: int) -> list[tuple[int, int]]:
        """Retained ``(start, tokens)`` spans for ``layer`` (stream
        order) — what :meth:`read` rows correspond to after eviction."""
        layer = self._check_layer(layer)
        with self._lock:
            self._check_open()
            return [(b.start, b.tokens) for b in self._blocks[layer]]

    def tokens_held(self, layer: int) -> int:
        layer = self._check_layer(layer)
        with self._lock:
            self._check_open()
            return sum(b.tokens for b in self._blocks[layer])

    def stats(self) -> dict:
        """Counters plus the measured packed footprint."""
        with self._lock:
            out = dict(self._stats)
            out["tokens_held"] = [sum(b.tokens for b in layer)
                                  for layer in self._blocks]
            out["closed"] = self._closed
        mbpe = measured_bits_per_element(out["payload_bytes"],
                                         out["packed_elements"])
        if mbpe is not None:
            out["measured_bits_per_element"] = mbpe
        return out

    def encode_stage_stats(self) -> dict:
        """Cumulative per-stage encode cost over every append.

        ``fused_encodes`` counts the encode() calls that rode the fused
        quantize→pack path; ``quantize_s`` / ``pack_s`` / ``verify_s``
        are the stage seconds from the codec's stage sink. Separate from
        :meth:`stats` because the wire CLOSE ack serializes that dict
        verbatim into golden-pinned frames.
        """
        with self._lock:
            return dict(self._encode_stats)

    def _collect_metrics(self) -> dict:
        """Registry collector view: counters plus per-stage encode cost
        (prefixed, so the snapshot stays one flat JSON-safe dict)."""
        out = self.stats()
        for key, val in self.encode_stage_stats().items():
            out[f"encode_{key}"] = val
        return out

    def info(self) -> dict:
        """JSON-safe session description (wire/HTTP OPEN acks)."""
        return {"session_id": self.session_id, "n_layers": self.n_layers,
                "max_tokens": self.max_tokens,
                "sink_tokens": self.sink_tokens, "dispatch": self.dispatch,
                "verify": self.verify, "policy": self.policy.spec()}

    def close(self) -> dict:
        """Close the session; further appends/reads raise ``ConfigError``.

        Idempotent; returns the final :meth:`stats` snapshot either way.
        """
        with self._lock:
            self._closed = True
        obs_registry().unregister_collector(f"kv.{self.session_id}")
        return {**self.stats(), "closed": True}

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "KVCacheSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_layer(self, layer) -> int:
        layer = int(layer)
        if not 0 <= layer < self.n_layers:
            raise ConfigError(f"layer must be in [0, {self.n_layers}), "
                              f"got {layer}")
        return layer

    def _check_open(self) -> None:
        if self._closed:
            raise ConfigError(f"session {self.session_id} is closed; "
                              f"open a new session to continue")

    def _evict_for(self, blocks: list[_Block], new: _Block) -> list[_Block]:
        """Drop oldest evictable blocks until ``new`` fits the budget.

        Mutates ``blocks`` and returns what was dropped; raises (leaving
        ``blocks`` untouched) when even maximal eviction cannot fit the
        append — the budget invariant must hold *after every append*,
        so an impossible append is refused, never partially applied.
        """
        if self.max_tokens is None:
            return []
        held = sum(b.tokens for b in blocks)
        overshoot = held + new.tokens - self.max_tokens
        if overshoot <= 0:
            return []
        evictable = [b for b in blocks if b.start >= self.sink_tokens]
        budget = sum(b.tokens for b in evictable)
        if overshoot > budget:
            pinned = held - budget
            raise ConfigError(
                f"append of {new.tokens} tokens cannot fit the "
                f"{self.max_tokens}-token budget: {pinned} tokens are "
                f"pinned (sinks), only {budget} are evictable")
        evicted: list[_Block] = []
        for b in evictable:  # oldest first — blocks is in stream order
            if overshoot <= 0:
                break
            evicted.append(b)
            overshoot -= b.tokens
        for b in evicted:
            blocks.remove(b)
        return evicted
