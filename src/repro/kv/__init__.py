"""Streaming KV-cache quantization sessions (paper Sec. 6.4, served).

``KVCacheSession`` is the stateful serving workload on top of the codec
and plan layers: decode steps append K/V blocks per layer, each block is
quantized through the plan-compiled kernels and stored as packed
container bytes, and a token budget evicts old blocks (sliding window
with an optional keep-first-N "sink" region). ``KVPolicy`` picks the
catalog format per layer, so mixed-precision caches (e.g. ``m2xfp``
everywhere but ``elem-em`` on the embedding-adjacent layers) are one
dict away.
"""

from .session import KVCacheSession, KVPolicy

__all__ = ["KVCacheSession", "KVPolicy"]
