"""Batched quantization serving layer (the deployment-shaped front end).

One class, :class:`QuantService`: submit tensors, get futures; compatible
requests are micro-batched into single kernel-dispatched passes (bit-
identical to per-tensor quantization), weight requests are memoized, and
``packed=True`` returns true-bit-width :class:`repro.codec.PackedTensor`
containers with measured-vs-nominal footprint reporting.

Example::

    from repro.serve import QuantService
    with QuantService("m2xfp", packed=True) as svc:
        pt = svc.quantize(weights, op="weight")
        print(svc.stats()["measured_bits_per_element"])
"""

from .service import QuantService

__all__ = ["QuantService"]
