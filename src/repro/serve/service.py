"""Batched quantization service over the kernel-dispatched formats.

``QuantService`` is the deployment-shaped entry point the ROADMAP's
"serves heavy traffic" goal asks for: callers ``submit()`` tensors and
get futures back, a collector thread micro-batches compatible requests
(same operand path, same reduction width) into one kernel-dispatched
quantization pass, and an optional thread pool overlaps independent
batches (NumPy releases the GIL inside the hot loops). Group-wise
formats quantize each group independently, so stacking requests row-wise
is *bit-identical* to quantizing them one by one — the batching is a
pure throughput move, asserted in ``tests/test_serve.py``. Tensor-scoped
formats (NVFP4 / M2-NVFP4, whose tensor-level scale depends on the whole
input) are detected and never cross-batched.

Weight-path requests are memoized per (format fingerprint, kernel
dispatch mode, tensor digest) — the service-side analogue of the
``QuantizedLM`` weight cache — so re-submitting the same weights costs a
hash. ``REPRO_NO_WEIGHT_CACHE=1`` disables this too (documented in the
README's environment-knob table).

With ``packed=True`` results are :class:`~repro.codec.PackedTensor`
containers instead of dequantized arrays, and :meth:`QuantService.stats`
reports the measured bytes-per-element against the format's nominal EBW
— the number the paper's storage claims are about.

Example::

    from repro.serve import QuantService

    with QuantService("m2xfp", max_batch=32) as svc:
        futs = [svc.submit(x, op="activation") for x in activations]
        outs = [f.result() for f in futs]          # == per-tensor quantize
    svc.stats()["batches"]                          # « len(activations)
"""

from __future__ import annotations

import hashlib
import os
import queue
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import contextmanager

import numpy as np

from ..core.m2xfp import M2NVFP4
from ..errors import ConfigError
from ..models.quantized import NO_WEIGHT_CACHE_ENV
from ..mx.base import TensorFormat
from ..mx.max_preserve import MaxPreserving
from ..mx.nvfp import NVFP4
from ..obs import current_trace, measured_bits_per_element, \
    metrics_enabled, use_trace
from ..obs import registry as obs_registry

__all__ = ["QuantService", "DISPATCH_MODES"]

_OPS = ("weight", "activation")

#: Kernel dispatch modes a service can pin (``"inherit"`` = caller's env).
DISPATCH_MODES = ("inherit", "fast", "reference", "bittwiddle")

#: Serializes pinned-dispatch batch execution: the dispatch override is
#: process-global, so only one non-inherit scope may be active at a time.
#: All dispatch modes are bit-identical by the kernel parity contract, so
#: a scope transiently observed by an inherit-mode thread changes speed,
#: never values.
_DISPATCH_LOCK = threading.Lock()


@contextmanager
def _dispatch_scope(mode: str):
    """Execute a batch under the service's pinned kernel dispatch mode."""
    if mode == "inherit":
        yield
        return
    from ..kernels.dispatch import BITTWIDDLE_ENV, fast_kernels, \
        reference_kernels
    with _DISPATCH_LOCK:
        if mode == "reference":
            with reference_kernels():
                yield
            return
        # Both fast flavours must pin the bittwiddle knob too: "fast"
        # masks an ambient REPRO_BITTWIDDLE=1, "bittwiddle" forces it.
        old = os.environ.get(BITTWIDDLE_ENV)
        os.environ[BITTWIDDLE_ENV] = "1" if mode == "bittwiddle" else "0"
        try:
            with fast_kernels():
                yield
        finally:
            if old is None:
                os.environ.pop(BITTWIDDLE_ENV, None)
            else:
                os.environ[BITTWIDDLE_ENV] = old


def _tensor_scoped(fmt) -> bool:
    """True when quantization depends on whole-tensor state (no batching)."""
    if isinstance(fmt, (NVFP4, M2NVFP4)):
        return True
    if isinstance(fmt, MaxPreserving):
        return _tensor_scoped(fmt.inner)
    return False


def _digest(x: np.ndarray) -> str:
    h = hashlib.sha256()
    h.update(str(x.shape).encode())
    h.update(x.tobytes())
    return h.hexdigest()[:24]


class _Request:
    __slots__ = ("x", "op", "future", "trace", "t_enqueue", "t_dequeue")

    def __init__(self, x: np.ndarray, op: str, future: Future) -> None:
        self.x = x
        self.op = op
        self.future = future
        self.trace = None       # TraceContext riding with the request
        self.t_enqueue = None   # perf_counter stamps; None when both
        self.t_dequeue = None   # metrics and tracing are off


class QuantService:
    """Micro-batching quantize/dequantize (or pack) service for one format.

    Parameters
    ----------
    fmt:
        A :class:`TensorFormat` or a catalog name (``"m2xfp"``).
    packed:
        Return :class:`~repro.codec.PackedTensor` containers instead of
        dequantized arrays, and track measured vs nominal footprint.
    max_batch / max_delay_s:
        Micro-batch limits: the collector closes a batch at
        ``max_batch`` requests or ``max_delay_s`` after its first one.
    workers:
        ``> 0`` processes batches on a thread pool of that size;
        ``0`` (default) processes them on the collector thread.
    dispatch:
        ``"inherit"`` (default) uses whatever kernel dispatch the
        environment selects at batch time; ``"fast"`` / ``"reference"``
        / ``"bittwiddle"`` pin the mode for every batch this service
        runs (all modes are bit-identical — the pin is a debugging /
        serving-contract tool, not a semantic switch).
    """

    def __init__(self, fmt: TensorFormat | str, *, packed: bool = False,
                 max_batch: int = 64, max_delay_s: float = 0.002,
                 workers: int = 0, dispatch: str = "inherit") -> None:
        fmt_name = fmt if isinstance(fmt, str) else type(fmt).__name__.lower()
        if isinstance(fmt, str):
            from ..runner.formats import make_format
            fmt = make_format(fmt)
        if max_batch < 1:
            raise ConfigError("max_batch must be >= 1")
        if dispatch not in DISPATCH_MODES:
            raise ConfigError(f"dispatch must be one of {DISPATCH_MODES}, "
                              f"got {dispatch!r}")
        self.dispatch = dispatch
        self.fmt = fmt
        self.packed = bool(packed)
        self.max_batch = int(max_batch)
        self.max_delay_s = float(max_delay_s)
        self._batchable = not (_tensor_scoped(fmt) or self.packed)
        self._queue: queue.Queue[_Request | None] = queue.Queue()
        self._pool = ThreadPoolExecutor(max_workers=workers) if workers else None
        self._lock = threading.Lock()
        self._stats = {"requests": 0, "batches": 0, "batched_requests": 0,
                       "elements": 0, "weight_cache_hits": 0,
                       "payload_bytes": 0, "header_bytes": 0,
                       "packed_elements": 0, "fused_encodes": 0,
                       "quantize_s": 0.0, "pack_s": 0.0}
        self._weight_cache: dict = {}
        self._closed = False
        # Telemetry: the service registers a zero-overhead collector view
        # of its counters under ``serve.<arm>`` and owns one gated
        # latency histogram (submit -> finish, seconds). Naming scheme
        # per DESIGN.md §12.
        self.arm = (f"{fmt_name}:{dispatch}:"
                    f"{'packed' if self.packed else 'unpacked'}")
        self._registry = obs_registry()
        self._registry.register_collector(f"serve.{self.arm}", self.stats)
        self._latency = self._registry.histogram(f"serve.{self.arm}.latency")
        self._collector = threading.Thread(target=self._collect_loop,
                                           name="quant-service", daemon=True)
        self._collector.start()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def submit(self, x: np.ndarray, op: str = "activation", *,
               trace=None) -> Future:
        """Enqueue one tensor; the future resolves to the quantized result
        (a dequantized array, or a ``PackedTensor`` when ``packed=True``).

        ``trace`` attaches a :class:`~repro.obs.TraceContext` so the
        collector can attribute queue/batch/quantize spans to the
        request; when omitted, the calling thread's current trace (if
        any) is picked up. An explicit kwarg exists because servers
        submit via ``asyncio.to_thread``, which hops threads and loses
        the thread-local.
        """
        if op not in _OPS:
            raise ConfigError(f"op must be one of {_OPS}, got {op!r}")
        fut: Future = Future()
        req = _Request(np.asarray(x, dtype=np.float64), op, fut)
        req.trace = trace if trace is not None else current_trace()
        if req.trace is not None or metrics_enabled():
            req.t_enqueue = time.perf_counter()
        cached = self._weight_lookup(req)
        # The closed-check and the enqueue are atomic against close(), so
        # a request either lands ahead of the shutdown sentinel (and is
        # processed) or raises — a future can never be left unresolved.
        with self._lock:
            if self._closed:
                raise ConfigError(
                    "QuantService is closed; submit() is no longer accepted")
            if cached is None and not self._collector.is_alive():
                raise ConfigError(
                    "QuantService collector thread has died; the service "
                    "cannot process new requests — create a fresh one")
            self._stats["requests"] += 1
            if cached is not None:
                self._stats["weight_cache_hits"] += 1
            else:
                self._queue.put(req)
        if cached is not None:
            fut.set_result(cached)
        return fut

    def quantize(self, x: np.ndarray, op: str = "activation"):
        """Synchronous single-tensor path (submit + wait on one future).

        On a batchable service this still rides the micro-batch window
        (up to ``max_delay_s`` of latency); packed or tensor-scoped
        services dispatch immediately.
        """
        return self.submit(x, op).result()

    def quantize_batch(self, tensors, op: str = "activation") -> list:
        """Submit many tensors at once and wait for all results."""
        futures = [self.submit(x, op) for x in tensors]
        return [f.result() for f in futures]

    def stats(self) -> dict:
        """Counters, plus measured-vs-nominal footprint when packing."""
        with self._lock:
            out = dict(self._stats)
        mbpe = measured_bits_per_element(out["payload_bytes"],
                                         out["packed_elements"])
        if mbpe is not None:
            out["measured_bits_per_element"] = mbpe
        out["nominal_bits_per_element"] = {
            "weight": self.fmt.weight_ebw,
            "activation": self.fmt.activation_ebw,
        }
        return out

    def close(self) -> None:
        """Drain the queue, stop the collector, release the pool.

        Every accepted future is resolved before this returns: normally
        with its result (the collector processes everything ahead of the
        shutdown sentinel), or — if the collector died — with a
        :class:`ConfigError`. ``close()`` never hangs and never strands
        a waiter.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            # Enqueued under the same lock as submit(): every accepted
            # request sits ahead of this sentinel.
            self._queue.put(None)
        self._collector.join()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        # A dead collector leaves its queue (and sentinel) behind; error
        # the stranded futures instead of letting callers wait forever.
        self._drain_queue()
        self._registry.unregister_collector(f"serve.{self.arm}")
        self._registry.unregister_metric(f"serve.{self.arm}.latency")

    def __enter__(self) -> "QuantService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Weight memoization
    # ------------------------------------------------------------------
    def _weight_key(self, req: _Request):
        if req.op != "weight" or \
                os.environ.get(NO_WEIGHT_CACHE_ENV, "0") == "1":
            return None
        fmt_key = self.fmt.weight_cache_key
        if fmt_key is None:
            return None
        reference, bittwiddle = self._dispatch_flags()
        return (fmt_key, reference, bittwiddle, self.packed, _digest(req.x))

    def _dispatch_flags(self) -> tuple[bool, bool]:
        """(reference, bittwiddle) under this service's dispatch mode."""
        if self.dispatch == "inherit":
            from ..kernels.dispatch import use_bittwiddle, use_reference
            return use_reference(), use_bittwiddle()
        return (self.dispatch == "reference", self.dispatch == "bittwiddle")

    def _weight_lookup(self, req: _Request):
        """Cached result for a weight request (stats counted by submit)."""
        key = self._weight_key(req)
        if key is None:
            return None
        with self._lock:
            return self._weight_cache.get(key)

    def _weight_store(self, req: _Request, result) -> None:
        key = self._weight_key(req)
        if key is not None:
            with self._lock:
                self._weight_cache[key] = result

    # ------------------------------------------------------------------
    # Collector / execution
    # ------------------------------------------------------------------
    def _collect_loop(self) -> None:
        batch: list[_Request] = []
        try:
            while True:
                req = self._queue.get()
                if req is None:
                    return
                if req.t_enqueue is not None:
                    req.t_dequeue = time.perf_counter()
                batch = [req]
                # Waiting for companions only pays when requests can
                # actually be stacked; packed/tensor-scoped services run
                # solo anyway.
                deadline = (time.monotonic() + self.max_delay_s
                            if self._batchable else time.monotonic())
                while len(batch) < self.max_batch:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 and self._queue.empty():
                        break
                    try:
                        nxt = self._queue.get(timeout=max(0.0, remaining))
                    except queue.Empty:
                        break
                    if nxt is None:
                        self._run_batch(batch)
                        batch = []
                        return
                    if nxt.t_enqueue is not None:
                        nxt.t_dequeue = time.perf_counter()
                    batch.append(nxt)
                self._run_batch(batch)
                batch = []
        finally:
            # On any exit — clean shutdown or a crash in batch dispatch —
            # no accepted future may be left pending: error whatever this
            # thread was holding plus everything still queued.
            self._drain_requests(batch)
            self._drain_queue()

    def _drain_requests(self, reqs: list[_Request]) -> None:
        """Resolve still-pending futures with a shutdown error."""
        for req in reqs:
            if not req.future.done():
                req.future.set_exception(ConfigError(
                    "QuantService shut down before this request was "
                    "processed"))

    def _drain_queue(self) -> None:
        """Error every request still sitting in the intake queue."""
        leftovers: list[_Request] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not None:
                leftovers.append(item)
        self._drain_requests(leftovers)

    def _run_batch(self, batch: list[_Request]) -> None:
        groups: dict = {}
        for req in batch:
            key = (req.op, req.x.shape[-1] if req.x.ndim else 0) \
                if self._batchable and req.x.ndim >= 1 else ("solo", id(req))
            groups.setdefault(key, []).append(req)
        for key, reqs in groups.items():
            if self._pool is not None:
                self._pool.submit(self._process_group, key, reqs)
            else:
                self._process_group(key, reqs)

    def _process_group(self, key, reqs: list[_Request]) -> None:
        try:
            if any(r.trace is not None for r in reqs):
                t_exec = time.perf_counter()
                for req in reqs:
                    if req.trace is None:
                        continue
                    # Queue wait (enqueue -> dequeue) and batch formation
                    # (dequeue -> execution start), per the span schema.
                    t_deq = req.t_dequeue or t_exec
                    req.trace.add_span("queue", req.t_enqueue, t_deq)
                    req.trace.add_span("batch", t_deq, t_exec)
            with _dispatch_scope(self.dispatch):
                if key[0] in _OPS and len(reqs) > 1:
                    self._process_stacked(reqs, op=key[0])
                else:
                    for req in reqs:
                        self._finish(req, self._quantize_one(req))
            with self._lock:
                self._stats["batches"] += 1
                self._stats["elements"] += sum(r.x.size for r in reqs)
        except BaseException as exc:  # surface on every waiting future
            for req in reqs:
                if not req.future.done():
                    req.future.set_exception(exc)

    def _process_stacked(self, reqs: list[_Request], op: str) -> None:
        """One kernel pass over row-stacked requests (bit-exact split)."""
        width = reqs[0].x.shape[-1]
        mats = [r.x.reshape(-1, width) for r in reqs]
        rows = np.cumsum([m.shape[0] for m in mats])[:-1]
        stacked = np.concatenate(mats, axis=0)
        fn = (self.fmt.quantize_weight if op == "weight"
              else self.fmt.quantize_activation)
        traced = [r for r in reqs if r.trace is not None]
        t0 = time.perf_counter() if traced else 0.0
        out = fn(stacked, axis=-1)
        if traced:
            t1 = time.perf_counter()
            for req in traced:  # one kernel pass covers the whole stack
                req.trace.add_span("quantize", t0, t1)
        with self._lock:
            self._stats["batched_requests"] += len(reqs)
        for req, part in zip(reqs, np.split(out, rows, axis=0)):
            self._finish(req, part.reshape(req.x.shape))

    def _quantize_one(self, req: _Request):
        if self.packed:
            from ..codec import collect_encode_stats, encode
            # use_trace rebinds the request's context on this (collector
            # or pool) thread so the codec's stage timers can attach
            # quantize/pack/verify spans to the right request.
            with use_trace(req.trace), collect_encode_stats() as es:
                pt = encode(self.fmt, req.x, op=req.op, axis=-1)
            with self._lock:
                self._stats["payload_bytes"] += pt.payload_bytes
                self._stats["header_bytes"] += pt.header_bytes
                self._stats["packed_elements"] += pt.n_elements
                self._stats["fused_encodes"] += es["fused_encodes"]
                self._stats["quantize_s"] += es["quantize_s"]
                self._stats["pack_s"] += es["pack_s"]
            return pt
        fn = (self.fmt.quantize_weight if req.op == "weight"
              else self.fmt.quantize_activation)
        if req.trace is not None:
            with req.trace.span("quantize"):
                return fn(req.x, axis=-1)
        return fn(req.x, axis=-1)

    def _finish(self, req: _Request, result) -> None:
        self._weight_store(req, result)
        req.future.set_result(result)
        if req.t_enqueue is not None:
            self._latency.observe(time.perf_counter() - req.t_enqueue)
