"""Evaluation harness: perplexity, output MSE, synthetic task accuracy.

The grid entry points run through the single-pass multi-format engine
in :mod:`repro.eval.engine` (disable with ``REPRO_NO_EVAL_ENGINE=1``).
"""

from .engine import EvalEngine, default_engine, engine_enabled
from .harness import accuracy_table, average_accuracy_loss
from .mse import model_output_mse, tensor_mse
from .perplexity import perplexity_table, quantized_perplexity
from .tasks import (REASONING_TASKS, ZERO_SHOT_TASKS, TaskItems, TaskSpec,
                    accuracy, build_task_items, evaluate_format_on_task,
                    score_items)

__all__ = [
    "EvalEngine", "default_engine", "engine_enabled",
    "quantized_perplexity", "perplexity_table",
    "model_output_mse", "tensor_mse",
    "TaskSpec", "TaskItems", "ZERO_SHOT_TASKS", "REASONING_TASKS",
    "build_task_items", "score_items", "accuracy", "evaluate_format_on_task",
    "accuracy_table", "average_accuracy_loss",
]
