"""Model-output MSE vs the FP16 baseline — the Figs. 6-7 DSE metric.

The paper measures mean squared error between the logits of the fully
quantized model (weights *and* activations) and the FP16 model on the same
input text. We normalize by the FP16 logit second moment so values are
comparable across profiles.
"""

from __future__ import annotations

import numpy as np

from ..models.profiles import ProfileRuntime
from ..models.quantized import QuantizedLM
from ..mx.base import TensorFormat

__all__ = ["model_output_mse", "tensor_mse"]


def model_output_mse(runtime: ProfileRuntime, fmt: TensorFormat,
                     max_seq: int | None = 6) -> float:
    """Normalized logit MSE of a quantized model against FP16."""
    tokens = runtime.tokens[:max_seq] if max_seq else runtime.tokens
    ref = runtime.model.forward(tokens)
    qlm = QuantizedLM(runtime.model, fmt, calibration_tokens=runtime.calib_tokens)
    out = qlm.forward(tokens)
    return float(np.mean((out - ref) ** 2) / np.mean(ref ** 2))


def tensor_mse(x: np.ndarray, fmt: TensorFormat, weight_path: bool = False) -> float:
    """Normalized tensor-level quantization MSE of a format."""
    x = np.asarray(x, dtype=np.float64)
    dq = fmt.quantize_weight(x) if weight_path else fmt.quantize_activation(x)
    denom = float(np.mean(x ** 2))
    if denom == 0.0:
        return 0.0
    return float(np.mean((dq - x) ** 2) / denom)
