"""Perplexity evaluation of quantized models (the Tbl. 3 / 6 / 8 metric)."""

from __future__ import annotations

import numpy as np

from ..models.profiles import ProfileRuntime, load_runtime
from ..models.quantized import Fp16Format, QuantizedLM
from ..mx.base import TensorFormat

__all__ = ["quantized_perplexity", "perplexity_table"]


def quantized_perplexity(runtime: ProfileRuntime, fmt: TensorFormat) -> float:
    """Wikitext-style perplexity of ``fmt`` applied W&A on a profile."""
    if isinstance(fmt, Fp16Format):
        return runtime.fp16_ppl
    qlm = QuantizedLM(runtime.model, fmt, calibration_tokens=runtime.calib_tokens)
    return qlm.perplexity(runtime.tokens)


def perplexity_table(profile_keys: list[str], formats: dict[str, TensorFormat],
                     n_seq: int | None = None,
                     seq_len: int | None = None) -> dict[str, dict[str, float]]:
    """Perplexity grid: ``{format_name: {profile_key: ppl}}``.

    Always includes an ``fp16`` row as the reference.
    """
    table: dict[str, dict[str, float]] = {"fp16": {}}
    for name in formats:
        table[name] = {}
    for key in profile_keys:
        runtime = load_runtime(key, n_seq=n_seq, seq_len=seq_len)
        table["fp16"][key] = runtime.fp16_ppl
        for name, fmt in formats.items():
            table[name][key] = quantized_perplexity(runtime, fmt)
    return table
