"""Perplexity evaluation of quantized models (the Tbl. 3 / 6 / 8 metric).

Both entry points route through the single-pass evaluation engine
(:mod:`repro.eval.engine`): runtimes load once, ``QuantizedLM`` arms
and their perplexities are shared across every caller in the process.
``REPRO_NO_EVAL_ENGINE=1`` selects the original per-cell code below —
bit-identical results, re-derived per call.
"""

from __future__ import annotations

from ..models.profiles import ProfileRuntime, load_runtime
from ..models.quantized import Fp16Format, QuantizedLM
from ..mx.base import TensorFormat
from .engine import default_engine, engine_enabled

__all__ = ["quantized_perplexity", "perplexity_table"]


def quantized_perplexity(runtime: ProfileRuntime, fmt: TensorFormat) -> float:
    """Wikitext-style perplexity of ``fmt`` applied W&A on a profile."""
    if engine_enabled():
        return default_engine().perplexity(runtime, fmt)
    if isinstance(fmt, Fp16Format):
        return runtime.fp16_ppl
    qlm = QuantizedLM(runtime.model, fmt, calibration_tokens=runtime.calib_tokens)
    return qlm.perplexity(runtime.tokens)


def perplexity_table(profile_keys: list[str], formats: dict[str, TensorFormat],
                     n_seq: int | None = None,
                     seq_len: int | None = None) -> dict[str, dict[str, float]]:
    """Perplexity grid: ``{format_name: {profile_key: ppl}}``.

    Always includes an ``fp16`` row as the reference.
    """
    if engine_enabled():
        return default_engine().perplexity_grid(list(profile_keys), formats,
                                                n_seq=n_seq, seq_len=seq_len)
    table: dict[str, dict[str, float]] = {"fp16": {}}
    for name in formats:
        table[name] = {}
    for key in profile_keys:
        runtime = load_runtime(key, n_seq=n_seq, seq_len=seq_len)
        table["fp16"][key] = runtime.fp16_ppl
        for name, fmt in formats.items():
            table[name][key] = quantized_perplexity(runtime, fmt)
    return table
