"""Grid runners shared by the experiment scripts.

``accuracy_table`` routes through the single-pass evaluation engine
(:mod:`repro.eval.engine`) — one runtime load, one task-item build and
one ``QuantizedLM`` per format arm for the whole grid.
``REPRO_NO_EVAL_ENGINE=1`` selects the original per-cell path below
(bit-identical results).
"""

from __future__ import annotations

from ..models.profiles import load_runtime
from ..mx.base import TensorFormat
from .engine import default_engine, engine_enabled
from .tasks import TaskSpec, build_task_items, evaluate_format_on_task

__all__ = ["accuracy_table", "average_accuracy_loss"]


def accuracy_table(profile_key: str, tasks: dict[str, TaskSpec],
                   fp16_targets: dict[str, float],
                   formats: dict[str, TensorFormat],
                   n_seq: int | None = None,
                   seq_len: int | None = None) -> dict[str, dict[str, float]]:
    """Accuracy grid ``{format: {task: percent}}`` incl. the fp16 row."""
    if engine_enabled():
        return default_engine().accuracy_grid(profile_key, tasks, fp16_targets,
                                              formats, n_seq=n_seq,
                                              seq_len=seq_len)
    runtime = load_runtime(profile_key, n_seq=n_seq, seq_len=seq_len)
    table: dict[str, dict[str, float]] = {"fp16": {}}
    for name in formats:
        table[name] = {}
    for task_name, spec in tasks.items():
        items = build_task_items(runtime, spec)
        target = fp16_targets[task_name]
        table["fp16"][task_name] = evaluate_format_on_task(runtime, items, None, target)
        for name, fmt in formats.items():
            table[name][task_name] = evaluate_format_on_task(runtime, items, fmt, target)
    return table


def average_accuracy_loss(table: dict[str, dict[str, float]], fmt_name: str) -> float:
    """Mean accuracy drop of a format vs the fp16 row (percentage points)."""
    fp16 = table["fp16"]
    fmt = table[fmt_name]
    return sum(fp16[t] - fmt[t] for t in fp16) / len(fp16)
