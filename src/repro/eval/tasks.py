"""Synthetic zero-shot / reasoning task accuracy (Tbls. 2 and 4).

Each task is a set of multiple-choice items built from the profile's own
teacher model: a context sampled from the teacher plus ``n_choices``
candidate continuations sampled at an item temperature. Models score items
by total continuation log-likelihood and answer with the argmax, exactly
like lm-evaluation-harness scores such tasks.

Gold labels agree with the *teacher's* argmax with probability ``p``
calibrated so the FP16 model hits the paper's reported accuracy; otherwise
the gold is uniform over the choices. A quantized model can therefore only
lose accuracy through argmax flips caused by logit perturbation — the same
mechanism the paper measures. Reasoning tasks use lower sampling
temperatures and longer continuations, which tighten decision margins and
reproduce their larger sensitivity to 4-bit noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..models.layers import softmax
from ..models.profiles import ProfileRuntime
from ..models.quantized import QuantizedLM
from ..mx.base import TensorFormat

__all__ = ["TaskSpec", "TaskItems", "ZERO_SHOT_TASKS", "REASONING_TASKS",
           "build_task_items", "score_items", "accuracy",
           "evaluate_format_on_task"]


@dataclass(frozen=True)
class TaskSpec:
    """Difficulty/shape parameters of a synthetic benchmark task."""

    name: str
    n_choices: int = 4
    n_items: int = 48
    context_len: int = 20
    cont_len: int = 8
    temperature: float = 1.3
    seed: int = 0


#: Analogues of the six lm-eval zero-shot tasks in Tbl. 2.
ZERO_SHOT_TASKS: dict[str, TaskSpec] = {t.name: t for t in (
    TaskSpec("arc-e", n_choices=4, seed=101),
    TaskSpec("arc-c", n_choices=4, temperature=1.15, seed=102),
    TaskSpec("hellaswag", n_choices=4, cont_len=12, seed=103),
    TaskSpec("piqa", n_choices=2, seed=104),
    TaskSpec("winogrande", n_choices=2, temperature=1.15, seed=105),
    TaskSpec("boolq", n_choices=2, cont_len=6, seed=106),
)}

#: Analogues of the five reasoning suites in Tbl. 4 (tighter margins).
REASONING_TASKS: dict[str, TaskSpec] = {t.name: t for t in (
    TaskSpec("aime", n_choices=4, temperature=1.02, cont_len=20, seed=201),
    TaskSpec("math-500", n_choices=4, temperature=1.05, cont_len=16, seed=202),
    TaskSpec("gsm8k", n_choices=4, temperature=1.08, cont_len=14, seed=203),
    TaskSpec("gpqa", n_choices=4, temperature=1.03, cont_len=16, seed=204),
    TaskSpec("livecodebench", n_choices=4, temperature=1.02, cont_len=20, seed=205),
)}


@dataclass
class TaskItems:
    """Materialized items: contexts, choice continuations, teacher scores."""

    spec: TaskSpec
    contexts: np.ndarray        # (n_items, context_len)
    choices: np.ndarray         # (n_items, n_choices, cont_len)
    teacher_scores: np.ndarray  # (n_items, n_choices)


def build_task_items(runtime: ProfileRuntime, spec: TaskSpec) -> TaskItems:
    """Sample a task's items from the profile's teacher model."""
    model = runtime.model
    rng = np.random.default_rng(runtime.profile.seed * 7919 + spec.seed)
    contexts = model.sample(spec.n_items, spec.context_len, rng)
    repeated = np.repeat(contexts, spec.n_choices, axis=0)
    conts = model.continue_sequences(repeated, spec.cont_len, rng,
                                     temperature=spec.temperature)
    choices = conts.reshape(spec.n_items, spec.n_choices, spec.cont_len)
    teacher = score_items(model.forward, contexts, choices)
    return TaskItems(spec=spec, contexts=contexts, choices=choices,
                     teacher_scores=teacher)


def score_items(forward, contexts: np.ndarray, choices: np.ndarray) -> np.ndarray:
    """Continuation log-likelihood of every (item, choice) pair."""
    n_items, n_choices, cont_len = choices.shape
    ctx_len = contexts.shape[1]
    seqs = np.concatenate(
        [np.repeat(contexts, n_choices, axis=0),
         choices.reshape(n_items * n_choices, cont_len)], axis=1)
    logits = forward(seqs)
    logp = np.log(softmax(logits) + 1e-30)
    # Token at position t is predicted by logits at t-1.
    scores = np.zeros(n_items * n_choices)
    for j in range(cont_len):
        pos = ctx_len + j
        tok = seqs[:, pos]
        scores += logp[np.arange(seqs.shape[0]), pos - 1, tok]
    return scores.reshape(n_items, n_choices)


def gold_labels(items: TaskItems, fp16_accuracy: float,
                rng: np.random.Generator) -> np.ndarray:
    """Labels agreeing with the teacher argmax at the calibrated rate."""
    k = items.spec.n_choices
    if not 0.0 <= fp16_accuracy <= 1.0:
        raise ConfigError("fp16_accuracy must be a fraction in [0, 1]")
    p = (fp16_accuracy - 1.0 / k) / (1.0 - 1.0 / k)
    p = float(np.clip(p, 0.0, 1.0))
    teacher_best = np.argmax(items.teacher_scores, axis=1)
    random_pick = rng.integers(0, k, size=teacher_best.shape[0])
    use_teacher = rng.random(teacher_best.shape[0]) < p
    return np.where(use_teacher, teacher_best, random_pick)


def accuracy(scores: np.ndarray, gold: np.ndarray) -> float:
    """Fraction of items whose argmax matches the gold label (percent)."""
    return float(np.mean(np.argmax(scores, axis=1) == gold)) * 100.0


def evaluate_format_on_task(runtime: ProfileRuntime, items: TaskItems,
                            fmt: TensorFormat | None,
                            fp16_accuracy: float) -> float:
    """Accuracy (percent) of a format on a task; ``None`` = FP16."""
    rng = np.random.default_rng(items.spec.seed * 31337 + runtime.profile.seed)
    gold = gold_labels(items, fp16_accuracy / 100.0, rng)
    if fmt is None:
        return accuracy(items.teacher_scores, gold)
    qlm = QuantizedLM(runtime.model, fmt, calibration_tokens=runtime.calib_tokens)
    scores = score_items(qlm.forward, items.contexts, items.choices)
    return accuracy(scores, gold)
