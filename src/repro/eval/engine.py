"""Single-pass multi-format evaluation engine (the Tbl. 2/3/4/6/8 path).

The paper's headline tables are grids of many formats x profiles x
tasks, and the legacy helpers paid per *cell*: every
``quantized_perplexity`` call rebuilt a ``QuantizedLM`` wrapper (with
its calibration forward), every ``accuracy_table`` call rebuilt task
items, and nothing was shared between experiments evaluating the same
(profile, format) pair. The engine makes the whole grid single-pass:

* **runtimes** load once through the bounded keyed LRU over
  :func:`repro.models.profiles.load_runtime` (calibration is seconds
  per profile — by far the dominant fixed cost);
* **wrappers** (``QuantizedLM``) are cached per (profile corpus,
  format fingerprint, dispatch mode, storage mode) and shared across
  perplexity and every task of every experiment in the process —
  offline weight quantization and activation calibration happen once
  per arm;
* **task items** (contexts, choices, teacher scores — the fp16
  reference pass) are built once per (profile corpus, task spec) and
  shared across all format arms; gold labels are derived once per task
  and reused, exactly as the per-call reseeded RNG would;
* **perplexities** are memoized per arm, so ``tbl8``'s floor-rule
  cells reuse ``tbl3``'s measurements in the same session;
* every sequence batch goes through the transformer in one
  ``(n_seq, seq_len)`` forward (``score_items`` stacks all items of a
  task; the perplexity corpus is a single batch by construction).

Everything the engine returns is **bit-identical** to the legacy path:
wrappers, items and gold labels are deterministic functions of the
runtime and format, so sharing them is pure amortization.
``REPRO_NO_EVAL_ENGINE=1`` restores the legacy per-cell code paths
(``tests/test_eval_engine.py`` asserts equality, and the runner
artifacts are byte-identical either way).

Example::

    from repro.eval.engine import default_engine

    eng = default_engine()
    grid = eng.perplexity_grid(["llama2-7b"], {"m2xfp": M2XFP()})
    eng.stats()["wrapper_hits"]
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict

import numpy as np

from ..models.profiles import ProfileRuntime, load_runtime
from ..models.quantized import PACKED_WEIGHTS_ENV, Fp16Format, QuantizedLM
from ..mx.base import TensorFormat
from .tasks import TaskItems, TaskSpec, accuracy, build_task_items, gold_labels, score_items

__all__ = ["EvalEngine", "NO_ENGINE_ENV", "engine_enabled", "default_engine",
           "reset_default_engine"]

#: Environment variable disabling the engine ("=1" selects the legacy
#: per-cell evaluation paths; results are bit-identical either way).
NO_ENGINE_ENV = "REPRO_NO_EVAL_ENGINE"


def engine_enabled() -> bool:
    """True unless ``REPRO_NO_EVAL_ENGINE=1`` is exported."""
    return os.environ.get(NO_ENGINE_ENV, "0") != "1"


class EvalEngine:
    """Shared-state evaluator for multi-format grids.

    All caches are bounded LRUs guarded by one lock; entries key on the
    runtime identity (profile key, corpus shape, and the runtime object
    itself, pinned by the entry) plus — for format-dependent state —
    the format's configuration fingerprint and the kernel
    dispatch/storage mode, the same discipline as the ``QuantizedLM``
    weight cache.
    """

    def __init__(self, max_wrappers: int = 32, max_memo: int = 2048,
                 max_task_items: int = 128) -> None:
        self.max_wrappers = int(max_wrappers)
        self.max_memo = int(max_memo)
        self.max_task_items = int(max_task_items)
        self._wrappers: OrderedDict = OrderedDict()
        self._ppl: OrderedDict = OrderedDict()
        self._items: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self._stats = {"runtime_requests": 0, "runtime_loads": 0,
                       "wrapper_builds": 0,
                       "wrapper_hits": 0, "ppl_evals": 0, "ppl_hits": 0,
                       "items_builds": 0, "items_hits": 0}
        # Last engine constructed wins the registry slot — in practice
        # that is the process-wide default_engine().
        from ..obs import registry as obs_registry
        obs_registry().register_collector("eval.engine", self.stats)

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _corpus_key(runtime: ProfileRuntime) -> tuple:
        # The runtime's id() is part of the key, and every cache entry
        # holds a reference to its runtime (see _lru_put), so the id
        # cannot be recycled while the entry lives. This makes a
        # hand-built or modified ProfileRuntime with the same profile
        # and corpus shape a *different* arm, never a silent cache hit.
        return (runtime.profile.key, runtime.tokens.shape, id(runtime))

    @staticmethod
    def _mode_key() -> tuple:
        from ..kernels.dispatch import use_bittwiddle, use_reference
        return (use_reference(), use_bittwiddle(),
                os.environ.get(PACKED_WEIGHTS_ENV, "0") == "1")

    def _arm_key(self, runtime: ProfileRuntime, fmt: TensorFormat):
        fingerprint = fmt.weight_cache_key
        if fingerprint is None:
            return None
        return (self._corpus_key(runtime), fingerprint, self._mode_key())

    def _lru_get(self, cache: OrderedDict, key, hit_stat: str):
        with self._lock:
            if key in cache:
                cache.move_to_end(key)
                self._stats[hit_stat] += 1
                return cache[key][0]
        return None

    def _lru_put(self, cache: OrderedDict, key, value, runtime,
                 limit: int) -> None:
        # The runtime rides along so the id() in the key stays pinned.
        with self._lock:
            cache[key] = (value, runtime)
            cache.move_to_end(key)
            if len(cache) > limit:
                cache.popitem(last=False)

    # ------------------------------------------------------------------
    # Shared building blocks
    # ------------------------------------------------------------------
    def runtime(self, profile_key: str, n_seq: int | None = None,
                seq_len: int | None = None) -> ProfileRuntime:
        """A calibrated runtime via the bounded ``load_runtime`` LRU.

        ``runtime_loads`` counts actual calibrations (LRU misses), not
        calls — the number that demonstrates the amortization.
        """
        from ..models import profiles as _profiles
        from ..models.profiles import get_profile
        profile = get_profile(profile_key)
        cache_key = (profile_key, n_seq or profile.n_eval_seq,
                     seq_len or profile.seq_len)
        miss = cache_key not in _profiles._RUNTIME_CACHE
        with self._lock:
            self._stats["runtime_requests"] += 1
            if miss:
                self._stats["runtime_loads"] += 1
        return load_runtime(profile_key, n_seq=n_seq, seq_len=seq_len)

    def wrapper(self, runtime: ProfileRuntime, fmt: TensorFormat) -> QuantizedLM:
        """The (cached) ``QuantizedLM`` arm for ``(runtime, fmt)``."""
        key = self._arm_key(runtime, fmt)
        if key is not None:
            hit = self._lru_get(self._wrappers, key, "wrapper_hits")
            if hit is not None:
                return hit
        qlm = QuantizedLM(runtime.model, fmt,
                          calibration_tokens=runtime.calib_tokens)
        with self._lock:
            self._stats["wrapper_builds"] += 1
        if key is not None:
            self._lru_put(self._wrappers, key, qlm, runtime,
                          self.max_wrappers)
        return qlm

    def task_items(self, runtime: ProfileRuntime, spec: TaskSpec) -> TaskItems:
        """Task items (incl. the fp16 teacher pass), built once per corpus."""
        key = (self._corpus_key(runtime), spec)
        hit = self._lru_get(self._items, key, "items_hits")
        if hit is not None:
            return hit
        items = build_task_items(runtime, spec)
        with self._lock:
            self._stats["items_builds"] += 1
        self._lru_put(self._items, key, items, runtime, self.max_task_items)
        return items

    # ------------------------------------------------------------------
    # Perplexity (Tbl. 3 / 6 / 8)
    # ------------------------------------------------------------------
    def perplexity(self, runtime: ProfileRuntime, fmt: TensorFormat) -> float:
        """Memoized quantized perplexity of one (profile, format) arm."""
        if isinstance(fmt, Fp16Format):
            return runtime.fp16_ppl
        key = self._arm_key(runtime, fmt)
        if key is not None:
            hit = self._lru_get(self._ppl, key, "ppl_hits")
            if hit is not None:
                return hit
        ppl = self.wrapper(runtime, fmt).perplexity(runtime.tokens)
        with self._lock:
            self._stats["ppl_evals"] += 1
        if key is not None:
            self._lru_put(self._ppl, key, ppl, runtime, self.max_memo)
        return ppl

    def perplexity_grid(self, profile_keys: list[str],
                        formats: dict[str, TensorFormat],
                        n_seq: int | None = None,
                        seq_len: int | None = None
                        ) -> dict[str, dict[str, float]]:
        """The ``perplexity_table`` grid, single-pass per profile."""
        table: dict[str, dict[str, float]] = {"fp16": {}}
        for name in formats:
            table[name] = {}
        for key in profile_keys:
            runtime = self.runtime(key, n_seq=n_seq, seq_len=seq_len)
            table["fp16"][key] = runtime.fp16_ppl
            for name, fmt in formats.items():
                table[name][key] = self.perplexity(runtime, fmt)
        return table

    # ------------------------------------------------------------------
    # Task accuracy (Tbl. 2 / 4)
    # ------------------------------------------------------------------
    def accuracy_grid(self, profile_key: str, tasks: dict[str, TaskSpec],
                      fp16_targets: dict[str, float],
                      formats: dict[str, TensorFormat],
                      n_seq: int | None = None,
                      seq_len: int | None = None
                      ) -> dict[str, dict[str, float]]:
        """The ``accuracy_table`` grid with all shared state hoisted.

        Gold labels are derived once per task from the same freshly
        reseeded RNG the legacy path uses per cell, and each format's
        wrapper scores every task — construction and calibration run
        once per format instead of once per (task, format) cell.
        """
        runtime = self.runtime(profile_key, n_seq=n_seq, seq_len=seq_len)
        table: dict[str, dict[str, float]] = {"fp16": {}}
        for name in formats:
            table[name] = {}
        for task_name, spec in tasks.items():
            items = self.task_items(runtime, spec)
            target = fp16_targets[task_name] / 100.0
            rng = np.random.default_rng(spec.seed * 31337
                                        + runtime.profile.seed)
            gold = gold_labels(items, target, rng)
            table["fp16"][task_name] = accuracy(items.teacher_scores, gold)
            for name, fmt in formats.items():
                qlm = self.wrapper(runtime, fmt)
                scores = score_items(qlm.forward, items.contexts, items.choices)
                table[name][task_name] = accuracy(scores, gold)
        return table

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Counters plus current cache occupancy."""
        with self._lock:
            return {**self._stats, "wrappers": len(self._wrappers),
                    "ppl_entries": len(self._ppl),
                    "task_item_entries": len(self._items)}

    def clear(self) -> None:
        """Drop all cached wrappers, memos and task items."""
        with self._lock:
            self._wrappers.clear()
            self._ppl.clear()
            self._items.clear()


_default: EvalEngine | None = None
_default_lock = threading.Lock()


def default_engine() -> EvalEngine:
    """The process-wide engine instance (created on first use)."""
    global _default
    with _default_lock:
        if _default is None:
            _default = EvalEngine()
        return _default


def reset_default_engine() -> None:
    """Drop the process-wide engine (used by tests)."""
    global _default
    with _default_lock:
        _default = None
