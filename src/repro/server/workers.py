"""Multi-process worker sharding for the quantization server.

``WorkerPool`` spawns N fresh interpreter processes (``spawn`` context,
like the experiment runner's pool — no inherited module caches), each
binding its own ``SO_REUSEPORT`` listening socket on the **same** port
and running a full :class:`~repro.server.QuantServer`. The kernel
load-balances incoming connections across the workers' accept queues,
so clients need no front-end dispatcher: they connect to one
host:port and land on some worker.

Why this beats one process even before counting cores: each worker's
micro-batching service idles its CPU for up to ``max_delay_s`` per
batch window, and with several workers one worker's CPU-bound quantize
pass runs inside another's window. On multi-core hosts the quantize
passes additionally run truly in parallel (each worker has its own
GIL). ``scripts/bench_server.py`` measures both effects into
``BENCH_server.json``.

The first worker binds the requested port (``port=0`` picks an
ephemeral one) and reports the real port back over a pipe; the
remaining workers then bind that same port. A worker that fails to
start fails :meth:`start` loudly — never a half-sized pool by accident.

Example::

    from repro.server import WorkerPool, QuantClient

    with WorkerPool(workers=2, port=0) as pool:
        with QuantClient(port=pool.port) as cli:
            out = cli.quantize(x, fmt="m2xfp")
"""

from __future__ import annotations

import socket

from ..errors import ConfigError
from .server import QuantServer, WORKERS_ENV, _env_int, run_server

__all__ = ["WorkerPool", "reuseport_listener"]


def reuseport_listener(host: str, port: int) -> socket.socket:
    """A bound+listening TCP socket with ``SO_REUSEPORT`` sharding on."""
    if not hasattr(socket, "SO_REUSEPORT"):
        raise ConfigError("multi-process worker sharding needs "
                          "SO_REUSEPORT, which this platform lacks; "
                          "run a single worker instead")
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        sock.listen(128)
        sock.setblocking(False)
    except BaseException:
        sock.close()
        raise
    return sock


def _worker_main(conn, host: str, port: int, server_kwargs: dict) -> None:
    """Entry point of one spawned worker process."""
    sock = reuseport_listener(host, port)
    # Binding succeeded: report the real port — that is the readiness
    # signal (the socket is already listening, so connections queue in
    # its backlog until the loop starts accepting).
    conn.send(sock.getsockname()[1])
    conn.close()
    server = QuantServer(host=host, port=0, **server_kwargs)
    run_server(server, sock=sock)


class WorkerPool:
    """N spawned ``QuantServer`` processes sharing one host:port."""

    def __init__(self, workers: int | None = None, *,
                 host: str = "127.0.0.1", port: int = 0,
                 start_timeout: float = 60.0, **server_kwargs) -> None:
        if workers is None:
            workers = _env_int(WORKERS_ENV, 2)
        if workers < 1:
            raise ConfigError("WorkerPool needs at least 1 worker")
        self.workers = int(workers)
        self.host = host
        self.port = int(port)
        self.start_timeout = float(start_timeout)
        self._server_kwargs = dict(server_kwargs)
        self._procs: list = []

    # ------------------------------------------------------------------
    def start(self) -> "WorkerPool":
        """Spawn every worker and wait until all listen on one port."""
        if self._procs:
            return self
        import multiprocessing as mp
        ctx = mp.get_context("spawn")
        try:
            port = self.port
            for _ in range(self.workers):
                parent, child = ctx.Pipe(duplex=False)
                proc = ctx.Process(target=_worker_main,
                                   args=(child, self.host, port,
                                         self._server_kwargs),
                                   daemon=True)
                proc.start()
                child.close()
                # The first worker resolves port 0 to a real port; the
                # rest must bind exactly that one.
                if not parent.poll(self.start_timeout):
                    raise ConfigError(
                        f"server worker (pid {proc.pid}) did not report "
                        f"its port within {self.start_timeout:.0f}s")
                port = parent.recv()
                parent.close()
                self._procs.append(proc)
            self.port = port
        except BaseException:
            self.close()
            raise
        return self

    def close(self) -> None:
        """Terminate and reap every worker."""
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=30.0)
        self._procs = []

    def alive(self) -> int:
        """How many workers are currently running."""
        return sum(1 for proc in self._procs if proc.is_alive())

    def join(self) -> None:
        """Block until every worker exits (the CLI's foreground wait)."""
        for proc in self._procs:
            proc.join()

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
