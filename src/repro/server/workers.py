"""Multi-process worker sharding + supervision for the quantization server.

``WorkerPool`` spawns N fresh interpreter processes (``spawn`` context,
like the experiment runner's pool — no inherited module caches), each
binding its own ``SO_REUSEPORT`` listening socket on the **same** port
and running a full :class:`~repro.server.QuantServer`. The kernel
load-balances incoming connections across the workers' accept queues,
so clients need no front-end dispatcher: they connect to one
host:port and land on some worker.

The pool is **supervised**: a monitor thread detects dead workers and
restarts them on the shared port with exponential backoff, so a
SIGKILLed or crashed worker shrinks capacity only for the restart
window — never forever. Restarts and exit codes are accounted by
:meth:`stats`; a worker that keeps dying trips the **crash-loop
budget** (``max_restarts`` per slot, ``REPRO_SERVER_MAX_RESTARTS``)
and surfaces a hard :class:`~repro.errors.WorkerCrashLoop` through
:meth:`check` / :meth:`join` instead of flapping silently. Workers
that exit cleanly (a drain, ``--max-requests``) are *not* restarted.

``close()`` reaps every child with a bounded join, escalating
``terminate()`` (SIGTERM — a graceful in-worker drain) to ``kill()``:
no zombie processes survive a failed test run, and every exit the
close reaps is accounted in :meth:`stats` exactly once — including
workers that died earlier without a supervisor watching
(``restart=False`` pools).

Why sharding beats one process even before counting cores: each
worker's micro-batching service idles its CPU for up to ``max_delay_s``
per batch window, and with several workers one worker's CPU-bound
quantize pass runs inside another's window. On multi-core hosts the
quantize passes additionally run truly in parallel (each worker has
its own GIL). ``scripts/bench_server.py`` measures both effects into
``BENCH_server.json``.

The first worker binds the requested port (``port=0`` picks an
ephemeral one) and reports the real port back over a pipe; the
remaining workers then bind that same port. A worker that fails to
start fails :meth:`start` loudly — never a half-sized pool by accident.

Example::

    from repro.server import WorkerPool, QuantClient

    with WorkerPool(workers=2, port=0) as pool:
        with QuantClient(port=pool.port, retries=4) as cli:
            out = cli.quantize(x, fmt="m2xfp")
"""

from __future__ import annotations

import socket
import threading
import time

from ..errors import ConfigError, WorkerCrashLoop
from .server import QuantServer, WORKERS_ENV, _env_int, run_server

__all__ = ["WorkerPool", "reuseport_listener",
           "MAX_RESTARTS_ENV", "DEFAULT_MAX_RESTARTS"]

#: Environment knob (documented in the README's env-knob table).
MAX_RESTARTS_ENV = "REPRO_SERVER_MAX_RESTARTS"

DEFAULT_MAX_RESTARTS = 5


def reuseport_listener(host: str, port: int) -> socket.socket:
    """A bound+listening TCP socket with ``SO_REUSEPORT`` sharding on."""
    if not hasattr(socket, "SO_REUSEPORT"):
        raise ConfigError("multi-process worker sharding needs "
                          "SO_REUSEPORT, which this platform lacks; "
                          "run a single worker instead")
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        sock.listen(128)
        sock.setblocking(False)
    except BaseException:
        sock.close()
        raise
    return sock


def _worker_main(conn, host: str, port: int, server_kwargs: dict) -> None:
    """Entry point of one spawned worker process."""
    sock = reuseport_listener(host, port)
    # Binding succeeded: report the real port — that is the readiness
    # signal (the socket is already listening, so connections queue in
    # its backlog until the loop starts accepting).
    conn.send(sock.getsockname()[1])
    conn.close()
    server = QuantServer(host=host, port=0, **server_kwargs)
    # run_server installs the SIGTERM -> graceful-drain handler (this
    # is the child's main thread), so pool.close() drains workers.
    run_server(server, sock=sock)


class WorkerPool:
    """N supervised ``QuantServer`` processes sharing one host:port.

    Parameters
    ----------
    restart:
        Supervise and restart crashed workers (default on). Clean
        exits (code 0: a drain or ``max_requests``) never restart.
    max_restarts:
        Crash-loop budget per worker slot; exceeding it records a
        :class:`WorkerCrashLoop` surfaced by :meth:`check`/:meth:`join`
        (``None`` reads ``REPRO_SERVER_MAX_RESTARTS``, default 5). A
        slot that stays up for ``healthy_reset_s`` earns its budget
        back.
    backoff_base_s / backoff_max_s:
        Exponential backoff between a slot's consecutive restarts.
    """

    def __init__(self, workers: int | None = None, *,
                 host: str = "127.0.0.1", port: int = 0,
                 start_timeout: float = 60.0, restart: bool = True,
                 max_restarts: int | None = None,
                 backoff_base_s: float = 0.05, backoff_max_s: float = 2.0,
                 healthy_reset_s: float = 30.0,
                 poll_interval_s: float = 0.05,
                 reap_timeout_s: float = 10.0, **server_kwargs) -> None:
        if workers is None:
            workers = _env_int(WORKERS_ENV, 2)
        if workers < 1:
            raise ConfigError("WorkerPool needs at least 1 worker")
        self.workers = int(workers)
        self.host = host
        self.port = int(port)
        self.start_timeout = float(start_timeout)
        self.restart = bool(restart)
        self.max_restarts = _env_int(MAX_RESTARTS_ENV, DEFAULT_MAX_RESTARTS) \
            if max_restarts is None else int(max_restarts)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_max_s = float(backoff_max_s)
        self.healthy_reset_s = float(healthy_reset_s)
        self.poll_interval_s = float(poll_interval_s)
        self.reap_timeout_s = float(reap_timeout_s)
        self._server_kwargs = dict(server_kwargs)
        self._stats = {"restarts": 0, "exits": []}
        self._recorded_pids: set[int] = set()
        self._procs: list = []
        self._slot_restarts: list[int] = []
        self._slot_spawned_at: list[float] = []
        self._done_slots: set[int] = set()
        self._ctx = None
        self._lock = threading.Lock()
        self._closing = False
        self._failure: WorkerCrashLoop | None = None
        self._supervisor: threading.Thread | None = None

    # ------------------------------------------------------------------
    def start(self) -> "WorkerPool":
        """Spawn every worker, wait until all listen, start supervision."""
        if self._procs:
            return self
        import multiprocessing as mp
        self._ctx = mp.get_context("spawn")
        try:
            port = self.port
            for _ in range(self.workers):
                proc, port = self._spawn(port)
                self._procs.append(proc)
                self._slot_restarts.append(0)
                self._slot_spawned_at.append(time.monotonic())
            self.port = port
        except BaseException:
            self.close()
            raise
        if self.restart:
            self._supervisor = threading.Thread(
                target=self._supervise, name="quant-pool-supervisor",
                daemon=True)
            self._supervisor.start()
        from ..obs import registry as obs_registry
        obs_registry().register_collector("server.workers",
                                          self._collect_metrics)
        return self

    def _spawn(self, port: int):
        """Spawn one worker; returns (process, resolved port)."""
        parent, child = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(target=_worker_main,
                                 args=(child, self.host, port,
                                       self._server_kwargs),
                                 daemon=True)
        proc.start()
        child.close()
        # The first worker resolves port 0 to a real port; the rest
        # (and every restart) must bind exactly that one.
        if not parent.poll(self.start_timeout):
            proc.terminate()
            proc.join(timeout=5.0)
            raise ConfigError(
                f"server worker (pid {proc.pid}) did not report "
                f"its port within {self.start_timeout:.0f}s")
        port = parent.recv()
        parent.close()
        return proc, port

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    def _supervise(self) -> None:
        backoff = [self.backoff_base_s] * self.workers
        while not self._closing and self._failure is None:
            time.sleep(self.poll_interval_s)
            for slot in range(len(self._procs)):
                with self._lock:
                    if self._closing or self._failure is not None:
                        return
                    proc = self._procs[slot]
                    if proc is None or proc.is_alive() or \
                            slot in self._done_slots:
                        continue
                    exitcode = proc.exitcode
                    proc.join()  # reap promptly: no zombie between polls
                    self._record_exit_locked(slot, proc.pid, exitcode)
                    if exitcode == 0:
                        # Deliberate exit (drain / max_requests): this
                        # slot is done, not crashed.
                        self._done_slots.add(slot)
                        continue
                    uptime = time.monotonic() - self._slot_spawned_at[slot]
                    if uptime >= self.healthy_reset_s:
                        self._slot_restarts[slot] = 0
                        backoff[slot] = self.backoff_base_s
                    if self._slot_restarts[slot] >= self.max_restarts:
                        self._failure = WorkerCrashLoop(
                            f"worker slot {slot} crashed "
                            f"{self._slot_restarts[slot] + 1} times "
                            f"(last exit code {exitcode}); restart "
                            f"budget {self.max_restarts} exhausted")
                        return
                    self._slot_restarts[slot] += 1
                    delay = backoff[slot]
                    backoff[slot] = min(backoff[slot] * 2.0,
                                        self.backoff_max_s)
                # Back off outside the lock so close() stays responsive.
                time.sleep(delay)
                with self._lock:
                    if self._closing or self._failure is not None:
                        return
                    try:
                        proc, _ = self._spawn(self.port)
                    except ConfigError as exc:
                        # A failed respawn is itself a crash: it eats
                        # budget and the loop tries again (or trips).
                        self._record_exit_locked(
                            slot, None, f"respawn failed: {exc}")
                        if self._slot_restarts[slot] >= self.max_restarts:
                            self._failure = WorkerCrashLoop(
                                f"worker slot {slot}: respawn failed "
                                f"with the restart budget exhausted: "
                                f"{exc}")
                            return
                        self._slot_restarts[slot] += 1
                        continue
                    self._procs[slot] = proc
                    self._slot_spawned_at[slot] = time.monotonic()
                    self._stats["restarts"] += 1

    def _record_exit_locked(self, slot: int, pid, exitcode) -> None:
        """Account one worker exit (caller holds ``self._lock`` or is
        the only live accessor); each pid is recorded at most once."""
        if pid is not None:
            if pid in self._recorded_pids:
                return
            self._recorded_pids.add(pid)
        self._stats["exits"].append(
            {"slot": slot, "pid": pid, "exitcode": exitcode})

    def stats(self) -> dict:
        """Snapshot of the restart/exit accounting.

        ``{"restarts": <supervised respawns>, "exits": [{"slot",
        "pid", "exitcode"}, ...]}`` — every worker exit appears exactly
        once, whether the supervisor reaped it live or :meth:`close`
        reaped it during teardown.
        """
        with self._lock:
            return {"restarts": self._stats["restarts"],
                    "exits": [dict(e) for e in self._stats["exits"]]}

    def _collect_metrics(self) -> dict:
        """Registry collector view: exits flattened to a count so the
        snapshot stays a flat JSON-safe dict."""
        with self._lock:
            return {"restarts": self._stats["restarts"],
                    "exits": len(self._stats["exits"]),
                    "workers": len(self._procs)}

    def check(self) -> None:
        """Raise :class:`WorkerCrashLoop` if the restart budget tripped."""
        if self._failure is not None:
            raise self._failure

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Reap every worker: bounded join, escalating SIGTERM -> SIGKILL."""
        with self._lock:
            self._closing = True
        if self._supervisor is not None:
            self._supervisor.join(timeout=self.reap_timeout_s)
            self._supervisor = None
        procs = [p for p in self._procs if p is not None]
        for proc in procs:
            if proc.is_alive():
                proc.terminate()  # SIGTERM: in-worker graceful drain
        deadline = time.monotonic() + self.reap_timeout_s
        for proc in procs:
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
        for proc in procs:
            if proc.is_alive():  # drain wedged or TERM ignored: escalate
                proc.kill()
        for proc in procs:
            if proc.is_alive():
                proc.join(timeout=5.0)
        with self._lock:
            # Account the exits this reap produced (and any that died
            # unsupervised, e.g. restart=False pools) exactly once —
            # the supervisor's records are pid-deduplicated above.
            for slot, proc in enumerate(self._procs):
                if proc is not None and proc.exitcode is not None:
                    self._record_exit_locked(slot, proc.pid,
                                             proc.exitcode)
        self._procs = []
        self._slot_restarts = []
        self._slot_spawned_at = []
        self._done_slots = set()
        from ..obs import registry as obs_registry
        obs_registry().unregister_collector("server.workers")

    def alive(self) -> int:
        """How many workers are currently running."""
        return sum(1 for proc in self._procs
                   if proc is not None and proc.is_alive())

    def join(self, poll_s: float = 0.1, stop=None) -> None:
        """Block until the pool finishes (the CLI's foreground wait).

        Returns when every worker has exited cleanly, the pool was
        closed, or the optional ``stop`` event (a ``threading.Event``,
        e.g. set from a SIGTERM handler) fires; raises
        :class:`WorkerCrashLoop` if supervision tripped the crash-loop
        budget.
        """
        while True:
            self.check()
            if self._closing or not self._procs:
                return
            if stop is not None and stop.is_set():
                return
            if len(self._done_slots) == len(self._procs):
                return
            if not self.restart and self.alive() == 0:
                return
            if stop is not None:
                stop.wait(poll_s)
            else:
                time.sleep(poll_s)

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
