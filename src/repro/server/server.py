"""The asyncio TCP quantization server.

``QuantServer`` bridges socket connections onto the in-process
:class:`~repro.serve.QuantService` stack: every request is routed to a
shared service keyed by **(format, dispatch mode, packed)**, so
concurrent clients asking for the same arm ride one bit-identical
micro-batching pipeline (and one weight memo) no matter which
connection they arrived on. The event loop never quantizes — services
run on their own collector threads and the loop awaits their futures —
so connections stay responsive while CPU-bound passes run.

Admission control is a bounded in-flight counter: once
``max_inflight`` requests are admitted and unanswered, further requests
are answered immediately with ``Status.BUSY`` instead of being
buffered without bound — backpressure is explicit, never a hang.
Connections are fully pipelined: a client may stream many request
frames before reading responses, and responses come back tagged with
the request id in completion order.

Fault tolerance (protocol version 2):

* **Graceful drain** — ``SIGTERM`` (or a ``DRAIN`` control frame)
  stops accepting new connections, answers new requests with
  ``Status.DRAINING``, finishes the admitted in-flight work bounded by
  ``drain_timeout_s``, then exits. In-flight results are never dropped
  on the floor by a shutdown.
* **Health** — a ``PING`` frame is answered with a ``HEALTH`` frame
  carrying draining state, in-flight count and the stats counters.
* **Slow-loris guard** — once a frame's first byte arrives, the rest
  must complete within ``read_timeout_s`` or the connection is dropped
  with a protocol error; a trickling or garbage peer cannot pin a
  connection task forever (the max-frame-size guard bounds allocation).

Streaming KV-cache sessions (protocol version 3): ``SESSION_OPEN``
creates (or idempotently resumes) a :class:`~repro.kv.KVCacheSession`
in the server's bounded session table; ``SESSION_APPEND`` carries one
K/V block tagged with a client sequence number — the server applies
the expected seq, **replays** the stored ack for the immediately
preceding one (a retried duplicate after a transport failure) and
answers ``SESSION_LOST`` for anything else, so a reconnecting client
either resumes exactly or learns the state is gone, never silently
corrupts the stream; ``SESSION_READ`` returns the dequantized layer;
``SESSION_CLOSE`` frees the slot. During a drain, open/append/read are
refused with ``DRAINING`` while close stays allowed — open sessions
are rejected cleanly, not wedged.

Env knobs (all overridable per instance): ``REPRO_SERVER_PORT`` (default
7421), ``REPRO_SERVER_MAX_INFLIGHT`` (default 64),
``REPRO_SERVER_READ_TIMEOUT_S`` (default 60),
``REPRO_SERVER_DRAIN_TIMEOUT_S`` (default 30),
``REPRO_SERVER_MAX_SESSIONS`` (default 64), and — consumed by the
CLI / worker pool — ``REPRO_SERVER_WORKERS`` /
``REPRO_SERVER_MAX_RESTARTS``.

Example::

    from repro.server import ServerThread, QuantClient

    with ServerThread(port=0) as st:             # ephemeral port
        with QuantClient(port=st.port) as cli:
            out = cli.quantize(x, fmt="m2xfp", op="weight")
"""

from __future__ import annotations

import asyncio
import os
import signal
import threading
import time

from .. import obs
from ..errors import ConfigError, ProtocolError, ServerBusy, SessionLost
from . import protocol
from .protocol import Status

__all__ = ["QuantServer", "ServerThread", "run_server",
           "PORT_ENV", "MAX_INFLIGHT_ENV", "WORKERS_ENV",
           "READ_TIMEOUT_ENV", "DRAIN_TIMEOUT_ENV", "MAX_SESSIONS_ENV",
           "DEFAULT_PORT", "DEFAULT_MAX_INFLIGHT",
           "DEFAULT_READ_TIMEOUT_S", "DEFAULT_DRAIN_TIMEOUT_S",
           "DEFAULT_MAX_SESSIONS"]

#: Environment knobs (documented in the README's env-knob table).
PORT_ENV = "REPRO_SERVER_PORT"
MAX_INFLIGHT_ENV = "REPRO_SERVER_MAX_INFLIGHT"
WORKERS_ENV = "REPRO_SERVER_WORKERS"
READ_TIMEOUT_ENV = "REPRO_SERVER_READ_TIMEOUT_S"
DRAIN_TIMEOUT_ENV = "REPRO_SERVER_DRAIN_TIMEOUT_S"
MAX_SESSIONS_ENV = "REPRO_SERVER_MAX_SESSIONS"

DEFAULT_PORT = 7421
DEFAULT_MAX_INFLIGHT = 64
DEFAULT_READ_TIMEOUT_S = 60.0
DEFAULT_DRAIN_TIMEOUT_S = 30.0
DEFAULT_MAX_SESSIONS = 64


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        return int(raw)
    except ValueError:
        raise ConfigError(f"{name} must be an integer, got {raw!r}") from None


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        return float(raw)
    except ValueError:
        raise ConfigError(f"{name} must be a number, got {raw!r}") from None


#: Frame kinds that carry admitted (in-flight-bounded) work.
_SESSION_KINDS = (protocol.KIND_SESSION_OPEN, protocol.KIND_SESSION_APPEND,
                  protocol.KIND_SESSION_READ, protocol.KIND_SESSION_CLOSE)
_WORK_KINDS = (protocol.KIND_REQUEST, *_SESSION_KINDS)


class _SessionEntry:
    """One live session: the cache plus the seq-dedup resume state."""

    __slots__ = ("session", "lock", "next_seq", "last_ack")

    def __init__(self, session) -> None:
        self.session = session
        self.lock = asyncio.Lock()   # serializes appends per session
        self.next_seq = 0            # the seq the next append must carry
        self.last_ack: dict | None = None  # replayed for a retried dup


class QuantServer:
    """One asyncio TCP quantization server (single process).

    Parameters
    ----------
    host / port:
        Bind address. ``port=None`` reads ``REPRO_SERVER_PORT`` (default
        7421); ``port=0`` binds an ephemeral port, reported by
        :attr:`port` once started.
    max_inflight:
        Admission bound: requests admitted but not yet answered. At the
        bound, new requests get an immediate ``BUSY`` response.
        ``None`` reads ``REPRO_SERVER_MAX_INFLIGHT`` (default 64).
    max_batch / max_delay_s / service_workers:
        Forwarded to every :class:`~repro.serve.QuantService` this
        server creates (one per (format, dispatch, packed) arm).
    max_requests:
        Stop serving after this many responses (smoke tests / CLI
        ``--max-requests``); ``None`` serves forever.
    read_timeout_s:
        Slow-loris guard: a started frame must finish within this many
        seconds (``None`` reads ``REPRO_SERVER_READ_TIMEOUT_S``, default
        60; ``0`` disables the guard).
    drain_timeout_s:
        Upper bound on how long a drain waits for admitted in-flight
        work before exiting anyway (``None`` reads
        ``REPRO_SERVER_DRAIN_TIMEOUT_S``, default 30).
    max_sessions:
        Bound on concurrently open KV-cache sessions; at the bound,
        ``SESSION_OPEN`` answers ``BUSY`` (``None`` reads
        ``REPRO_SERVER_MAX_SESSIONS``, default 64).
    """

    def __init__(self, host: str = "127.0.0.1", port: int | None = None, *,
                 max_inflight: int | None = None, max_batch: int = 64,
                 max_delay_s: float = 0.002, service_workers: int = 0,
                 max_requests: int | None = None,
                 read_timeout_s: float | None = None,
                 drain_timeout_s: float | None = None,
                 max_sessions: int | None = None) -> None:
        self.host = host
        self.port = _env_int(PORT_ENV, DEFAULT_PORT) if port is None \
            else int(port)
        self.max_inflight = _env_int(MAX_INFLIGHT_ENV, DEFAULT_MAX_INFLIGHT) \
            if max_inflight is None else int(max_inflight)
        if self.max_inflight < 1:
            raise ConfigError("max_inflight must be >= 1")
        self.read_timeout_s = _env_float(READ_TIMEOUT_ENV,
                                         DEFAULT_READ_TIMEOUT_S) \
            if read_timeout_s is None else float(read_timeout_s)
        self.drain_timeout_s = _env_float(DRAIN_TIMEOUT_ENV,
                                          DEFAULT_DRAIN_TIMEOUT_S) \
            if drain_timeout_s is None else float(drain_timeout_s)
        if self.drain_timeout_s < 0 or self.read_timeout_s < 0:
            raise ConfigError("timeouts must be >= 0")
        self.max_sessions = _env_int(MAX_SESSIONS_ENV, DEFAULT_MAX_SESSIONS) \
            if max_sessions is None else int(max_sessions)
        if self.max_sessions < 1:
            raise ConfigError("max_sessions must be >= 1")
        self.max_batch = max_batch
        self.max_delay_s = max_delay_s
        self.service_workers = service_workers
        self.max_requests = max_requests
        self.stats = {"connections": 0, "requests": 0, "responses": 0,
                      "busy_rejections": 0, "errors": 0, "pings": 0,
                      "drain_requests": 0, "draining_rejections": 0,
                      "session_opens": 0, "session_appends": 0,
                      "session_reads": 0, "session_closes": 0,
                      "sessions_lost": 0}
        self._services: dict[tuple, object] = {}
        self._sessions: dict[str, _SessionEntry] = {}
        self._inflight = 0
        self._draining = False
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._drained: asyncio.Event | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self, sock=None) -> None:
        """Bind and start accepting (``sock`` overrides host/port)."""
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._drained = asyncio.Event()
        if sock is not None:
            self._server = await asyncio.start_server(self._on_connection,
                                                      sock=sock)
        else:
            self._server = await asyncio.start_server(
                self._on_connection, host=self.host, port=self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        obs.registry().register_collector("server",
                                          lambda: dict(self.stats))

    async def run(self, sock=None) -> None:
        """Start (if needed), serve until :meth:`request_stop`, clean up."""
        if self._server is None:
            await self.start(sock=sock)
        try:
            await self._stop.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            for svc in self._services.values():
                svc.close()
            self._services.clear()
            obs.registry().unregister_collector("server")

    def request_stop(self) -> None:
        """Ask the server to exit :meth:`run`; safe from any thread."""
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already closed: the server has already exited

    def request_drain(self) -> None:
        """Begin a graceful drain; safe from any thread / signal handler.

        Stops accepting connections, answers new requests with
        ``Status.DRAINING``, waits (bounded by ``drain_timeout_s``) for
        admitted in-flight work, then stops the server.
        """
        if self._loop is not None:
            try:
                self._loop.call_soon_threadsafe(self._start_drain)
            except RuntimeError:
                pass  # loop already closed: nothing left to drain

    @property
    def draining(self) -> bool:
        return self._draining

    def health_info(self) -> dict:
        """The report a ``PING`` is answered with.

        ``services`` aggregates the per-arm ``QuantService`` counters
        (notably ``weight_cache_hits``) so upstream observers — the
        gateway's ``/metrics`` — see cache behaviour without a side
        channel.
        """
        services = {"arms": len(self._services), "requests": 0,
                    "batches": 0, "weight_cache_hits": 0}
        for svc in list(self._services.values()):
            try:
                svc_stats = svc.stats()
            except Exception:
                continue  # a closing service: skip, health stays cheap
            for key in ("requests", "batches", "weight_cache_hits"):
                services[key] += int(svc_stats.get(key, 0))
        return {"status": "draining" if self._draining else "ok",
                "draining": self._draining,
                "inflight": self._inflight,
                "max_inflight": self.max_inflight,
                "protocol_version": protocol.PROTOCOL_VERSION,
                "stats": dict(self.stats),
                "services": services,
                "sessions": {"open": len(self._sessions),
                             "max_sessions": self.max_sessions},
                # HEALTH meta is additive (DESIGN.md §12): the registry
                # snapshot rides along without a protocol version bump.
                # {} with REPRO_NO_METRICS=1.
                "metrics": obs.registry().snapshot()}

    def _start_drain(self) -> None:
        """Loop-side drain entry (idempotent)."""
        if self._draining or self._loop is None:
            return
        self._draining = True
        self.stats["drain_requests"] += 1
        self._loop.create_task(self._drain())

    async def _drain(self) -> None:
        if self._server is not None:
            self._server.close()  # stop accepting new connections
        if self._inflight == 0:
            self._drained.set()
        try:
            await asyncio.wait_for(self._drained.wait(),
                                   self.drain_timeout_s)
        except asyncio.TimeoutError:
            pass  # bounded drain: stragglers lose, the process exits
        self._stop.set()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    def _get_service(self, req: protocol.QuantRequest):
        key = (req.format_name, req.dispatch, req.packed)
        svc = self._services.get(key)
        if svc is None:
            from ..serve import QuantService
            svc = QuantService(req.format_name, packed=req.packed,
                               max_batch=self.max_batch,
                               max_delay_s=self.max_delay_s,
                               workers=self.service_workers,
                               dispatch=req.dispatch)
            self._services[key] = svc
        return svc

    async def _send(self, writer: asyncio.StreamWriter,
                    wlock: asyncio.Lock, data: bytes) -> None:
        async with wlock:
            writer.write(data)
            await writer.drain()

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        self.stats["connections"] += 1
        wlock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                frame = await protocol.read_frame(
                    reader, self.read_timeout_s or None)
                if frame is None:
                    break
                if frame.kind == protocol.KIND_PING:
                    self.stats["pings"] += 1
                    await self._answer(writer, wlock, protocol.encode_health(
                        frame.request_id, self.health_info()))
                    continue
                if frame.kind == protocol.KIND_DRAIN:
                    # Flip the draining flag synchronously so the ack
                    # already reports draining: true.
                    self._start_drain()
                    await self._answer(writer, wlock, protocol.encode_health(
                        frame.request_id, self.health_info()))
                    continue
                self.stats["requests"] += 1
                if frame.kind not in _WORK_KINDS:
                    await self._answer(writer, wlock,
                                       protocol.encode_response_error(
                                           frame.request_id,
                                           Status.PROTOCOL_ERROR,
                                           "expected a request or "
                                           "session frame"))
                    continue
                if self._draining and frame.kind == \
                        protocol.KIND_SESSION_CLOSE:
                    # Drain still lets clients close their sessions —
                    # open sessions are rejected cleanly, never wedged.
                    self._inflight += 1
                    task = asyncio.create_task(
                        self._respond_session(frame, writer, wlock))
                    tasks.add(task)
                    task.add_done_callback(tasks.discard)
                    continue
                if self._draining:
                    # The drain contract: admitted work finishes, new
                    # work is refused with a retryable typed status.
                    self.stats["draining_rejections"] += 1
                    await self._answer(writer, wlock,
                                       protocol.encode_response_error(
                                           frame.request_id, Status.DRAINING,
                                           "server is draining for "
                                           "shutdown; reconnect and retry"))
                    continue
                if self._inflight >= self.max_inflight:
                    # Explicit backpressure: answer BUSY now rather than
                    # queueing without bound (the client backs off).
                    self.stats["busy_rejections"] += 1
                    await self._answer(writer, wlock,
                                       protocol.encode_response_error(
                                           frame.request_id, Status.BUSY,
                                           f"server at max in-flight "
                                           f"({self.max_inflight}); retry"))
                    continue
                self._inflight += 1
                handler = self._respond if frame.kind == \
                    protocol.KIND_REQUEST else self._respond_session
                task = asyncio.create_task(handler(frame, writer, wlock))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except ProtocolError as exc:
            # The stream is unframeable from here on: report and close.
            try:
                await self._answer(writer, wlock,
                                   protocol.encode_response_error(
                                       0, Status.PROTOCOL_ERROR, str(exc)))
            except (ConnectionError, OSError):
                pass
        except (ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            # Server shutdown with this connection open: finish quietly
            # (the task is being torn down with the loop either way).
            pass
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # Loop teardown cancels handlers mid-close; the transport
                # is going away either way.
                pass

    async def _respond(self, frame: protocol.Frame,
                       writer: asyncio.StreamWriter,
                       wlock: asyncio.Lock) -> None:
        rid = frame.request_id
        # The trace id is the protocol's own request id — the span tree
        # is correlated with the wire frame for free.
        tr = obs.start_trace(rid, "quantize")
        try:
            try:
                req = protocol.decode_request(frame)
                svc = self._get_service(req)
                if tr is not None:
                    tr.arm = svc.arm
                if req.fingerprint and req.fingerprint != repr(svc.fmt):
                    raise ConfigError(
                        f"format fingerprint mismatch: request pinned "
                        f"{req.fingerprint}, server built {svc.fmt!r}")
                if req.op == "weight":
                    # Weight submits digest the whole tensor for the
                    # memo — do that off the loop so big weight uploads
                    # cannot stall other connections.
                    fut = await asyncio.to_thread(svc.submit, req.x,
                                                  req.op, trace=tr)
                else:
                    fut = svc.submit(req.x, op=req.op, trace=tr)
                result = await asyncio.wrap_future(fut)
                if tr is not None:
                    with tr.span("serialize"):
                        data = protocol.encode_response_packed(
                            rid, result.to_bytes(),
                            fingerprint=repr(svc.fmt)) if req.packed \
                            else protocol.encode_response_array(
                                rid, result, fingerprint=repr(svc.fmt))
                    obs.export(tr)
                elif req.packed:
                    data = protocol.encode_response_packed(
                        rid, result.to_bytes(), fingerprint=repr(svc.fmt))
                else:
                    data = protocol.encode_response_array(
                        rid, result, fingerprint=repr(svc.fmt))
            except asyncio.CancelledError:
                # Server-initiated teardown, not a request failure: let
                # cancellation propagate (the transport is closing).
                raise
            except Exception as exc:
                self.stats["errors"] += 1
                data = protocol.encode_response_error(
                    rid, protocol.status_for_exception(exc), str(exc),
                    type(exc).__name__)
            try:
                await self._answer(writer, wlock, data)
            except (ConnectionError, OSError):
                pass  # client went away; nothing left to tell it
        finally:
            self._inflight -= 1
            self.stats["responses"] += 1
            if self._draining and self._inflight == 0 and \
                    self._drained is not None:
                self._drained.set()
            if self.max_requests is not None and \
                    self.stats["responses"] >= self.max_requests:
                self.request_stop()

    async def _answer(self, writer, wlock, data: bytes) -> None:
        await self._send(writer, wlock, data)

    # ------------------------------------------------------------------
    # Streaming KV-cache sessions (protocol v3)
    # ------------------------------------------------------------------
    def _get_session(self, session_id: str) -> _SessionEntry:
        entry = self._sessions.get(session_id)
        if entry is None:
            self.stats["sessions_lost"] += 1
            raise SessionLost(
                f"unknown session {session_id!r} on this replica; "
                f"reopen the session and replay from the client's copy")
        return entry

    async def _respond_session(self, frame: protocol.Frame,
                               writer: asyncio.StreamWriter,
                               wlock: asyncio.Lock) -> None:
        rid = frame.request_id
        handlers = {
            protocol.KIND_SESSION_OPEN: self._session_open,
            protocol.KIND_SESSION_APPEND: self._session_append,
            protocol.KIND_SESSION_READ: self._session_read,
            protocol.KIND_SESSION_CLOSE: self._session_close,
        }
        try:
            try:
                data = await handlers[frame.kind](frame)
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                self.stats["errors"] += 1
                data = protocol.encode_response_error(
                    rid, protocol.status_for_exception(exc), str(exc),
                    type(exc).__name__)
            try:
                await self._answer(writer, wlock, data)
            except (ConnectionError, OSError):
                pass  # client went away; the session state stays
        finally:
            self._inflight -= 1
            self.stats["responses"] += 1
            if self._draining and self._inflight == 0 and \
                    self._drained is not None:
                self._drained.set()
            if self.max_requests is not None and \
                    self.stats["responses"] >= self.max_requests:
                self.request_stop()

    async def _session_open(self, frame: protocol.Frame) -> bytes:
        cfg = protocol.decode_session_open(frame)
        self.stats["session_opens"] += 1
        sid = cfg["session_id"]
        from ..kv import KVCacheSession
        entry = self._sessions.get(sid)
        if entry is not None:
            # Idempotent resume: the same config is acknowledged (with
            # the seq the client must continue from); a different one
            # is a hard error — two writers must not share state.
            fresh = KVCacheSession(cfg["n_layers"], cfg["policy"],
                                   max_tokens=cfg["max_tokens"],
                                   sink_tokens=cfg["sink_tokens"],
                                   dispatch=cfg["dispatch"],
                                   session_id=sid, verify=cfg["verify"])
            if fresh.info() != entry.session.info():
                raise ConfigError(
                    f"session {sid!r} is already open with a different "
                    f"configuration; close it first or pick a new id")
            return protocol.encode_session_ack(
                frame.request_id, {**entry.session.info(),
                                   "resumed": True,
                                   "next_seq": entry.next_seq})
        if len(self._sessions) >= self.max_sessions:
            raise ServerBusy(f"server at max open sessions "
                             f"({self.max_sessions}); close one or retry")
        session = KVCacheSession(cfg["n_layers"], cfg["policy"],
                                 max_tokens=cfg["max_tokens"],
                                 sink_tokens=cfg["sink_tokens"],
                                 dispatch=cfg["dispatch"],
                                 session_id=sid, verify=cfg["verify"])
        self._sessions[sid] = _SessionEntry(session)
        return protocol.encode_session_ack(
            frame.request_id, {**session.info(), "resumed": False,
                               "next_seq": 0})

    @staticmethod
    def _traced_append(session, req: dict, tr) -> dict:
        """Worker-thread append with the trace rebound (``to_thread``
        hops threads, so the thread-local must be reinstalled here for
        the codec's stage timers to see it)."""
        if tr is None:
            return session.append(req["layer"], req["k"], req["v"])
        with obs.use_trace(tr):
            # Everything between frame receipt and the append actually
            # starting (loop scheduling, session lock) is queue wait.
            tr.add_span("queue", tr.t0, time.perf_counter())
            return session.append(req["layer"], req["k"], req["v"])

    async def _session_append(self, frame: protocol.Frame) -> bytes:
        req = protocol.decode_session_append(frame)
        self.stats["session_appends"] += 1
        tr = obs.start_trace(frame.request_id, "kv_append")
        entry = self._get_session(req["session_id"])
        if tr is not None:
            tr.arm = entry.session.policy.name_for(req["layer"])
        async with entry.lock:
            seq = req["seq"]
            if seq == entry.next_seq:
                # A failed append still consumes its seq (the failure is
                # deterministic and will not be retried), so the stream
                # position stays in step with the client's counter.
                entry.next_seq += 1
                entry.last_ack = None
                ack = await asyncio.to_thread(
                    self._traced_append, entry.session, req, tr)
                ack = {**ack, "seq": seq, "duplicate": False}
                entry.last_ack = ack
            elif seq == entry.next_seq - 1 and entry.last_ack is not None:
                # A retried duplicate (the first ack died with the
                # connection): replay the stored ack — idempotent.
                ack = {**entry.last_ack, "duplicate": True}
            else:
                self.stats["sessions_lost"] += 1
                raise SessionLost(
                    f"session {req['session_id']!r} expected append seq "
                    f"{entry.next_seq}, got {seq}; the stream cannot be "
                    f"reconciled — reopen and replay")
        if tr is not None:
            with tr.span("serialize"):
                data = protocol.encode_session_ack(frame.request_id, ack)
            obs.export(tr)
            return data
        return protocol.encode_session_ack(frame.request_id, ack)

    async def _session_read(self, frame: protocol.Frame) -> bytes:
        sid, layer = protocol.decode_session_read(frame)
        self.stats["session_reads"] += 1
        entry = self._get_session(sid)
        k, v = await asyncio.to_thread(entry.session.read, layer)
        return protocol.encode_session_kv(frame.request_id, k, v,
                                          session_id=sid, layer=layer)

    async def _session_close(self, frame: protocol.Frame) -> bytes:
        sid = protocol.decode_session_close(frame)
        self.stats["session_closes"] += 1
        entry = self._sessions.pop(sid, None)
        if entry is None:
            self.stats["sessions_lost"] += 1
            raise SessionLost(f"unknown session {sid!r}; nothing to close")
        final = await asyncio.to_thread(entry.session.close)
        return protocol.encode_session_ack(
            frame.request_id, {"session_id": sid, **final})


def _install_sigterm_drain(server: QuantServer) -> None:
    """SIGTERM -> graceful drain, where the platform allows it.

    Signal handlers only work on the main thread (so in-process
    ``ServerThread`` runs skip this; worker processes and the CLI get
    it) and only on loops that support ``add_signal_handler``.
    """
    if threading.current_thread() is not threading.main_thread():
        return
    try:
        asyncio.get_running_loop().add_signal_handler(
            signal.SIGTERM, server.request_drain)
    except (NotImplementedError, RuntimeError, ValueError):
        pass


def run_server(server: QuantServer, sock=None,
               ready=None) -> None:
    """Blocking entry point: run ``server`` until stopped.

    ``ready(port)`` — when given — is called from inside the loop once
    the server is accepting (the CLI prints the bound port through it).
    On the main thread, ``SIGTERM`` triggers a graceful drain instead
    of killing in-flight work.
    """
    async def _main():
        await server.start(sock=sock)
        _install_sigterm_drain(server)
        if ready is not None:
            ready(server.port)
        await server.run()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass


class ServerThread:
    """Run a :class:`QuantServer` on a background thread.

    The in-process flavour of deployment — tests, benchmarks and
    notebook use — with the same code path as the CLI server. Entering
    the context starts the loop and waits until the socket is bound;
    :attr:`port` then holds the real (possibly ephemeral) port.
    """

    def __init__(self, **kwargs) -> None:
        self.server = QuantServer(**kwargs)
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def port(self) -> int:
        return self.server.port

    def __enter__(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._main,
                                        name="quant-server", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise ConfigError("quantization server failed to start in 30s")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def drain(self, timeout: float = 30.0) -> None:
        """Gracefully drain the server and join its thread (bounded)."""
        self.server.request_drain()
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __exit__(self, *exc) -> None:
        self.server.request_stop()
        if self._thread is not None:
            # Bounded reap: a wedged loop must not hang the exiting
            # test/context forever (the thread is daemonic, so it can
            # never outlive the process either way).
            self._thread.join(timeout=30.0)
            self._thread = None

    def _main(self) -> None:
        try:
            run_server(self.server, ready=lambda port: self._ready.set())
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
