"""A deterministic TCP chaos proxy for fault-injection testing.

``FaultProxy`` sits between a client and a quantization server,
forwards whole wire frames in both directions, and injects failures
according to a seeded :class:`FaultPlan`:

* **delay** — hold a frame for ``delay_s`` before forwarding;
* **kill** — abort the connection instead of forwarding a frame
  (simulates a crashed peer / RST mid-conversation);
* **truncate** — forward a random *prefix* of a frame, then abort
  (the receiver sees a mid-frame close);
* **corrupt** — flip one byte in the frame's magic/version region
  before forwarding (the receiver gets an immediate typed
  ``ProtocolError``; payload bytes are left alone on purpose — the
  protocol carries no checksum, so payload corruption would be
  silent, and the chaos suite's job is proving *detectable* faults
  never corrupt results);
* **close-after-N** — abort once a connection has carried N frames.

Every decision comes from ``random.Random(f"{seed}:{conn}:{dir}")`` —
per-connection, per-direction streams — so a given traffic order
replays the same faults. The knobs are also readable from the
environment (``FaultPlan.from_env``): ``REPRO_FAULT_SEED``,
``REPRO_FAULT_DELAY_S``, ``REPRO_FAULT_DELAY_PROB``,
``REPRO_FAULT_KILL_PROB``, ``REPRO_FAULT_TRUNCATE_PROB``,
``REPRO_FAULT_CORRUPT_PROB``, ``REPRO_FAULT_CLOSE_AFTER``.

Example::

    from repro.server import FaultPlan, FaultProxy, QuantClient

    plan = FaultPlan(seed=7, kill_prob=0.05, truncate_prob=0.05)
    with FaultProxy(target_port=server_port, plan=plan) as px:
        with QuantClient(port=px.port, retries=8) as cli:
            out = cli.quantize(x, fmt="m2xfp", verify=True)  # still exact
"""

from __future__ import annotations

import asyncio
import os
import random
import struct
import threading

from ..errors import ConfigError
from dataclasses import dataclass

__all__ = ["FaultPlan", "FaultProxy",
           "FAULT_SEED_ENV", "FAULT_DELAY_S_ENV", "FAULT_DELAY_PROB_ENV",
           "FAULT_KILL_PROB_ENV", "FAULT_TRUNCATE_PROB_ENV",
           "FAULT_CORRUPT_PROB_ENV", "FAULT_CLOSE_AFTER_ENV"]

#: Environment knobs (documented in the README's env-knob table).
FAULT_SEED_ENV = "REPRO_FAULT_SEED"
FAULT_DELAY_S_ENV = "REPRO_FAULT_DELAY_S"
FAULT_DELAY_PROB_ENV = "REPRO_FAULT_DELAY_PROB"
FAULT_KILL_PROB_ENV = "REPRO_FAULT_KILL_PROB"
FAULT_TRUNCATE_PROB_ENV = "REPRO_FAULT_TRUNCATE_PROB"
FAULT_CORRUPT_PROB_ENV = "REPRO_FAULT_CORRUPT_PROB"
FAULT_CLOSE_AFTER_ENV = "REPRO_FAULT_CLOSE_AFTER"

_LEN = struct.Struct("<I")

#: Corruptible body offsets: the magic + version + kind bytes. Any flip
#: here is *detectable* by the receiving frame parser.
_CORRUPT_SPAN = 6


def _env(env: dict | None, name: str, cast, default):
    raw = (os.environ if env is None else env).get(name)
    if raw is None or raw == "":
        return default
    try:
        return cast(raw)
    except ValueError:
        raise ConfigError(f"{name} must be a {cast.__name__}, "
                          f"got {raw!r}") from None


@dataclass(frozen=True)
class FaultPlan:
    """Seeded fault probabilities applied per forwarded frame."""

    seed: int = 0
    delay_s: float = 0.0
    delay_prob: float = 0.0
    kill_prob: float = 0.0
    truncate_prob: float = 0.0
    corrupt_prob: float = 0.0
    close_after_frames: int | None = None

    def __post_init__(self) -> None:
        for name in ("delay_prob", "kill_prob", "truncate_prob",
                     "corrupt_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {p}")
        if self.delay_s < 0:
            raise ConfigError("delay_s must be >= 0")
        if self.close_after_frames is not None \
                and self.close_after_frames < 1:
            raise ConfigError("close_after_frames must be >= 1")

    @classmethod
    def from_env(cls, env: dict | None = None) -> "FaultPlan":
        """A plan from the ``REPRO_FAULT_*`` knobs (all default to off)."""
        close_after = _env(env, FAULT_CLOSE_AFTER_ENV, int, None)
        return cls(
            seed=_env(env, FAULT_SEED_ENV, int, 0),
            delay_s=_env(env, FAULT_DELAY_S_ENV, float, 0.0),
            delay_prob=_env(env, FAULT_DELAY_PROB_ENV, float, 0.0),
            kill_prob=_env(env, FAULT_KILL_PROB_ENV, float, 0.0),
            truncate_prob=_env(env, FAULT_TRUNCATE_PROB_ENV, float, 0.0),
            corrupt_prob=_env(env, FAULT_CORRUPT_PROB_ENV, float, 0.0),
            close_after_frames=close_after,
        )

    @property
    def any_faults(self) -> bool:
        return bool(self.delay_prob or self.kill_prob or self.truncate_prob
                    or self.corrupt_prob
                    or self.close_after_frames is not None)


class _Abort(Exception):
    """Internal: this connection dies now (both directions)."""


class FaultProxy:
    """A frame-aware TCP proxy injecting :class:`FaultPlan` faults.

    Runs its own asyncio loop on a background thread (same shape as
    ``ServerThread``); entering the context binds ``port`` (0 =
    ephemeral) and :attr:`port` then holds the real listen port.
    :attr:`stats` counts connections, forwarded frames and each
    injected fault kind.
    """

    def __init__(self, target_port: int, *,
                 target_host: str = "127.0.0.1",
                 host: str = "127.0.0.1", port: int = 0,
                 plan: FaultPlan | None = None) -> None:
        self.target_host = target_host
        self.target_port = int(target_port)
        self.host = host
        self.port = int(port)
        self.plan = FaultPlan.from_env() if plan is None else plan
        self.stats = {"connections": 0, "frames_forwarded": 0,
                      "killed": 0, "truncated": 0, "corrupted": 0,
                      "delayed": 0, "refused": 0}
        self._conn_seq = 0
        self._conn_tasks: set = set()
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._startup_error: BaseException | None = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "FaultProxy":
        self._thread = threading.Thread(target=self._main,
                                        name="fault-proxy", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise ConfigError("fault proxy failed to start in 30s")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def __exit__(self, *exc) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None

    def _main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = await asyncio.start_server(self._on_connection,
                                            host=self.host, port=self.port)
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            # Reap live connection handlers before the loop dies, so
            # teardown never logs post-close callback errors.
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(*self._conn_tasks,
                                     return_exceptions=True)

    # ------------------------------------------------------------------
    async def _on_connection(self, creader: asyncio.StreamReader,
                             cwriter: asyncio.StreamWriter) -> None:
        conn = self._conn_seq
        self._conn_seq += 1
        self.stats["connections"] += 1
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)
        try:
            sreader, swriter = await asyncio.open_connection(
                self.target_host, self.target_port)
        except OSError:
            self.stats["refused"] += 1
            cwriter.transport.abort()
            return
        shared = {"frames": 0}
        writers = (cwriter, swriter)
        pumps = [
            asyncio.create_task(self._pump(
                creader, swriter, writers, shared,
                random.Random(f"{self.plan.seed}:{conn}:c2s"))),
            asyncio.create_task(self._pump(
                sreader, cwriter, writers, shared,
                random.Random(f"{self.plan.seed}:{conn}:s2c"))),
        ]
        try:
            await asyncio.gather(*pumps, return_exceptions=True)
        finally:
            for writer in writers:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError, asyncio.CancelledError):
                    pass

    async def _pump(self, reader: asyncio.StreamReader,
                    writer: asyncio.StreamWriter, writers, shared,
                    rng: random.Random) -> None:
        """Forward frames one way, rolling the fault dice per frame."""
        try:
            while True:
                try:
                    prefix = await reader.readexactly(_LEN.size)
                    (body_len,) = _LEN.unpack(prefix)
                    body = await reader.readexactly(body_len)
                except (asyncio.IncompleteReadError, ConnectionError,
                        OSError):
                    # Upstream EOF / abort: mirror it downstream.
                    raise _Abort from None
                frame = bytearray(prefix + body)
                shared["frames"] += 1
                if self.plan.close_after_frames is not None and \
                        shared["frames"] > self.plan.close_after_frames:
                    self.stats["killed"] += 1
                    raise _Abort
                if rng.random() < self.plan.kill_prob:
                    self.stats["killed"] += 1
                    raise _Abort
                if rng.random() < self.plan.truncate_prob:
                    cut = rng.randrange(1, len(frame))
                    writer.write(bytes(frame[:cut]))
                    try:
                        await writer.drain()
                    except (ConnectionError, OSError):
                        pass
                    self.stats["truncated"] += 1
                    raise _Abort
                if len(body) >= _CORRUPT_SPAN and \
                        rng.random() < self.plan.corrupt_prob:
                    offset = _LEN.size + rng.randrange(_CORRUPT_SPAN)
                    frame[offset] ^= 0xFF
                    self.stats["corrupted"] += 1
                if self.plan.delay_s > 0 and \
                        rng.random() < self.plan.delay_prob:
                    self.stats["delayed"] += 1
                    await asyncio.sleep(self.plan.delay_s)
                writer.write(bytes(frame))
                await writer.drain()
                self.stats["frames_forwarded"] += 1
        except _Abort:
            for w in writers:
                try:
                    w.transport.abort()
                except (ConnectionError, OSError, AttributeError):
                    pass
        except (ConnectionError, OSError):
            pass
