"""Versioned length-prefixed binary wire protocol for the quant server.

One frame shape for both directions, so a single parser serves client
and server. Layout (all little-endian)::

    uint32  body length B (bytes after this word)
    bytes 0..3   magic  b"RQP1"
    byte  4      protocol version (currently 3)
    byte  5      kind    (1 = request, 2 = response, 3 = ping,
                          4 = health, 5 = drain, 6 = session open,
                          7 = session append, 8 = session read,
                          9 = session close)
    byte  6      status  (requests: 0; responses: a Status code)
    byte  7      flags   (payload encoding: raw float64 | PackedTensor)
    bytes 8..11  uint32 request id (client-chosen; echoed in the response)
    bytes 12..15 uint32 meta length M
    16..16+M     canonical JSON meta (ascii, sorted keys)
    remainder    payload bytes

Request meta carries the catalog format name, its configuration
fingerprint (``repr`` of the format — the same string ``PackedTensor``
headers pin), the operand path (``weight`` / ``activation``), the kernel
dispatch mode and the ``packed`` response flag; the payload is the raw
little-endian C-order float64 tensor, shape in meta. Response payloads
are either the dequantized tensor in the same raw encoding or a
serialized :class:`~repro.codec.PackedTensor` container; error responses
carry a :class:`Status` code that maps 1:1 onto the library's exception
types (``FormatError``, ``ConfigError``, ``CodecError``, ...), plus the
message in meta.

Version 2 added the **control frames**: ``PING`` (client asks for
liveness/health), ``HEALTH`` (the server's answer — the meta block
carries draining state, in-flight count and counters; also acknowledges
``DRAIN``) and ``DRAIN`` (ask the server to stop accepting, finish
bounded in-flight work and exit), plus the ``DRAINING`` status answered
to requests that arrive during a drain (clients treat it like ``BUSY``
but reconnect first).

Version 3 added the **session frames** for streaming KV-cache
quantization: ``SESSION_OPEN`` (meta carries the session config —
layers, per-layer format policy, token budget, sink region, dispatch
mode), ``SESSION_APPEND`` (one K/V block as raw float64, K then V,
shapes in meta, plus a client-assigned monotonically increasing ``seq``
the server uses to deduplicate retried appends), ``SESSION_READ`` (the
server answers with both dequantized tensors in one raw payload) and
``SESSION_CLOSE``. Open/append/close are acknowledged with ordinary
``RESPONSE`` frames whose meta carries a ``session`` object; reads are
answered with a raw-float64 ``RESPONSE`` carrying ``k_shape`` /
``v_shape``. The ``SESSION_LOST`` status (-> the typed
:class:`~repro.errors.SessionLost`) reports unknown session ids and
un-reconcilable sequence numbers — the never-silent-corruption answer
after a replica crash.

**Versioning rule:** any change to the byte layout above — header
fields, meta keys, payload encodings, status numbering — bumps
``PROTOCOL_VERSION``; a server must reject frames carrying any other
version with ``Status.PROTOCOL_ERROR`` naming both versions. The golden
vectors in ``tests/golden/wire_vectors.json`` pin the current version's
frames byte-exactly, so accidental drift is a tier-1 failure.

Example::

    from repro.server import protocol

    blob = protocol.encode_request(1, x, fmt="m2xfp", op="weight")
    frame = protocol.frame_from_bytes(blob)      # round-trips exactly
    req = protocol.decode_request(frame)
    req.x  # the tensor, bit-identical to the caller's float64 array
"""

from __future__ import annotations

import enum
import json
import struct
from dataclasses import dataclass, field

import numpy as np

from ..errors import CodecError, ConfigError, ConnectionLost, FormatError, \
    ProtocolError, ServerBusy, ServerDraining, ServerError, SessionLost

__all__ = [
    "MAGIC", "PROTOCOL_VERSION", "MAX_FRAME_BYTES",
    "KIND_REQUEST", "KIND_RESPONSE", "KIND_PING", "KIND_HEALTH",
    "KIND_DRAIN", "KIND_SESSION_OPEN", "KIND_SESSION_APPEND",
    "KIND_SESSION_READ", "KIND_SESSION_CLOSE",
    "FLAG_RAW_F64", "FLAG_PACKED",
    "Status", "Frame", "QuantRequest",
    "encode_request", "decode_request",
    "encode_response_array", "encode_response_packed",
    "encode_response_error", "response_result",
    "encode_ping", "encode_drain", "encode_health", "decode_health",
    "encode_session_open", "decode_session_open",
    "encode_session_append", "decode_session_append",
    "encode_session_read", "decode_session_read",
    "encode_session_close", "decode_session_close",
    "encode_session_ack", "decode_session_ack",
    "encode_session_kv", "decode_session_kv",
    "frame_to_bytes", "frame_from_bytes", "read_frame", "recv_frame",
    "status_for_exception",
]

MAGIC = b"RQP1"
PROTOCOL_VERSION = 3

#: Upper bound on one frame body; anything larger is a protocol error
#: (protects both sides from a corrupted or hostile length word).
MAX_FRAME_BYTES = 1 << 28

KIND_REQUEST = 1
KIND_RESPONSE = 2
KIND_PING = 3      # client -> server: are you alive, and how loaded?
KIND_HEALTH = 4    # server -> client: liveness/health report (answers
                   # PING, and acknowledges DRAIN)
KIND_DRAIN = 5     # client -> server: stop accepting, finish, exit

# Version-3 session frames (streaming KV-cache quantization).
KIND_SESSION_OPEN = 6    # client -> server: create/resume a session
KIND_SESSION_APPEND = 7  # client -> server: one K/V block, seq-tagged
KIND_SESSION_READ = 8    # client -> server: dequantize one layer
KIND_SESSION_CLOSE = 9   # client -> server: finish a session

_KINDS = (KIND_REQUEST, KIND_RESPONSE, KIND_PING, KIND_HEALTH, KIND_DRAIN,
          KIND_SESSION_OPEN, KIND_SESSION_APPEND, KIND_SESSION_READ,
          KIND_SESSION_CLOSE)

#: Payload encodings (``flags`` bits).
FLAG_RAW_F64 = 0x1   # raw little-endian C-order float64, shape in meta
FLAG_PACKED = 0x2    # a serialized PackedTensor container


class Status(enum.IntEnum):
    """Response status codes; each error code maps to one exception type."""

    OK = 0
    BUSY = 1
    FORMAT_ERROR = 2
    CONFIG_ERROR = 3
    CODEC_ERROR = 4
    PROTOCOL_ERROR = 5
    INTERNAL_ERROR = 6
    DRAINING = 7
    SESSION_LOST = 8


#: status -> exception class raised client-side (and the reverse map the
#: server uses to classify exceptions into status codes).
STATUS_TO_ERROR = {
    Status.BUSY: ServerBusy,
    Status.FORMAT_ERROR: FormatError,
    Status.CONFIG_ERROR: ConfigError,
    Status.CODEC_ERROR: CodecError,
    Status.PROTOCOL_ERROR: ProtocolError,
    Status.INTERNAL_ERROR: ServerError,
    Status.DRAINING: ServerDraining,
    Status.SESSION_LOST: SessionLost,
}

_OPS = ("weight", "activation")
_HEADER = struct.Struct("<4sBBBBII")
_LEN = struct.Struct("<I")


def status_for_exception(exc: BaseException) -> Status:
    """The wire status a server reports for ``exc`` (most specific wins)."""
    for status in (Status.DRAINING, Status.BUSY, Status.SESSION_LOST,
                   Status.FORMAT_ERROR, Status.CONFIG_ERROR,
                   Status.CODEC_ERROR, Status.PROTOCOL_ERROR):
        if isinstance(exc, STATUS_TO_ERROR[status]):
            return status
    return Status.INTERNAL_ERROR


@dataclass
class Frame:
    """One decoded wire frame (either direction)."""

    kind: int
    status: int
    flags: int
    request_id: int
    meta: dict = field(default_factory=dict)
    payload: bytes = b""


@dataclass
class QuantRequest:
    """A validated request: the tensor plus its routing fields."""

    request_id: int
    x: np.ndarray
    format_name: str
    op: str
    dispatch: str
    packed: bool
    fingerprint: str


# ----------------------------------------------------------------------
# Frame (de)serialization
# ----------------------------------------------------------------------
def _meta_bytes(meta: dict) -> bytes:
    return json.dumps(meta, sort_keys=True,
                      separators=(",", ":")).encode("ascii")


def frame_to_bytes(frame: Frame) -> bytes:
    """Serialize a frame, length prefix included."""
    meta = _meta_bytes(frame.meta)
    head = _HEADER.pack(MAGIC, PROTOCOL_VERSION, frame.kind, frame.status,
                        frame.flags, frame.request_id, len(meta))
    body_len = len(head) + len(meta) + len(frame.payload)
    if body_len > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame body of {body_len} bytes exceeds the "
                            f"{MAX_FRAME_BYTES}-byte protocol limit")
    return b"".join((_LEN.pack(body_len), head, meta, frame.payload))


def _parse_body(body: bytes) -> Frame:
    if len(body) < _HEADER.size:
        raise ProtocolError(f"frame body truncated at {len(body)} bytes "
                            f"(header needs {_HEADER.size})")
    magic, version, kind, status, flags, request_id, meta_len = \
        _HEADER.unpack_from(body, 0)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(f"unsupported protocol version {version} "
                            f"(this build speaks {PROTOCOL_VERSION})")
    if kind not in _KINDS:
        raise ProtocolError(f"unknown frame kind {kind}")
    meta_end = _HEADER.size + meta_len
    if meta_end > len(body):
        raise ProtocolError("frame meta section truncated")
    try:
        meta = json.loads(body[_HEADER.size:meta_end].decode("ascii"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"unreadable frame meta: {exc}") from exc
    if not isinstance(meta, dict):
        raise ProtocolError("frame meta must be a JSON object")
    return Frame(kind=kind, status=status, flags=flags,
                 request_id=request_id, meta=meta, payload=body[meta_end:])


def frame_from_bytes(blob: bytes) -> Frame:
    """Parse one complete frame (length prefix included)."""
    blob = bytes(blob)
    if len(blob) < _LEN.size:
        raise ProtocolError("frame shorter than its length prefix")
    (body_len,) = _LEN.unpack_from(blob, 0)
    if body_len > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {body_len} exceeds the "
                            f"{MAX_FRAME_BYTES}-byte protocol limit")
    if len(blob) != _LEN.size + body_len:
        raise ProtocolError(f"frame length prefix says {body_len} body "
                            f"bytes, buffer has {len(blob) - _LEN.size}")
    return _parse_body(blob[_LEN.size:])


async def read_frame(reader, frame_timeout_s: float | None = None) \
        -> Frame | None:
    """Read one frame from an ``asyncio.StreamReader``; None on clean EOF.

    ``frame_timeout_s`` is the slow-loris guard: waiting for a frame to
    *start* is unbounded (idle pipelined connections are fine), but once
    its first byte has arrived the remaining prefix + body must complete
    within the deadline or the read fails with :class:`ProtocolError` —
    a peer trickling bytes can never pin the reader forever.
    """
    import asyncio
    try:
        first = await reader.readexactly(1)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ConnectionLost("connection closed mid-frame") from exc

    async def _rest() -> bytes:
        prefix = first + await reader.readexactly(_LEN.size - 1)
        (body_len,) = _LEN.unpack(prefix)
        if body_len > MAX_FRAME_BYTES:
            raise ProtocolError(f"frame length {body_len} exceeds the "
                                f"{MAX_FRAME_BYTES}-byte protocol limit")
        return await reader.readexactly(body_len)

    try:
        if frame_timeout_s is None:
            body = await _rest()
        else:
            body = await asyncio.wait_for(_rest(), frame_timeout_s)
    except asyncio.IncompleteReadError as exc:
        raise ConnectionLost("connection closed mid-frame") from exc
    except asyncio.TimeoutError:
        raise ProtocolError(
            f"frame not completed within {frame_timeout_s:g}s of its "
            f"first byte (slow-loris guard)") from None
    return _parse_body(body)


def recv_frame(sock) -> Frame | None:
    """Read one frame from a blocking socket; None on clean EOF."""
    prefix = _recv_exact(sock, _LEN.size, eof_ok=True)
    if prefix is None:
        return None
    (body_len,) = _LEN.unpack(prefix)
    if body_len > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {body_len} exceeds the "
                            f"{MAX_FRAME_BYTES}-byte protocol limit")
    body = _recv_exact(sock, body_len, eof_ok=False)
    return _parse_body(body)


def _recv_exact(sock, n: int, eof_ok: bool) -> bytes | None:
    chunks, got = [], 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 20))
        if not chunk:
            if eof_ok and got == 0:
                return None
            raise ConnectionLost("connection closed mid-frame")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
def encode_request(request_id: int, x: np.ndarray, *, fmt: str,
                   op: str = "activation", dispatch: str = "inherit",
                   packed: bool = False, fingerprint: str = "") -> bytes:
    """Serialize one quantization request frame."""
    x = np.ascontiguousarray(x, dtype="<f8")
    meta = {"format": fmt, "op": op, "dispatch": dispatch,
            "packed": bool(packed), "shape": list(x.shape),
            "fingerprint": fingerprint}
    return frame_to_bytes(Frame(kind=KIND_REQUEST, status=0,
                                flags=FLAG_RAW_F64, request_id=request_id,
                                meta=meta, payload=x.tobytes()))


def decode_request(frame: Frame) -> QuantRequest:
    """Validate a request frame and materialize its tensor."""
    if frame.kind != KIND_REQUEST:
        raise ProtocolError(f"expected a request frame, got kind {frame.kind}")
    if not frame.flags & FLAG_RAW_F64:
        raise ProtocolError("request payload must be raw float64 "
                            "(FLAG_RAW_F64)")
    meta = frame.meta
    op = meta.get("op")
    if op not in _OPS:
        raise ProtocolError(f"request op must be one of {_OPS}, got {op!r}")
    from ..serve.service import DISPATCH_MODES
    dispatch = meta.get("dispatch", "inherit")
    if dispatch not in DISPATCH_MODES:
        raise ProtocolError(f"request dispatch must be one of "
                            f"{DISPATCH_MODES}, got {dispatch!r}")
    fmt = meta.get("format")
    if not isinstance(fmt, str) or not fmt:
        raise ProtocolError("request meta is missing the format name")
    shape = meta.get("shape")
    if not isinstance(shape, list) or \
            not all(isinstance(d, int) and d >= 0 for d in shape):
        raise ProtocolError(f"bad request shape {shape!r}")
    n = int(np.prod(shape, dtype=np.int64)) if shape else 1
    if len(frame.payload) != 8 * n:
        raise ProtocolError(f"request payload has {len(frame.payload)} "
                            f"bytes; shape {shape} needs {8 * n}")
    x = np.frombuffer(frame.payload, dtype="<f8").reshape(shape).copy()
    return QuantRequest(request_id=frame.request_id, x=x, format_name=fmt,
                        op=op, dispatch=dispatch,
                        packed=bool(meta.get("packed", False)),
                        fingerprint=str(meta.get("fingerprint", "")))


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------
def encode_response_array(request_id: int, arr: np.ndarray, *,
                          fingerprint: str = "") -> bytes:
    """Serialize an OK response carrying a dequantized tensor."""
    arr = np.ascontiguousarray(arr, dtype="<f8")
    meta = {"shape": list(arr.shape), "fingerprint": fingerprint}
    return frame_to_bytes(Frame(kind=KIND_RESPONSE, status=int(Status.OK),
                                flags=FLAG_RAW_F64, request_id=request_id,
                                meta=meta, payload=arr.tobytes()))


def encode_response_packed(request_id: int, blob: bytes, *,
                           fingerprint: str = "") -> bytes:
    """Serialize an OK response carrying ``PackedTensor`` bytes."""
    meta = {"fingerprint": fingerprint}
    return frame_to_bytes(Frame(kind=KIND_RESPONSE, status=int(Status.OK),
                                flags=FLAG_PACKED, request_id=request_id,
                                meta=meta, payload=bytes(blob)))


def encode_response_error(request_id: int, status: Status, message: str,
                          exc_type: str = "") -> bytes:
    """Serialize an error response (``status`` must not be OK)."""
    if status == Status.OK:
        raise ProtocolError("error responses cannot carry Status.OK")
    meta = {"error": str(message), "exc_type": exc_type}
    return frame_to_bytes(Frame(kind=KIND_RESPONSE, status=int(status),
                                flags=0, request_id=request_id, meta=meta))


def response_result(frame: Frame):
    """The result carried by a response frame.

    OK responses yield the dequantized ``np.ndarray`` or the
    :class:`~repro.codec.PackedTensor`; error responses raise the
    exception type their status maps to, with the server's message.
    """
    if frame.kind != KIND_RESPONSE:
        raise ProtocolError(f"expected a response frame, got kind "
                            f"{frame.kind}")
    if frame.status != Status.OK:
        try:
            status = Status(frame.status)
        except ValueError:
            raise ProtocolError(f"response carries unknown status "
                                f"{frame.status}") from None
        exc_cls = STATUS_TO_ERROR[status]
        message = frame.meta.get("error", f"server error ({status.name})")
        raise exc_cls(message)
    if frame.flags & FLAG_PACKED:
        from ..codec import PackedTensor
        return PackedTensor.from_bytes(frame.payload)
    if frame.flags & FLAG_RAW_F64:
        shape = frame.meta.get("shape")
        if not isinstance(shape, list):
            raise ProtocolError("raw response is missing its shape")
        n = int(np.prod(shape, dtype=np.int64)) if shape else 1
        if len(frame.payload) != 8 * n:
            raise ProtocolError(f"response payload has "
                                f"{len(frame.payload)} bytes; shape "
                                f"{shape} needs {8 * n}")
        return np.frombuffer(frame.payload, dtype="<f8").reshape(shape).copy()
    raise ProtocolError(f"response carries no known payload encoding "
                        f"(flags={frame.flags:#x})")


# ----------------------------------------------------------------------
# Control frames (version 2): PING / HEALTH / DRAIN
# ----------------------------------------------------------------------
def encode_ping(request_id: int) -> bytes:
    """Serialize a PING frame; the server answers with a HEALTH frame."""
    return frame_to_bytes(Frame(kind=KIND_PING, status=0, flags=0,
                                request_id=request_id))


def encode_drain(request_id: int) -> bytes:
    """Serialize a DRAIN frame: stop accepting, finish in-flight, exit.

    The server acknowledges with a HEALTH frame (``draining: true``)
    before it begins refusing new requests with ``Status.DRAINING``.
    """
    return frame_to_bytes(Frame(kind=KIND_DRAIN, status=0, flags=0,
                                request_id=request_id))


def encode_health(request_id: int, info: dict) -> bytes:
    """Serialize a HEALTH frame carrying the server's ``info`` report."""
    return frame_to_bytes(Frame(kind=KIND_HEALTH, status=int(Status.OK),
                                flags=0, request_id=request_id,
                                meta=dict(info)))


def decode_health(frame: Frame) -> dict:
    """The health report carried by a HEALTH frame (or raise typed).

    Error responses (e.g. a version-1 server rejecting the unknown
    kind) raise exactly like :func:`response_result`.
    """
    if frame.kind == KIND_RESPONSE and frame.status != Status.OK:
        response_result(frame)  # raises the typed error
    if frame.kind != KIND_HEALTH:
        raise ProtocolError(f"expected a health frame, got kind "
                            f"{frame.kind}")
    return dict(frame.meta)


# ----------------------------------------------------------------------
# Session frames (version 3): streaming KV-cache quantization
# ----------------------------------------------------------------------
def _session_id_of(meta: dict) -> str:
    sid = meta.get("session_id")
    if not isinstance(sid, str) or not sid:
        raise ProtocolError("session frame meta is missing session_id")
    return sid


def _layer_of(meta: dict) -> int:
    layer = meta.get("layer")
    if not isinstance(layer, int) or layer < 0:
        raise ProtocolError(f"session frame layer must be an int >= 0, "
                            f"got {layer!r}")
    return layer


def encode_session_open(request_id: int, *, session_id: str, n_layers: int,
                        policy=None, max_tokens: int | None = None,
                        sink_tokens: int = 0, dispatch: str = "inherit",
                        verify: bool = True) -> bytes:
    """Serialize a SESSION_OPEN frame carrying the session config.

    ``policy`` is a catalog format name, a policy-spec dict, or a
    :class:`~repro.kv.KVPolicy` (serialized through its ``spec()``).
    Open is **idempotent**: re-opening an existing id with the same
    config is acknowledged as a resume; a different config is refused
    with ``CONFIG_ERROR``.
    """
    from ..kv.session import KVPolicy
    spec = KVPolicy.from_spec(policy if policy is not None
                              else "m2xfp").spec()
    meta = {"session_id": str(session_id), "n_layers": int(n_layers),
            "policy": spec,
            "max_tokens": None if max_tokens is None else int(max_tokens),
            "sink_tokens": int(sink_tokens), "dispatch": dispatch,
            "verify": bool(verify)}
    return frame_to_bytes(Frame(kind=KIND_SESSION_OPEN, status=0, flags=0,
                                request_id=request_id, meta=meta))


def decode_session_open(frame: Frame) -> dict:
    """Validated SESSION_OPEN config (kwargs for ``KVCacheSession``)."""
    if frame.kind != KIND_SESSION_OPEN:
        raise ProtocolError(f"expected a session-open frame, got kind "
                            f"{frame.kind}")
    meta = frame.meta
    n_layers = meta.get("n_layers")
    if not isinstance(n_layers, int) or n_layers < 1:
        raise ProtocolError(f"session open n_layers must be an int >= 1, "
                            f"got {n_layers!r}")
    max_tokens = meta.get("max_tokens")
    if max_tokens is not None and not isinstance(max_tokens, int):
        raise ProtocolError(f"session open max_tokens must be an int or "
                            f"null, got {max_tokens!r}")
    from ..serve.service import DISPATCH_MODES
    dispatch = meta.get("dispatch", "inherit")
    if dispatch not in DISPATCH_MODES:
        raise ProtocolError(f"session dispatch must be one of "
                            f"{DISPATCH_MODES}, got {dispatch!r}")
    return {"session_id": _session_id_of(meta), "n_layers": n_layers,
            "policy": meta.get("policy"), "max_tokens": max_tokens,
            "sink_tokens": int(meta.get("sink_tokens", 0)),
            "dispatch": dispatch,
            "verify": bool(meta.get("verify", True))}


def encode_session_append(request_id: int, *, session_id: str, layer: int,
                          seq: int, k: np.ndarray,
                          v: np.ndarray) -> bytes:
    """Serialize a SESSION_APPEND frame: K then V as raw float64.

    ``seq`` is the client's per-session append counter (0-based,
    monotonically increasing across *all* layers). The server applies
    ``seq == next expected``, replays the stored ack for ``next - 1``
    (a retried duplicate), and answers ``SESSION_LOST`` for anything
    else — a reconnecting client either resumes exactly or learns the
    state is gone; it never silently corrupts the stream.
    """
    k = np.ascontiguousarray(k, dtype="<f8")
    v = np.ascontiguousarray(v, dtype="<f8")
    meta = {"session_id": str(session_id), "layer": int(layer),
            "seq": int(seq), "k_shape": list(k.shape),
            "v_shape": list(v.shape)}
    return frame_to_bytes(Frame(kind=KIND_SESSION_APPEND, status=0,
                                flags=FLAG_RAW_F64, request_id=request_id,
                                meta=meta,
                                payload=k.tobytes() + v.tobytes()))


def _split_kv_payload(frame: Frame) -> tuple[np.ndarray, np.ndarray]:
    """Materialize the K then V tensors of a raw-f64 two-tensor payload."""
    if not frame.flags & FLAG_RAW_F64:
        raise ProtocolError("session K/V payload must be raw float64 "
                            "(FLAG_RAW_F64)")
    shapes = []
    for field_name in ("k_shape", "v_shape"):
        shape = frame.meta.get(field_name)
        if not isinstance(shape, list) or \
                not all(isinstance(d, int) and d >= 0 for d in shape):
            raise ProtocolError(f"bad session {field_name} {shape!r}")
        shapes.append(shape)
    k_shape, v_shape = shapes
    nk = int(np.prod(k_shape, dtype=np.int64)) if k_shape else 1
    nv = int(np.prod(v_shape, dtype=np.int64)) if v_shape else 1
    if len(frame.payload) != 8 * (nk + nv):
        raise ProtocolError(f"session K/V payload has "
                            f"{len(frame.payload)} bytes; shapes "
                            f"{k_shape}+{v_shape} need {8 * (nk + nv)}")
    k = np.frombuffer(frame.payload, dtype="<f8", count=nk) \
        .reshape(k_shape).copy()
    v = np.frombuffer(frame.payload, dtype="<f8", offset=8 * nk) \
        .reshape(v_shape).copy()
    return k, v


def decode_session_append(frame: Frame) -> dict:
    """Validated SESSION_APPEND fields: id, layer, seq and both tensors."""
    if frame.kind != KIND_SESSION_APPEND:
        raise ProtocolError(f"expected a session-append frame, got kind "
                            f"{frame.kind}")
    seq = frame.meta.get("seq")
    if not isinstance(seq, int) or seq < 0:
        raise ProtocolError(f"session append seq must be an int >= 0, "
                            f"got {seq!r}")
    k, v = _split_kv_payload(frame)
    return {"session_id": _session_id_of(frame.meta),
            "layer": _layer_of(frame.meta), "seq": seq, "k": k, "v": v}


def encode_session_read(request_id: int, *, session_id: str,
                        layer: int) -> bytes:
    """Serialize a SESSION_READ frame (answered with a raw K/V response)."""
    meta = {"session_id": str(session_id), "layer": int(layer)}
    return frame_to_bytes(Frame(kind=KIND_SESSION_READ, status=0, flags=0,
                                request_id=request_id, meta=meta))


def decode_session_read(frame: Frame) -> tuple[str, int]:
    if frame.kind != KIND_SESSION_READ:
        raise ProtocolError(f"expected a session-read frame, got kind "
                            f"{frame.kind}")
    return _session_id_of(frame.meta), _layer_of(frame.meta)


def encode_session_close(request_id: int, *, session_id: str) -> bytes:
    """Serialize a SESSION_CLOSE frame (acknowledged with final stats)."""
    meta = {"session_id": str(session_id)}
    return frame_to_bytes(Frame(kind=KIND_SESSION_CLOSE, status=0, flags=0,
                                request_id=request_id, meta=meta))


def decode_session_close(frame: Frame) -> str:
    if frame.kind != KIND_SESSION_CLOSE:
        raise ProtocolError(f"expected a session-close frame, got kind "
                            f"{frame.kind}")
    return _session_id_of(frame.meta)


def encode_session_ack(request_id: int, session: dict) -> bytes:
    """Serialize the OK answer to open/append/close: a ``session`` meta
    object (session info, append ack fields, or final stats)."""
    return frame_to_bytes(Frame(kind=KIND_RESPONSE, status=int(Status.OK),
                                flags=0, request_id=request_id,
                                meta={"session": dict(session)}))


def decode_session_ack(frame: Frame) -> dict:
    """The ``session`` object of an ack (or raise the typed error)."""
    if frame.kind != KIND_RESPONSE:
        raise ProtocolError(f"expected a response frame, got kind "
                            f"{frame.kind}")
    if frame.status != Status.OK:
        response_result(frame)  # raises the typed error
    session = frame.meta.get("session")
    if not isinstance(session, dict):
        raise ProtocolError("session ack is missing its session object")
    return session


def encode_session_kv(request_id: int, k: np.ndarray, v: np.ndarray, *,
                      session_id: str, layer: int) -> bytes:
    """Serialize the OK answer to SESSION_READ: both dequantized tensors."""
    k = np.ascontiguousarray(k, dtype="<f8")
    v = np.ascontiguousarray(v, dtype="<f8")
    meta = {"session_id": str(session_id), "layer": int(layer),
            "k_shape": list(k.shape), "v_shape": list(v.shape)}
    return frame_to_bytes(Frame(kind=KIND_RESPONSE, status=int(Status.OK),
                                flags=FLAG_RAW_F64, request_id=request_id,
                                meta=meta,
                                payload=k.tobytes() + v.tobytes()))


def decode_session_kv(frame: Frame) -> tuple[np.ndarray, np.ndarray]:
    """The (K, V) tensors of a SESSION_READ answer (or raise typed)."""
    if frame.kind != KIND_RESPONSE:
        raise ProtocolError(f"expected a response frame, got kind "
                            f"{frame.kind}")
    if frame.status != Status.OK:
        response_result(frame)  # raises the typed error
    return _split_kv_payload(frame)
