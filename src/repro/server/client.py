"""Sync and async clients for the quantization server.

Both clients speak the versioned frame protocol over one TCP
connection, round-trip numpy arrays as raw float64 payloads, and
support **pipelining**: ``submit()`` streams request frames without
waiting, ``result()`` collects responses by request id in any order.
``quantize(..., verify=True)`` additionally recomputes the expected
result with the local library — ``quantize_weight`` /
``quantize_activation`` under the requested dispatch mode, or
``repro.codec.encode`` for packed requests — and raises unless the
server's bytes are identical: the wire adds nothing and loses nothing.

Fault tolerance:

* **Deadlines everywhere.** ``timeout`` bounds *every* frame read and
  write, not just the connect; a stalled server raises the typed
  :class:`~repro.errors.RequestTimeout` (a ``TimeoutError``), never an
  indefinite hang. Per-request ``deadline_s`` overrides it per call.
* **Reconnect + bounded retry.** ``quantize()`` retries up to
  ``retries`` times with exponential backoff and (optionally seeded)
  jitter on connection loss, ``BUSY`` and ``DRAINING`` — safe because
  quantization requests are idempotent and request-id-tagged. An
  exhausted budget raises :class:`~repro.errors.RetryBudgetExceeded`
  with the last failure chained; ``retries=0`` (the default) keeps the
  raw typed errors.
* **Fail fast, never hang.** When the connection dies, every pending
  pipelined request is rejected with the typed
  :class:`~repro.errors.ConnectionLost` instead of waiting forever.

Env knobs: ``REPRO_CLIENT_TIMEOUT_S`` (default 60),
``REPRO_CLIENT_RETRIES`` (default 0).

Example::

    from repro.server import QuantClient

    with QuantClient(port=7421, retries=4) as cli:
        out = cli.quantize(x, fmt="m2xfp", op="weight", verify=True)
        rids = [cli.submit(t, fmt="elem-em") for t in tensors]  # pipelined
        outs = [cli.result(r) for r in rids]
        cli.ping()   # {"status": "ok", "inflight": 0, ...}

    # asyncio flavour
    async with AsyncQuantClient(port=7421) as cli:
        out = await cli.quantize(x, fmt="m2xfp")
"""

from __future__ import annotations

import asyncio
import random
import socket
import time

import numpy as np

from ..errors import ConfigError, ConnectionLost, ProtocolError, \
    RequestTimeout, RetryBudgetExceeded, ServerBusy
from . import protocol
from .server import DEFAULT_PORT, PORT_ENV, _env_float, _env_int

__all__ = ["QuantClient", "AsyncQuantClient", "local_expected",
           "CLIENT_TIMEOUT_ENV", "CLIENT_RETRIES_ENV",
           "DEFAULT_CLIENT_TIMEOUT_S", "DEFAULT_CLIENT_RETRIES"]

#: Environment knobs (documented in the README's env-knob table).
CLIENT_TIMEOUT_ENV = "REPRO_CLIENT_TIMEOUT_S"
CLIENT_RETRIES_ENV = "REPRO_CLIENT_RETRIES"

DEFAULT_CLIENT_TIMEOUT_S = 60.0
DEFAULT_CLIENT_RETRIES = 0

#: Failures a reconnecting retry may fix: explicit backpressure, a
#: draining or crashed server, a dead/garbled connection, a deadline.
#: Typed server errors (FormatError, ConfigError, ...) are
#: deterministic and never retried.
_RETRYABLE = (ServerBusy, ConnectionLost, RequestTimeout,
              ConnectionError, OSError)


def local_expected(x: np.ndarray, *, fmt: str, op: str = "activation",
                   dispatch: str = "inherit", packed: bool = False):
    """What the server must return: the local library's own answer.

    Runs ``quantize_weight`` / ``quantize_activation`` (or the codec's
    ``encode`` for packed requests) under ``dispatch`` — the function the
    bit-exactness tests and ``verify=True`` compare against.
    """
    from ..runner.formats import make_format
    from ..serve.service import _dispatch_scope
    fmt_obj = make_format(fmt)
    with _dispatch_scope(dispatch):
        if packed:
            from ..codec import encode
            return encode(fmt_obj, x, op=op, axis=-1)
        fn = (fmt_obj.quantize_weight if op == "weight"
              else fmt_obj.quantize_activation)
        return fn(np.asarray(x, dtype=np.float64), axis=-1)


def _verify(result, x, *, fmt, op, dispatch, packed) -> None:
    expect = local_expected(x, fmt=fmt, op=op, dispatch=dispatch,
                            packed=packed)
    if packed:
        same = result.to_bytes() == expect.to_bytes()
    else:
        same = result.tobytes() == \
            np.asarray(expect, dtype=np.float64).tobytes()
    if not same:
        raise ProtocolError(
            f"server result for {fmt}:{op} (dispatch={dispatch}, "
            f"packed={packed}) is not bit-identical to the local "
            f"quantization — wire or server corruption")


def _resolve_timeout(timeout) -> float | None:
    if timeout is not None:
        return float(timeout) if timeout else None
    value = _env_float(CLIENT_TIMEOUT_ENV, DEFAULT_CLIENT_TIMEOUT_S)
    return value or None


def _resolve_retries(retries) -> int:
    value = _env_int(CLIENT_RETRIES_ENV, DEFAULT_CLIENT_RETRIES) \
        if retries is None else int(retries)
    if value < 0:
        raise ConfigError("retries must be >= 0")
    return value


class _RetryPolicy:
    """Shared backoff/jitter schedule (deterministic when seeded)."""

    def __init__(self, retries, backoff_base_s: float,
                 backoff_max_s: float, seed) -> None:
        self.retries = _resolve_retries(retries)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_max_s = float(backoff_max_s)
        self._rng = random.Random(seed)

    def delay_s(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based), jittered."""
        base = min(self.backoff_base_s * (2.0 ** attempt),
                   self.backoff_max_s)
        return base * (0.5 + self._rng.random())

    def budget_error(self, budget: int, label: str,
                     last: BaseException) -> RetryBudgetExceeded:
        return RetryBudgetExceeded(
            f"{label} failed after {budget + 1} attempts "
            f"(last: {type(last).__name__}: {last})")


class QuantClient:
    """Blocking client over one pipelined TCP connection.

    Parameters
    ----------
    timeout:
        Bound on the connect and on every frame read/write
        (``None`` reads ``REPRO_CLIENT_TIMEOUT_S``, default 60;
        ``0`` disables deadlines).
    retries:
        Retry budget for :meth:`quantize` / :meth:`ping` round trips
        (``None`` reads ``REPRO_CLIENT_RETRIES``, default 0 = fail on
        the first error, exactly the pre-retry behaviour).
    backoff_base_s / backoff_max_s / retry_seed:
        Exponential-backoff schedule between retries; jitter comes
        from ``random.Random(retry_seed)`` so tests can pin it.
    """

    def __init__(self, host: str = "127.0.0.1", port: int | None = None, *,
                 timeout: float | None = None, retries: int | None = None,
                 backoff_base_s: float = 0.05, backoff_max_s: float = 2.0,
                 retry_seed=None) -> None:
        self.host = host
        self.port = _env_int(PORT_ENV, DEFAULT_PORT) if port is None \
            else int(port)
        self.timeout = _resolve_timeout(timeout)
        self.retry = _RetryPolicy(retries, backoff_base_s, backoff_max_s,
                                  retry_seed)
        self._sock: socket.socket | None = None
        self._broken = False
        self._conn_gen = 0
        self._next_id = 1
        self._sent_gen: dict[int, int] = {}
        self._responses: dict[int, protocol.Frame] = {}

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------
    def connect(self) -> "QuantClient":
        if self._sock is None:
            self._sock = socket.create_connection((self.host, self.port),
                                                  timeout=self.timeout)
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock.settimeout(self.timeout)
            self._broken = False
            self._conn_gen += 1
        return self

    def close(self) -> None:
        if self._sock is not None:
            self._sock.close()
            self._sock = None
        self._broken = False

    def _mark_broken(self) -> None:
        """The stream position is unknown; force a fresh connection."""
        self._broken = True
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def _ensure_connection(self) -> None:
        if self._broken:
            self._sock = None
            self._broken = False
        if self._sock is None:
            self.connect()

    def __enter__(self) -> "QuantClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Pipelined primitives (fail fast, never auto-retry)
    # ------------------------------------------------------------------
    def submit(self, x: np.ndarray, *, fmt: str, op: str = "activation",
               dispatch: str = "inherit", packed: bool = False,
               fingerprint: str = "") -> int:
        """Stream one request frame; returns its request id (pipelined)."""
        return self._send(protocol.encode_request, x, fmt=fmt, op=op,
                          dispatch=dispatch, packed=packed,
                          fingerprint=fingerprint)

    def _send(self, encoder, *args, **kwargs) -> int:
        if self._sock is None and not self._broken:
            raise ConfigError("client is not connected; call connect() "
                              "or use it as a context manager")
        self._ensure_connection()
        rid = self._next_id
        self._next_id += 1
        try:
            self._sock.sendall(encoder(rid, *args, **kwargs))
        except socket.timeout as exc:
            self._mark_broken()
            raise RequestTimeout(
                f"sending request {rid} timed out after "
                f"{self.timeout:g}s") from exc
        except (ConnectionError, OSError) as exc:
            self._mark_broken()
            raise ConnectionLost(
                f"connection died sending request {rid}: {exc}") from exc
        self._sent_gen[rid] = self._conn_gen
        return rid

    def _wait_frame(self, request_id: int,
                    deadline_s: float | None = None) -> protocol.Frame:
        """Collect frames until ``request_id`` answers (bounded)."""
        budget = self.timeout if deadline_s is None else \
            (float(deadline_s) or None)
        deadline = None if budget is None else time.monotonic() + budget
        while request_id not in self._responses:
            if self._sent_gen.get(request_id, self._conn_gen) \
                    != self._conn_gen or self._broken:
                # The connection the request went out on is gone: its
                # response can never arrive. Fail fast, never hang.
                self._sent_gen.pop(request_id, None)
                raise ConnectionLost(
                    f"connection died with request {request_id} in "
                    f"flight; resubmit on the new connection")
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise RequestTimeout(
                        f"no response to request {request_id} within "
                        f"{budget:g}s")
            try:
                self._sock.settimeout(remaining if remaining is not None
                                      else self.timeout)
                frame = protocol.recv_frame(self._sock)
            except socket.timeout as exc:
                # recv may have consumed part of a frame: the stream
                # position is unknown, so the connection is done for.
                self._mark_broken()
                raise RequestTimeout(
                    f"no response to request {request_id} within "
                    f"{budget:g}s") from exc
            except ConnectionLost:
                self._mark_broken()
                raise
            except ProtocolError as exc:
                # Locally unframeable bytes (corruption): transport-
                # level failure, distinct from a server-reported
                # PROTOCOL_ERROR status (which stays non-retryable).
                self._mark_broken()
                raise ConnectionLost(
                    f"response stream unframeable: {exc}") from exc
            except (ConnectionError, OSError) as exc:
                self._mark_broken()
                raise ConnectionLost(
                    f"connection died awaiting request "
                    f"{request_id}: {exc}") from exc
            if frame is None:
                self._mark_broken()
                raise ConnectionLost(
                    f"server closed the connection before answering "
                    f"request {request_id}")
            self._responses[frame.request_id] = frame
            self._sent_gen.pop(frame.request_id, None)
        self._sent_gen.pop(request_id, None)
        return self._responses.pop(request_id)

    def result(self, request_id: int, *, deadline_s: float | None = None):
        """Wait for the response to ``request_id`` (any arrival order).

        Raises the typed exception an error status maps to
        (``ServerBusy``, ``FormatError``, ``ConfigError``, ...);
        ``ConnectionLost`` if the connection died with the request in
        flight; ``RequestTimeout`` past the deadline.
        """
        return protocol.response_result(
            self._wait_frame(request_id, deadline_s))

    # ------------------------------------------------------------------
    # Resilient round trips
    # ------------------------------------------------------------------
    def _with_retries(self, label: str, once, *, retries=None):
        budget = self.retry.retries if retries is None else \
            _resolve_retries(retries)
        for attempt in range(budget + 1):
            try:
                return once()
            except _RETRYABLE as exc:
                # BUSY/DRAINING answers arrive on a healthy connection
                # (a draining server still owes answers for admitted
                # in-flight work), so only transport failures force a
                # reconnect. A finished drain closes the connection,
                # which surfaces as ConnectionLost and reconnects here.
                if not isinstance(exc, ServerBusy):
                    self._mark_broken()
                if attempt >= budget:
                    if budget == 0:
                        raise
                    raise self.retry.budget_error(budget, label, exc) \
                        from exc
                time.sleep(self.retry.delay_s(attempt))

    def quantize(self, x: np.ndarray, *, fmt: str, op: str = "activation",
                 dispatch: str = "inherit", packed: bool = False,
                 fingerprint: str = "", verify: bool = False,
                 deadline_s: float | None = None,
                 retries: int | None = None):
        """One round trip: submit, wait, (optionally) verify bit-exactness.

        Retries (reconnecting as needed) on connection loss, timeouts,
        ``BUSY`` and ``DRAINING`` up to the retry budget — idempotent
        by the protocol contract, so a retried request returns the
        same bits the first attempt would have.
        """
        def once():
            rid = self.submit(x, fmt=fmt, op=op, dispatch=dispatch,
                              packed=packed, fingerprint=fingerprint)
            return self.result(rid, deadline_s=deadline_s)

        out = self._with_retries(f"{fmt}:{op} quantize", once,
                                 retries=retries)
        if verify:
            _verify(out, x, fmt=fmt, op=op, dispatch=dispatch, packed=packed)
        return out

    def ping(self, *, deadline_s: float | None = None,
             retries: int | None = None) -> dict:
        """Liveness/health round trip: the server's health report dict."""
        def once():
            rid = self._send(protocol.encode_ping)
            return protocol.decode_health(
                self._wait_frame(rid, deadline_s))
        return self._with_retries("ping", once, retries=retries)

    def server_stats(self, *, deadline_s: float | None = None,
                     retries: int | None = None) -> dict:
        """The server-side telemetry subset of the HEALTH meta.

        ``{"stats", "services", "sessions", "metrics"}`` — the raw
        counters, the per-arm service aggregate, the KV session
        occupancy, and the full metrics-registry snapshot (empty under
        ``REPRO_NO_METRICS=1`` on the server). One PING round trip.
        """
        health = self.ping(deadline_s=deadline_s, retries=retries)
        return {key: health.get(key, {})
                for key in ("stats", "services", "sessions", "metrics")}

    def drain(self, *, deadline_s: float | None = None) -> dict:
        """Ask the server to drain gracefully; returns its health ack."""
        rid = self._send(protocol.encode_drain)
        return protocol.decode_health(self._wait_frame(rid, deadline_s))

    # ------------------------------------------------------------------
    # Streaming KV-cache sessions (protocol v3)
    # ------------------------------------------------------------------
    def session_open(self, *, session_id: str, n_layers: int, policy=None,
                     max_tokens: int | None = None, sink_tokens: int = 0,
                     dispatch: str = "inherit", verify: bool = True,
                     deadline_s: float | None = None,
                     retries: int | None = None) -> dict:
        """Open (or idempotently resume) a KV-cache session.

        The ack carries the server's session info plus ``next_seq`` —
        the sequence number the next :meth:`session_append` must use.
        Safe to retry: re-opening with the same config resumes.
        """
        def once():
            rid = self._send(protocol.encode_session_open,
                             session_id=session_id, n_layers=n_layers,
                             policy=policy, max_tokens=max_tokens,
                             sink_tokens=sink_tokens, dispatch=dispatch,
                             verify=verify)
            return protocol.decode_session_ack(
                self._wait_frame(rid, deadline_s))
        return self._with_retries(f"session {session_id} open", once,
                                  retries=retries)

    def session_append(self, session_id: str, layer: int, k, v, *,
                       seq: int, deadline_s: float | None = None,
                       retries: int | None = None) -> dict:
        """Append one K/V block; ``seq`` is the caller's append counter.

        Retrying with the *same* seq is safe: the server replays the
        stored ack for a duplicate. An un-reconcilable seq (state lost
        to a crash) raises the typed, non-retryable
        :class:`~repro.errors.SessionLost`.
        """
        def once():
            rid = self._send(protocol.encode_session_append,
                             session_id=session_id, layer=layer, seq=seq,
                             k=k, v=v)
            return protocol.decode_session_ack(
                self._wait_frame(rid, deadline_s))
        return self._with_retries(f"session {session_id} append", once,
                                  retries=retries)

    def session_read(self, session_id: str, layer: int, *,
                     deadline_s: float | None = None,
                     retries: int | None = None):
        """Dequantized (K, V) for one layer of a live session."""
        def once():
            rid = self._send(protocol.encode_session_read,
                             session_id=session_id, layer=layer)
            return protocol.decode_session_kv(
                self._wait_frame(rid, deadline_s))
        return self._with_retries(f"session {session_id} read", once,
                                  retries=retries)

    def session_close(self, session_id: str, *,
                      deadline_s: float | None = None,
                      retries: int | None = None) -> dict:
        """Close a session; the ack carries its final stats."""
        def once():
            rid = self._send(protocol.encode_session_close,
                             session_id=session_id)
            return protocol.decode_session_ack(
                self._wait_frame(rid, deadline_s))
        return self._with_retries(f"session {session_id} close", once,
                                  retries=retries)

    def quantize_batch(self, tensors, *, fmt: str, op: str = "activation",
                       dispatch: str = "inherit", packed: bool = False,
                       window: int = 32) -> list:
        """Pipeline many tensors over this connection, gather in order.

        At most ``window`` requests are in flight at once: with both
        sides streaming blindly, unbounded pipelining can deadlock once
        the responses the client is not yet reading fill the socket
        buffers (and it would trip the server's in-flight bound anyway).
        """
        if window < 1:
            raise ConfigError("window must be >= 1")
        tensors = list(tensors)
        results: list = []
        pending: list[int] = []
        for x in tensors:
            if len(pending) >= window:
                results.append(self.result(pending.pop(0)))
            pending.append(self.submit(x, fmt=fmt, op=op, dispatch=dispatch,
                                       packed=packed))
        results.extend(self.result(rid) for rid in pending)
        return results


class AsyncQuantClient:
    """asyncio client: same protocol, futures per in-flight request.

    Shares the sync client's fault-tolerance contract: ``timeout``
    bounds the connect and every round trip, ``quantize()`` retries
    with backoff + jitter (reconnecting as needed) up to ``retries``,
    and a dead connection rejects **all** pending futures with the
    typed :class:`~repro.errors.ConnectionLost` instead of hanging.
    """

    def __init__(self, host: str = "127.0.0.1", port: int | None = None, *,
                 timeout: float | None = None, retries: int | None = None,
                 backoff_base_s: float = 0.05, backoff_max_s: float = 2.0,
                 retry_seed=None) -> None:
        self.host = host
        self.port = _env_int(PORT_ENV, DEFAULT_PORT) if port is None \
            else int(port)
        self.timeout = _resolve_timeout(timeout)
        self.retry = _RetryPolicy(retries, backoff_base_s, backoff_max_s,
                                  retry_seed)
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._pending: dict[int, asyncio.Future] = {}
        self._reader_task: asyncio.Task | None = None
        self._reader_error: BaseException | None = None
        self._conn_gen = 0
        self._conn_lock: asyncio.Lock | None = None
        self._next_id = 1

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------
    async def connect(self) -> "AsyncQuantClient":
        if self._conn_lock is None:
            self._conn_lock = asyncio.Lock()
        if self._writer is None:
            await self._open()
        return self

    async def _open(self) -> None:
        try:
            self._reader, self._writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port),
                self.timeout)
        except asyncio.TimeoutError:
            raise RequestTimeout(
                f"connect to {self.host}:{self.port} timed out after "
                f"{self.timeout:g}s") from None
        self._reader_error = None
        self._reader_task = asyncio.create_task(self._read_loop())
        self._conn_gen += 1

    async def _teardown(self, error: BaseException | None = None) -> None:
        """Drop the connection and fail every pending future, typed."""
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
            self._reader = None
        exc = error or ConnectionLost("client closed with the request "
                                      "in flight")
        for fut in self._pending.values():
            if not fut.done():
                fut.set_exception(exc)
        self._pending.clear()

    async def _reset_connection(self, failed_gen: int) -> None:
        """Reconnect once even when many tasks fail concurrently."""
        if self._conn_lock is None:
            self._conn_lock = asyncio.Lock()
        async with self._conn_lock:
            if self._conn_gen != failed_gen or self._writer is None:
                pass  # some other task already reconnected (or closed)
            else:
                await self._teardown(
                    ConnectionLost("connection reset after failure"))
            if self._writer is None:
                await self._open()

    async def close(self) -> None:
        await self._teardown()

    async def __aenter__(self) -> "AsyncQuantClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def _read_loop(self) -> None:
        try:
            while True:
                frame = await protocol.read_frame(self._reader)
                if frame is None:
                    raise ConnectionLost("server closed the connection")
                fut = self._pending.pop(frame.request_id, None)
                if fut is not None and not fut.done():
                    fut.set_result(frame)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            if not isinstance(exc, ProtocolError):
                exc = ConnectionLost(f"connection reader failed: {exc}")
            self._reader_error = exc
            for fut in self._pending.values():
                if not fut.done():
                    fut.set_exception(exc)
            self._pending.clear()

    # ------------------------------------------------------------------
    # Pipelined primitives (fail fast, never auto-retry)
    # ------------------------------------------------------------------
    async def submit(self, x: np.ndarray, *, fmt: str,
                     op: str = "activation", dispatch: str = "inherit",
                     packed: bool = False,
                     fingerprint: str = "") -> asyncio.Future:
        """Send one request; the returned future resolves to its frame."""
        return await self._send(protocol.encode_request, x, fmt=fmt, op=op,
                                dispatch=dispatch, packed=packed,
                                fingerprint=fingerprint)

    async def _send(self, encoder, *args, **kwargs) -> asyncio.Future:
        if self._writer is None:
            raise ConfigError("client is not connected; use "
                              "`async with AsyncQuantClient(...)`")
        if self._reader_task is not None and self._reader_task.done():
            # The reader died (connection failure): a request parked now
            # would never resolve. Fail fast with the root cause.
            exc = self._reader_error
            raise ConnectionLost(
                f"connection reader has stopped"
                f"{f': {exc}' if exc else ''}; reconnect the client") \
                from exc
        rid = self._next_id
        self._next_id += 1
        fut = asyncio.get_running_loop().create_future()
        fut._repro_request_id = rid
        self._pending[rid] = fut
        try:
            self._writer.write(encoder(rid, *args, **kwargs))
            await asyncio.wait_for(self._writer.drain(), self.timeout)
        except asyncio.TimeoutError:
            self._pending.pop(rid, None)
            raise RequestTimeout(
                f"sending request {rid} timed out after "
                f"{self.timeout:g}s") from None
        except (ConnectionError, OSError) as exc:
            self._pending.pop(rid, None)
            raise ConnectionLost(
                f"connection died sending request {rid}: {exc}") from exc
        return fut

    async def _await_frame(self, fut: asyncio.Future,
                           deadline_s: float | None) -> protocol.Frame:
        budget = self.timeout if deadline_s is None else \
            (float(deadline_s) or None)
        try:
            return await asyncio.wait_for(fut, budget)
        except asyncio.TimeoutError:
            rid = getattr(fut, "_repro_request_id", None)
            if rid is not None:
                self._pending.pop(rid, None)
            raise RequestTimeout(
                f"no response to request {rid} within {budget:g}s") \
                from None

    # ------------------------------------------------------------------
    # Resilient round trips
    # ------------------------------------------------------------------
    async def _with_retries(self, label: str, once, *, retries=None):
        budget = self.retry.retries if retries is None else \
            _resolve_retries(retries)
        for attempt in range(budget + 1):
            gen = self._conn_gen
            try:
                if attempt and self._writer is None:
                    # An earlier reconnect failed; this attempt retries
                    # the connect itself (counted against the budget).
                    await self._reset_connection(gen)
                return await once()
            except _RETRYABLE as exc:
                if attempt >= budget:
                    if budget == 0:
                        raise
                    raise self.retry.budget_error(budget, label, exc) \
                        from exc
                await asyncio.sleep(self.retry.delay_s(attempt))
                # As in the sync client: BUSY/DRAINING keep the healthy
                # connection (it still owes pipelined answers); only
                # transport failures force a reconnect.
                if not isinstance(exc, ServerBusy):
                    try:
                        await self._reset_connection(gen)
                    except _RETRYABLE:
                        pass  # the next attempt retries the connect

    async def quantize(self, x: np.ndarray, *, fmt: str,
                       op: str = "activation", dispatch: str = "inherit",
                       packed: bool = False, fingerprint: str = "",
                       verify: bool = False,
                       deadline_s: float | None = None,
                       retries: int | None = None):
        """One awaitable round trip (pipelines freely across tasks)."""
        async def once():
            fut = await self.submit(x, fmt=fmt, op=op, dispatch=dispatch,
                                    packed=packed, fingerprint=fingerprint)
            return protocol.response_result(
                await self._await_frame(fut, deadline_s))

        out = await self._with_retries(f"{fmt}:{op} quantize", once,
                                       retries=retries)
        if verify:
            _verify(out, x, fmt=fmt, op=op, dispatch=dispatch, packed=packed)
        return out

    async def ping(self, *, deadline_s: float | None = None,
                   retries: int | None = None) -> dict:
        """Liveness/health round trip: the server's health report dict."""
        async def once():
            fut = await self._send(protocol.encode_ping)
            return protocol.decode_health(
                await self._await_frame(fut, deadline_s))
        return await self._with_retries("ping", once, retries=retries)

    async def server_stats(self, *, deadline_s: float | None = None,
                           retries: int | None = None) -> dict:
        """The server-side telemetry subset of the HEALTH meta (see
        :meth:`QuantClient.server_stats`)."""
        health = await self.ping(deadline_s=deadline_s, retries=retries)
        return {key: health.get(key, {})
                for key in ("stats", "services", "sessions", "metrics")}

    async def drain(self, *, deadline_s: float | None = None) -> dict:
        """Ask the server to drain gracefully; returns its health ack."""
        fut = await self._send(protocol.encode_drain)
        return protocol.decode_health(await self._await_frame(fut,
                                                              deadline_s))

    # ------------------------------------------------------------------
    # Streaming KV-cache sessions (protocol v3)
    # ------------------------------------------------------------------
    async def session_open(self, *, session_id: str, n_layers: int,
                           policy=None, max_tokens: int | None = None,
                           sink_tokens: int = 0,
                           dispatch: str = "inherit", verify: bool = True,
                           deadline_s: float | None = None,
                           retries: int | None = None) -> dict:
        """Open (or idempotently resume) a KV-cache session."""
        async def once():
            fut = await self._send(protocol.encode_session_open,
                                   session_id=session_id,
                                   n_layers=n_layers, policy=policy,
                                   max_tokens=max_tokens,
                                   sink_tokens=sink_tokens,
                                   dispatch=dispatch, verify=verify)
            return protocol.decode_session_ack(
                await self._await_frame(fut, deadline_s))
        return await self._with_retries(f"session {session_id} open",
                                        once, retries=retries)

    async def session_append(self, session_id: str, layer: int, k, v, *,
                             seq: int, deadline_s: float | None = None,
                             retries: int | None = None) -> dict:
        """Append one K/V block (same seq-dedup contract as the sync
        client: retried duplicates replay, lost state raises
        :class:`~repro.errors.SessionLost`)."""
        async def once():
            fut = await self._send(protocol.encode_session_append,
                                   session_id=session_id, layer=layer,
                                   seq=seq, k=k, v=v)
            return protocol.decode_session_ack(
                await self._await_frame(fut, deadline_s))
        return await self._with_retries(f"session {session_id} append",
                                        once, retries=retries)

    async def session_read(self, session_id: str, layer: int, *,
                           deadline_s: float | None = None,
                           retries: int | None = None):
        """Dequantized (K, V) for one layer of a live session."""
        async def once():
            fut = await self._send(protocol.encode_session_read,
                                   session_id=session_id, layer=layer)
            return protocol.decode_session_kv(
                await self._await_frame(fut, deadline_s))
        return await self._with_retries(f"session {session_id} read",
                                        once, retries=retries)

    async def session_close(self, session_id: str, *,
                            deadline_s: float | None = None,
                            retries: int | None = None) -> dict:
        """Close a session; the ack carries its final stats."""
        async def once():
            fut = await self._send(protocol.encode_session_close,
                                   session_id=session_id)
            return protocol.decode_session_ack(
                await self._await_frame(fut, deadline_s))
        return await self._with_retries(f"session {session_id} close",
                                        once, retries=retries)
