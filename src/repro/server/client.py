"""Sync and async clients for the quantization server.

Both clients speak the versioned frame protocol over one TCP
connection, round-trip numpy arrays as raw float64 payloads, and
support **pipelining**: ``submit()`` streams request frames without
waiting, ``result()`` collects responses by request id in any order.
``quantize(..., verify=True)`` additionally recomputes the expected
result with the local library — ``quantize_weight`` /
``quantize_activation`` under the requested dispatch mode, or
``repro.codec.encode`` for packed requests — and raises unless the
server's bytes are identical: the wire adds nothing and loses nothing.

Example::

    from repro.server import QuantClient

    with QuantClient(port=7421) as cli:
        out = cli.quantize(x, fmt="m2xfp", op="weight", verify=True)
        rids = [cli.submit(t, fmt="elem-em") for t in tensors]  # pipelined
        outs = [cli.result(r) for r in rids]

    # asyncio flavour
    async with AsyncQuantClient(port=7421) as cli:
        out = await cli.quantize(x, fmt="m2xfp")
"""

from __future__ import annotations

import asyncio
import socket

import numpy as np

from ..errors import ConfigError, ProtocolError
from . import protocol
from .server import DEFAULT_PORT, PORT_ENV, _env_int

__all__ = ["QuantClient", "AsyncQuantClient", "local_expected"]


def local_expected(x: np.ndarray, *, fmt: str, op: str = "activation",
                   dispatch: str = "inherit", packed: bool = False):
    """What the server must return: the local library's own answer.

    Runs ``quantize_weight`` / ``quantize_activation`` (or the codec's
    ``encode`` for packed requests) under ``dispatch`` — the function the
    bit-exactness tests and ``verify=True`` compare against.
    """
    from ..runner.formats import make_format
    from ..serve.service import _dispatch_scope
    fmt_obj = make_format(fmt)
    with _dispatch_scope(dispatch):
        if packed:
            from ..codec import encode
            return encode(fmt_obj, x, op=op, axis=-1)
        fn = (fmt_obj.quantize_weight if op == "weight"
              else fmt_obj.quantize_activation)
        return fn(np.asarray(x, dtype=np.float64), axis=-1)


def _verify(result, x, *, fmt, op, dispatch, packed) -> None:
    expect = local_expected(x, fmt=fmt, op=op, dispatch=dispatch,
                            packed=packed)
    if packed:
        same = result.to_bytes() == expect.to_bytes()
    else:
        same = result.tobytes() == \
            np.asarray(expect, dtype=np.float64).tobytes()
    if not same:
        raise ProtocolError(
            f"server result for {fmt}:{op} (dispatch={dispatch}, "
            f"packed={packed}) is not bit-identical to the local "
            f"quantization — wire or server corruption")


class QuantClient:
    """Blocking client over one pipelined TCP connection."""

    def __init__(self, host: str = "127.0.0.1", port: int | None = None, *,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = _env_int(PORT_ENV, DEFAULT_PORT) if port is None \
            else int(port)
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._next_id = 1
        self._responses: dict[int, protocol.Frame] = {}

    # ------------------------------------------------------------------
    def connect(self) -> "QuantClient":
        if self._sock is None:
            self._sock = socket.create_connection((self.host, self.port),
                                                  timeout=self.timeout)
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return self

    def close(self) -> None:
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "QuantClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def submit(self, x: np.ndarray, *, fmt: str, op: str = "activation",
               dispatch: str = "inherit", packed: bool = False,
               fingerprint: str = "") -> int:
        """Stream one request frame; returns its request id (pipelined)."""
        if self._sock is None:
            raise ConfigError("client is not connected; call connect() "
                              "or use it as a context manager")
        rid = self._next_id
        self._next_id += 1
        self._sock.sendall(protocol.encode_request(
            rid, x, fmt=fmt, op=op, dispatch=dispatch, packed=packed,
            fingerprint=fingerprint))
        return rid

    def result(self, request_id: int):
        """Wait for the response to ``request_id`` (any arrival order).

        Raises the typed exception an error status maps to
        (``ServerBusy``, ``FormatError``, ``ConfigError``, ...).
        """
        while request_id not in self._responses:
            frame = protocol.recv_frame(self._sock)
            if frame is None:
                raise ProtocolError("server closed the connection before "
                                    f"answering request {request_id}")
            self._responses[frame.request_id] = frame
        return protocol.response_result(self._responses.pop(request_id))

    def quantize(self, x: np.ndarray, *, fmt: str, op: str = "activation",
                 dispatch: str = "inherit", packed: bool = False,
                 fingerprint: str = "", verify: bool = False):
        """One round trip: submit, wait, (optionally) verify bit-exactness."""
        out = self.result(self.submit(x, fmt=fmt, op=op, dispatch=dispatch,
                                      packed=packed,
                                      fingerprint=fingerprint))
        if verify:
            _verify(out, x, fmt=fmt, op=op, dispatch=dispatch, packed=packed)
        return out

    def quantize_batch(self, tensors, *, fmt: str, op: str = "activation",
                       dispatch: str = "inherit", packed: bool = False,
                       window: int = 32) -> list:
        """Pipeline many tensors over this connection, gather in order.

        At most ``window`` requests are in flight at once: with both
        sides streaming blindly, unbounded pipelining can deadlock once
        the responses the client is not yet reading fill the socket
        buffers (and it would trip the server's in-flight bound anyway).
        """
        if window < 1:
            raise ConfigError("window must be >= 1")
        tensors = list(tensors)
        results: list = []
        pending: list[int] = []
        for x in tensors:
            if len(pending) >= window:
                results.append(self.result(pending.pop(0)))
            pending.append(self.submit(x, fmt=fmt, op=op, dispatch=dispatch,
                                       packed=packed))
        results.extend(self.result(rid) for rid in pending)
        return results


class AsyncQuantClient:
    """asyncio client: same protocol, futures per in-flight request."""

    def __init__(self, host: str = "127.0.0.1",
                 port: int | None = None) -> None:
        self.host = host
        self.port = _env_int(PORT_ENV, DEFAULT_PORT) if port is None \
            else int(port)
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._pending: dict[int, asyncio.Future] = {}
        self._reader_task: asyncio.Task | None = None
        self._reader_error: BaseException | None = None
        self._next_id = 1

    async def connect(self) -> "AsyncQuantClient":
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port)
            self._reader_task = asyncio.create_task(self._read_loop())
        return self

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
        for fut in self._pending.values():
            if not fut.done():
                fut.set_exception(ProtocolError("client closed with the "
                                                "request in flight"))
        self._pending.clear()

    async def __aenter__(self) -> "AsyncQuantClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def _read_loop(self) -> None:
        try:
            while True:
                frame = await protocol.read_frame(self._reader)
                if frame is None:
                    raise ProtocolError("server closed the connection")
                fut = self._pending.pop(frame.request_id, None)
                if fut is not None and not fut.done():
                    fut.set_result(frame)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            self._reader_error = exc
            for fut in self._pending.values():
                if not fut.done():
                    fut.set_exception(exc)
            self._pending.clear()

    async def submit(self, x: np.ndarray, *, fmt: str,
                     op: str = "activation", dispatch: str = "inherit",
                     packed: bool = False,
                     fingerprint: str = "") -> asyncio.Future:
        """Send one request; the returned future resolves to its frame."""
        if self._writer is None:
            raise ConfigError("client is not connected; use "
                              "`async with AsyncQuantClient(...)`")
        if self._reader_task is not None and self._reader_task.done():
            # The reader died (connection failure): a request parked now
            # would never resolve. Fail fast with the root cause.
            exc = self._reader_error
            raise ProtocolError(
                f"connection reader has stopped"
                f"{f': {exc}' if exc else ''}; reconnect the client")
        rid = self._next_id
        self._next_id += 1
        fut = asyncio.get_running_loop().create_future()
        self._pending[rid] = fut
        self._writer.write(protocol.encode_request(
            rid, x, fmt=fmt, op=op, dispatch=dispatch, packed=packed,
            fingerprint=fingerprint))
        await self._writer.drain()
        return fut

    async def quantize(self, x: np.ndarray, *, fmt: str,
                       op: str = "activation", dispatch: str = "inherit",
                       packed: bool = False, fingerprint: str = "",
                       verify: bool = False):
        """One awaitable round trip (pipelines freely across tasks)."""
        fut = await self.submit(x, fmt=fmt, op=op, dispatch=dispatch,
                                packed=packed, fingerprint=fingerprint)
        out = protocol.response_result(await fut)
        if verify:
            _verify(out, x, fmt=fmt, op=op, dispatch=dispatch, packed=packed)
        return out
