"""Network quantization serving: wire protocol, asyncio server, clients.

The deployment layer the ROADMAP's "serves heavy traffic" goal asks
for: :mod:`repro.server.protocol` defines a versioned length-prefixed
binary frame format (golden-pinned in
``tests/golden/wire_vectors.json``); :class:`QuantServer` bridges TCP
connections onto shared, micro-batching
:class:`~repro.serve.QuantService` pipelines with explicit ``BUSY``
backpressure; :class:`WorkerPool` shards the port across spawned
worker processes via ``SO_REUSEPORT``; :class:`QuantClient` /
:class:`AsyncQuantClient` round-trip numpy arrays (or packed
containers) bit-exactly. ``python -m repro serve`` runs it from the
command line; ``scripts/bench_server.py`` load-tests it into
``BENCH_server.json``.

Example::

    from repro.server import ServerThread, QuantClient

    with ServerThread(port=0) as st, QuantClient(port=st.port) as cli:
        out = cli.quantize(x, fmt="m2xfp", op="weight", verify=True)
"""

from . import protocol
from .client import AsyncQuantClient, QuantClient, local_expected
from .server import (DEFAULT_MAX_INFLIGHT, DEFAULT_PORT, MAX_INFLIGHT_ENV,
                     PORT_ENV, WORKERS_ENV, QuantServer, ServerThread,
                     run_server)
from .workers import WorkerPool, reuseport_listener

__all__ = [
    "protocol", "QuantServer", "ServerThread", "run_server",
    "QuantClient", "AsyncQuantClient", "local_expected",
    "WorkerPool", "reuseport_listener",
    "PORT_ENV", "MAX_INFLIGHT_ENV", "WORKERS_ENV",
    "DEFAULT_PORT", "DEFAULT_MAX_INFLIGHT",
]
