"""Network quantization serving: wire protocol, asyncio server, clients.

The deployment layer the ROADMAP's "serves heavy traffic" goal asks
for: :mod:`repro.server.protocol` defines a versioned length-prefixed
binary frame format (golden-pinned in
``tests/golden/wire_vectors.json``); :class:`QuantServer` bridges TCP
connections onto shared, micro-batching
:class:`~repro.serve.QuantService` pipelines with explicit ``BUSY``
backpressure; :class:`WorkerPool` shards the port across spawned
worker processes via ``SO_REUSEPORT``; :class:`QuantClient` /
:class:`AsyncQuantClient` round-trip numpy arrays (or packed
containers) bit-exactly, with per-request deadlines and bounded
reconnect-retry. The stack is fault-tolerant end to end: the pool
supervises and restarts crashed workers, SIGTERM triggers a graceful
drain, and :class:`FaultProxy` (``repro.server.faults``) injects
seeded network chaos for the ``tests/test_faults.py`` suite.
``python -m repro serve`` runs it from the command line;
``scripts/bench_server.py`` load-tests it into ``BENCH_server.json``.

Example::

    from repro.server import ServerThread, QuantClient

    with ServerThread(port=0) as st, QuantClient(port=st.port) as cli:
        out = cli.quantize(x, fmt="m2xfp", op="weight", verify=True)
"""

from . import protocol
from .client import (CLIENT_RETRIES_ENV, CLIENT_TIMEOUT_ENV, AsyncQuantClient,
                     QuantClient, local_expected)
from .faults import FaultPlan, FaultProxy
from .server import (DEFAULT_MAX_INFLIGHT, DEFAULT_PORT, DRAIN_TIMEOUT_ENV,
                     MAX_INFLIGHT_ENV, PORT_ENV, READ_TIMEOUT_ENV,
                     WORKERS_ENV, QuantServer, ServerThread, run_server)
from .workers import MAX_RESTARTS_ENV, WorkerPool, reuseport_listener

__all__ = [
    "protocol", "QuantServer", "ServerThread", "run_server",
    "QuantClient", "AsyncQuantClient", "local_expected",
    "WorkerPool", "reuseport_listener",
    "FaultPlan", "FaultProxy",
    "PORT_ENV", "MAX_INFLIGHT_ENV", "WORKERS_ENV",
    "READ_TIMEOUT_ENV", "DRAIN_TIMEOUT_ENV", "MAX_RESTARTS_ENV",
    "CLIENT_TIMEOUT_ENV", "CLIENT_RETRIES_ENV",
    "DEFAULT_PORT", "DEFAULT_MAX_INFLIGHT",
]
