"""Span-based request tracing, exported as JSON lines.

A :class:`TraceContext` carries one request id through
``QuantService.submit`` → collector → fused encode → wire frame. The
id is the protocol's existing request-id header field (no wire format
change), and the gateway echoes it back as ``X-Request-Id``.

Enable with ``REPRO_TRACE=1``; completed traces append one JSON line
per request to ``REPRO_TRACE_PATH`` (default ``repro_trace.jsonl``):

    {"request_id": 7, "kind": "quantize", "arm": "m2xfp:fast:packed",
     "spans": [{"name": "queue", "start_s": 0.0, "dur_s": ...},
               {"name": "quantize", ...}, {"name": "pack", ...},
               {"name": "serialize", ...}]}

Span names are the pipeline stages: ``queue`` (enqueue → dequeue),
``batch`` (dequeue → execution), ``quantize``, ``pack``, ``verify``,
``serialize``. ``start_s`` is relative to the trace's own start so
lines carry no wall-clock timestamps.

The context travels two ways: explicitly (``QuantService.submit``
takes a ``trace=`` kwarg, because ``asyncio.to_thread`` hops threads)
and via a thread-local for code that cannot take a parameter (the
codec's fused-encode stage sink path).
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager

TRACE_ENV = "REPRO_TRACE"
TRACE_PATH_ENV = "REPRO_TRACE_PATH"
DEFAULT_TRACE_PATH = "repro_trace.jsonl"

_EXPORT_LOCK = threading.Lock()
_LOCAL = threading.local()


def trace_enabled() -> bool:
    """True when ``REPRO_TRACE=1`` (read per call: tests flip it)."""
    return os.environ.get(TRACE_ENV, "") == "1"


def trace_path() -> str:
    return os.environ.get(TRACE_PATH_ENV, "") or DEFAULT_TRACE_PATH


class TraceContext:
    """Accumulates spans for one request; thread-safe because batching
    moves a request across threads."""

    __slots__ = ("request_id", "kind", "arm", "t0", "_spans", "_lock")

    def __init__(self, request_id, kind: str, arm: str | None = None):
        self.request_id = request_id
        self.kind = kind
        self.arm = arm
        self.t0 = time.perf_counter()
        self._spans: list = []
        self._lock = threading.Lock()

    def add_span(self, name: str, start: float, end: float) -> None:
        """Record a span from absolute ``perf_counter`` endpoints."""
        span = {"name": name,
                "start_s": round(start - self.t0, 9),
                "dur_s": round(end - start, 9)}
        with self._lock:
            self._spans.append(span)

    @contextmanager
    def span(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_span(name, start, time.perf_counter())

    def to_line(self) -> dict:
        with self._lock:
            spans = list(self._spans)
        return {"request_id": self.request_id, "kind": self.kind,
                "arm": self.arm, "spans": spans}


def start_trace(request_id, kind: str,
                arm: str | None = None) -> TraceContext | None:
    """A fresh context when tracing is on, else ``None`` (all span
    helpers tolerate ``None`` so call sites stay unconditional)."""
    if not trace_enabled():
        return None
    return TraceContext(request_id, kind, arm)


def current_trace() -> TraceContext | None:
    return getattr(_LOCAL, "trace", None)


@contextmanager
def use_trace(ctx: TraceContext | None):
    """Bind ``ctx`` as the calling thread's current trace."""
    prev = current_trace()
    _LOCAL.trace = ctx
    try:
        yield ctx
    finally:
        _LOCAL.trace = prev


def export(ctx: TraceContext | None) -> None:
    """Append the completed trace as one JSON line (no-op on ``None``)."""
    if ctx is None:
        return
    line = json.dumps(ctx.to_line(), sort_keys=True)
    with _EXPORT_LOCK:
        with open(trace_path(), "a") as f:
            f.write(line + "\n")
