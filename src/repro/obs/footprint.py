"""Shared footprint arithmetic for stats views.

``serve/service.py`` and ``kv/session.py`` each derived
``measured_bits_per_element`` from their own byte counters with
subtly copy-pasted code; this is the single definition both now use.
The expression is kept verbatim (``payload_bytes * 8 /
packed_elements``, no rounding) because the KV session serializes its
``stats()`` dict into golden-pinned wire frames — the float reprs must
not move.
"""

from __future__ import annotations


def measured_bits_per_element(payload_bytes: int,
                              packed_elements: int) -> float | None:
    """Payload bits amortized per packed element; ``None`` before any
    packed traffic (zero or missing element count)."""
    if not packed_elements:
        return None
    return payload_bytes * 8 / packed_elements
