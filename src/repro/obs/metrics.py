"""Unified metrics registry: counters, gauges, bounded histograms.

Every serving layer used to grow its own ``stats()`` dict with its own
shape; this module is the one place they all register into, under a
stable dotted naming scheme (see DESIGN.md §12):

* ``serve.<arm>`` — QuantService counters, one arm per
  ``<format>:<dispatch>:<packed|unpacked>`` service instance.
* ``serve.<arm>.latency`` — end-to-end submit→finish histogram.
* ``kv.<session_id>`` — per-session KV-cache counters.
* ``plan_cache`` / ``codec`` / ``eval.engine`` / ``server`` /
  ``server.workers`` — the module- or process-wide layers.

Two registration styles:

* **Instruments** (:class:`Counter`, :class:`Gauge`,
  :class:`Histogram`) are owned by the registry and written on the hot
  path. Their writes are *gated*: with ``REPRO_NO_METRICS=1`` every
  ``inc``/``set``/``observe`` is a no-op, so the disabled-path cost is
  one env-cached boolean check (pinned by ``scripts/bench_obs.py``).
  Construct with ``gated=False`` for accounting the program itself
  relies on (e.g. gateway routing stats).
* **Collectors** are zero-hot-path-overhead callbacks: a component
  keeps its plain dict counters and the registry calls the collector
  only at :meth:`MetricsRegistry.snapshot` time.

Snapshots are deterministic: sorted keys, no timestamps, JSON-safe
values — two consecutive snapshots with no traffic in between are
identical, and a snapshot can ride in the protocol HEALTH meta as-is.
"""

from __future__ import annotations

import math
import os
import threading
from collections import deque

#: Kill switch: with ``REPRO_NO_METRICS=1`` gated instrument writes
#: no-op and ``snapshot()`` returns ``{}`` (so HEALTH meta stays lean).
NO_METRICS_ENV = "REPRO_NO_METRICS"

#: Default bounded-reservoir window for histograms; matches the
#: gateway's historical latency window so p99 semantics carry over.
DEFAULT_WINDOW = 4096


def metrics_enabled() -> bool:
    """True unless ``REPRO_NO_METRICS=1`` (read per call: tests flip it)."""
    return os.environ.get(NO_METRICS_ENV, "") != "1"


def quantile(sorted_values, q: float) -> float:
    """Nearest-rank quantile over an ascending sequence (0.0 if empty).

    This is *the* percentile definition for the repo: the gateway's
    ``/metrics`` p50/p99 and the server-side histograms must agree on
    one code path (ISSUE 10 satellite 2), so both call here.
    """
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


class Counter:
    """Monotonic counter. ``inc`` is gated unless ``gated=False``."""

    __slots__ = ("_value", "_lock", "_gated")

    def __init__(self, *, gated: bool = True):
        self._value = 0
        self._lock = threading.Lock()
        self._gated = gated

    def inc(self, n: int = 1) -> None:
        if self._gated and not metrics_enabled():
            return
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """Point-in-time value. ``set`` is gated unless ``gated=False``."""

    __slots__ = ("_value", "_lock", "_gated")

    def __init__(self, *, gated: bool = True):
        self._value = 0.0
        self._lock = threading.Lock()
        self._gated = gated

    def set(self, v: float) -> None:
        if self._gated and not metrics_enabled():
            return
        with self._lock:
            self._value = v

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Bounded-reservoir histogram: last ``window`` observations plus a
    lifetime count. Quantiles are nearest-rank over the reservoir."""

    __slots__ = ("_window", "_values", "_count", "_lock", "_gated")

    def __init__(self, window: int = DEFAULT_WINDOW, *,
                 gated: bool = True):
        self._window = int(window)
        self._values: deque = deque(maxlen=self._window)
        self._count = 0
        self._lock = threading.Lock()
        self._gated = gated

    @property
    def window(self) -> int:
        return self._window

    @property
    def count(self) -> int:
        return self._count

    def observe(self, v: float) -> None:
        if self._gated and not metrics_enabled():
            return
        with self._lock:
            self._values.append(float(v))
            self._count += 1

    def values(self) -> list:
        """Ascending copy of the current reservoir."""
        with self._lock:
            return sorted(self._values)

    def quantile(self, q: float) -> float:
        return quantile(self.values(), q)

    def summary(self) -> dict:
        """JSON-safe ``{count, p50, p95, p99}`` in observed units."""
        vals = self.values()
        return {
            "count": self._count,
            "p50": quantile(vals, 0.50),
            "p95": quantile(vals, 0.95),
            "p99": quantile(vals, 0.99),
        }


class MetricsRegistry:
    """Thread-safe name → instrument/collector registry with one
    deterministic ``snapshot()`` view over everything registered."""

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: dict = {}
        self._collectors: dict = {}

    # -- instruments ---------------------------------------------------
    def _get_or_create(self, name: str, kind, factory):
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = self._instruments[name] = factory()
            elif not isinstance(inst, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(inst).__name__}, not {kind.__name__}")
            return inst

    def counter(self, name: str, *, gated: bool = True) -> Counter:
        return self._get_or_create(name, Counter,
                                   lambda: Counter(gated=gated))

    def gauge(self, name: str, *, gated: bool = True) -> Gauge:
        return self._get_or_create(name, Gauge,
                                   lambda: Gauge(gated=gated))

    def histogram(self, name: str, window: int = DEFAULT_WINDOW, *,
                  gated: bool = True) -> Histogram:
        return self._get_or_create(
            name, Histogram, lambda: Histogram(window, gated=gated))

    # -- collectors ----------------------------------------------------
    def register_collector(self, name: str, fn) -> None:
        """``fn()`` must return a JSON-safe dict; it is called only at
        snapshot time. Last registration wins on a name collision (a
        service arm restarted under the same key supersedes the old
        one)."""
        with self._lock:
            self._collectors[name] = fn

    def unregister_collector(self, name: str) -> None:
        with self._lock:
            self._collectors.pop(name, None)

    def unregister_metric(self, name: str) -> None:
        with self._lock:
            self._instruments.pop(name, None)

    def clear(self) -> None:
        """Drop everything (tests only)."""
        with self._lock:
            self._instruments.clear()
            self._collectors.clear()

    # -- snapshot ------------------------------------------------------
    def snapshot(self) -> dict:
        """Sorted, JSON-safe view of every instrument and collector.

        Returns ``{}`` when metrics are disabled; collector errors are
        surfaced as ``{"error": ...}`` rather than taking down the
        caller (a HEALTH response must never fail because one stats
        dict threw)."""
        if not metrics_enabled():
            return {}
        with self._lock:
            instruments = dict(self._instruments)
            collectors = dict(self._collectors)
        out: dict = {}
        for name, inst in instruments.items():
            if isinstance(inst, Histogram):
                out[name] = inst.summary()
            else:
                out[name] = inst.value
        for name, fn in collectors.items():
            try:
                out[name] = dict(fn())
            except Exception as exc:  # pragma: no cover - defensive
                out[name] = {"error": f"{type(exc).__name__}: {exc}"}
        return {name: out[name] for name in sorted(out)}


#: The process-wide default registry every serving layer registers into.
_DEFAULT = MetricsRegistry()


def registry() -> MetricsRegistry:
    return _DEFAULT
