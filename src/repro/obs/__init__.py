"""repro.obs — unified telemetry: metrics registry, request tracing,
and shared footprint arithmetic. See DESIGN.md §12 for the contract."""

from repro.obs.footprint import measured_bits_per_element
from repro.obs.metrics import (
    DEFAULT_WINDOW,
    NO_METRICS_ENV,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics_enabled,
    quantile,
    registry,
)
from repro.obs.trace import (
    DEFAULT_TRACE_PATH,
    TRACE_ENV,
    TRACE_PATH_ENV,
    TraceContext,
    current_trace,
    export,
    start_trace,
    trace_enabled,
    trace_path,
    use_trace,
)

__all__ = [
    "DEFAULT_TRACE_PATH",
    "DEFAULT_WINDOW",
    "NO_METRICS_ENV",
    "TRACE_ENV",
    "TRACE_PATH_ENV",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceContext",
    "current_trace",
    "export",
    "measured_bits_per_element",
    "metrics_enabled",
    "quantile",
    "registry",
    "start_trace",
    "trace_enabled",
    "trace_path",
    "use_trace",
]
