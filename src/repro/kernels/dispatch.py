"""Fast/reference kernel dispatch for the whole quantization library.

Every hot path in the library (``FloatSpec.encode``, the Sg-EM / Sg-EE /
M2-NVFP4 adaptive searches, the Elem-EM/EE refinements) exists in two
implementations:

* the **reference** path — the original, obviously-correct formulation,
  kept unchanged as the semantic ground truth;
* the **fast** path — the vectorized kernels in this package.

The two are bit-identical on every input (``tests/test_kernel_parity.py``
sweeps all registered formats over adversarial tensors); the fast path is
the default. Export ``REPRO_REFERENCE_KERNELS=1`` to force the reference
path globally — the escape hatch for ruling the kernels out while
debugging — or use the :func:`reference_kernels` / :func:`fast_kernels`
context managers for scoped control (they override the environment).

``REPRO_BITTWIDDLE=1`` additionally switches ``FloatSpec`` encoding from
the boundary-cache ``searchsorted`` kernel to the integer bit-twiddle
encoder in :mod:`repro.kernels.bittwiddle`; both fast flavours are
parity-tested against the reference. (Both knobs are listed in the
README's environment-knob table.)

Example::

    from repro.kernels import reference_kernels, use_reference
    from repro.formats.registry import FP4_E2M1

    fast_codes = FP4_E2M1.encode(x)          # default: fast kernels
    with reference_kernels():                # scoped, env-independent
        assert use_reference()
        ref_codes = FP4_E2M1.encode(x)       # bit-identical, slower
"""

from __future__ import annotations

import os
from contextlib import contextmanager

__all__ = ["REFERENCE_ENV", "BITTWIDDLE_ENV", "use_reference",
           "use_bittwiddle", "reference_kernels", "fast_kernels"]

#: Environment variable selecting the reference (slow) kernel paths.
REFERENCE_ENV = "REPRO_REFERENCE_KERNELS"

#: Environment variable selecting the bit-twiddle FloatSpec encoder.
BITTWIDDLE_ENV = "REPRO_BITTWIDDLE"

_override: bool | None = None


def use_reference() -> bool:
    """True when the reference kernel paths are selected."""
    if _override is not None:
        return _override
    return os.environ.get(REFERENCE_ENV, "0") == "1"


def use_bittwiddle() -> bool:
    """True when ``FloatSpec`` should encode via the bit-twiddle kernel."""
    return os.environ.get(BITTWIDDLE_ENV, "0") == "1"


@contextmanager
def reference_kernels():
    """Force the reference path within the block, ignoring the environment."""
    global _override
    prev, _override = _override, True
    try:
        yield
    finally:
        _override = prev


@contextmanager
def fast_kernels():
    """Force the fast path within the block, ignoring the environment."""
    global _override
    prev, _override = _override, False
    try:
        yield
    finally:
        _override = prev
