"""Bit-twiddle mini-float encoding straight from float64 bit patterns.

Mini-float magnitude codes are consecutive integers in value order, so
quantization is exponent extraction plus a mantissa rounding — no search
at all. This kernel works on the IEEE-754 representation of the input:

* the exponent field selects the target binade (after subtracting an
  optional power-of-two ``exp_shift``, which quantizes ``x / 2**shift``
  without materializing the division — power-of-two scaling is exact);
* the 52-bit mantissa is rounded to ``man_bits`` with round-half-to-even
  on the *full code* parity, which is exactly RTNE in code space;
* a mantissa carry naturally increments the exponent field because the
  codes are consecutive integers — no special casing at binade edges;
* inputs below the format's subnormal range round against the fixed
  subnormal step with the same integer rounding.

This is the idiom hardware MX implementations (and BFPsim-style
simulators) use; here it is the optional fast path for ``FloatSpec``
encoding (``REPRO_BITTWIDDLE=1``, see the README's environment-knob
table), parity-tested against both the reference search and the
boundary-cache kernel.

Example::

    from repro.kernels.bittwiddle import encode_magnitudes
    from repro.formats.registry import FP4_E2M1

    codes = encode_magnitudes(FP4_E2M1, x)            # |x| -> FP4 codes
    scaled = encode_magnitudes(FP4_E2M1, x, exp_shift=e)   # |x| / 2**e
"""

from __future__ import annotations

import numpy as np

__all__ = ["encode_magnitudes", "encode_packed"]

_FRAC_MASK = np.uint64((1 << 52) - 1)
_IMPLICIT = np.uint64(1 << 52)


def encode_magnitudes(spec, x: np.ndarray,
                      exp_shift: np.ndarray | int | None = None) -> np.ndarray:
    """Magnitude codes of ``|x| / 2**exp_shift`` for a mini-float ``spec``.

    ``spec`` is any object exposing ``man_bits``, ``bias`` and
    ``code_count`` (:class:`~repro.formats.floatspec.FloatSpec`).
    ``exp_shift`` may be a scalar or any array broadcastable against
    ``x``; it must stay well inside the float64 exponent range
    (|shift| < 900), which the E8M0 scale range guarantees.
    """
    man_bits, bias = int(spec.man_bits), int(spec.bias)
    if not 0 <= man_bits < 52:
        raise ValueError(f"bit-twiddle encode needs 0 <= man_bits < 52, got {man_bits}")
    x = np.asarray(x, dtype=np.float64)
    bits = np.abs(x).view(np.uint64)
    e_field = (bits >> np.uint64(52)).astype(np.int64)
    frac = bits & _FRAC_MASK
    e = e_field - 1023
    if exp_shift is not None:
        e = e - np.asarray(exp_shift, dtype=np.int64)

    # Normal binades: round the 52-bit mantissa to man_bits, half to even
    # on the full code's parity. The carry out of a full mantissa rolls
    # into the exponent field for free (codes are consecutive integers).
    shift = 52 - man_bits
    keep = (frac >> np.uint64(shift)).astype(np.int64)
    rem = frac & np.uint64((1 << shift) - 1)
    half = np.uint64(1 << (shift - 1))
    base = (e + bias) * (1 << man_bits) + keep
    code_norm = base + ((rem > half) | ((rem == half) & ((base & 1) == 1)))

    # Subnormal region: value = sig * 2^(e-52) against the fixed step
    # 2^(1-bias-man_bits), i.e. an integer RTNE of sig >> s2. Shifts past
    # 63 always round to zero (the value is below half the first step).
    sig = frac | _IMPLICIT
    s2 = np.clip((52 - man_bits) + (1 - bias) - e, 1, 63).astype(np.uint64)
    keep2 = (sig >> s2).astype(np.int64)
    rem2 = sig & ((np.uint64(1) << s2) - np.uint64(1))
    half2 = np.uint64(1) << (s2 - np.uint64(1))
    code_sub = keep2 + ((rem2 > half2) | ((rem2 == half2) & ((keep2 & 1) == 1)))

    code = np.where(e >= 1 - bias, code_norm, code_sub)
    # float64-subnormal inputs sit orders of magnitude below any target
    # format's first step for every shift the library can produce.
    code = np.where(e_field == 0, 0, code)
    return np.minimum(code, spec.code_count - 1).astype(np.int64)


def encode_packed(spec, x: np.ndarray,
                  exp_shift: np.ndarray | int | None = None) -> np.ndarray:
    """Full wire codes ``sign << (E+M) | magnitude`` of ``x / 2**exp_shift``.

    The fused quantize→pack encode for mini-float block elements: the
    sign is the input's sign bit (``np.signbit`` semantics, including
    -0.0) and the magnitude comes straight from the bit-pattern encoder
    above, so the result is exactly what the codec's legacy float path
    derives — ready for the bitstream packer, with no dequantized
    intermediate.
    """
    x = np.asarray(x, dtype=np.float64)
    sign = np.signbit(x).astype(np.int64)
    mag = encode_magnitudes(spec, x, exp_shift)
    return (sign << (spec.exp_bits + spec.man_bits)) | mag
