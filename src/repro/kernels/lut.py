"""Decision-boundary caches: grid quantization as one ``searchsorted``.

The reference :func:`repro.formats.floatspec.quantize_to_grid` re-derives
the nearest grid entry on every call: an insertion search against the
grid, two gathers, two distance subtractions, and a tie fix-up. All of
that collapses into a single binary search against *decision boundaries*
precomputed once per grid: boundary ``i`` is the midpoint between codes
``i`` and ``i + 1``, nudged one ulp down whenever the lower code is odd
so that a value landing exactly on the midpoint resolves to the even
code — round-to-nearest-even in code space, bit for bit.

Why this is exact and not merely close — for the grids that qualify:

* the midpoints are exact in float64 — mini-float grid magnitudes are
  dyadic rationals with short mantissas, so their average never rounds;
* the reference's distance comparison is exact — adjacent grid
  magnitudes are within a factor of two of each other, so both
  subtractions in ``d_lo``/``d_hi`` are Sterbenz-exact — and therefore
  equivalent to comparing the value against the midpoint.

Grids that violate either property (e.g. BlockDialect's non-dyadic
``6 * (i/7)**gamma`` dialect levels, whose midpoints round) cannot be
searched through boundaries without changing results within one ulp of
a midpoint, so :func:`exact_boundaries` refuses them and callers fall
back to the reference search. ``tests/test_kernel_parity.py`` checks
the equivalence on adversarial inputs (ties, denormal-range values,
saturating extremes) including non-dyadic grids.

Example::

    import numpy as np
    from repro.kernels.lut import exact_boundaries
    from repro.formats.registry import FP4_E2M1

    bounds = exact_boundaries(FP4_E2M1.grid)      # built once per grid
    codes = np.searchsorted(bounds, np.abs(x), side="left")
    # codes == quantize_to_grid_reference(np.abs(x), FP4_E2M1.grid)
"""

from __future__ import annotations

import numpy as np

__all__ = ["rtne_boundaries", "boundaries_are_exact", "exact_boundaries",
           "cached_boundaries"]


def rtne_boundaries(grid: np.ndarray) -> np.ndarray:
    """Decision boundaries implementing RTNE in code space for ``grid``.

    ``searchsorted(boundaries, x, side="left")`` yields the same codes as
    the reference nearest-with-even-ties search for any ``x >= 0`` (and
    code 0 for negative ``x``, matching the reference's saturation).
    """
    g = np.asarray(grid, dtype=np.float64)
    mid = 0.5 * (g[:-1] + g[1:])
    odd_lo = (np.arange(mid.shape[0]) & 1) == 1
    # Ties must go to the even code: when the lower code is odd, shift the
    # boundary one ulp down so the midpoint itself sorts above it.
    return np.where(odd_lo, np.nextafter(mid, -np.inf), mid)


def boundaries_are_exact(grid: np.ndarray) -> bool:
    """True when boundary search provably matches the reference search.

    Two conditions, checked exactly in float arithmetic:

    * every adjacent sum ``g[i] + g[i+1]`` is exact (zero TwoSum error
      term), so the halved midpoint never rounds;
    * ``g[i+1] <= 2 * g[i]`` for every positive pair, so the reference's
      two distance subtractions are Sterbenz-exact (the leading pair
      with ``g[0] == 0`` is always safe: ``x - 0`` is exact and the
      strict/tie cases against the exact midpoint ``g[1] / 2`` survive
      any rounding of ``g[1] - x``).
    """
    g = np.asarray(grid, dtype=np.float64)
    a, b = g[:-1], g[1:]
    s = a + b
    if np.any((s - a) != b) or np.any((s - b) != a):
        return False
    return not np.any(b[1:] > 2.0 * a[1:])


def exact_boundaries(grid: np.ndarray) -> np.ndarray | None:
    """RTNE boundaries for ``grid``, or None when they would not be exact."""
    if not boundaries_are_exact(grid):
        return None
    return rtne_boundaries(grid)


_CACHE: dict[int, tuple[np.ndarray, np.ndarray | None]] = {}


def cached_boundaries(grid: np.ndarray) -> np.ndarray | None:
    """:func:`exact_boundaries` for ``grid``, cached by array identity.

    Holding a reference to the keyed grid keeps its ``id`` from being
    recycled while the entry lives. Format grids are module-level
    constants, so the cache stays tiny; it is cleared defensively if
    callers ever churn through many ad-hoc grids. Returns None for
    grids that must stay on the reference search.
    """
    key = id(grid)
    hit = _CACHE.get(key)
    if hit is not None and hit[0] is grid:
        return hit[1]
    if len(_CACHE) > 512:
        _CACHE.clear()
    bounds = exact_boundaries(grid)
    _CACHE[key] = (grid, bounds)
    return bounds
