"""Decision-boundary caches: grid quantization as one ``searchsorted``.

The reference :func:`repro.formats.floatspec.quantize_to_grid` re-derives
the nearest grid entry on every call: an insertion search against the
grid, two gathers, two distance subtractions, and a tie fix-up. All of
that collapses into a single binary search against *decision boundaries*
precomputed once per grid: boundary ``i`` is the midpoint between codes
``i`` and ``i + 1``, nudged one ulp down whenever the lower code is odd
so that a value landing exactly on the midpoint resolves to the even
code — round-to-nearest-even in code space, bit for bit.

Why this is exact and not merely close — for the grids that qualify:

* the midpoints are exact in float64 — mini-float grid magnitudes are
  dyadic rationals with short mantissas, so their average never rounds;
* the reference's distance comparison is exact — adjacent grid
  magnitudes are within a factor of two of each other, so both
  subtractions in ``d_lo``/``d_hi`` are Sterbenz-exact — and therefore
  equivalent to comparing the value against the midpoint.

Grids that violate either property (e.g. BlockDialect's non-dyadic
``6 * (i/7)**gamma`` dialect levels, whose midpoints round) cannot be
searched through boundaries without changing results within one ulp of
a midpoint, so :func:`exact_boundaries` refuses them and callers fall
back to the reference search. ``tests/test_kernel_parity.py`` checks
the equivalence on adversarial inputs (ties, denormal-range values,
saturating extremes) including non-dyadic grids.

Example::

    import numpy as np
    from repro.kernels.lut import exact_boundaries
    from repro.formats.registry import FP4_E2M1

    bounds = exact_boundaries(FP4_E2M1.grid)      # built once per grid
    codes = np.searchsorted(bounds, np.abs(x), side="left")
    # codes == quantize_to_grid_reference(np.abs(x), FP4_E2M1.grid)
"""

from __future__ import annotations

import numpy as np

__all__ = ["rtne_boundaries", "boundaries_are_exact", "exact_boundaries",
           "cached_boundaries", "compiled_thresholds", "cached_thresholds",
           "threshold_codes"]


def rtne_boundaries(grid: np.ndarray) -> np.ndarray:
    """Decision boundaries implementing RTNE in code space for ``grid``.

    ``searchsorted(boundaries, x, side="left")`` yields the same codes as
    the reference nearest-with-even-ties search for any ``x >= 0`` (and
    code 0 for negative ``x``, matching the reference's saturation).
    """
    g = np.asarray(grid, dtype=np.float64)
    mid = 0.5 * (g[:-1] + g[1:])
    odd_lo = (np.arange(mid.shape[0]) & 1) == 1
    # Ties must go to the even code: when the lower code is odd, shift the
    # boundary one ulp down so the midpoint itself sorts above it.
    return np.where(odd_lo, np.nextafter(mid, -np.inf), mid)


def boundaries_are_exact(grid: np.ndarray) -> bool:
    """True when boundary search provably matches the reference search.

    Two conditions, checked exactly in float arithmetic:

    * every adjacent sum ``g[i] + g[i+1]`` is exact (zero TwoSum error
      term), so the halved midpoint never rounds;
    * ``g[i+1] <= 2 * g[i]`` for every positive pair, so the reference's
      two distance subtractions are Sterbenz-exact (the leading pair
      with ``g[0] == 0`` is always safe: ``x - 0`` is exact and the
      strict/tie cases against the exact midpoint ``g[1] / 2`` survive
      any rounding of ``g[1] - x``).
    """
    g = np.asarray(grid, dtype=np.float64)
    a, b = g[:-1], g[1:]
    s = a + b
    if np.any((s - a) != b) or np.any((s - b) != a):
        return False
    return not np.any(b[1:] > 2.0 * a[1:])


def exact_boundaries(grid: np.ndarray) -> np.ndarray | None:
    """RTNE boundaries for ``grid``, or None when they would not be exact."""
    if not boundaries_are_exact(grid):
        return None
    return rtne_boundaries(grid)


def _reference_decision(v: float, grid: np.ndarray, i: int) -> bool:
    """True when the reference search assigns ``v`` a code above ``i``.

    Scalar re-statement of ``quantize_to_grid_reference`` restricted to
    ``v`` in ``[grid[i], grid[i + 1]]`` — the exact semantics the
    compiled threshold must reproduce.
    """
    lo, hi = float(grid[i]), float(grid[i + 1])
    d_lo = v - lo
    d_hi = hi - v
    return d_hi < d_lo or (d_hi == d_lo and (i + 1) % 2 == 0)


def compiled_thresholds(grid: np.ndarray) -> np.ndarray:
    """Exact decision thresholds for *any* ascending grid.

    Threshold ``i`` is the smallest float64 assigned code ``i + 1`` by
    the reference nearest-with-even-ties search, found by bisection on
    the float bit patterns. Unlike :func:`exact_boundaries` this works
    for non-dyadic grids too (power-law M-ANT types, BlockDialect
    levels): the reference decision ``d_hi < d_lo`` is monotone in the
    value — both distances are correctly-rounded monotone functions —
    so its flip point is a single float that bisection pins exactly.

    ``searchsorted(thresholds, x, side="right")`` (count of thresholds
    ``<= x``) then reproduces the reference codes for every finite
    ``x >= 0`` bit for bit, in one binary search with no per-call
    distance arithmetic. The equivalence is asserted over adversarial
    values (ties, boundary neighbours) in ``tests/test_plan.py``.
    """
    g = np.asarray(grid, dtype=np.float64)
    out = np.empty(g.shape[0] - 1, dtype=np.float64)
    for i in range(g.shape[0] - 1):
        lo_bits = int(np.float64(g[i]).view(np.uint64))
        hi_bits = int(np.float64(g[i + 1]).view(np.uint64))
        # Invariant: decision(lo) is False (the lower grid point keeps
        # its own code), decision(hi) is True. Bisect on bit patterns,
        # which order positive floats like their values.
        while hi_bits - lo_bits > 1:
            mid_bits = (lo_bits + hi_bits) // 2
            v = float(np.uint64(mid_bits).view(np.float64))
            if _reference_decision(v, g, i):
                hi_bits = mid_bits
            else:
                lo_bits = mid_bits
        out[i] = float(np.uint64(hi_bits).view(np.float64))
    return out


def threshold_codes(thresholds: np.ndarray, ax: np.ndarray) -> np.ndarray:
    """Codes for non-negative magnitudes ``ax`` from compiled thresholds.

    Small threshold sets (the 4-bit grids every hot path uses) go
    through a vectorized compare-accumulate — one ``>=`` pass per
    threshold into an int8 counter, several times faster than a binary
    search; larger sets fall back to one ``searchsorted``. Both return
    the count of thresholds ``<= ax``, i.e. the reference code.
    """
    if thresholds.shape[0] == 0:
        return np.zeros(np.shape(ax), dtype=np.int8)
    if thresholds.shape[0] <= 16:
        c = (ax >= thresholds[0]).view(np.int8).copy()
        for t in thresholds[1:]:
            c += (ax >= t).view(np.int8)
        return c
    return np.searchsorted(thresholds, ax, side="right")


_CACHE: dict[int, tuple[np.ndarray, np.ndarray | None]] = {}


def cached_boundaries(grid: np.ndarray) -> np.ndarray | None:
    """:func:`exact_boundaries` for ``grid``, cached by array identity.

    Holding a reference to the keyed grid keeps its ``id`` from being
    recycled while the entry lives. Format grids are module-level
    constants, so the cache stays tiny; it is cleared defensively if
    callers ever churn through many ad-hoc grids. Returns None for
    grids that must stay on the reference search.
    """
    key = id(grid)
    hit = _CACHE.get(key)
    if hit is not None and hit[0] is grid:
        return hit[1]
    if len(_CACHE) > 512:
        _CACHE.clear()
    bounds = exact_boundaries(grid)
    _CACHE[key] = (grid, bounds)
    return bounds


_THRESHOLD_CACHE: dict[int, tuple[np.ndarray, np.ndarray]] = {}


def cached_thresholds(grid: np.ndarray) -> np.ndarray:
    """:func:`compiled_thresholds` for ``grid``, cached by array identity.

    Same keying discipline as :func:`cached_boundaries`: the keyed grid
    is retained so its ``id`` cannot be recycled, and the cache is
    cleared defensively if ad-hoc grids ever churn through it.
    """
    key = id(grid)
    hit = _THRESHOLD_CACHE.get(key)
    if hit is not None and hit[0] is grid:
        return hit[1]
    if len(_THRESHOLD_CACHE) > 512:
        _THRESHOLD_CACHE.clear()
    thresholds = compiled_thresholds(grid)
    _THRESHOLD_CACHE[key] = (grid, thresholds)
    return thresholds
