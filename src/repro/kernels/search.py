"""Batched code-space candidate search for the adaptive metadata formats.

The reference Sg-EM / Sg-EE / M2-NVFP4 searches quantize every subgroup
once per (bias, multiplier) candidate inside nested Python loops — 12
full quantization passes, each dragging ~20 temporaries through memory.
Here the whole candidate grid is quantized in one batched pass over a
(chunked) ``(n_groups, n_sub, n_candidates, sub_size)`` tensor:

* magnitude codes come from a single ``searchsorted`` against the
  element's cached decision boundaries (:mod:`repro.kernels.lut`);
* the squared error accumulates in absolute-value space — the signed
  residual is the exact negation of the absolute one (the element and
  its quantization always share a sign and the scale is positive), so
  the squares are bit-identical to the reference's;
* the hierarchical (outer bias, inner multiplier) argmin reproduces the
  reference's first-strict-improvement tie-breaking: ``np.argmin``
  returns the first minimum, which is exactly what a ``<``-guarded
  update loop keeps.

Error sums are reduced along a contiguous trailing axis of the same
length as the reference's, so NumPy's pairwise summation visits the
addends in the identical order — a requirement for the argmin decisions
(and therefore the emitted codes) to match the reference bit for bit.

Example (the Sg-EM shape: 3 biases x 4 multipliers per subgroup)::

    cand = (scales_per_bias[:, :, None] * MULTIPLIERS).reshape(n, -1)
    codes, err = candidate_search(subs, cand, fp4.grid, fp4.boundaries)
    outer, inner, _ = hierarchical_select(err, n_outer=3, n_inner=4)
    mag = gather_candidate_codes(codes, outer, inner, n_inner=4)
"""

from __future__ import annotations

import numpy as np

__all__ = ["candidate_search", "hierarchical_select", "gather_candidate_codes"]

#: Per-chunk scratch size (float64 elements); small enough that the whole
#: divide / compare / error chain stays resident in cache.
_CHUNK_ELEMS = 100_000


def candidate_search(subs: np.ndarray, cand_scales: np.ndarray,
                     grid: np.ndarray, boundaries: np.ndarray,
                     chunk_elems: int = _CHUNK_ELEMS
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Quantize every subgroup against every candidate scale at once.

    ``subs`` is ``(n, n_sub, sub_size)`` finite float64 data;
    ``cand_scales`` is ``(n, n_cand)`` positive scales (already including
    any bias and fractional multiplier). Returns ``(codes, err)`` where
    ``codes`` is ``(n, n_sub, n_cand, sub_size)`` magnitude codes and
    ``err`` is the ``(n, n_sub, n_cand)`` per-subgroup squared
    reconstruction error, both bit-identical to quantizing each candidate
    separately with the reference path.

    For the small grids this search targets, codes come from one
    comparison against each decision boundary accumulated into an int8
    counter — substantially cheaper than a per-element binary search.
    (NaN inputs would land on code 0 rather than the reference's
    saturation code; every caller quantizes finite data.)
    """
    n, n_sub, sub = subs.shape
    n_cand = cand_scales.shape[1]
    if boundaries.shape[0] > np.iinfo(np.int8).max:
        raise ValueError("candidate_search expects a small element grid")
    codes = np.empty((n, n_sub, n_cand, sub), dtype=np.int8)
    err = np.empty((n, n_sub, n_cand), dtype=np.float64)
    rows = max(1, min(n, chunk_elems // max(1, n_sub * n_cand * sub)) or 1)
    # One scratch set reused across chunks: the search is memory-bound,
    # and every fresh temporary the old expression chain allocated (abs,
    # divide, one bool per boundary, the grid gather, the error sum) is
    # a cache-cold write the ``out=`` forms below avoid.
    ax_buf = np.empty((rows, n_sub, 1, sub))
    scaled_buf = np.empty((rows, n_sub, n_cand, sub))
    cmp_buf = np.empty((rows, n_sub, n_cand, sub), dtype=bool)
    q_buf = np.empty((rows, n_sub, n_cand, sub))
    for lo in range(0, n, rows):
        hi = min(n, lo + rows)
        r = hi - lo
        ax = ax_buf[:r]
        np.abs(subs[lo:hi, :, None, :], out=ax)
        s = cand_scales[lo:hi][:, None, :, None]
        scaled = scaled_buf[:r]
        np.divide(ax, s, out=scaled)
        # searchsorted(boundaries, x, "left") == count of boundaries < x;
        # each compare lands in the bool scratch and accumulates through
        # its (free) int8 reinterpretation, exactly like the old
        # bool-into-int8 ``+=``.
        c = codes[lo:hi]
        cb = cmp_buf[:r]
        np.greater(scaled, boundaries[0], out=cb)
        c[...] = cb.view(np.int8)
        for b in boundaries[1:]:
            np.greater(scaled, b, out=cb)
            c += cb.view(np.int8)
        # |q|*s - |v| is the exact negation of q*s - v wherever v < 0, so
        # squaring gives the reference residuals bit for bit.
        q = q_buf[:r]
        np.take(grid, c, out=q)
        q *= s
        q -= ax
        q *= q
        q.sum(axis=3, out=err[lo:hi])
    return codes, err


def hierarchical_select(err: np.ndarray, n_outer: int, n_inner: int,
                        fallback_outer: int = 0
                        ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reference-equivalent (outer, inner) selection from candidate errors.

    ``err`` is ``(n, n_sub, n_outer * n_inner)`` with candidates ordered
    outer-major (the reference's loop nesting: bias outside, multiplier
    or decrement inside). Per outer candidate the best inner candidate is
    chosen per subgroup; the outer candidate with the lowest summed group
    error wins. Returns ``(outer, inner, invalid)`` — ``(n,)`` outer
    indices, the ``(n, n_sub)`` inner indices under the winning outer,
    and the ``(n,)`` mask of groups whose best error was not finite.

    The ``invalid`` groups reproduce the reference's strict-``<`` update
    semantics: when every candidate's error overflows to ``inf``, the
    reference never takes an update and stays on its initial state. Such
    groups are forced to ``(fallback_outer, inner 0)`` — the reference's
    initial scale choice — and flagged so callers that initialize to a
    different state (M2-NVFP4's zero output) can apply their own default.
    """
    n, n_sub = err.shape[:2]
    e = err.reshape(n, n_sub, n_outer, n_inner)
    inner = np.argmin(e, axis=3)
    inner_err = e.min(axis=3)
    # Sum over subgroups with n_sub as the contiguous trailing axis so the
    # pairwise reduction order matches the reference's (n, n_sub) sum.
    group_err = np.ascontiguousarray(np.moveaxis(inner_err, 1, 2)).sum(axis=2)
    outer = np.argmin(group_err, axis=1)
    invalid = ~np.isfinite(group_err[np.arange(n), outer])
    if invalid.any():
        outer = np.where(invalid, fallback_outer, outer)
    best_inner = inner[np.arange(n), :, outer]
    if invalid.any():
        best_inner[invalid] = 0
    return outer, best_inner, invalid


def gather_candidate_codes(codes: np.ndarray, outer: np.ndarray,
                           inner: np.ndarray, n_inner: int) -> np.ndarray:
    """Magnitude codes of the winning candidate per subgroup.

    Gathers from the ``(n, n_sub, n_cand, sub_size)`` tensor produced by
    :func:`candidate_search`, replacing the reference's final re-encode
    (which would recompute exactly these codes).
    """
    n, n_sub, _, sub = codes.shape
    cand_idx = (outer[:, None] * n_inner + inner).ravel()
    flat = codes.reshape(n * n_sub, -1, sub)
    picked = flat[np.arange(n * n_sub), cand_idx]
    return picked.reshape(n, n_sub, sub).astype(np.int64)
