"""Fast quantization kernels and the fast/reference dispatch layer.

This package is the library's performance backbone: every format in
:mod:`repro.formats`, :mod:`repro.mx` and :mod:`repro.core` routes its
hot path through these kernels by default, while the original reference
implementations stay available behind ``REPRO_REFERENCE_KERNELS=1``.
Fast and reference paths are bit-identical — enforced by the parity
matrix in ``tests/test_kernel_parity.py`` — so the switch is purely a
performance (and debugging) choice.

Modules (all pure NumPy, importable without the rest of the library):

* :mod:`~repro.kernels.dispatch` — environment/context switches;
* :mod:`~repro.kernels.lut` — per-grid decision-boundary caches turning
  RTNE grid quantization into one ``searchsorted``;
* :mod:`~repro.kernels.bittwiddle` — integer encode on float64 bit
  patterns (mask mantissa, extract exponent), with exact power-of-two
  ``exp_shift`` scaling;
* :mod:`~repro.kernels.search` — the batched code-space candidate
  search behind Sg-EM, adaptive Sg-EE and M2-NVFP4 weights;
* :mod:`~repro.kernels.elem` — fused Elem-EM top-k / Elem-EE offset
  refinement.

Example::

    from repro.kernels import reference_kernels

    fast = fmt.quantize_weight(w)            # default fast path
    with reference_kernels():
        slow = fmt.quantize_weight(w)        # ground truth
    assert fast.tobytes() == slow.tobytes()  # the parity contract
"""

from .bittwiddle import encode_magnitudes
from .dispatch import (BITTWIDDLE_ENV, REFERENCE_ENV, fast_kernels,
                       reference_kernels, use_bittwiddle, use_reference)
from .elem import (elem_ee_offsets, elem_ee_select, fp6_topk_refine,
                   top_indices)
from .lut import (boundaries_are_exact, cached_boundaries, cached_thresholds,
                  compiled_thresholds, exact_boundaries, rtne_boundaries,
                  threshold_codes)
from .search import candidate_search, gather_candidate_codes, hierarchical_select

__all__ = [
    "REFERENCE_ENV", "BITTWIDDLE_ENV", "use_reference", "use_bittwiddle",
    "reference_kernels", "fast_kernels",
    "rtne_boundaries", "boundaries_are_exact", "exact_boundaries",
    "cached_boundaries", "compiled_thresholds", "cached_thresholds",
    "threshold_codes",
    "encode_magnitudes",
    "candidate_search", "hierarchical_select", "gather_candidate_codes",
    "top_indices", "fp6_topk_refine", "elem_ee_select", "elem_ee_offsets",
]
