"""Fused element-metadata kernels (Elem-EM top-k and Elem-EE offsets).

The reference Elem-EM transfer function is ``decode(encode(x))``: the
encoder finds the per-subgroup top elements, re-quantizes them to FP6
and emits 2-bit metadata; the decoder then *re-identifies* the same top
elements from the FP4 codes (as the hardware decode unit must) and
re-applies the refinement. Simulating both halves repeats the top-k
search, the gathers and the clamp arithmetic. Since the decoder provably
reconstructs the encoder's selection (same codes, same stable tie
order), the round trip collapses into one fused pass with bit-identical
output. The same fusion serves ``M2NVFP4.quantize_activation``, whose
top-1 refinement is the ``top_k == 1`` special case.

Example (one fused Elem-EM transfer over already-scaled groups)::

    from repro.kernels.elem import fp6_topk_refine
    from repro.formats.registry import FP4_E2M1, FP6_E2M3

    dq = fp6_topk_refine(scaled, sub_size=8, top_k=1,
                         fp4=FP4_E2M1, fp6=FP6_E2M3)
    # dq == elem_em_decode(elem_em_encode(...)) bit for bit
"""

from __future__ import annotations

import numpy as np

__all__ = ["top_indices", "fp6_topk_refine", "elem_ee_select",
           "elem_ee_offsets"]


def top_indices(mag_sub: np.ndarray, top_k: int) -> np.ndarray:
    """Indices of the ``top_k`` largest codes per subgroup, ties to the
    lowest index — ``argmax`` for the dominant top-1 case, a stable
    descending argsort otherwise (both give the reference order)."""
    if top_k == 1:
        return np.argmax(mag_sub, axis=2)[:, :, None]
    return np.argsort(-mag_sub, axis=2, kind="stable")[:, :, :top_k]


def fp6_topk_refine(scaled: np.ndarray, sub_size: int, top_k: int,
                    fp4, fp6, meta_bits: int = 2) -> np.ndarray:
    """Fused Elem-EM encode+decode in already-scaled space.

    Quantizes ``(n, k)`` data to FP4, re-quantizes each subgroup's top-k
    elements (by FP4 code) to FP6, clamps the FP6 code into the 2-bit
    window above the FP4 code (the Algorithm-1 bias-clamp trick), and
    substitutes the refined values — one pass, equal bit for bit to
    ``elem_em_decode(elem_em_encode(...))`` on the same input.
    """
    n, k = scaled.shape
    n_sub = k // sub_size
    sign = np.signbit(scaled)
    ax = np.abs(scaled)
    mag = np.searchsorted(fp4.boundaries, ax, side="left")
    vals = fp4.grid[mag]
    dq = np.where(sign, -vals, vals)

    mag_sub = mag.reshape(n, n_sub, sub_size)
    top_idx = top_indices(mag_sub, top_k)
    top_abs = np.take_along_axis(ax.reshape(n, n_sub, sub_size), top_idx, axis=2)
    fp6_codes = np.searchsorted(fp6.boundaries, top_abs, side="left")

    fp4_top = np.take_along_axis(mag_sub, top_idx, axis=2)
    lo = fp4_top << meta_bits
    # encode: meta = clamp(fp6 + 1, lo, lo + 3) - lo; decode: (lo | meta) - 1.
    # lo has zero low bits, so the OR re-assembles the clamped code exactly.
    decoded = np.clip(np.clip(fp6_codes + 1, lo, lo + (1 << meta_bits) - 1) - 1,
                      0, fp6.code_count - 1)
    refined = fp6.grid[decoded]

    top_sign = np.take_along_axis(sign.reshape(n, n_sub, sub_size), top_idx, axis=2)
    out = dq.reshape(n, n_sub, sub_size)
    np.put_along_axis(out, top_idx, np.where(top_sign, -refined, refined), axis=2)
    return out.reshape(n, k)


def elem_ee_select(top_val: np.ndarray, o_max: int, fp4
                   ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The Elem-EE offset search, exposed at the code level.

    Evaluates ``quantize(v / 2**o) * 2**o`` for every offset in one shot
    and returns ``(codes, cand, pick)``: the per-offset magnitude codes,
    the signed candidate values, and the chosen offset index per element
    (``argmin`` keeps the first minimum, matching the reference's
    ``<``-guarded ascending-offset loop). The packed-tensor codec stores
    ``pick`` and the picked code, so it shares this exact search rather
    than re-deriving it.
    """
    offs = np.exp2(np.arange(o_max + 1, dtype=np.float64))
    scaled = np.abs(top_val)[..., None] / offs
    codes = np.searchsorted(fp4.boundaries, scaled, side="left")
    cand = fp4.grid[codes] * offs
    cand = np.where(np.signbit(top_val)[..., None], -cand, cand)
    err = np.abs(cand - top_val[..., None])
    pick = np.argmin(err, axis=-1)
    return codes, cand, pick


def elem_ee_offsets(top_val: np.ndarray, o_max: int, fp4) -> np.ndarray:
    """Best exponent-increment refinement of the top elements, batched."""
    _, cand, pick = elem_ee_select(top_val, o_max, fp4)
    return np.take_along_axis(cand, pick[..., None], axis=-1)[..., 0]
