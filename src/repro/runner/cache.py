"""Content-addressed on-disk cache for experiment results.

A cache entry is keyed by everything that can change an experiment's
numbers:

* the experiment id and its canonicalized kwargs;
* a *code salt* — a digest over the source of the whole ``repro``
  package, so any code change invalidates every entry (coarse but
  impossible to under-invalidate);
* the kernel dispatch mode (fast / reference / bit-twiddle). The modes
  are bit-identical by contract, but a cache must never be the thing
  that hides a parity break;
* an optional extra fingerprint (the sweep runner passes the format
  configuration fingerprint).

Entries are JSON files under ``<cache_dir>/<key>.json`` (default
``results/cache/``, overridable via ``REPRO_CACHE_DIR``); writes are
atomic (temp file + ``os.replace``) so concurrent runners on the same
tree can only ever observe complete entries. ``REPRO_NO_RESULT_CACHE=1``
disables the cache globally. (Both knobs are listed in the README's
environment-knob table.)

Example::

    from repro.runner.cache import ResultCache, cache_key

    cache = ResultCache()                      # REPRO_CACHE_DIR-aware
    key = cache_key("tbl3", {"fast": True})
    if (hit := cache.get(key)) is None:
        payload = expensive_compute()
        cache.put(key, {"payload": payload})
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

__all__ = ["CACHE_DIR_ENV", "NO_RESULT_CACHE_ENV", "ResultCache",
           "atomic_write_text", "cache_key", "canonical_dumps", "code_salt"]

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable disabling the result cache entirely.
NO_RESULT_CACHE_ENV = "REPRO_NO_RESULT_CACHE"

DEFAULT_CACHE_DIR = os.path.join("results", "cache")

_code_salt: str | None = None


def atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` via temp file + ``os.replace``.

    Concurrent readers (or a writer crashing mid-write) can only ever
    observe a complete file; used for cache entries and artifacts alike.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as f:
            f.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def canonical_dumps(payload) -> str:
    """Deterministic JSON text: sorted keys, no whitespace variance.

    Python's shortest-repr float serialization is itself deterministic,
    so two payloads with bit-identical numbers dump to identical bytes —
    the property the runner's ``--jobs`` determinism contract rests on.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ": "),
                      indent=1, allow_nan=True)


def code_salt() -> str:
    """Digest of every ``.py`` file in the installed ``repro`` package.

    Computed once per process. Hashing content (not mtimes) makes the
    salt reproducible across checkouts: the same source tree always maps
    to the same cache namespace.
    """
    global _code_salt
    if _code_salt is None:
        import repro
        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_salt = digest.hexdigest()[:16]
    return _code_salt


def _dispatch_mode() -> list:
    from ..kernels.dispatch import use_bittwiddle, use_reference
    return [bool(use_reference()), bool(use_bittwiddle())]


def cache_key(experiment_id: str, kwargs: dict, extra=()) -> str:
    """Content-addressed key for one experiment (or sweep arm) run."""
    payload = {
        "experiment": experiment_id,
        "kwargs": {k: _keyable(v) for k, v in sorted(kwargs.items())},
        "code": code_salt(),
        "dispatch": _dispatch_mode(),
        "extra": _keyable(extra),
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()[:32]


def _keyable(v):
    """Reduce a kwarg value to a JSON-stable form for key derivation."""
    if isinstance(v, (str, int, float, bool)) or v is None:
        return v
    if isinstance(v, (list, tuple, set, frozenset)):
        items = sorted(v, key=repr) if isinstance(v, (set, frozenset)) else v
        return [_keyable(i) for i in items]
    if isinstance(v, dict):
        return {str(k): _keyable(val) for k, val in sorted(v.items(), key=lambda kv: str(kv[0]))}
    return repr(v)


class ResultCache:
    """One directory of content-addressed experiment result payloads."""

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
        self.root = Path(root)
        self.enabled = os.environ.get(NO_RESULT_CACHE_ENV, "0") != "1"
        self.hits = 0
        self.misses = 0

    def path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str):
        """The cached entry for ``key``, or None (counts hit/miss).

        Anything unreadable, unparsable, or shaped wrong (a hand-edited
        file, a foreign format sharing the directory) degrades to a
        miss and is recomputed — a cache must never abort a run.
        """
        if not self.enabled:
            self.misses += 1
            return None
        path = self.path(key)
        try:
            with open(path) as f:
                payload = json.load(f)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if not isinstance(payload, dict) or "payload" not in payload:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload) -> None:
        """Atomically persist ``payload`` under ``key``."""
        if not self.enabled:
            return
        atomic_write_text(self.path(key), canonical_dumps(payload))

    @property
    def stats(self) -> dict:
        """Hit/miss counters for this cache handle's lifetime."""
        return {"hits": self.hits, "misses": self.misses}
