"""Named catalog of every sweep-able tensor format in the library.

The experiment registry hard-codes its format arms per table; this catalog
is the complement: a flat ``name -> zero-argument factory`` map that the
sweep runner, the property-based test suite and the golden-vector
conformance layer all iterate so "every registered format" means the same
thing everywhere. Factories (rather than shared instances) keep the sweep
workers free of cross-arm state.

Example::

    from repro.runner.formats import list_formats, make_format

    for name in list_formats():          # all 21 catalog formats
        fmt = make_format(name)
        fmt.quantize_weight(w, axis=-1)
"""

from __future__ import annotations

from typing import Callable

from ..core import ElemEE, ElemEM, M2NVFP4, M2XFP, SgEE, SgEM
from ..models.quantized import Fp16Format
from ..mx import (MSFP12, MSFP16, MXFP4, MXFP6_E2M3, MXFP6_E3M2, MXFP8_E4M3,
                  MXFP8_E5M2, MXINT8, NVFP4, SMX4, SMX6, SMX9, GroupFP4,
                  MaxPreserving, TensorFormat)

__all__ = ["FORMAT_REGISTRY", "make_format", "list_formats",
           "format_fingerprint"]

#: name -> zero-argument factory for every sweep-able tensor format.
FORMAT_REGISTRY: dict[str, Callable[[], TensorFormat]] = {
    "fp16": Fp16Format,
    "fp4": GroupFP4,
    "mxfp4": MXFP4,
    "mxfp4-maxkeep": lambda: MaxPreserving(MXFP4()),
    "mxfp6-e2m3": MXFP6_E2M3,
    "mxfp6-e3m2": MXFP6_E3M2,
    "mxfp8-e4m3": MXFP8_E4M3,
    "mxfp8-e5m2": MXFP8_E5M2,
    "mxint8": MXINT8,
    "nvfp4": NVFP4,
    "smx4": SMX4,
    "smx6": SMX6,
    "smx9": SMX9,
    "msfp12": MSFP12,
    "msfp16": MSFP16,
    "elem-em": ElemEM,
    "elem-ee": ElemEE,
    "sg-em": SgEM,
    "sg-ee": lambda: SgEE(adaptive=True),
    "m2xfp": M2XFP,
    "m2-nvfp4": M2NVFP4,
}


def list_formats() -> list[str]:
    """All catalog names in definition order."""
    return list(FORMAT_REGISTRY)


def make_format(name: str) -> TensorFormat:
    """Instantiate a catalog format by name, with a helpful error."""
    if name not in FORMAT_REGISTRY:
        from ..errors import ConfigError
        raise ConfigError(f"unknown format {name!r}; "
                          f"available: {', '.join(sorted(FORMAT_REGISTRY))}")
    return FORMAT_REGISTRY[name]()


def format_fingerprint(name: str) -> tuple:
    """Hashable fingerprint of a catalog format's configuration.

    Feeds the sweep cache key, so a change to a format's defaults (group
    size, scale rule, element spec) invalidates cached sweep arms even
    when the code-salt hash is unchanged (e.g. an env-driven default).
    """
    fmt = make_format(name)
    key = fmt.weight_cache_key
    if key is not None:
        return (name, key)
    return (name, repr(fmt), f"{fmt.ebw:.6f}")
