"""Format x profile sweep grids beyond the paper's fixed tables.

The registry reproduces the paper's 13 artifacts with their hard-coded
arms; ``SweepRunner`` generalizes the same machinery to arbitrary grids
over the format catalog (:mod:`repro.runner.formats`) and the model
profiles. Each arm (one perplexity evaluation of one format on one
profile) is an independent cache entry keyed by the arm parameters plus
the format's configuration fingerprint, so adding a format to a sweep
re-pays only the new arms, and a partially-failed sweep resumes from
the arms that finished.

Example::

    from repro.runner import RunContext, SweepRunner

    runner = SweepRunner(RunContext(fast=True, jobs=4))
    record = runner.run(formats=["mxfp4", "m2xfp"],
                        profiles=["llama2-7b", "opt-6.7b"])
    print(record.result.render())        # ppl per (profile, format) arm
"""

from __future__ import annotations

import time

from ..experiments.report import ExperimentResult
from .cache import ResultCache, cache_key
from .context import RunContext
from .execution import make_cache, pool_execute, write_artifact_pair
from .formats import format_fingerprint, make_format
from .runner import RunRecord

__all__ = ["SweepRunner", "sweep_arm"]


def sweep_arm(profile_key: str, format_name: str,
              n_seq: int | None, seq_len: int | None, seed: int) -> dict:
    """Evaluate one (profile, format) arm (module-level: pool-safe)."""
    from ..eval.perplexity import quantized_perplexity
    from ..models.profiles import load_runtime
    RunContext(seed=seed).apply()
    t0 = time.perf_counter()
    rt = load_runtime(profile_key, n_seq=n_seq, seq_len=seq_len)
    fmt = make_format(format_name)
    ppl = quantized_perplexity(rt, fmt)
    return {
        "payload": {
            "profile": profile_key,
            "format": format_name,
            "ebw": float(fmt.ebw),
            "ppl": float(ppl),
            "fp16_ppl": float(rt.fp16_ppl),
        },
        "seconds": time.perf_counter() - t0,
    }


class SweepRunner:
    """Run a format x profile perplexity grid with per-arm caching."""

    def __init__(self, context: RunContext | None = None,
                 cache: ResultCache | None = None) -> None:
        self.context = context or RunContext()
        self.cache = cache if cache is not None else make_cache(self.context)

    def run(self, formats: list[str], profiles: list[str],
            progress=None) -> RunRecord:
        """Evaluate every (profile, format) arm; returns one RunRecord.

        Arm order in the result table is grid order (profiles outer,
        formats inner) regardless of completion order.
        """
        n_seq, seq_len = (8, 64) if self.context.fast else (None, None)
        arms = [(p, f) for p in profiles for f in formats]
        keys = {arm: cache_key("sweep_arm",
                               {"profile": arm[0], "format": arm[1],
                                "n_seq": n_seq, "seq_len": seq_len},
                               extra=(format_fingerprint(arm[1]),
                                      ("seed", self.context.seed)))
                for arm in arms}
        cells: dict[tuple[str, str], dict] = {}
        tasks: dict[tuple[str, str], tuple] = {}
        for arm in arms:
            hit = self.cache.get(keys[arm])
            if hit is not None:
                cells[arm] = hit["payload"]
            else:
                tasks[arm] = (arm[0], arm[1], n_seq, seq_len,
                              self.context.seed)

        t0 = time.perf_counter()
        jobs = max(1, int(self.context.jobs))
        for arm, outcome in pool_execute(sweep_arm, tasks, jobs):
            self.cache.put(keys[arm], {"payload": outcome["payload"],
                                       "key": keys[arm]})
            cells[arm] = outcome["payload"]
            if progress is not None:
                progress(arm, outcome)

        headers = ["model", "format", "ebw", "ppl", "fp16 ppl", "ppl delta"]
        rows = [[p, f, cells[(p, f)]["ebw"], cells[(p, f)]["ppl"],
                 cells[(p, f)]["fp16_ppl"],
                 cells[(p, f)]["ppl"] - cells[(p, f)]["fp16_ppl"]]
                for (p, f) in arms]
        result = ExperimentResult(
            "sweep", f"{len(formats)} formats x {len(profiles)} profiles",
            headers, rows,
            notes=f"fast={self.context.fast} (cache counts live in "
                  "sweep.meta.json so this artifact stays deterministic)",
            extras={"formats": list(formats), "profiles": list(profiles),
                    "cells": {f"{p}|{f}": cells[(p, f)] for (p, f) in arms}})
        record = RunRecord("sweep", keys[arms[0]] if arms else "",
                           cached=not tasks,
                           seconds=time.perf_counter() - t0, result=result)
        record.artifact_path, record.meta_path = write_artifact_pair(
            self.context.results_dir, "sweep", result.to_json(), {
                "experiment_id": "sweep",
                "arms": len(arms),
                "cache_hits": len(arms) - len(tasks),
                "seconds": round(record.seconds, 4),
                "jobs": self.context.jobs,
                "fast": self.context.fast,
                "seed": self.context.seed,
            })
        return record
