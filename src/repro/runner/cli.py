"""Unified command-line interface for the experiment runner.

Usage::

    python -m repro list
    python -m repro run tbl3 fig6 --jobs 4 --fast
    python -m repro run all --jobs 4
    python -m repro sweep --formats mxfp4,m2xfp --profiles llama2-7b
    python -m repro serve --port 7421 --workers 2
    python -m repro gateway --port 7420 --replicas 2

The pre-runner invocation style (``python -m repro tbl3 [--full]``) is
kept as an alias for ``run``: a first argument that is a known
experiment id is treated as ``run`` with that id.
"""

from __future__ import annotations

import argparse
import sys

from ..errors import ReproError
from ..experiments import EXPERIMENTS, list_experiments
from .context import RunContext
from .formats import list_formats
from .runner import ExperimentRunner
from .sweep import SweepRunner

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the paper's experiments (sharded, cached).")
    sub = parser.add_subparsers(dest="command")

    run = sub.add_parser("run", help="run experiments (default command)")
    run.add_argument("ids", nargs="+",
                     help="experiment ids, or 'all' for the whole registry")
    _add_run_options(run)

    sub.add_parser("list", help="list experiment ids and formats")

    sweep = sub.add_parser("sweep", help="format x profile perplexity grid")
    sweep.add_argument("--formats", required=True,
                       help="comma-separated catalog format names")
    sweep.add_argument("--profiles", default="llama2-7b,llama3-8b",
                       help="comma-separated profile keys")
    _add_run_options(sweep)

    serve = sub.add_parser(
        "serve", help="asyncio TCP quantization server (repro.server)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=None,
                       help="TCP port (default REPRO_SERVER_PORT or 7421; "
                            "0 binds an ephemeral port)")
    serve.add_argument("--workers", type=int, default=None,
                       help="spawned worker processes sharing the port via "
                            "SO_REUSEPORT (default REPRO_SERVER_WORKERS or "
                            "0 = serve in this process)")
    serve.add_argument("--max-inflight", type=int, default=None,
                       help="admitted-but-unanswered request bound per "
                            "worker; beyond it requests get BUSY (default "
                            "REPRO_SERVER_MAX_INFLIGHT or 64)")
    serve.add_argument("--max-batch", type=int, default=64,
                       help="micro-batch size limit per quantization "
                            "service (default 64)")
    serve.add_argument("--max-delay-s", type=float, default=0.002,
                       help="micro-batch collection window in seconds "
                            "(default 0.002)")
    serve.add_argument("--max-requests", type=int, default=None,
                       help="exit after this many responses (smoke runs; "
                            "in-process mode only)")
    serve.add_argument("--read-timeout-s", type=float, default=None,
                       help="slow-loris guard: a started frame must "
                            "complete within this many seconds (default "
                            "REPRO_SERVER_READ_TIMEOUT_S or 60; 0 disables)")
    serve.add_argument("--drain-timeout-s", type=float, default=None,
                       help="bound on finishing in-flight work during a "
                            "SIGTERM/DRAIN graceful shutdown (default "
                            "REPRO_SERVER_DRAIN_TIMEOUT_S or 30)")
    serve.add_argument("--max-restarts", type=int, default=None,
                       help="per-slot crash-loop budget for supervised "
                            "worker restarts (default "
                            "REPRO_SERVER_MAX_RESTARTS or 5; pool mode)")
    serve.add_argument("--no-restart", action="store_true",
                       help="disable worker supervision/restart "
                            "(pool mode)")

    gateway = sub.add_parser(
        "gateway", help="HTTP front-end over N server replicas "
                        "(repro.gateway)")
    gateway.add_argument("--host", default="127.0.0.1")
    gateway.add_argument("--port", type=int, default=None,
                         help="HTTP port (default REPRO_GATEWAY_PORT or "
                              "7420; 0 binds an ephemeral port)")
    gateway.add_argument("--replicas", type=int, default=None,
                         help="QuantServer replicas to launch locally "
                              "(default REPRO_GATEWAY_REPLICAS or 2; "
                              "ignored with --upstream)")
    gateway.add_argument("--upstream", default=None,
                         help="comma-separated host:port of already-"
                              "running replicas (skips launching any)")
    gateway.add_argument("--hash-seed", type=int, default=None,
                         help="consistent-hash ring salt (default "
                              "REPRO_GATEWAY_HASH_SEED or 0)")
    gateway.add_argument("--probe-interval-s", type=float, default=None,
                         help="replica PING/HEALTH probe period (default "
                              "REPRO_GATEWAY_PROBE_INTERVAL_S or 1.0)")
    gateway.add_argument("--upstream-timeout-s", type=float, default=30.0,
                         help="deadline per upstream attempt "
                              "(default 30)")
    gateway.add_argument("--max-inflight", type=int, default=None,
                         help="per-replica admission bound (default "
                              "REPRO_SERVER_MAX_INFLIGHT or 64; launched "
                              "replicas only)")
    gateway.add_argument("--max-batch", type=int, default=64,
                         help="micro-batch size limit per replica "
                              "service (default 64)")
    gateway.add_argument("--max-delay-s", type=float, default=0.002,
                         help="micro-batch collection window in seconds "
                              "(default 0.002)")
    gateway.add_argument("--drain-timeout-s", type=float, default=30.0,
                         help="bound on finishing in-flight requests "
                              "during a SIGTERM graceful drain "
                              "(default 30)")
    return parser


def _add_run_options(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument("--jobs", type=int, default=1,
                     help="worker processes (default 1: in-process)")
    mode = cmd.add_mutually_exclusive_group()
    mode.add_argument("--fast", dest="fast", action="store_true",
                      default=True, help="reduced eval sizes (default)")
    mode.add_argument("--full", dest="fast", action="store_false",
                      help="full profile-default eval sizes")
    cmd.add_argument("--seed", type=int, default=0,
                     help="global seed applied in every worker")
    cmd.add_argument("--no-cache", action="store_true",
                     help="ignore and do not write the result cache")
    cmd.add_argument("--results-dir", default=None,
                     help="artifact directory (default results/)")
    cmd.add_argument("--cache-dir", default=None,
                     help="cache directory (default <results>/cache)")
    cmd.add_argument("--quiet", action="store_true",
                     help="suppress per-experiment table output")


def _context(args: argparse.Namespace) -> RunContext:
    kwargs = dict(fast=args.fast, seed=args.seed, jobs=args.jobs,
                  use_cache=not args.no_cache)
    if args.results_dir is not None:
        kwargs["results_dir"] = args.results_dir
    if args.cache_dir is not None:
        kwargs["cache_dir"] = args.cache_dir
    return RunContext(**kwargs)


def _cmd_list() -> int:
    print("experiments (python -m repro run <id> ...):")
    for exp_id in list_experiments():
        module = sys.modules[EXPERIMENTS[exp_id].__module__]
        doc = (module.__doc__ or "").strip().splitlines()[0] if module.__doc__ else ""
        print(f"  {exp_id:10s} {doc}")
    print("\nsweep formats (python -m repro sweep --formats <a,b,...>):")
    print("  " + ", ".join(list_formats()))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    ids = list(args.ids)
    if ids == ["all"]:
        ids = list_experiments()
    context = _context(args)
    runner = ExperimentRunner(context)

    def progress(record) -> None:
        src = "cache" if record.cached else f"{record.seconds:.1f}s"
        if not args.quiet:
            print(record.result.render())
        print(f"[{record.experiment_id}: {src} -> {record.artifact_path}]")

    runner.run(ids, progress=progress)
    stats = runner.cache.stats
    print(f"cache: {stats['hits']} hits / {stats['hits'] + stats['misses']} "
          f"experiments (jobs={context.jobs}, "
          f"{'fast' if context.fast else 'full'} mode)")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    context = _context(args)
    runner = SweepRunner(context)
    formats = [f.strip() for f in args.formats.split(",") if f.strip()]
    profiles = [p.strip() for p in args.profiles.split(",") if p.strip()]

    def progress(arm, outcome) -> None:
        print(f"[{arm[0]} x {arm[1]}: {outcome['seconds']:.1f}s]")

    record = runner.run(formats, profiles, progress=progress)
    if not args.quiet:
        print(record.result.render())
    stats = runner.cache.stats
    print(f"cache: {stats['hits']} hits / {stats['hits'] + stats['misses']} "
          f"arms -> {record.artifact_path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from ..server import QuantServer, WorkerPool, run_server
    from ..server.server import WORKERS_ENV, _env_int
    workers = args.workers
    if workers is None:
        workers = _env_int(WORKERS_ENV, 0)
    server_kwargs = dict(max_inflight=args.max_inflight,
                         max_batch=args.max_batch,
                         max_delay_s=args.max_delay_s,
                         read_timeout_s=args.read_timeout_s,
                         drain_timeout_s=args.drain_timeout_s)
    if workers > 0:
        with WorkerPool(workers=workers, host=args.host,
                        port=args.port if args.port is not None else 0,
                        restart=not args.no_restart,
                        max_restarts=args.max_restarts,
                        **server_kwargs) as pool:
            print(f"serving on {args.host}:{pool.port} "
                  f"({pool.workers} workers, SO_REUSEPORT, "
                  f"{'supervised' if pool.restart else 'unsupervised'})",
                  flush=True)
            # SIGTERM drains the pool: join() returns, then close()
            # SIGTERMs each worker (graceful in-worker drain) and reaps.
            import threading
            stop = threading.Event()
            old = signal.signal(signal.SIGTERM, lambda s, f: stop.set())
            try:
                pool.join(stop=stop)
            except KeyboardInterrupt:
                pass
            finally:
                signal.signal(signal.SIGTERM, old)
        return 0
    server = QuantServer(host=args.host, port=args.port,
                         max_requests=args.max_requests, **server_kwargs)
    run_server(server, ready=lambda port: print(
        f"serving on {args.host}:{port} (in-process)", flush=True))
    return 0


def _cmd_gateway(args: argparse.Namespace) -> int:
    import contextlib
    import signal

    from ..gateway import QuantGateway, ReplicaCluster, run_gateway
    server_kwargs = dict(max_inflight=args.max_inflight,
                         max_batch=args.max_batch,
                         max_delay_s=args.max_delay_s)
    with contextlib.ExitStack() as stack:
        if args.upstream:
            upstreams = [u.strip() for u in args.upstream.split(",")
                         if u.strip()]
        else:
            cluster = stack.enter_context(
                ReplicaCluster(replicas=args.replicas, host=args.host,
                               **server_kwargs))
            stack.callback(cluster.drain)  # graceful before close() reaps
            upstreams = cluster.endpoints
        gateway = QuantGateway(
            upstreams, host=args.host, port=args.port,
            hash_seed=args.hash_seed,
            probe_interval_s=args.probe_interval_s,
            upstream_timeout_s=args.upstream_timeout_s,
            drain_timeout_s=args.drain_timeout_s)
        # run_gateway installs SIGTERM -> gateway drain (main thread);
        # once it returns, the stack drains + reaps the local replicas.
        run_gateway(gateway, ready=lambda port: print(
            f"gateway on {args.host}:{port} over "
            f"{len(upstreams)} replica(s): {', '.join(upstreams)}",
            flush=True))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    # Legacy alias: `python -m repro tbl3 [--full]` == `run tbl3 [--full]`.
    # The old CLI accepted flags in any position (`--full tbl3`), so the
    # alias triggers whenever every positional is a known experiment id.
    positional = [a for a in args if not a.startswith("-")]
    if positional and positional[0] not in ("run", "list", "sweep",
                                            "serve", "gateway") and \
            all(p in EXPERIMENTS for p in positional):
        args = ["run"] + args
    parser = build_parser()
    if not args:
        parser.print_help()
        print("\navailable experiments:", ", ".join(list_experiments()))
        return 1
    ns = parser.parse_args(args)
    try:
        if ns.command == "list":
            return _cmd_list()
        if ns.command == "run":
            return _cmd_run(ns)
        if ns.command == "sweep":
            return _cmd_sweep(ns)
        if ns.command == "serve":
            return _cmd_serve(ns)
        if ns.command == "gateway":
            return _cmd_gateway(ns)
    except (ReproError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    parser.print_help()
    return 1
