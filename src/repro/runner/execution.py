"""Plumbing shared by the experiment runner and the sweep runner.

One implementation of the three pieces both runners need — cache
construction with the documented default-directory chain, the
``spawn``-pool scatter/gather loop, and the deterministic-artifact +
meta-sidecar writer — so a fix to any of them cannot drift between
:class:`~repro.runner.runner.ExperimentRunner` and
:class:`~repro.runner.sweep.SweepRunner`.

Example::

    from repro.runner.execution import pool_execute

    tasks = {eid: (eid, kwargs) for eid in ["fig3", "tbl6"]}
    for eid, result in pool_execute(run_one, tasks, jobs=4):
        ...   # completion order; reorder if task order matters
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path

from .cache import (CACHE_DIR_ENV, ResultCache, atomic_write_text,
                    canonical_dumps, code_salt)
from .context import RunContext

__all__ = ["make_cache", "pool_execute", "write_artifact_pair"]


def make_cache(context: RunContext) -> ResultCache:
    """The context's cache: explicit dir > ``REPRO_CACHE_DIR`` > ``<results>/cache``."""
    root = context.cache_dir
    if root is None:
        root = os.environ.get(CACHE_DIR_ENV) or \
            os.path.join(context.results_dir, "cache")
    cache = ResultCache(root)
    if not context.use_cache:
        cache.enabled = False
    return cache


def pool_execute(fn, tasks: dict, jobs: int):
    """Yield ``(key, fn(*tasks[key]))`` as results complete.

    ``jobs <= 1`` (or a single task) runs inline in this process;
    otherwise tasks shard over a ``spawn`` pool — fresh interpreters, no
    inherited module caches, so a worker run is the same computation as
    an inline run. Completion order is execution order; callers that
    need task order must reorder.
    """
    keys = list(tasks)
    if jobs <= 1 or len(keys) <= 1:
        for key in keys:
            yield key, fn(*tasks[key])
        return
    import multiprocessing as mp
    ctx = mp.get_context("spawn")
    with ProcessPoolExecutor(max_workers=min(jobs, len(keys)),
                             mp_context=ctx) as pool:
        futures = {pool.submit(fn, *tasks[key]): key for key in keys}
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for fut in done:
                yield futures[fut], fut.result()


def write_artifact_pair(results_dir: str | os.PathLike, stem: str,
                        payload: dict, meta: dict) -> tuple[str, str]:
    """Write ``<stem>.json`` (deterministic) and ``<stem>.meta.json``.

    The payload file is canonical JSON of deterministic data only; the
    meta sidecar gets the provenance fields stamped here (wall-clock
    timestamp, code salt) on top of the caller's run metadata.
    """
    out = Path(results_dir)
    artifact = out / f"{stem}.json"
    atomic_write_text(artifact, canonical_dumps(payload) + "\n")
    meta_path = out / f"{stem}.meta.json"
    atomic_write_text(meta_path, canonical_dumps({
        **meta,
        "code_salt": code_salt(),
        "written_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "pid": os.getpid(),
    }) + "\n")
    return str(artifact), str(meta_path)
