"""Sharded process-pool execution of the experiment registry.

Execution model
---------------

The parent computes a content-addressed cache key per experiment
(``cache.cache_key``), serves hits straight from disk, and shards the
misses over a ``spawn`` process pool (``--jobs``) via
:func:`repro.runner.execution.pool_execute`. ``spawn`` (rather than
``fork``) gives every worker a fresh interpreter: no inherited runtime
caches, no copy-on-write surprises — a worker run is the same
computation as an inline run with the same :class:`RunContext` applied,
which is what makes ``--jobs 1`` and ``--jobs N`` artifacts
byte-identical.

Artifacts
---------

Each run writes two files under the results directory:

* ``<exp_id>.json`` — the deterministic result payload
  (:meth:`ExperimentResult.to_json`, canonical JSON). Bit-identical
  across serial/parallel/cached runs; safe to diff.
* ``<exp_id>.meta.json`` — run provenance: wall-clock timings, cache
  hit/miss, job count, code salt. Deliberately split out because
  timings are the one thing that can never be deterministic.

Example::

    from repro.runner import ExperimentRunner, RunContext

    runner = ExperimentRunner(RunContext(fast=True, jobs=4))
    for record in runner.run(["tbl3", "fig6"]):      # or list_experiments()
        print(record.result.experiment_id, record.cached, record.seconds)
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..experiments import run_experiment
from ..experiments.report import ExperimentResult
from .cache import ResultCache, cache_key
from .context import RunContext
from .execution import make_cache, pool_execute, write_artifact_pair

__all__ = ["ExperimentRunner", "RunRecord", "execute_one"]


def execute_one(experiment_id: str, kwargs: dict, seed: int) -> dict:
    """Run one experiment under a deterministic context (pool-safe).

    Module-level so it pickles into ``spawn`` workers; also the inline
    path, so serial and parallel execution share one code path.
    """
    RunContext(seed=seed).apply()
    t0 = time.perf_counter()
    result = run_experiment(experiment_id, **kwargs)
    return {"payload": result.to_json(),
            "seconds": time.perf_counter() - t0}


@dataclass
class RunRecord:
    """Outcome of one experiment under the runner."""

    experiment_id: str
    key: str
    cached: bool
    seconds: float
    result: ExperimentResult
    artifact_path: str = ""
    meta_path: str = ""


class ExperimentRunner:
    """Run registry experiments in parallel with result caching."""

    def __init__(self, context: RunContext | None = None,
                 cache: ResultCache | None = None) -> None:
        self.context = context or RunContext()
        self.cache = cache if cache is not None else make_cache(self.context)

    def run(self, experiment_ids: list[str],
            extra_kwargs: dict | None = None,
            progress=None) -> list[RunRecord]:
        """Execute ``experiment_ids``, sharded over the context's jobs.

        ``extra_kwargs`` are forwarded to every experiment on top of the
        context's (validated before any worker is spawned, so a bad name
        fails fast in the parent). ``progress`` is an optional
        ``callable(RunRecord)`` fired as each experiment completes; the
        returned list follows ``experiment_ids`` order regardless of
        completion order.
        """
        from ..experiments.registry import validate_experiment_kwargs
        kwargs = dict(self.context.experiment_kwargs())
        kwargs.update(extra_kwargs or {})
        tasks: dict[str, tuple] = {}
        keys: dict[str, str] = {}
        records: dict[str, RunRecord] = {}

        def finish(record: RunRecord) -> None:
            records[record.experiment_id] = record
            self._write_artifacts(record)
            if progress is not None:
                progress(record)

        for exp_id in experiment_ids:
            validate_experiment_kwargs(exp_id, kwargs)
            keys[exp_id] = cache_key(exp_id, kwargs,
                                     extra=("seed", self.context.seed))
            hit = self.cache.get(keys[exp_id])
            if hit is not None:
                # ``seconds`` is the original compute time persisted with
                # the entry, so cache-served records (and docs generated
                # from them) report stable runtimes instead of 0.0.
                finish(RunRecord(
                    exp_id, keys[exp_id], cached=True,
                    seconds=float(hit.get("seconds", 0.0)),
                    result=ExperimentResult.from_json(hit["payload"])))
            else:
                tasks[exp_id] = (exp_id, kwargs, self.context.seed)

        jobs = max(1, int(self.context.jobs))
        for exp_id, outcome in pool_execute(execute_one, tasks, jobs):
            self.cache.put(keys[exp_id],
                           {"payload": outcome["payload"], "key": keys[exp_id],
                            "seconds": round(outcome["seconds"], 4)})
            finish(RunRecord(
                exp_id, keys[exp_id], cached=False,
                seconds=outcome["seconds"],
                result=ExperimentResult.from_json(outcome["payload"])))

        return [records[e] for e in experiment_ids]

    def _write_artifacts(self, record: RunRecord) -> None:
        record.artifact_path, record.meta_path = write_artifact_pair(
            self.context.results_dir, record.experiment_id,
            record.result.to_json(), {
                "experiment_id": record.experiment_id,
                "cache_key": record.key,
                "cached": record.cached,
                "seconds": round(record.seconds, 4),
                "jobs": self.context.jobs,
                "fast": self.context.fast,
                "seed": self.context.seed,
            })
