"""Execution context threaded through serial and parallel runs.

``RunContext`` pins down everything that could make a worker process
diverge from an in-process run: the fast/full evaluation mode, the
global NumPy seed (the experiments use their own per-profile generators,
but seeding the legacy global RNG closes the door on any future path
that reaches for it), and the cache/artifact locations. The runner
applies the same context before executing an experiment whether it runs
inline (``--jobs 1``) or inside a pool worker, which is what makes the
two bit-identical by construction rather than by luck. The artifact
directory defaults to ``results/`` and follows ``REPRO_RESULTS_DIR``
(see the README's environment-knob table).

Example::

    from repro.runner import ExperimentRunner, RunContext

    ctx = RunContext(fast=True, jobs=4)        # full sizes: fast=False
    records = ExperimentRunner(ctx).run(["tbl3", "fig6"])
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

__all__ = ["RunContext", "DEFAULT_RESULTS_DIR"]

DEFAULT_RESULTS_DIR = "results"

#: Environment variable overriding the artifact directory.
RESULTS_DIR_ENV = "REPRO_RESULTS_DIR"


@dataclass(frozen=True)
class RunContext:
    """Deterministic execution settings for one runner invocation."""

    fast: bool = True
    seed: int = 0
    jobs: int = 1
    use_cache: bool = True
    results_dir: str = field(
        default_factory=lambda: os.environ.get(RESULTS_DIR_ENV,
                                               DEFAULT_RESULTS_DIR))
    cache_dir: str | None = None

    def apply(self) -> None:
        """Install the deterministic parts of the context in this process.

        Runs in the parent before an inline execution and at the top of
        every worker task, so both execution styles see identical global
        state.
        """
        np.random.seed(self.seed)

    def experiment_kwargs(self) -> dict:
        """The kwargs the context contributes to ``run_experiment``."""
        return {"fast": self.fast}
