"""Sharded experiment runner with a content-addressed result cache.

The package turns the one-by-one loop of ``examples/reproduce_all.py``
into infrastructure: experiments (and format x profile sweep grids) run
in parallel worker processes, every completed run is cached on disk under
a content-addressed key, and each run leaves machine-readable JSON
artifacts under ``results/``. See ``python -m repro --help``.

Example::

    from repro.runner import ExperimentRunner, RunContext, SweepRunner

    runner = ExperimentRunner(RunContext(fast=True, jobs=4))
    records = runner.run(["tbl3", "fig6"])            # cached + sharded
    sweep = SweepRunner(RunContext(fast=True)).run(
        formats=["mxfp4", "m2xfp"], profiles=["llama2-7b"])
"""

from .cache import ResultCache, cache_key, canonical_dumps, code_salt
from .context import RunContext
from .formats import FORMAT_REGISTRY, format_fingerprint, list_formats, make_format
from .runner import ExperimentRunner, RunRecord
from .sweep import SweepRunner, sweep_arm

__all__ = [
    "ExperimentRunner", "RunRecord", "RunContext",
    "ResultCache", "cache_key", "canonical_dumps", "code_salt",
    "SweepRunner", "sweep_arm",
    "FORMAT_REGISTRY", "make_format", "list_formats", "format_fingerprint",
]
