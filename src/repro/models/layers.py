"""NumPy building blocks of the decoder-only transformer substrate."""

from __future__ import annotations

import numpy as np

__all__ = ["rms_norm", "silu", "softmax", "rope_tables", "apply_rope",
           "causal_attention"]


def rms_norm(x: np.ndarray, gain: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Root-mean-square layer norm (LLaMA-style, no bias)."""
    rms = np.sqrt(np.mean(x * x, axis=-1, keepdims=True) + eps)
    return x / rms * gain


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU / swish activation used by SwiGLU MLPs."""
    return x / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    z = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(z)
    return e / np.sum(e, axis=axis, keepdims=True)


def rope_tables(seq_len: int, head_dim: int, theta: float = 10000.0,
                offset: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Rotary-embedding cos/sin tables for positions [offset, offset+seq)."""
    half = head_dim // 2
    freqs = theta ** (-np.arange(half) / half)
    pos = np.arange(offset, offset + seq_len)[:, None] * freqs[None, :]
    return np.cos(pos), np.sin(pos)


def apply_rope(x: np.ndarray, cos: np.ndarray, sin: np.ndarray) -> np.ndarray:
    """Rotate the head dimension of ``(..., seq, head_dim)`` tensors."""
    half = x.shape[-1] // 2
    x1, x2 = x[..., :half], x[..., half:]
    return np.concatenate([x1 * cos - x2 * sin, x1 * sin + x2 * cos], axis=-1)


def causal_attention(q: np.ndarray, k: np.ndarray, v: np.ndarray,
                     causal: bool = True) -> np.ndarray:
    """Scaled dot-product attention over ``(B, H, T, dh)`` tensors.

    When ``q`` is shorter than ``k`` (incremental decoding), the causal
    mask aligns the query block to the end of the key sequence.
    """
    dh = q.shape[-1]
    scores = np.einsum("bhqd,bhkd->bhqk", q, k) / np.sqrt(dh)
    if causal:
        tq, tk = q.shape[-2], k.shape[-2]
        qi = np.arange(tq)[:, None] + (tk - tq)
        mask = qi < np.arange(tk)[None, :]
        scores = np.where(mask, -1e30, scores)
    return np.einsum("bhqk,bhkd->bhqd", softmax(scores), v)
