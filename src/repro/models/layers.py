"""NumPy building blocks of the decoder-only transformer substrate."""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = ["rms_norm", "silu", "softmax", "rope_tables", "apply_rope",
           "causal_attention"]


def rms_norm(x: np.ndarray, gain: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Root-mean-square layer norm (LLaMA-style, no bias)."""
    rms = np.sqrt(np.mean(x * x, axis=-1, keepdims=True) + eps)
    return x / rms * gain


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU / swish activation used by SwiGLU MLPs."""
    return x / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax.

    The exp and divide reuse the shifted buffer in place — the same
    float operations as the textbook three-liner, bit for bit, without
    two extra tensor-sized temporaries (the attention-score arrays this
    runs over are the largest allocations in a forward pass).
    """
    z = x - np.max(x, axis=axis, keepdims=True)
    np.exp(z, out=z)
    s = np.sum(z, axis=axis, keepdims=True)
    np.divide(z, s, out=z)
    return z


def rope_tables(seq_len: int, head_dim: int, theta: float = 10000.0,
                offset: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Rotary-embedding cos/sin tables for positions [offset, offset+seq).

    Cached per signature (decode loops request one position per step,
    thousands of times); the returned arrays are read-only.
    """
    return _rope_tables_cached(int(seq_len), int(head_dim), float(theta),
                               int(offset))


@lru_cache(maxsize=4096)
def _rope_tables_cached(seq_len: int, head_dim: int, theta: float,
                        offset: int) -> tuple[np.ndarray, np.ndarray]:
    half = head_dim // 2
    freqs = theta ** (-np.arange(half) / half)
    pos = np.arange(offset, offset + seq_len)[:, None] * freqs[None, :]
    cos, sin = np.cos(pos), np.sin(pos)
    cos.setflags(write=False)
    sin.setflags(write=False)
    return cos, sin


def apply_rope(x: np.ndarray, cos: np.ndarray, sin: np.ndarray) -> np.ndarray:
    """Rotate the head dimension of ``(..., seq, head_dim)`` tensors."""
    half = x.shape[-1] // 2
    x1, x2 = x[..., :half], x[..., half:]
    return np.concatenate([x1 * cos - x2 * sin, x1 * sin + x2 * cos], axis=-1)


def causal_attention(q: np.ndarray, k: np.ndarray, v: np.ndarray,
                     causal: bool = True) -> np.ndarray:
    """Scaled dot-product attention over ``(B, H, T, dh)`` tensors.

    When ``q`` is shorter than ``k`` (incremental decoding), the causal
    mask aligns the query block to the end of the key sequence.
    """
    dh = q.shape[-1]
    scores = np.einsum("bhqd,bhkd->bhqk", q, k)
    scores /= np.sqrt(dh)
    if causal:
        tq, tk = q.shape[-2], k.shape[-2]
        if tq > 1 or tk > tq:
            qi = np.arange(tq)[:, None] + (tk - tq)
            mask = qi < np.arange(tk)[None, :]
            if mask.any():
                # In-place masked fill: same values as the np.where
                # copy, without another score-sized temporary.
                np.copyto(scores, -1e30, where=mask)
    return np.einsum("bhqk,bhkd->bhqd", softmax(scores), v)
