"""A decoder-only transformer LM in NumPy (the paper's LLM substrate).

The model mirrors the LLaMA block structure (RMSNorm, RoPE attention,
SwiGLU MLP, tied embedding head). Every projection goes through a
pluggable ``linear_fn(name, x, w)`` hook, which is how the quantized
wrapper injects W4A4 fake-quantization into exactly the layers the paper
quantizes (Q/K/V/O and the three MLP projections) while leaving
embeddings, norms and the LM head in high precision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..errors import ConfigError
from .layers import apply_rope, causal_attention, rms_norm, rope_tables, silu, softmax
from .tensors import OutlierSpec, channel_scales, outlier_matrix

__all__ = ["TransformerConfig", "TransformerLM", "LINEAR_NAMES", "LinearFn"]

LinearFn = Callable[[str, np.ndarray, np.ndarray], np.ndarray]

#: The quantized projections of each block (paper Sec. 6.1: Linear layers).
LINEAR_NAMES = ("wq", "wk", "wv", "wo", "w_gate", "w_up", "w_down")


@dataclass(frozen=True)
class TransformerConfig:
    """Architecture hyperparameters of the substrate LM."""

    vocab_size: int = 256
    d_model: int = 128
    n_layers: int = 2
    n_heads: int = 4
    d_ff: int = 256
    rope_theta: float = 10000.0
    seed: int = 0
    outliers: OutlierSpec = field(default_factory=OutlierSpec)
    # Residual branch scale (muP-style). Controls how much each block
    # perturbs the stream, i.e. how strongly per-layer quantization noise
    # accumulates into the logits — the substrate's sensitivity knob.
    branch_scale: float = 0.35

    def __post_init__(self) -> None:
        if self.d_model % self.n_heads != 0:
            raise ConfigError("d_model must be divisible by n_heads")
        if (self.d_model // self.n_heads) % 2 != 0:
            raise ConfigError("head dim must be even for RoPE")


def _default_linear(name: str, x: np.ndarray, w: np.ndarray) -> np.ndarray:
    return x @ w.T


class TransformerLM:
    """Decoder-only LM with generated, outlier-structured weights."""

    def __init__(self, config: TransformerConfig, gain: float = 1.0) -> None:
        self.config = config
        self.gain = float(gain)
        rng = np.random.default_rng(config.seed)
        d, ff = config.d_model, config.d_ff
        self.embedding = rng.standard_normal((config.vocab_size, d)) * 0.7
        self.final_gain = np.ones(d)
        self.layers: list[dict[str, np.ndarray]] = []
        for _ in range(config.n_layers):
            attn_scales = channel_scales(d, config.outliers, rng)
            mlp_scales = channel_scales(d, config.outliers, rng)
            down_scales = channel_scales(ff, config.outliers, rng)
            spec = config.outliers
            self.layers.append({
                "wq": outlier_matrix(d, d, spec, rng, attn_scales),
                "wk": outlier_matrix(d, d, spec, rng, attn_scales),
                "wv": outlier_matrix(d, d, spec, rng, attn_scales),
                "wo": outlier_matrix(d, d, spec, rng),
                "w_gate": outlier_matrix(ff, d, spec, rng, mlp_scales),
                "w_up": outlier_matrix(ff, d, spec, rng, mlp_scales),
                "w_down": outlier_matrix(d, ff, spec, rng, down_scales),
                "norm1": np.exp(0.1 * rng.standard_normal(d)),
                "norm2": np.exp(0.1 * rng.standard_normal(d)),
            })

    # ------------------------------------------------------------------
    # Batched forward (evaluation path)
    # ------------------------------------------------------------------
    def forward(self, tokens: np.ndarray, linear_fn: LinearFn | None = None) -> np.ndarray:
        """Logits ``(B, T, vocab)`` for token ids ``(B, T)``."""
        linear_fn = linear_fn or _default_linear
        cfg = self.config
        tokens = np.atleast_2d(tokens)
        b, t = tokens.shape
        h = self.embedding[tokens]
        dh = cfg.d_model // cfg.n_heads
        cos, sin = rope_tables(t, dh, cfg.rope_theta)
        for li, layer in enumerate(self.layers):
            a = rms_norm(h, layer["norm1"])
            q = self._heads(linear_fn(f"l{li}.wq", a, layer["wq"]), b, t)
            k = self._heads(linear_fn(f"l{li}.wk", a, layer["wk"]), b, t)
            v = self._heads(linear_fn(f"l{li}.wv", a, layer["wv"]), b, t)
            q, k = apply_rope(q, cos, sin), apply_rope(k, cos, sin)
            ctx = causal_attention(q, k, v)
            ctx = ctx.transpose(0, 2, 1, 3).reshape(b, t, cfg.d_model)
            h = h + cfg.branch_scale * linear_fn(f"l{li}.wo", ctx, layer["wo"])
            a = rms_norm(h, layer["norm2"])
            gate = silu(linear_fn(f"l{li}.w_gate", a, layer["w_gate"]))
            up = linear_fn(f"l{li}.w_up", a, layer["w_up"])
            h = h + cfg.branch_scale * linear_fn(f"l{li}.w_down", gate * up, layer["w_down"])
        h = rms_norm(h, self.final_gain)
        return self.gain * (h @ self.embedding.T)

    def _heads(self, x: np.ndarray, b: int, t: int) -> np.ndarray:
        cfg = self.config
        dh = cfg.d_model // cfg.n_heads
        return x.reshape(b, t, cfg.n_heads, dh).transpose(0, 2, 1, 3)

    # ------------------------------------------------------------------
    # Losses
    # ------------------------------------------------------------------
    def nll(self, tokens: np.ndarray, linear_fn: LinearFn | None = None) -> float:
        """Mean next-token negative log-likelihood over ``(B, T)`` tokens."""
        tokens = np.atleast_2d(tokens)
        logits = self.forward(tokens, linear_fn)
        logp = np.log(softmax(logits[:, :-1, :]) + 1e-30)
        target = tokens[:, 1:]
        picked = np.take_along_axis(logp, target[:, :, None], axis=2)[:, :, 0]
        return float(-np.mean(picked))

    def perplexity(self, tokens: np.ndarray, linear_fn: LinearFn | None = None) -> float:
        """``exp(nll)``."""
        return float(np.exp(self.nll(tokens, linear_fn)))

    # ------------------------------------------------------------------
    # Ancestral sampling (builds the evaluation corpus)
    # ------------------------------------------------------------------
    def sample(self, n_seq: int, seq_len: int, rng: np.random.Generator,
               temperature: float = 1.0) -> np.ndarray:
        """Sample ``(n_seq, seq_len)`` token sequences with a KV cache."""
        tokens = np.zeros((n_seq, seq_len), dtype=np.int64)
        caches = self._decode_caches(n_seq, seq_len)
        for t in range(seq_len - 1):
            logits = self._step(tokens[:, t], t, caches)
            probs = softmax(logits / temperature)
            cdf = np.cumsum(probs, axis=1)
            u = rng.random((n_seq, 1))
            tokens[:, t + 1] = np.argmax(u < cdf, axis=1)
        return tokens

    def continue_sequences(self, prefix: np.ndarray, n_new: int,
                           rng: np.random.Generator,
                           temperature: float = 1.0) -> np.ndarray:
        """Sample ``n_new`` continuation tokens after each prefix row."""
        prefix = np.atleast_2d(prefix)
        b, plen = prefix.shape
        caches = self._decode_caches(b, plen + n_new)
        logits = None
        for t in range(plen):
            logits = self._step(prefix[:, t], t, caches)
        out = np.zeros((b, n_new), dtype=np.int64)
        from .layers import softmax as _softmax
        for j in range(n_new):
            probs = _softmax(logits / temperature)
            cdf = np.cumsum(probs, axis=1)
            u = rng.random((b, 1))
            out[:, j] = np.argmax(u < cdf, axis=1)
            if j + 1 < n_new:
                logits = self._step(out[:, j], plen + j, caches)
        return out

    def _decode_caches(self, batch: int, capacity: int) -> list[dict]:
        """Preallocated per-layer KV buffers for an incremental decode.

        ``_step`` writes position ``pos`` in place and attends over the
        leading view — the same values the previous per-step
        ``np.concatenate`` produced, without re-copying the whole cache
        every step.
        """
        cfg = self.config
        dh = cfg.d_model // cfg.n_heads
        return [{"k": np.zeros((batch, cfg.n_heads, capacity, dh)),
                 "v": np.zeros((batch, cfg.n_heads, capacity, dh))}
                for _ in self.layers]

    def _step(self, token: np.ndarray, pos: int, caches: list[dict]) -> np.ndarray:
        cfg = self.config
        dh = cfg.d_model // cfg.n_heads
        b = token.shape[0]
        h = self.embedding[token][:, None, :]
        cos, sin = rope_tables(1, dh, cfg.rope_theta, offset=pos)
        for layer, cache in zip(self.layers, caches):
            a = rms_norm(h, layer["norm1"])
            q = self._heads(a @ layer["wq"].T, b, 1)
            k = self._heads(a @ layer["wk"].T, b, 1)
            v = self._heads(a @ layer["wv"].T, b, 1)
            q, k = apply_rope(q, cos, sin), apply_rope(k, cos, sin)
            if cache["k"].shape[2] <= pos:
                # Legacy growing cache (external callers): append.
                cache["k"] = np.concatenate([cache["k"], k], axis=2)
                cache["v"] = np.concatenate([cache["v"], v], axis=2)
                kv, vv = cache["k"], cache["v"]
            else:
                cache["k"][:, :, pos] = k[:, :, 0]
                cache["v"][:, :, pos] = v[:, :, 0]
                kv = cache["k"][:, :, : pos + 1]
                vv = cache["v"][:, :, : pos + 1]
            ctx = causal_attention(q, kv, vv)
            ctx = ctx.transpose(0, 2, 1, 3).reshape(b, 1, cfg.d_model)
            h = h + cfg.branch_scale * (ctx @ layer["wo"].T)
            a = rms_norm(h, layer["norm2"])
            h = h + cfg.branch_scale * (
                (silu(a @ layer["w_gate"].T) * (a @ layer["w_up"].T)) @ layer["w_down"].T)
        h = rms_norm(h, self.final_gain)
        return (self.gain * (h @ self.embedding.T))[:, 0, :]
