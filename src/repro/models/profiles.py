"""Model profiles: synthetic stand-ins for the paper's evaluation LLMs.

Each profile configures a small transformer whose *quantization-relevant*
statistics (outlier channel rate/strength, heavy tails) mimic the named
model family, and whose logit gain is calibrated so the FP16 perplexity on
its own sampled corpus matches the paper's FP16 column (Tbl. 3). All
quantized numbers downstream are measured, never fitted.

Calibration is a bisection on the logit gain: the evaluation corpus is
re-sampled from the model at each candidate gain, so FP16 perplexity is
the model's own conditional entropy — a well-defined minimum that any
quantization noise strictly degrades.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError
from .tensors import OutlierSpec
from .transformer import TransformerConfig, TransformerLM

__all__ = ["ModelProfile", "ProfileRuntime", "PROFILES", "get_profile",
           "load_runtime", "clear_runtime_cache"]


@dataclass(frozen=True)
class ModelProfile:
    """A named substrate configuration with an FP16 perplexity target."""

    key: str
    display_name: str
    target_ppl: float
    d_model: int = 128
    n_layers: int = 2
    n_heads: int = 4
    d_ff: int = 256
    vocab_size: int = 256
    seed: int = 0
    outliers: OutlierSpec = field(default_factory=OutlierSpec)
    branch_scale: float = 0.35
    n_eval_seq: int = 12
    seq_len: int = 96

    def config(self) -> TransformerConfig:
        """The transformer architecture this profile instantiates."""
        return TransformerConfig(vocab_size=self.vocab_size, d_model=self.d_model,
                                 n_layers=self.n_layers, n_heads=self.n_heads,
                                 d_ff=self.d_ff, seed=self.seed, outliers=self.outliers,
                                 branch_scale=self.branch_scale)


@dataclass
class ProfileRuntime:
    """A calibrated model plus the evaluation corpus sampled from it."""

    profile: ModelProfile
    model: TransformerLM
    tokens: np.ndarray
    fp16_ppl: float
    calib_tokens: np.ndarray | None = None


# Outlier statistics follow the "rare but extreme channel" regime observed
# in LLMs (massive activations): ~0.5-1% of channels boosted 18-24x over a
# light-tailed bulk. This is the regime where the block-maximum error the
# paper analyses dominates MX quantization loss.
_BASE = dict(channel_sigma=0.3, tail=0.1)

PROFILES: dict[str, ModelProfile] = {p.key: p for p in (
    ModelProfile("llama2-7b", "LLaMA2-7B", target_ppl=5.47, d_model=128,
                 d_ff=256, seed=21, branch_scale=0.25,
                 outliers=OutlierSpec(outlier_rate=0.005, outlier_scale=20.0, **_BASE)),
    ModelProfile("llama3-8b", "LLaMA3-8B", target_ppl=6.14, d_model=160,
                 d_ff=320, seed=31, branch_scale=0.22,
                 outliers=OutlierSpec(outlier_rate=0.005, outlier_scale=20.0, **_BASE)),
    ModelProfile("llama3-70b", "LLaMA3-70B", target_ppl=2.85, d_model=192,
                 n_layers=3, d_ff=384, seed=71, branch_scale=0.25,
                 outliers=OutlierSpec(outlier_rate=0.005, outlier_scale=18.0, **_BASE)),
    ModelProfile("opt-6.7b", "OPT-6.7B", target_ppl=10.86, d_model=128,
                 d_ff=256, seed=67, branch_scale=0.3,
                 outliers=OutlierSpec(outlier_rate=0.01, outlier_scale=24.0,
                                      channel_sigma=0.4, tail=0.1)),
    ModelProfile("mistral-7b", "Mistral-7B", target_ppl=5.32, d_model=144,
                 d_ff=288, seed=73, branch_scale=0.25,
                 outliers=OutlierSpec(outlier_rate=0.005, outlier_scale=22.0, **_BASE)),
    ModelProfile("falcon-7b", "Falcon-7B", target_ppl=6.59, d_model=128,
                 d_ff=288, seed=77, branch_scale=0.25,
                 outliers=OutlierSpec(outlier_rate=0.005, outlier_scale=20.0, **_BASE)),
    ModelProfile("r1-qwen-1.5b", "DeepSeek-R1-Distill-Qwen-1.5B", target_ppl=9.0,
                 d_model=96, d_ff=192, seed=15, branch_scale=0.33,
                 outliers=OutlierSpec(outlier_rate=0.01, outlier_scale=22.0, **_BASE)),
    ModelProfile("r1-qwen-7b", "DeepSeek-R1-Distill-Qwen-7B", target_ppl=7.0,
                 d_model=160, d_ff=320, seed=17, branch_scale=0.25,
                 outliers=OutlierSpec(outlier_rate=0.005, outlier_scale=20.0, **_BASE)),
)}


def get_profile(key: str) -> ModelProfile:
    """Look up a profile by key, with a helpful error."""
    if key not in PROFILES:
        raise ConfigError(f"unknown profile {key!r}; available: {sorted(PROFILES)}")
    return PROFILES[key]


#: Keyed LRU over calibrated runtimes. Calibration is the single most
#: expensive step of any evaluation (a few seconds of bisected
#: sampling per profile), so the bound is generous — but it *is* a
#: bound: a sweep over every profile at several corpus sizes no longer
#: grows memory without limit.
_RUNTIME_CACHE: "OrderedDict[tuple, ProfileRuntime]" = OrderedDict()

#: Maximum number of cached ``(profile, n_seq, seq_len)`` runtimes.
#: Generous (a runtime is a few MB) so long-lived sessions — the full
#: test suite loads dozens of corpus variants — rarely re-calibrate.
RUNTIME_CACHE_SIZE = 64


def _calibrate(model: TransformerLM, profile: ModelProfile, n_seq: int,
               seq_len: int) -> tuple[float, np.ndarray, float]:
    """Bisect the logit gain so FP16 perplexity hits the profile target."""
    lo, hi = np.log(0.05), np.log(64.0)
    ppl, tokens = float("nan"), None
    for _ in range(24):
        mid = 0.5 * (lo + hi)
        model.gain = float(np.exp(mid))
        rng = np.random.default_rng(profile.seed + 1000)
        tokens = model.sample(n_seq, seq_len, rng)
        ppl = model.perplexity(tokens)
        if abs(ppl - profile.target_ppl) / profile.target_ppl < 0.002:
            break
        if ppl > profile.target_ppl:
            lo = mid  # sharper logits -> lower entropy -> lower perplexity
        else:
            hi = mid
    return model.gain, tokens, ppl


def load_runtime(key: str, n_seq: int | None = None,
                 seq_len: int | None = None) -> ProfileRuntime:
    """Build (or fetch from cache) a calibrated profile runtime."""
    profile = get_profile(key)
    n_seq = n_seq or profile.n_eval_seq
    seq_len = seq_len or profile.seq_len
    cache_key = (key, n_seq, seq_len)
    if cache_key not in _RUNTIME_CACHE:
        model = TransformerLM(profile.config())
        gain, tokens, ppl = _calibrate(model, profile, n_seq, seq_len)
        model.gain = gain
        # A held-out calibration corpus for formats that need static scales.
        calib = model.sample(2, seq_len, np.random.default_rng(profile.seed + 2000))
        _RUNTIME_CACHE[cache_key] = ProfileRuntime(profile=profile, model=model,
                                                   tokens=tokens, fp16_ppl=ppl,
                                                   calib_tokens=calib)
        if len(_RUNTIME_CACHE) > RUNTIME_CACHE_SIZE:
            _RUNTIME_CACHE.popitem(last=False)
    else:
        _RUNTIME_CACHE.move_to_end(cache_key)
    return _RUNTIME_CACHE[cache_key]


def clear_runtime_cache() -> None:
    """Drop all cached runtimes (used by tests)."""
    _RUNTIME_CACHE.clear()
