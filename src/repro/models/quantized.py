"""Fake-quantized model wrapper: W4A4 (or any format) on every projection.

Weights are quantized once at construction with the format's offline path;
activations are quantized per call with the online path, along the GEMM
reduction axis, exactly as the accelerator would see them. A
``weight_override`` dict lets calibration-based algorithms (MR-GPTQ) supply
their own pre-quantized weights for specific projections.

Offline weight quantization is memoized per model instance, keyed by
``(format fingerprint, projection)``: the evaluation tables (Tbl. 2/3/4)
rebuild ``QuantizedLM`` wrappers around the *same* cached runtime model
for every format arm, and the adaptive weight searches are by far the
most expensive step of construction. ``REPRO_NO_WEIGHT_CACHE=1`` disables
the cache; overridden projections always bypass it.

``REPRO_PACKED_WEIGHTS=1`` stores quantized weights as true-bit-width
:class:`repro.codec.PackedTensor` containers instead of dequantized
float64 arrays — the memory-footprint story the paper's EBW accounting
promises — decoding (bit-exactly) on each projection use. Opt-in: it
trades decode time for a ~10x smaller resident weight set; see
:meth:`QuantizedLM.weight_footprint` and the README's environment-knob
table.
"""

from __future__ import annotations

import os

import numpy as np

from ..mx.base import TensorFormat
from .transformer import TransformerLM

__all__ = ["QuantizedLM", "Fp16Format"]

#: Environment variable disabling the per-model weight-quantization cache.
NO_WEIGHT_CACHE_ENV = "REPRO_NO_WEIGHT_CACHE"

#: Environment variable selecting packed (true-bit-width) weight storage.
PACKED_WEIGHTS_ENV = "REPRO_PACKED_WEIGHTS"


class Fp16Format(TensorFormat):
    """Identity transfer function — the FP16 reference row of every table."""

    name = "fp16"

    @property
    def ebw(self) -> float:
        return 16.0

    def quantize(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        return np.asarray(x, dtype=np.float64)


class QuantizedLM:
    """A :class:`TransformerLM` with a quantization format applied.

    Formats exposing ``quantize_activation_calibrated`` (NVFP4's two-level
    scaling) get per-projection tensor scales measured on a calibration
    forward pass, matching how static tensor scales are deployed; all other
    formats quantize activations fully online.
    """

    def __init__(self, model: TransformerLM, fmt: TensorFormat,
                 weight_override: dict[str, np.ndarray] | None = None,
                 quantize_activations: bool = True,
                 calibration_tokens: np.ndarray | None = None) -> None:
        self.model = model
        self.fmt = fmt
        self.quantize_activations = bool(quantize_activations)
        override = weight_override or {}
        # Every environment lookup is resolved here, once per instance:
        # the projection path (``_linear``/``forward``) performs zero
        # ``os.environ`` reads — a regression test in
        # ``tests/test_plan.py`` monkeypatches the environment mapping
        # to prove it.
        from ..kernels.dispatch import use_bittwiddle, use_reference
        self._dispatch = (use_reference(), use_bittwiddle())
        from ..plan import get_plan, plans_enabled
        self._get_plan = get_plan
        self._use_plans = plans_enabled() and self._dispatch == (False, False)
        self._act_plans: dict = {}
        self.packed_weights = False
        self._decode = None
        if os.environ.get(PACKED_WEIGHTS_ENV, "0") == "1":
            from ..codec import supports
            # Formats without a codec keep dense storage silently: the
            # knob is a storage-mode preference, not a hard requirement.
            self.packed_weights = supports(fmt)
        if self.packed_weights:
            from ..codec import decode
            self._decode = decode
        cache = None
        fmt_key = None
        if os.environ.get(NO_WEIGHT_CACHE_ENV, "0") != "1":
            fmt_key = fmt.weight_cache_key
            if fmt_key is not None:
                # The dispatch mode is part of the key: fast and reference
                # kernels are bit-identical by contract, but a cross-check
                # of that very contract must not be fed cached results
                # from the other mode. Packed containers get their own
                # namespace so dense arms never see containers (and vice
                # versa).
                fmt_key = (fmt_key, *self._dispatch, self.packed_weights)
                cache = model.__dict__.setdefault("_quant_weight_cache", {})

        def quantize(w):
            if self.packed_weights:
                from ..codec import encode
                return encode(fmt, w, op="weight", axis=-1)
            return fmt.quantize_weight(w, axis=-1)

        self._weights: dict[str, np.ndarray] = {}
        for li, layer in enumerate(model.layers):
            for name in ("wq", "wk", "wv", "wo", "w_gate", "w_up", "w_down"):
                key = f"l{li}.{name}"
                if key in override:
                    self._weights[key] = np.asarray(override[key], dtype=np.float64)
                elif cache is not None:
                    entry = (fmt_key, key)
                    if entry not in cache:
                        cache[entry] = quantize(layer[name])
                    self._weights[key] = cache[entry]
                else:
                    self._weights[key] = quantize(layer[name])
        self._act_amax: dict[str, float] = {}
        if calibration_tokens is not None and hasattr(fmt, "quantize_activation_calibrated"):
            self._calibrate_activations(np.atleast_2d(calibration_tokens))

    def _calibrate_activations(self, tokens: np.ndarray) -> None:
        amax: dict[str, float] = {}

        def record(name: str, x: np.ndarray, w: np.ndarray) -> np.ndarray:
            amax[name] = max(amax.get(name, 0.0), float(np.max(np.abs(x))))
            return x @ w.T

        self.model.forward(tokens, linear_fn=record)
        self._act_amax = amax

    def _weight(self, name: str) -> np.ndarray:
        """The dequantized weight matrix (decoding packed storage)."""
        w = self._weights[name]
        if isinstance(w, np.ndarray):
            return w
        return self._decode(w, fmt=self.fmt)

    def weight_footprint(self) -> dict:
        """Resident weight storage, measured.

        ``total_bytes`` counts packed containers at their serialized size
        (header included) and dense projections at float64 size;
        ``dense_float64_bytes`` is what the same weights cost without
        ``REPRO_PACKED_WEIGHTS=1``.
        """
        total = 0
        dense = 0
        elements = 0
        for w in self._weights.values():
            if isinstance(w, np.ndarray):
                total += w.nbytes
                elements += w.size
                dense += w.size * 8
            else:
                total += w.total_bytes
                elements += w.n_elements
                dense += w.n_elements * 8
        return {"packed": self.packed_weights, "total_bytes": total,
                "dense_float64_bytes": dense, "elements": elements,
                "bits_per_element": total * 8 / max(1, elements)}

    def _quantize_activation(self, x: np.ndarray) -> np.ndarray:
        """Plan-cached activation quantization (no per-call env reads).

        Plans are fetched once per shape with the dispatch mode resolved
        at construction and held on the instance, so repeated forwards
        hit a plain dict; non-plannable formats (or non-default
        dispatch) use the format entry point, which re-reads the
        environment — the documented dynamic escape hatch.
        """
        if self._use_plans:
            plan = self._act_plans.get(x.shape, False)
            if plan is False:
                plan = self._get_plan(self.fmt, "activation", x.shape, -1,
                                      self._dispatch)
                self._act_plans[x.shape] = plan
            if plan is not None:
                return plan.run(x)
        return self.fmt.quantize_activation(x, axis=-1)

    def _linear(self, name: str, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        if not self.quantize_activations:
            xq = x
        elif name in self._act_amax:
            xq = self.fmt.quantize_activation_calibrated(x, self._act_amax[name], axis=-1)
        else:
            xq = self._quantize_activation(x)
        return xq @ self._weight(name).T

    def forward(self, tokens: np.ndarray) -> np.ndarray:
        """Quantized logits."""
        return self.model.forward(tokens, linear_fn=self._linear)

    def nll(self, tokens: np.ndarray) -> float:
        """Quantized next-token NLL."""
        return self.model.nll(tokens, linear_fn=self._linear)

    def perplexity(self, tokens: np.ndarray) -> float:
        """Quantized perplexity."""
        return self.model.perplexity(tokens, linear_fn=self._linear)
