"""Fake-quantized model wrapper: W4A4 (or any format) on every projection.

Weights are quantized once at construction with the format's offline path;
activations are quantized per call with the online path, along the GEMM
reduction axis, exactly as the accelerator would see them. A
``weight_override`` dict lets calibration-based algorithms (MR-GPTQ) supply
their own pre-quantized weights for specific projections.

Offline weight quantization is memoized per model instance, keyed by
``(format fingerprint, projection)``: the evaluation tables (Tbl. 2/3/4)
rebuild ``QuantizedLM`` wrappers around the *same* cached runtime model
for every format arm, and the adaptive weight searches are by far the
most expensive step of construction. ``REPRO_NO_WEIGHT_CACHE=1`` disables
the cache; overridden projections always bypass it.
"""

from __future__ import annotations

import os

import numpy as np

from ..mx.base import TensorFormat
from .transformer import TransformerLM

__all__ = ["QuantizedLM", "Fp16Format"]

#: Environment variable disabling the per-model weight-quantization cache.
NO_WEIGHT_CACHE_ENV = "REPRO_NO_WEIGHT_CACHE"


class Fp16Format(TensorFormat):
    """Identity transfer function — the FP16 reference row of every table."""

    name = "fp16"

    @property
    def ebw(self) -> float:
        return 16.0

    def quantize(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        return np.asarray(x, dtype=np.float64)


class QuantizedLM:
    """A :class:`TransformerLM` with a quantization format applied.

    Formats exposing ``quantize_activation_calibrated`` (NVFP4's two-level
    scaling) get per-projection tensor scales measured on a calibration
    forward pass, matching how static tensor scales are deployed; all other
    formats quantize activations fully online.
    """

    def __init__(self, model: TransformerLM, fmt: TensorFormat,
                 weight_override: dict[str, np.ndarray] | None = None,
                 quantize_activations: bool = True,
                 calibration_tokens: np.ndarray | None = None) -> None:
        self.model = model
        self.fmt = fmt
        self.quantize_activations = bool(quantize_activations)
        override = weight_override or {}
        cache = None
        fmt_key = None
        if os.environ.get(NO_WEIGHT_CACHE_ENV, "0") != "1":
            fmt_key = fmt.weight_cache_key
            if fmt_key is not None:
                # The dispatch mode is part of the key: fast and reference
                # kernels are bit-identical by contract, but a cross-check
                # of that very contract must not be fed cached results
                # from the other mode.
                from ..kernels.dispatch import use_bittwiddle, use_reference
                fmt_key = (fmt_key, use_reference(), use_bittwiddle())
                cache = model.__dict__.setdefault("_quant_weight_cache", {})
        self._weights: dict[str, np.ndarray] = {}
        for li, layer in enumerate(model.layers):
            for name in ("wq", "wk", "wv", "wo", "w_gate", "w_up", "w_down"):
                key = f"l{li}.{name}"
                if key in override:
                    self._weights[key] = np.asarray(override[key], dtype=np.float64)
                elif cache is not None:
                    entry = (fmt_key, key)
                    if entry not in cache:
                        cache[entry] = fmt.quantize_weight(layer[name], axis=-1)
                    self._weights[key] = cache[entry]
                else:
                    self._weights[key] = fmt.quantize_weight(layer[name], axis=-1)
        self._act_amax: dict[str, float] = {}
        if calibration_tokens is not None and hasattr(fmt, "quantize_activation_calibrated"):
            self._calibrate_activations(np.atleast_2d(calibration_tokens))

    def _calibrate_activations(self, tokens: np.ndarray) -> None:
        amax: dict[str, float] = {}

        def record(name: str, x: np.ndarray, w: np.ndarray) -> np.ndarray:
            amax[name] = max(amax.get(name, 0.0), float(np.max(np.abs(x))))
            return x @ w.T

        self.model.forward(tokens, linear_fn=record)
        self._act_amax = amax

    def _linear(self, name: str, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        if not self.quantize_activations:
            xq = x
        elif name in self._act_amax:
            xq = self.fmt.quantize_activation_calibrated(x, self._act_amax[name], axis=-1)
        else:
            xq = self.fmt.quantize_activation(x, axis=-1)
        return xq @ self._weights[name].T

    def forward(self, tokens: np.ndarray) -> np.ndarray:
        """Quantized logits."""
        return self.model.forward(tokens, linear_fn=self._linear)

    def nll(self, tokens: np.ndarray) -> float:
        """Quantized next-token NLL."""
        return self.model.nll(tokens, linear_fn=self._linear)

    def perplexity(self, tokens: np.ndarray) -> float:
        """Quantized perplexity."""
        return self.model.perplexity(tokens, linear_fn=self._linear)
