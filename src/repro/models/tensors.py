"""Synthetic weight generators calibrated to LLM value statistics.

LLM weights are not i.i.d. Gaussian: a small fraction of *channels* carries
systematically larger magnitudes (the "massive activation" channels that
make low-bit quantization hard), and the element distribution is heavy
tailed. Both effects determine how often a 32-element group contains a
dominant block maximum — exactly the statistic MX quantization error
depends on — so the generator models them explicitly:

* a per-input-channel log-normal scale, shared across all matrices of a
  layer (outlier channels persist through the residual stream);
* a sparse set of outlier channels boosted by ``outlier_scale``;
* an element-wise Student-t style tail controlled by ``tail``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["OutlierSpec", "channel_scales", "outlier_matrix"]


@dataclass(frozen=True)
class OutlierSpec:
    """Knobs of the heavy-tailed weight generator."""

    outlier_rate: float = 0.02    # fraction of boosted channels
    outlier_scale: float = 6.0    # magnitude boost of those channels
    channel_sigma: float = 0.35   # log-normal spread of ordinary channels
    tail: float = 0.15            # element-wise heavy-tail strength


def channel_scales(n_channels: int, spec: OutlierSpec, rng: np.random.Generator) -> np.ndarray:
    """Per-channel magnitude scales with a sparse outlier population."""
    scales = np.exp(spec.channel_sigma * rng.standard_normal(n_channels))
    n_out = max(1, int(round(spec.outlier_rate * n_channels)))
    idx = rng.choice(n_channels, size=n_out, replace=False)
    scales[idx] *= spec.outlier_scale
    return scales


def outlier_matrix(n_out: int, n_in: int, spec: OutlierSpec,
                   rng: np.random.Generator,
                   in_scales: np.ndarray | None = None) -> np.ndarray:
    """A ``(n_out, n_in)`` weight matrix with LLM-like outlier structure.

    ``in_scales`` lets callers share one channel-scale vector across all
    matrices that read the same residual stream.
    """
    if in_scales is None:
        in_scales = channel_scales(n_in, spec, rng)
    base = rng.standard_normal((n_out, n_in))
    # Element-wise heavy tail: scale mixture of normals.
    tail = np.exp(spec.tail * rng.standard_normal((n_out, n_in)))
    w = base * tail * in_scales[None, :]
    return w / np.sqrt(n_in)
