"""Synthetic LLM substrate: transformer, profiles, quantized wrappers."""

from .profiles import (PROFILES, ModelProfile, ProfileRuntime,
                       clear_runtime_cache, get_profile, load_runtime)
from .quantized import Fp16Format, QuantizedLM
from .tensors import OutlierSpec, channel_scales, outlier_matrix
from .transformer import (LINEAR_NAMES, TransformerConfig, TransformerLM)

__all__ = [
    "OutlierSpec", "channel_scales", "outlier_matrix",
    "TransformerConfig", "TransformerLM", "LINEAR_NAMES",
    "QuantizedLM", "Fp16Format",
    "ModelProfile", "ProfileRuntime", "PROFILES", "get_profile",
    "load_runtime", "clear_runtime_cache",
]
