"""Microscaling (MX) data formats and their variants (paper Sec. 2.2)."""

from .base import BlockFormat, QuantResult, TensorFormat
from .fp_group import GroupFP4, fp4_fp16scale
from .max_preserve import MaxPreserving
from .msfp import MSFP, MSFP12, MSFP16, msfp12, msfp16
from .mxfp import (MXFP4, MXFP6_E2M3, MXFP6_E3M2, MXFP8_E4M3, MXFP8_E5M2,
                   MXINT8, make_mxfp4, mxfp4)
from .nvfp import NVFP4, nvfp4
from .scale_rules import SCALE_RULES, shared_scale, shared_scale_exponent
from .smx import SMX, SMX4, SMX6, SMX9, smx4

__all__ = [
    "TensorFormat", "BlockFormat", "QuantResult",
    "MXFP4", "MXFP6_E2M3", "MXFP6_E3M2", "MXFP8_E4M3", "MXFP8_E5M2", "MXINT8",
    "mxfp4", "make_mxfp4", "NVFP4", "nvfp4", "SMX", "SMX4", "SMX6", "SMX9",
    "smx4", "MSFP", "MSFP12", "MSFP16", "msfp12", "msfp16",
    "GroupFP4", "fp4_fp16scale", "MaxPreserving",
    "SCALE_RULES", "shared_scale", "shared_scale_exponent",
]
