"""Shared-scale exponent rules for MX quantization (paper Sec. 6.4, Tbl. 8).

Given the block maximum ``amax``, each rule picks the E8M0 exponent ``E`` of
the shared scale ``S = 2**E``:

* ``floor`` — OCP default: ``E = floor(log2(amax / P))`` where ``P`` is the
  largest power of two representable by the element format (4 for FP4).
  ``amax / S`` lands in ``[P, 2P)``, so the block maximum may exceed the
  format maximum ``M`` and clip — the dominant MXFP4 error source.
* ``ceil`` — ``E = ceil(log2(amax / M))``; the block maximum always fits.
* ``rtn1`` — round-to-nearest on ``log2(amax / M)``.
* ``rtn2`` — round-to-nearest on ``log2(amax / P)``.
* ``rtne`` — rounds ``amax`` in value space before the floor rule. For FP4
  (``M = 1.5 P``) the paper notes this is identical to ``ceil``, which is how
  it is implemented here (Tbl. 8 reports them as one row).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..formats.e8m0 import clamp_exponent

__all__ = ["SCALE_RULES", "shared_scale_exponent", "shared_scale"]


def _safe_log2(x: np.ndarray) -> np.ndarray:
    """log2 that maps non-positive inputs to 0 (callers mask those groups)."""
    x = np.asarray(x, dtype=np.float64)
    return np.log2(np.where(x > 0, x, 1.0))


def _floor_rule(amax: np.ndarray, p: float, m: float) -> np.ndarray:
    return np.floor(_safe_log2(amax / p))


def _ceil_rule(amax: np.ndarray, p: float, m: float) -> np.ndarray:
    return np.ceil(_safe_log2(amax / m))


def _rtn1_rule(amax: np.ndarray, p: float, m: float) -> np.ndarray:
    return np.rint(_safe_log2(amax / m))


def _rtn2_rule(amax: np.ndarray, p: float, m: float) -> np.ndarray:
    return np.rint(_safe_log2(amax / p))


SCALE_RULES = {
    "floor": _floor_rule,
    "ceil": _ceil_rule,
    "rtn1": _rtn1_rule,
    "rtn2": _rtn2_rule,
    "rtne": _ceil_rule,  # equivalent to ceil whenever M == 1.5 P (FP4 case)
}


def shared_scale_exponent(amax: np.ndarray, element, rule: str = "floor") -> np.ndarray:
    """Integer shared-scale exponents for block maxima ``amax``.

    ``element`` is any scalar spec exposing ``max_value`` and ``max_pow2``.
    Zero blocks get exponent 0 (their elements quantize to zero anyway).
    Exponents saturate to the E8M0 range.
    """
    if rule not in SCALE_RULES:
        raise ConfigError(f"unknown scale rule {rule!r}; choose from {sorted(SCALE_RULES)}")
    amax = np.asarray(amax, dtype=np.float64)
    e = SCALE_RULES[rule](amax, element.max_pow2, element.max_value)
    e = np.where(amax > 0, e, 0.0)
    return clamp_exponent(e.astype(np.int64))


def shared_scale(amax: np.ndarray, element, rule: str = "floor") -> np.ndarray:
    """Power-of-two shared scales ``2**E`` for block maxima ``amax``."""
    return np.exp2(shared_scale_exponent(amax, element, rule).astype(np.float64))
