"""Max-value preservation ablation (Fig. 3).

Wraps any tensor format and, after quantization, restores each group's
maximum-magnitude element to its original FP16 value. The paper uses this
to demonstrate that mishandling of the block maximum is the dominant MXFP4
error source: preserving one element per group nearly closes the gap to
FP16-scaled FP4.
"""

from __future__ import annotations

import numpy as np

from ..formats.grouping import from_groups, to_groups
from ..formats.registry import FP16
from .base import TensorFormat

__all__ = ["MaxPreserving"]


class MaxPreserving(TensorFormat):
    """Keep the group-wise absolute maximum in FP16, quantize the rest."""

    def __init__(self, inner: TensorFormat, group_size: int | None = None) -> None:
        self.inner = inner
        self.group_size = int(group_size or getattr(inner, "group_size", 32))
        self.name = f"{inner.name}+maxfp16"

    @property
    def ebw(self) -> float:
        """Inner EBW plus one FP16 value and its index per group."""
        k = self.group_size
        index_bits = max(1, int(np.ceil(np.log2(k))))
        extra = FP16.total_bits + index_bits - 4
        return self.inner.ebw + extra / k

    def _restore_max(self, x: np.ndarray, dq: np.ndarray, axis: int) -> np.ndarray:
        orig, view = to_groups(x, self.group_size, axis=axis)
        quant, _ = to_groups(dq, self.group_size, axis=axis)
        idx = np.argmax(np.abs(orig), axis=1)
        rows = np.arange(orig.shape[0])
        quant[rows, idx] = FP16.quantize(orig[rows, idx])
        return from_groups(quant, view)

    def quantize(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        return self._restore_max(x, self.inner.quantize(x, axis=axis), axis)

    def quantize_weight(self, w: np.ndarray, axis: int = -1) -> np.ndarray:
        return self._restore_max(w, self.inner.quantize_weight(w, axis=axis), axis)

    def quantize_activation(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        return self._restore_max(x, self.inner.quantize_activation(x, axis=axis), axis)
