"""NVFP4: FP4 elements with an FP8 (E4M3) group scale and a tensor rescale.

NVIDIA's Blackwell format (paper Sec. 2.2): a group of 16 FP4 elements
shares an E4M3 scale. Because E4M3 cannot span FP16's exponent range, a
per-tensor FP32 scale first normalizes the distribution so the largest
group scale maps to the E4M3 maximum (448).
"""

from __future__ import annotations

import numpy as np

from ..formats.grouping import from_groups, to_groups
from ..formats.registry import FP4_E2M1, FP8_E4M3
from .base import QuantResult, TensorFormat

__all__ = ["NVFP4", "nvfp4"]


class NVFP4(TensorFormat):
    """Two-level scaled FP4 (group E4M3 scale x tensor FP32 scale)."""

    def __init__(self, group_size: int = 16) -> None:
        self.name = f"nvfp4-g{group_size}"
        self.group_size = int(group_size)
        self.element = FP4_E2M1
        self.scale_format = FP8_E4M3

    @property
    def ebw(self) -> float:
        """4-bit elements + 8-bit scale per group (tensor scale amortizes away)."""
        return self.element.total_bits + self.scale_format.total_bits / self.group_size

    def quantize_detailed(self, x: np.ndarray, axis: int = -1,
                          tensor_amax: float | None = None) -> QuantResult:
        """Quantize with explicit scales returned.

        ``tensor_amax`` overrides the live tensor maximum with a statically
        calibrated one — the deployment reality for dynamic activations,
        where the tensor-level scale must be fixed ahead of time. Spikes
        above the calibrated range saturate the E4M3 group scale and clip.
        """
        groups, view = to_groups(x, self.group_size, axis=axis)
        if tensor_amax is None:
            tensor_amax = float(np.max(np.abs(groups), initial=0.0))
        if tensor_amax == 0.0:
            return QuantResult(dequantized=from_groups(groups, view),
                               scales=np.ones(groups.shape[0]), ebw=self.ebw,
                               details={"tensor_scale": 1.0})
        # Tensor scale chosen so the largest ideal group scale (amax/M) hits
        # the top of the E4M3 range.
        tensor_scale = tensor_amax / (self.element.max_value * self.scale_format.max_value)
        group_amax = np.max(np.abs(groups), axis=1)
        ideal = group_amax / (self.element.max_value * tensor_scale)
        s8 = self.scale_format.quantize(ideal)  # saturates at 448 if miscalibrated
        scales = s8 * tensor_scale
        safe = np.where(scales > 0, scales, 1.0)
        q = self.element.quantize(groups / safe[:, None])
        dq = np.where(scales[:, None] > 0, q * safe[:, None], 0.0)
        return QuantResult(dequantized=from_groups(dq, view), scales=scales,
                           ebw=self.ebw, details={"tensor_scale": tensor_scale})

    def quantize(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        return self.quantize_detailed(x, axis=axis).dequantized

    def quantize_activation_calibrated(self, x: np.ndarray, tensor_amax: float,
                                       axis: int = -1) -> np.ndarray:
        """Online activation path with a pre-calibrated tensor scale."""
        return self.quantize_detailed(x, axis=axis, tensor_amax=tensor_amax).dequantized


#: The standard NVFP4 baseline (group 16) used throughout the evaluation.
nvfp4 = NVFP4()
