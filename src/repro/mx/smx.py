"""Shared Microexponents (SMX) formats: SMX4 / SMX6 / SMX9 (ISCA'23).

Two-level block floating point: ``k1`` elements (16) share an 8-bit scale
and each ``k2``-element subgroup (2) carries a 1-bit micro-exponent that
shifts its local scale down by one octave when both members are small.
The format-name digit counts sign + shared micro-exponent + mantissa bits
(SMX4 = 1 + 1 + 2, stored as INT3 mantissas).
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..formats.e8m0 import E8M0_BITS
from ..formats.intspec import IntSpec
from .base import BlockFormat, QuantResult

__all__ = ["SMX", "SMX4", "SMX6", "SMX9", "smx4"]


class SMX(BlockFormat):
    """Generic two-level shared-microexponent block format."""

    def __init__(self, name: str, man_bits: int, group_size: int = 16,
                 sub_size: int = 2) -> None:
        if group_size % sub_size != 0:
            raise ShapeError("group size must be a multiple of the subgroup size")
        element = IntSpec(f"int{man_bits + 1}", man_bits + 1)
        meta_bits = group_size // sub_size  # one micro-exponent bit per pair
        super().__init__(name, element, group_size, scale_rule="floor",
                         scale_bits=E8M0_BITS, meta_bits_per_group=meta_bits)
        self.sub_size = int(sub_size)

    def quantize_groups(self, groups: np.ndarray) -> QuantResult:
        """Quantize with a per-pair 1-bit exponent refinement."""
        imax = self.element.max_value
        amax = np.max(np.abs(groups), axis=1)
        # Power-of-two floor rule over the mantissa range, like classic BFP
        # (and like MXFP4's floor rule): the block maximum can clip, which
        # is the error mode that makes SMX4 collapse at 4 bits.
        p = 2.0 ** np.floor(np.log2(imax))
        e = np.where(amax > 0,
                     np.floor(np.log2(np.where(amax > 0, amax, 1.0) / p)), 0.0)
        scales = np.exp2(e)
        n, k = groups.shape
        pairs = groups.reshape(n, k // self.sub_size, self.sub_size)
        pair_max = np.max(np.abs(pairs), axis=2)
        # Micro-exponent bit: halve the local scale when the pair fits.
        micro = (pair_max <= scales[:, None] * imax / 2.0).astype(np.float64)
        local = scales[:, None] / np.exp2(micro)
        q = self.element.quantize(pairs / local[:, :, None])
        dq = (q * local[:, :, None]).reshape(n, k)
        return QuantResult(dequantized=dq, scales=scales, ebw=self.ebw,
                           details={"micro_exponents": micro})


def SMX4(group_size: int = 16, sub_size: int = 2) -> SMX:
    """SMX4: INT3 mantissas, 1-bit pair micro-exponent (EBW 4.0)."""
    return SMX(f"smx4-g{group_size}", man_bits=2, group_size=group_size, sub_size=sub_size)


def SMX6(group_size: int = 16, sub_size: int = 2) -> SMX:
    """SMX6: INT5 mantissas under the same two-level scaling."""
    return SMX(f"smx6-g{group_size}", man_bits=4, group_size=group_size, sub_size=sub_size)


def SMX9(group_size: int = 16, sub_size: int = 2) -> SMX:
    """SMX9: INT8 mantissas under the same two-level scaling."""
    return SMX(f"smx9-g{group_size}", man_bits=7, group_size=group_size, sub_size=sub_size)


#: The SMX4 baseline used in Fig. 3 and Tbl. 2 (group 16, pairs of 2).
smx4 = SMX4()
