"""OCP Microscaling formats: MXFP4 / MXFP6 / MXFP8 / MXINT8 (Fig. 1).

These are plain :class:`~repro.mx.base.BlockFormat` instances — an E8M0
shared scale over ``k`` elements of the given scalar type, with the OCP
floor rule by default.
"""

from __future__ import annotations

from ..formats.intspec import IntSpec
from ..formats.registry import FP4_E2M1, FP6_E2M3, FP6_E3M2, FP8_E4M3, FP8_E5M2
from .base import BlockFormat

__all__ = ["MXFP4", "MXFP6_E2M3", "MXFP6_E3M2", "MXFP8_E4M3", "MXFP8_E5M2",
           "MXINT8", "mxfp4", "make_mxfp4"]


class _MXIntElement(IntSpec):
    """INT element with the power-of-two constants MX scale rules expect."""

    @property
    def max_pow2(self) -> float:
        p = 1.0
        while p * 2 <= self.max_value:
            p *= 2
        return p


def MXFP4(group_size: int = 32, scale_rule: str = "floor") -> BlockFormat:
    """OCP MXFP4: E2M1 elements, E8M0 scale, default group 32."""
    return BlockFormat(f"mxfp4-g{group_size}", FP4_E2M1, group_size, scale_rule)


def MXFP6_E2M3(group_size: int = 32, scale_rule: str = "floor") -> BlockFormat:
    """OCP MXFP6 (E2M3 flavour)."""
    return BlockFormat(f"mxfp6-e2m3-g{group_size}", FP6_E2M3, group_size, scale_rule)


def MXFP6_E3M2(group_size: int = 32, scale_rule: str = "floor") -> BlockFormat:
    """OCP MXFP6 (E3M2 flavour)."""
    return BlockFormat(f"mxfp6-e3m2-g{group_size}", FP6_E3M2, group_size, scale_rule)


def MXFP8_E4M3(group_size: int = 32, scale_rule: str = "floor") -> BlockFormat:
    """OCP MXFP8 (E4M3 flavour)."""
    return BlockFormat(f"mxfp8-e4m3-g{group_size}", FP8_E4M3, group_size, scale_rule)


def MXFP8_E5M2(group_size: int = 32, scale_rule: str = "floor") -> BlockFormat:
    """OCP MXFP8 (E5M2 flavour)."""
    return BlockFormat(f"mxfp8-e5m2-g{group_size}", FP8_E5M2, group_size, scale_rule)


def MXINT8(group_size: int = 32, scale_rule: str = "floor") -> BlockFormat:
    """OCP MXINT8: symmetric INT8 elements under an E8M0 scale."""
    return BlockFormat(f"mxint8-g{group_size}", _MXIntElement("int8", 8),
                       group_size, scale_rule)


def make_mxfp4(group_size: int = 32, scale_rule: str = "floor") -> BlockFormat:
    """Alias of :func:`MXFP4` kept for symmetry with other factories."""
    return MXFP4(group_size, scale_rule)


#: The paper's standard MXFP4 baseline (OCP floor rule, group 32).
mxfp4 = MXFP4()
