"""Microsoft Floating Point (MSFP) block formats: MSFP-12 / MSFP-16.

Classic block floating point: an 8-bit shared exponent over sign-magnitude
integer mantissas. The format number counts mantissa-word bits plus the
shared exponent (MSFP-12 = 4-bit elements + 8-bit exponent).
"""

from __future__ import annotations

import numpy as np

from ..formats.e8m0 import E8M0_BITS
from ..formats.intspec import IntSpec
from .base import BlockFormat, QuantResult

__all__ = ["MSFP", "MSFP12", "MSFP16", "msfp12", "msfp16"]


class MSFP(BlockFormat):
    """Block floating point with INT mantissas and a pow-2 shared exponent."""

    def __init__(self, name: str, element_bits: int, group_size: int) -> None:
        element = IntSpec(f"int{element_bits}", element_bits)
        super().__init__(name, element, group_size, scale_rule="floor",
                         scale_bits=E8M0_BITS)

    def quantize_groups(self, groups: np.ndarray) -> QuantResult:
        imax = self.element.max_value
        amax = np.max(np.abs(groups), axis=1)
        e = np.where(amax > 0, np.ceil(np.log2(np.where(amax > 0, amax, 1.0) / imax)), 0.0)
        scales = np.exp2(e)
        q = self.element.quantize(groups / scales[:, None])
        return QuantResult(dequantized=q * scales[:, None], scales=scales, ebw=self.ebw)


def MSFP12(group_size: int = 16) -> MSFP:
    """MSFP-12: 4-bit sign-magnitude mantissas + 8-bit shared exponent."""
    return MSFP(f"msfp12-g{group_size}", element_bits=4, group_size=group_size)


def MSFP16(group_size: int = 16) -> MSFP:
    """MSFP-16: 8-bit sign-magnitude mantissas + 8-bit shared exponent."""
    return MSFP(f"msfp16-g{group_size}", element_bits=8, group_size=group_size)


msfp12 = MSFP12()
msfp16 = MSFP16()
