"""Group-wise FP4 with a full-precision (FP16) scale — the "FP4" of Fig. 3.

This is conventional group-wise quantization: the scale maps the group
maximum exactly onto the FP4 maximum (6.0), eliminating the block-maximum
misalignment that power-of-two scales suffer from. It serves as the
accuracy reference the MX variants are judged against.
"""

from __future__ import annotations

import numpy as np

from ..formats.registry import FP4_E2M1, FP16
from .base import BlockFormat, QuantResult

__all__ = ["GroupFP4", "fp4_fp16scale"]


class GroupFP4(BlockFormat):
    """FP4 elements with a per-group FP16 scale of ``amax / 6``."""

    def __init__(self, group_size: int = 32) -> None:
        super().__init__(f"fp4-fp16scale-g{group_size}", FP4_E2M1, group_size,
                         scale_rule="floor", scale_bits=FP16.total_bits)

    def quantize_groups(self, groups: np.ndarray) -> QuantResult:
        amax = np.max(np.abs(groups), axis=1)
        scales = FP16.quantize(amax / self.element.max_value)
        safe = np.where(scales > 0, scales, 1.0)
        q = self.element.quantize(groups / safe[:, None])
        dq = np.where(scales[:, None] > 0, q * safe[:, None], 0.0)
        return QuantResult(dequantized=dq, scales=scales, ebw=self.ebw)


#: Fig. 3's "FP4" reference point (group 32, FP16 scales).
fp4_fp16scale = GroupFP4()
