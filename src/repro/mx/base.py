"""Base classes shared by every tensor quantization format in the library.

A :class:`TensorFormat` is the unit the model wrappers and the evaluation
harness consume: it fake-quantizes a tensor (quantize + dequantize in one
step, the standard way to simulate low-bit inference in high precision) and
reports its equivalent bit width. Hybrid formats like M2XFP override the
weight/activation entry points separately.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..formats.e8m0 import E8M0_BITS
from ..formats.grouping import from_groups, to_groups
from .scale_rules import shared_scale_exponent

__all__ = ["TensorFormat", "BlockFormat", "QuantResult"]


@dataclass
class QuantResult:
    """Detailed output of a group quantization pass."""

    dequantized: np.ndarray
    scales: np.ndarray
    ebw: float
    details: dict[str, Any] = field(default_factory=dict)


class TensorFormat(abc.ABC):
    """A (fake-)quantization transfer function plus its storage cost."""

    name: str = "abstract"

    @property
    @abc.abstractmethod
    def ebw(self) -> float:
        """Equivalent bit width: element bits + amortized scale/metadata."""

    @abc.abstractmethod
    def quantize(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        """Quantize-dequantize ``x`` group-wise along ``axis``."""

    def quantize_weight(self, w: np.ndarray, axis: int = -1) -> np.ndarray:
        """Weight entry point (offline; hybrids may use a richer search).

        Routed through the compiled-plan cache (:mod:`repro.plan`) when
        a fused executor exists for this format under the default fast
        dispatch; otherwise (or with ``REPRO_NO_PLANS=1``) falls back to
        :meth:`quantize`. Both paths are bit-identical.
        """
        from ..plan import lookup_plan
        plan = lookup_plan(self, "weight", w, axis)
        if plan is not None:
            return plan.run(w)
        return self.quantize(w, axis=axis)

    def quantize_activation(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        """Activation entry point (online; must stay lightweight).

        Plan-routed exactly like :meth:`quantize_weight`.
        """
        from ..plan import lookup_plan
        plan = lookup_plan(self, "activation", x, axis)
        if plan is not None:
            return plan.run(x)
        return self.quantize(x, axis=axis)

    @property
    def weight_ebw(self) -> float:
        """EBW of the weight path (differs for hybrid formats)."""
        return self.ebw

    @property
    def activation_ebw(self) -> float:
        """EBW of the activation path."""
        return self.ebw

    @property
    def weight_cache_key(self):
        """Hashable fingerprint of this format's weight-quantization config.

        Used by :class:`repro.models.quantized.QuantizedLM` to share
        offline weight quantization between experiment arms that apply
        the same format to the same model. The default walks the
        instance's scalar configuration (names alone are not enough —
        e.g. two ``SgEM`` with different scale rules share a name) and
        recurses into nested formats and element specs. Any attribute it
        cannot fingerprint conservatively returns ``None``, which
        disables caching for the format.
        """
        parts: list = [type(self).__name__]
        for attr in sorted(vars(self)):
            value = vars(self)[attr]
            if isinstance(value, (bool, int, float, str, bytes, tuple)):
                parts.append((attr, value))
            elif isinstance(value, TensorFormat):
                nested = value.weight_cache_key
                if nested is None:
                    return None
                parts.append((attr, nested))
            elif hasattr(value, "name") and hasattr(value, "total_bits"):
                # Scalar element specs (FloatSpec / IntSpec / GridSpec).
                parts.append((attr, value.name, value.total_bits))
            else:
                return None
        return tuple(parts)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} ebw={self.ebw:.4g}>"


class BlockFormat(TensorFormat):
    """Group-wise format with an E8M0 (or otherwise fixed-width) scale.

    Subclasses implement :meth:`quantize_groups` over a ``(n, k)`` matrix;
    this class handles grouping, padding and EBW accounting.
    """

    def __init__(self, name: str, element, group_size: int,
                 scale_rule: str = "floor", scale_bits: int = E8M0_BITS,
                 meta_bits_per_group: int = 0) -> None:
        self.name = name
        self.element = element
        self.group_size = int(group_size)
        self.scale_rule = scale_rule
        self.scale_bits = int(scale_bits)
        self.meta_bits_per_group = int(meta_bits_per_group)

    @property
    def ebw(self) -> float:
        """Eq. 2: ``B_elem + (B_meta + B_scale) / k``."""
        return (self.element.total_bits
                + (self.meta_bits_per_group + self.scale_bits) / self.group_size)

    def group_scales(self, groups: np.ndarray) -> np.ndarray:
        """Per-group power-of-two scales from the configured rule."""
        amax = np.max(np.abs(groups), axis=1)
        e = shared_scale_exponent(amax, self.element, self.scale_rule)
        return np.exp2(e.astype(np.float64))

    def quantize_groups(self, groups: np.ndarray) -> QuantResult:
        """Quantize a ``(n_groups, k)`` matrix; subclasses may override."""
        scales = self.group_scales(groups)
        q = self.element.quantize(groups / scales[:, None])
        return QuantResult(dequantized=q * scales[:, None], scales=scales, ebw=self.ebw)

    def quantize_detailed(self, x: np.ndarray, axis: int = -1) -> QuantResult:
        """Full-tensor quantization returning scales and details."""
        groups, view = to_groups(x, self.group_size, axis=axis)
        result = self.quantize_groups(groups)
        result.dequantized = from_groups(result.dequantized, view)
        return result

    def quantize(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        return self.quantize_detailed(x, axis=axis).dequantized
