"""Equivalent bit width accounting (Eq. 2).

``EBW = B_elem + (B_meta + B_scale) / k`` — the effective storage cost per
element once the shared scale and group metadata are amortized. All DSE
plots in the paper use this as their x-axis.
"""

from __future__ import annotations

from ..errors import ConfigError

__all__ = ["ebw", "ebw_of_format"]


def ebw(element_bits: float, group_size: int, scale_bits: float = 8,
        meta_bits_per_group: float = 0.0) -> float:
    """Equivalent bit width from raw bit counts (Eq. 2)."""
    if group_size < 1:
        raise ConfigError("group_size must be >= 1")
    return element_bits + (meta_bits_per_group + scale_bits) / group_size


def ebw_of_format(fmt) -> float:
    """EBW of any object exposing the :class:`TensorFormat` protocol."""
    return float(fmt.ebw)
