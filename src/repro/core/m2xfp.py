"""The M2XFP hybrid format (Sec. 4.3) and its NVFP4 extension (Tbl. 6).

M2XFP assigns different metadata strategies to the two GEMM operands:

* **weights** (static, quantized offline): Sg-EM — 2-bit subgroup scale
  refinement with the adaptive shared-scale search of Eq. 4;
* **activations** (dynamic, quantized online): Elem-EM top-1 — 2 bits of
  extra FP6 mantissa for the largest element of each subgroup, encoded with
  the bias-clamp trick of Algorithm 1.

With the paper's configuration (group 32, subgroup 8) both sides cost
0.25 metadata bits per element, for an effective 4.5-bit format.

``M2NVFP4`` applies the same two strategies on top of NVFP4's two-level
(E4M3 group x FP32 tensor) scaling, reproducing Tbl. 6.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..formats.floatspec import quantize_to_grid
from ..formats.grouping import from_groups, to_groups
from ..formats.registry import FP4_E2M1, FP6_E2M3
from ..kernels.dispatch import use_reference
from ..kernels.elem import fp6_topk_refine
from ..kernels.search import (candidate_search, gather_candidate_codes,
                              hierarchical_select)
from ..mx.base import TensorFormat
from ..mx.nvfp import NVFP4
from .elem_em import META_BITS_PER_VALUE, ElemEM
from .sg_em import SG_EM_MULTIPLIERS, SgEM

__all__ = ["M2XFP", "M2NVFP4", "m2xfp", "m2_nvfp4"]


class M2XFP(TensorFormat):
    """Hybrid metadata-augmented MX format: Sg-EM weights, Elem-EM activations."""

    def __init__(self, group_size: int = 32, sub_size: int = 8, top_k: int = 1,
                 adaptive: bool = True, scale_rule: str = "floor") -> None:
        self.group_size = int(group_size)
        self.sub_size = int(sub_size)
        self.weight_format = SgEM(group_size, sub_size, adaptive=adaptive,
                                  scale_rule=scale_rule)
        self.activation_format = ElemEM(group_size, sub_size, top_k=top_k,
                                        scale_rule=scale_rule)
        self.name = f"m2xfp-g{group_size}s{sub_size}"

    @property
    def ebw(self) -> float:
        """Storage cost of the more expensive operand path.

        With the paper's default configuration (group 32, subgroup 8,
        top-1) the Sg-EM weight path and the Elem-EM activation path both
        cost 4.5 bits, so the ``max`` is degenerate; asymmetric
        configurations (e.g. ``top_k=2``) make the two diverge, which is
        why :attr:`weight_ebw` and :attr:`activation_ebw` are reported
        separately in ``__repr__`` and the experiment notes.
        """
        return max(self.weight_format.ebw, self.activation_format.ebw)

    @property
    def weight_ebw(self) -> float:
        return self.weight_format.ebw

    @property
    def activation_ebw(self) -> float:
        return self.activation_format.ebw

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {self.name} ebw={self.ebw:.4g} "
                f"(weight={self.weight_ebw:.4g}, "
                f"activation={self.activation_ebw:.4g})>")

    def quantize(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        """Default to the online (activation) path."""
        return self.activation_format.quantize(x, axis=axis)

    def quantize_weight(self, w: np.ndarray, axis: int = -1) -> np.ndarray:
        # Via the operand format's entry point so the plan cache applies.
        return self.weight_format.quantize_weight(w, axis=axis)

    def quantize_activation(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        return self.activation_format.quantize_activation(x, axis=axis)


def _fp6_top1_refine(scaled: np.ndarray, sub_size: int) -> np.ndarray:
    """Elem-EM top-1 refinement in already-scaled space (code-exact)."""
    if not use_reference():
        return fp6_topk_refine(scaled, sub_size, 1, FP4_E2M1, FP6_E2M3,
                               META_BITS_PER_VALUE)
    n, k = scaled.shape
    n_sub = k // sub_size
    sign, mag = FP4_E2M1.encode(scaled)
    dq = FP4_E2M1.decode(sign, mag)

    mag_sub = mag.reshape(n, n_sub, sub_size)
    top_idx = np.argmax(mag_sub, axis=2)[:, :, None]
    abs_sub = np.abs(scaled).reshape(n, n_sub, sub_size)
    top_abs = np.take_along_axis(abs_sub, top_idx, axis=2)
    fp6 = quantize_to_grid(top_abs, FP6_E2M3.grid)
    fp4_top = np.take_along_axis(mag_sub, top_idx, axis=2)
    lo = fp4_top << META_BITS_PER_VALUE
    meta = np.clip(fp6 + 1, lo, lo + 3) - lo
    decoded = np.clip((lo | meta) - 1, 0, FP6_E2M3.code_count - 1)
    refined = FP6_E2M3.grid[decoded]
    sign_sub = sign.reshape(n, n_sub, sub_size)
    top_sign = np.take_along_axis(sign_sub, top_idx, axis=2)
    out = dq.reshape(n, n_sub, sub_size).copy()
    np.put_along_axis(out, top_idx, np.where(top_sign != 0, -refined, refined), axis=2)
    return out.reshape(n, k)


class M2NVFP4(TensorFormat):
    """M2XFP's metadata strategies applied over NVFP4 scaling.

    Group 16 with subgroup 4 gives 2 metadata bits per 4 elements, so the
    effective bit width rises from NVFP4's 4.5 to 5.0 — matching the cost
    the paper reports for this extension.
    """

    def __init__(self, group_size: int = 16, sub_size: int = 4,
                 adaptive: bool = True) -> None:
        if group_size % sub_size != 0:
            raise ShapeError("group size must be a multiple of the subgroup size")
        self.group_size = int(group_size)
        self.sub_size = int(sub_size)
        self.adaptive = bool(adaptive)
        self.base = NVFP4(group_size)
        self.name = f"m2-nvfp4-g{group_size}s{sub_size}"

    @property
    def meta_bits_per_group(self) -> int:
        """2 bits per subgroup on either operand path."""
        return 2 * (self.group_size // self.sub_size)

    @property
    def ebw(self) -> float:
        return self.base.ebw + self.meta_bits_per_group / self.group_size

    def _scaled_groups(self, x: np.ndarray, axis: int):
        groups, view = to_groups(x, self.group_size, axis=axis)
        detail = self.base.quantize_detailed(groups, axis=-1)
        scales = np.where(detail.scales > 0, detail.scales, 1.0)
        return groups, view, scales

    def quantize_activation(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        """Elem-EM top-1 over the NVFP4 scale."""
        groups, view, scales = self._scaled_groups(x, axis)
        dq = _fp6_top1_refine(groups / scales[:, None], self.sub_size)
        return from_groups(dq * scales[:, None], view)

    def quantize_weight(self, w: np.ndarray, axis: int = -1) -> np.ndarray:
        """Sg-EM multiplier search (plus exponent bias) over the NVFP4 scale."""
        groups, view, scales = self._scaled_groups(w, axis)
        n, k = groups.shape
        n_sub = k // self.sub_size
        subs = groups.reshape(n, n_sub, self.sub_size)
        biases = (0.5, 1.0, 2.0) if self.adaptive else (1.0,)

        if not use_reference():
            mult = np.asarray(SG_EM_MULTIPLIERS)
            cand = ((scales[:, None] * np.asarray(biases))[:, :, None]
                    * mult).reshape(n, -1)
            codes, err = candidate_search(subs, cand, FP4_E2M1.grid,
                                          FP4_E2M1.boundaries)
            outer, inner, invalid = hierarchical_select(
                err, len(biases), len(mult), fallback_outer=biases.index(1.0))
            mag = gather_candidate_codes(codes, outer, inner, len(mult))
            s_sel = np.take_along_axis(cand, outer[:, None] * len(mult) + inner,
                                       axis=1)
            q = FP4_E2M1.grid[mag]
            dq = np.where(np.signbit(subs), -q, q) * s_sel[:, :, None]
            if invalid.any():
                # The reference's never-updated accumulator yields zeros.
                dq[invalid] = 0.0
            return from_groups(dq.reshape(n, k), view)

        best_err = np.full(n, np.inf)
        best_dq = np.zeros_like(subs)
        for bias in biases:
            sub_err = np.full((n, n_sub), np.inf)
            sub_dq = np.zeros_like(subs)
            for mult in SG_EM_MULTIPLIERS:
                s = (scales * bias)[:, None, None] * mult
                q = FP4_E2M1.quantize(subs / s) * s
                err = np.sum((q - subs) ** 2, axis=2)
                better = err < sub_err
                sub_err = np.where(better, err, sub_err)
                sub_dq = np.where(better[:, :, None], q, sub_dq)
            group_err = np.sum(sub_err, axis=1)
            improved = group_err < best_err
            best_err = np.where(improved, group_err, best_err)
            best_dq = np.where(improved[:, None, None], sub_dq, best_dq)
        return from_groups(best_dq.reshape(n, k), view)

    def quantize(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        return self.quantize_activation(x, axis=axis)


#: The paper's standard M2XFP configuration (group 32, subgroup 8, top-1).
m2xfp = M2XFP()

#: The Tbl. 6 extension of NVFP4 with M2XFP metadata.
m2_nvfp4 = M2NVFP4()
