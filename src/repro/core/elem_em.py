"""Elem-EM: element-level extra-mantissa metadata (Algorithm 1, Sec. 4.4.1).

The online activation quantization of M2XFP. Per group of ``k`` elements:

1. compute the E8M0 shared scale from the block maximum (OCP floor rule);
2. quantize every element to FP4 (E2M1);
3. per subgroup, identify the top-1 element *in the FP4 domain* (so the
   decoder can re-identify it), breaking ties by lowest index;
4. re-quantize that element's original value to FP6 (E2M3) under the same
   shared scale;
5. encode the FP6 value as 2 bits of metadata relative to the FP4 code via
   the +1-bias / clamp trick: ``meta = clamp(fp6_code + 1, fp4_code00,
   fp4_code11) & 0b11``. Decoding appends the metadata to the FP4 code and
   subtracts 1, recovering one of the FP6 values {-1, 0, +1, +2} steps from
   the FP4 point — the bias range the paper selects for alignment.

Everything operates on integer code arrays so the hardware decode unit can
be tested for bit-exact equivalence against this reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError
from ..formats.e8m0 import E8M0_BITS
from ..formats.floatspec import quantize_to_grid
from ..formats.grouping import from_groups, to_groups
from ..formats.registry import FP4_E2M1, FP6_E2M3
from ..kernels.dispatch import use_reference
from ..kernels.elem import fp6_topk_refine, top_indices
from ..mx.base import TensorFormat
from ..mx.scale_rules import shared_scale_exponent

__all__ = ["ElemEMEncoding", "elem_em_encode", "elem_em_decode",
           "elem_em_quantize_groups", "ElemEM", "META_BITS_PER_VALUE"]

META_BITS_PER_VALUE = 2


@dataclass
class ElemEMEncoding:
    """Bit-level result of Algorithm 1 over a ``(n_groups, k)`` matrix."""

    sign_codes: np.ndarray        # (n, k) 0/1 sign bits
    mag_codes: np.ndarray         # (n, k) 3-bit FP4 magnitude codes
    scale_exponents: np.ndarray   # (n,) shared-scale exponents (E8M0 range)
    metadata: np.ndarray          # (n, n_sub, top_k) 2-bit codes
    sub_size: int
    top_k: int

    @property
    def group_size(self) -> int:
        """Elements per group."""
        return int(self.mag_codes.shape[1])

    @property
    def n_subgroups(self) -> int:
        """Subgroups per group."""
        return self.group_size // self.sub_size

    @property
    def meta_bits_per_group(self) -> int:
        """Metadata storage cost per group in bits."""
        return META_BITS_PER_VALUE * self.top_k * self.n_subgroups


def _top_indices(mag_sub: np.ndarray, top_k: int) -> np.ndarray:
    """Indices of the ``top_k`` largest FP4 magnitudes per subgroup.

    Ties resolve to the lowest index (Steps 3-4 of Algorithm 1): a stable
    descending sort on the integer codes gives exactly that order. The
    fast path swaps the sort for an ``argmax`` in the dominant top-1 case
    (``argmax`` also returns the first maximum).
    """
    if not use_reference():
        return top_indices(mag_sub, top_k)
    order = np.argsort(-mag_sub, axis=2, kind="stable")
    return order[:, :, :top_k]


def _validated_scales(groups: np.ndarray, sub_size: int, top_k: int,
                      scale_rule: str) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Shared input validation and scale derivation (Steps 1-2).

    Returns ``(groups, exps, scales)``; both the reference encoder and
    the fused fast path go through here so their contracts cannot drift.
    """
    groups = np.asarray(groups, dtype=np.float64)
    if groups.ndim != 2:
        raise ShapeError("elem_em_encode expects a (n_groups, k) matrix")
    if groups.shape[1] % sub_size != 0:
        raise ShapeError(f"group size {groups.shape[1]} not divisible by "
                         f"subgroup size {sub_size}")
    if not 1 <= top_k <= sub_size:
        raise ShapeError(f"top_k must be in [1, sub_size], got {top_k}")
    amax = np.max(np.abs(groups), axis=1)
    exps = shared_scale_exponent(amax, FP4_E2M1, scale_rule)
    return groups, exps, np.exp2(exps.astype(np.float64))


def elem_em_encode(groups: np.ndarray, sub_size: int = 8, top_k: int = 1,
                   scale_rule: str = "floor") -> ElemEMEncoding:
    """Run Algorithm 1 over a ``(n_groups, k)`` matrix of FP16/FP32 data."""
    groups, exps, scales = _validated_scales(groups, sub_size, top_k, scale_rule)
    n, k = groups.shape

    # Step 2: baseline FP4 quantization under the shared scale.
    scaled = groups / scales[:, None]
    sign, mag = FP4_E2M1.encode(scaled)

    # Steps 3-4: top-k per subgroup in the FP4 code domain.
    n_sub = k // sub_size
    mag_sub = mag.reshape(n, n_sub, sub_size)
    top_idx = _top_indices(mag_sub, top_k)

    # Step 5: re-quantize the original values of the selected elements to FP6.
    scaled_sub = np.abs(scaled).reshape(n, n_sub, sub_size)
    top_scaled = np.take_along_axis(scaled_sub, top_idx, axis=2)
    fp6_codes = quantize_to_grid(top_scaled, FP6_E2M3.grid)

    # Steps 6-7: +1 bias, clamp to the FP4 code's 2-bit extension window.
    fp4_top = np.take_along_axis(mag_sub, top_idx, axis=2)
    lo = fp4_top << META_BITS_PER_VALUE
    encoded = fp6_codes + 1
    clamped = np.clip(encoded, lo, lo + 3)
    metadata = (clamped - lo).astype(np.int64)

    return ElemEMEncoding(sign_codes=sign, mag_codes=mag, scale_exponents=exps,
                          metadata=metadata, sub_size=sub_size, top_k=top_k)


def elem_em_decode(enc: ElemEMEncoding) -> np.ndarray:
    """Dequantize an :class:`ElemEMEncoding` back to a float matrix.

    The decoder re-identifies the top-k elements from the FP4 codes alone
    (as the hardware decode unit must) and applies the FP6 refinement.
    """
    n, k = enc.mag_codes.shape
    scales = np.exp2(enc.scale_exponents.astype(np.float64))
    values = FP4_E2M1.decode(enc.sign_codes, enc.mag_codes)

    n_sub = enc.n_subgroups
    mag_sub = enc.mag_codes.reshape(n, n_sub, enc.sub_size)
    top_idx = _top_indices(mag_sub, enc.top_k)
    fp4_top = np.take_along_axis(mag_sub, top_idx, axis=2)
    fp6_codes = ((fp4_top << META_BITS_PER_VALUE) | enc.metadata) - 1
    fp6_codes = np.clip(fp6_codes, 0, FP6_E2M3.code_count - 1)
    refined = FP6_E2M3.grid[fp6_codes]

    sign_sub = enc.sign_codes.reshape(n, n_sub, enc.sub_size)
    top_sign = np.take_along_axis(sign_sub, top_idx, axis=2)
    signed = np.where(top_sign != 0, -refined, refined)

    out = values.reshape(n, n_sub, enc.sub_size).copy()
    np.put_along_axis(out, top_idx, signed, axis=2)
    return out.reshape(n, k) * scales[:, None]


def elem_em_quantize_groups(groups: np.ndarray, sub_size: int = 8,
                            top_k: int = 1, scale_rule: str = "floor") -> np.ndarray:
    """Encode + decode in one step (the fake-quant transfer function).

    The fast path fuses the round trip: the decoder provably re-derives
    the encoder's top-k selection from the FP4 codes, so simulating both
    halves repeats the search and the clamp arithmetic for no effect.
    One kernel call (:func:`repro.kernels.elem.fp6_topk_refine`) produces
    the identical output.
    """
    if use_reference():
        return elem_em_decode(elem_em_encode(groups, sub_size, top_k, scale_rule))
    groups, _, scales = _validated_scales(groups, sub_size, top_k, scale_rule)
    dq = fp6_topk_refine(groups / scales[:, None], sub_size, top_k,
                         FP4_E2M1, FP6_E2M3, META_BITS_PER_VALUE)
    return dq * scales[:, None]


class ElemEM(TensorFormat):
    """Elem-EM as a standalone tensor format (activations side of M2XFP)."""

    def __init__(self, group_size: int = 32, sub_size: int = 8, top_k: int = 1,
                 scale_rule: str = "floor") -> None:
        if group_size % sub_size != 0:
            raise ShapeError("group size must be a multiple of the subgroup size")
        self.group_size = int(group_size)
        self.sub_size = int(sub_size)
        self.top_k = int(top_k)
        self.scale_rule = scale_rule
        self.name = f"elem-em-top{top_k}-g{group_size}s{sub_size}"

    @property
    def meta_bits_per_group(self) -> int:
        """2 bits per refined element, ``top_k`` per subgroup."""
        return META_BITS_PER_VALUE * self.top_k * (self.group_size // self.sub_size)

    @property
    def ebw(self) -> float:
        return (FP4_E2M1.total_bits
                + (self.meta_bits_per_group + E8M0_BITS) / self.group_size)

    def quantize(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        groups, view = to_groups(x, self.group_size, axis=axis)
        dq = elem_em_quantize_groups(groups, self.sub_size, self.top_k, self.scale_rule)
        return from_groups(dq, view)
