"""The paper's primary contribution: metadata-augmented MX quantization."""

from .ebw import ebw, ebw_of_format
from .elem_ee import ElemEE, elem_ee_quantize_groups
from .elem_em import (ElemEM, ElemEMEncoding, elem_em_decode, elem_em_encode,
                      elem_em_quantize_groups)
from .m2xfp import M2NVFP4, M2XFP, m2_nvfp4, m2xfp
from .packing import (PackedGroups, pack_elem_em, pack_fields, pack_nibbles,
                      pack_sg_em, unpack_elem_em, unpack_fields,
                      unpack_nibbles, unpack_sg_em)
from .sg_ee import SgEE, SgEEEncoding, sg_ee_decode, sg_ee_encode, sg_ee_quantize_groups
from .sg_em import (SG_EM_MULTIPLIERS, SgEM, SgEMEncoding, sg_em_decode,
                    sg_em_encode, sg_em_quantize_groups)

__all__ = [
    "ElemEM", "ElemEMEncoding", "elem_em_encode", "elem_em_decode",
    "elem_em_quantize_groups",
    "SgEM", "SgEMEncoding", "sg_em_encode", "sg_em_decode",
    "sg_em_quantize_groups", "SG_EM_MULTIPLIERS",
    "SgEE", "SgEEEncoding", "sg_ee_encode", "sg_ee_decode",
    "sg_ee_quantize_groups",
    "ElemEE", "elem_ee_quantize_groups",
    "M2XFP", "M2NVFP4", "m2xfp", "m2_nvfp4",
    "ebw", "ebw_of_format",
    "PackedGroups", "pack_nibbles", "unpack_nibbles", "pack_fields",
    "unpack_fields", "pack_elem_em", "unpack_elem_em", "pack_sg_em",
    "unpack_sg_em",
]
