"""Bit-exact packed memory layout for M2XFP tensors (Sec. 5.2).

Each group of 32 elements is stored as three separately contiguous
streams, exactly as the accelerator's memory organization requires:

* a 128-bit block of packed 4-bit element codes (two codes per byte,
  low nibble first);
* an 8-bit E8M0 shared scale;
* 8 bits of metadata (four 2-bit fields for the default subgroup size 8,
  packed low bits first).

Keeping the streams separate preserves alignment and lets the dispatch
unit index scale/metadata/elements independently.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError
from .elem_em import ElemEMEncoding
from .sg_em import SgEMEncoding

__all__ = ["PackedGroups", "pack_nibbles", "unpack_nibbles", "pack_fields",
           "unpack_fields", "pack_elem_em", "unpack_elem_em",
           "pack_sg_em", "unpack_sg_em"]


def pack_nibbles(codes: np.ndarray) -> np.ndarray:
    """Pack 4-bit codes (values 0-15) two per byte, low nibble first."""
    codes = np.asarray(codes, dtype=np.int64).reshape(-1)
    if codes.size % 2 != 0:
        raise ShapeError("nibble packing requires an even element count")
    if np.any((codes < 0) | (codes > 15)):
        raise ShapeError("nibble values must be in [0, 15]")
    pairs = codes.reshape(-1, 2)
    return (pairs[:, 0] | (pairs[:, 1] << 4)).astype(np.uint8)


def unpack_nibbles(packed: np.ndarray, count: int) -> np.ndarray:
    """Invert :func:`pack_nibbles` into ``count`` 4-bit codes."""
    packed = np.asarray(packed, dtype=np.uint8)
    out = np.empty(packed.size * 2, dtype=np.int64)
    out[0::2] = packed & 0xF
    out[1::2] = packed >> 4
    return out[:count]


def pack_fields(values: np.ndarray, width: int) -> np.ndarray:
    """Pack fixed-width bit fields into bytes, low bits first."""
    values = np.asarray(values, dtype=np.int64).reshape(-1)
    if np.any((values < 0) | (values >= (1 << width))):
        raise ShapeError(f"field values must fit in {width} bits")
    per_byte = 8 // width
    if values.size % per_byte != 0:
        raise ShapeError(f"need a multiple of {per_byte} fields of width {width}")
    shaped = values.reshape(-1, per_byte)
    out = np.zeros(shaped.shape[0], dtype=np.int64)
    for i in range(per_byte):
        out |= shaped[:, i] << (i * width)
    return out.astype(np.uint8)


def unpack_fields(packed: np.ndarray, width: int, count: int) -> np.ndarray:
    """Invert :func:`pack_fields` into ``count`` fields."""
    packed = np.asarray(packed, dtype=np.uint8).astype(np.int64)
    per_byte = 8 // width
    mask = (1 << width) - 1
    out = np.empty(packed.size * per_byte, dtype=np.int64)
    for i in range(per_byte):
        out[i::per_byte] = (packed >> (i * width)) & mask
    return out[:count]


@dataclass
class PackedGroups:
    """The three contiguous streams of a packed M2XFP tensor."""

    elements: np.ndarray   # uint8, group_size/2 bytes per group
    scales: np.ndarray     # uint8, 1 byte per group (E8M0 code)
    metadata: np.ndarray   # uint8, meta bits packed per group
    n_groups: int
    group_size: int
    sub_size: int

    @property
    def total_bytes(self) -> int:
        """Total footprint of the three streams."""
        return int(self.elements.size + self.scales.size + self.metadata.size)

    @property
    def bits_per_element(self) -> float:
        """Measured storage cost, comparable against the analytic EBW."""
        return self.total_bytes * 8 / (self.n_groups * self.group_size)


def _pack_common(sign: np.ndarray, mag: np.ndarray, exps: np.ndarray,
                 fields: np.ndarray, sub_size: int) -> PackedGroups:
    n, k = mag.shape
    codes = (np.asarray(sign) << 3) | np.asarray(mag)
    elements = pack_nibbles(codes)
    scales = (np.asarray(exps, dtype=np.int64) + 127).astype(np.uint8)
    metadata = pack_fields(fields.reshape(-1), 2)
    return PackedGroups(elements=elements, scales=scales, metadata=metadata,
                        n_groups=n, group_size=k, sub_size=sub_size)


def pack_elem_em(enc: ElemEMEncoding) -> PackedGroups:
    """Pack an Elem-EM (activation) encoding into the Sec. 5.2 layout."""
    if enc.top_k != 1:
        raise ShapeError("the packed layout stores top-1 metadata only")
    return _pack_common(enc.sign_codes, enc.mag_codes, enc.scale_exponents,
                        enc.metadata[:, :, 0], enc.sub_size)


def unpack_elem_em(packed: PackedGroups) -> ElemEMEncoding:
    """Recover an :class:`ElemEMEncoding` from its packed streams."""
    n, k = packed.n_groups, packed.group_size
    codes = unpack_nibbles(packed.elements, n * k).reshape(n, k)
    n_sub = k // packed.sub_size
    meta = unpack_fields(packed.metadata, 2, n * n_sub).reshape(n, n_sub, 1)
    return ElemEMEncoding(sign_codes=codes >> 3, mag_codes=codes & 0x7,
                          scale_exponents=packed.scales.astype(np.int64) - 127,
                          metadata=meta, sub_size=packed.sub_size, top_k=1)


def pack_sg_em(enc: SgEMEncoding) -> PackedGroups:
    """Pack an Sg-EM (weight) encoding into the Sec. 5.2 layout."""
    return _pack_common(enc.sign_codes, enc.mag_codes, enc.scale_exponents,
                        enc.sg_codes, enc.sub_size)


def unpack_sg_em(packed: PackedGroups) -> SgEMEncoding:
    """Recover an :class:`SgEMEncoding` from its packed streams."""
    n, k = packed.n_groups, packed.group_size
    codes = unpack_nibbles(packed.elements, n * k).reshape(n, k)
    n_sub = k // packed.sub_size
    sg = unpack_fields(packed.metadata, 2, n * n_sub).reshape(n, n_sub)
    return SgEMEncoding(sign_codes=codes >> 3, mag_codes=codes & 0x7,
                        scale_exponents=packed.scales.astype(np.int64) - 127,
                        sg_codes=sg, sub_size=packed.sub_size)
