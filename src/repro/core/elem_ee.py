"""Elem-EE: element-level extra-exponent metadata.

The fourth corner of the paper's strategy taxonomy (Fig. 5). The top-1
element of each subgroup receives a 2-bit exponent *increment*, letting it
represent values up to ``6 * 2^3`` over the shared scale. Section 4.2 omits
this arm from the Pareto plots because extra range cannot repair the block
maximum's rounding error (the max is already in range, just misaligned) —
this implementation exists so the claim can be measured directly.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..formats.e8m0 import E8M0_BITS
from ..formats.grouping import from_groups, to_groups
from ..formats.registry import FP4_E2M1
from ..kernels.dispatch import use_reference
from ..kernels.elem import elem_ee_offsets
from ..mx.base import TensorFormat
from ..mx.scale_rules import shared_scale_exponent

__all__ = ["elem_ee_quantize_groups", "ElemEE"]


def elem_ee_quantize_groups(groups: np.ndarray, sub_size: int = 8,
                            meta_bits: int = 2, scale_rule: str = "floor") -> np.ndarray:
    """Quantize with a per-subgroup top-1 exponent increment."""
    groups = np.asarray(groups, dtype=np.float64)
    if groups.ndim != 2:
        raise ShapeError("elem_ee_quantize_groups expects a (n_groups, k) matrix")
    n, k = groups.shape
    if k % sub_size != 0:
        raise ShapeError(f"group size {k} not divisible by subgroup size {sub_size}")
    n_sub = k // sub_size
    o_max = (1 << meta_bits) - 1

    amax = np.max(np.abs(groups), axis=1)
    exps = shared_scale_exponent(amax, FP4_E2M1, scale_rule)
    scales = np.exp2(exps.astype(np.float64))
    scaled = groups / scales[:, None]
    _, mag = FP4_E2M1.encode(scaled)
    dq = FP4_E2M1.quantize(scaled)

    mag_sub = mag.reshape(n, n_sub, sub_size)
    top_idx = np.argmax(mag_sub, axis=2)[:, :, None]
    scaled_sub = scaled.reshape(n, n_sub, sub_size)
    top_val = np.take_along_axis(scaled_sub, top_idx, axis=2)

    # Pick the exponent increment minimizing the top element's error. The
    # fast path evaluates every offset in one batched kernel call.
    if not use_reference():
        best = elem_ee_offsets(top_val, o_max, FP4_E2M1)
    else:
        best = FP4_E2M1.quantize(top_val)
        best_err = np.abs(best - top_val)
        for off in range(1, o_max + 1):
            cand = FP4_E2M1.quantize(top_val / (1 << off)) * (1 << off)
            err = np.abs(cand - top_val)
            better = err < best_err
            best = np.where(better, cand, best)
            best_err = np.where(better, err, best_err)

    out = dq.reshape(n, n_sub, sub_size).copy()
    np.put_along_axis(out, top_idx, best, axis=2)
    return out.reshape(n, k) * scales[:, None]


class ElemEE(TensorFormat):
    """Elem-EE as a standalone tensor format (taxonomy completeness)."""

    def __init__(self, group_size: int = 32, sub_size: int = 8, meta_bits: int = 2,
                 scale_rule: str = "floor") -> None:
        if group_size % sub_size != 0:
            raise ShapeError("group size must be a multiple of the subgroup size")
        self.group_size = int(group_size)
        self.sub_size = int(sub_size)
        self.meta_bits = int(meta_bits)
        self.scale_rule = scale_rule
        self.name = f"elem-ee-{meta_bits}b-g{group_size}s{sub_size}"

    @property
    def meta_bits_per_group(self) -> int:
        """``meta_bits`` per subgroup (top-1 only)."""
        return self.meta_bits * (self.group_size // self.sub_size)

    @property
    def ebw(self) -> float:
        return (FP4_E2M1.total_bits
                + (self.meta_bits_per_group + E8M0_BITS) / self.group_size)

    def quantize(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        groups, view = to_groups(x, self.group_size, axis=axis)
        dq = elem_ee_quantize_groups(groups, self.sub_size, self.meta_bits,
                                     self.scale_rule)
        return from_groups(dq, view)
