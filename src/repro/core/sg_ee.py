"""Sg-EE: subgroup-level extra-exponent metadata (the SMX-like strategy).

Each subgroup carries 1-2 bits selecting a local exponent *decrement*
``d`` so its elements quantize against ``2^(E - d)`` — expanding effective
dynamic range downward for small subgroups. Under the fixed shared scale
the decrement is chosen directly from the subgroup maximum (largest ``d``
that does not clip); the adaptive mode searches ``d`` and the group bias
``b`` by MSE, mirroring the Sg-EM search.

The paper's DSE (Figs. 6-7) shows this strategy cannot fix the dominant
block-maximum error — it is implemented to reproduce exactly that result.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError
from ..formats.e8m0 import E8M0_BITS, clamp_exponent
from ..formats.grouping import from_groups, to_groups
from ..formats.registry import FP4_E2M1
from ..kernels.dispatch import use_reference
from ..kernels.search import (candidate_search, gather_candidate_codes,
                              hierarchical_select)
from ..mx.base import TensorFormat
from ..mx.scale_rules import shared_scale_exponent
from .sg_em import ADAPTIVE_BIASES

__all__ = ["SgEEEncoding", "sg_ee_encode", "sg_ee_decode",
           "sg_ee_quantize_groups", "SgEE"]


@dataclass
class SgEEEncoding:
    """Bit-level result of Sg-EE quantization."""

    sign_codes: np.ndarray
    mag_codes: np.ndarray
    scale_exponents: np.ndarray
    sg_decrements: np.ndarray     # (n, n_sub) exponent decrements
    sub_size: int
    meta_bits: int

    @property
    def group_size(self) -> int:
        """Elements per group."""
        return int(self.mag_codes.shape[1])

    @property
    def n_subgroups(self) -> int:
        """Subgroups per group."""
        return self.group_size // self.sub_size

    @property
    def meta_bits_per_group(self) -> int:
        """``meta_bits`` per subgroup."""
        return self.meta_bits * self.n_subgroups


def _fixed_decrements(subs: np.ndarray, scale: np.ndarray, d_max: int) -> np.ndarray:
    """Largest non-clipping decrement per subgroup under a fixed scale.

    All-zero subgroups take the maximum decrement (their elements encode
    to zero regardless, and the deepest local range is the natural limit
    of "does not clip").
    """
    sub_max = np.max(np.abs(subs), axis=2)
    head = np.full(sub_max.shape, float(d_max))
    nonzero = sub_max > 0
    limit = np.broadcast_to(FP4_E2M1.max_value * scale[:, None], sub_max.shape)
    head[nonzero] = np.floor(np.log2(limit[nonzero] / sub_max[nonzero]))
    return np.clip(head, 0, d_max).astype(np.int64)


def sg_ee_encode(groups: np.ndarray, sub_size: int = 8, meta_bits: int = 2,
                 adaptive: bool = False, scale_rule: str = "floor") -> SgEEEncoding:
    """Quantize ``(n_groups, k)`` data with per-subgroup exponent decrements."""
    groups = np.asarray(groups, dtype=np.float64)
    if groups.ndim != 2:
        raise ShapeError("sg_ee_encode expects a (n_groups, k) matrix")
    n, k = groups.shape
    if k % sub_size != 0:
        raise ShapeError(f"group size {k} not divisible by subgroup size {sub_size}")
    if meta_bits < 1:
        raise ShapeError("meta_bits must be >= 1")
    n_sub = k // sub_size
    subs = groups.reshape(n, n_sub, sub_size)
    d_max = (1 << meta_bits) - 1

    amax = np.max(np.abs(groups), axis=1)
    base_e = shared_scale_exponent(amax, FP4_E2M1, scale_rule)

    if not adaptive:
        exps = base_e
        scale = np.exp2(exps.astype(np.float64))
        decs = _fixed_decrements(subs, scale, d_max)
    elif not use_reference():
        # Batched code-space search over the full (bias x decrement) grid,
        # replacing 12 sequential quantization passes with one kernel call.
        exps_all = clamp_exponent(base_e[:, None] + np.asarray(ADAPTIVE_BIASES))
        scales_all = np.exp2(exps_all.astype(np.float64))
        divs = np.asarray([1 << d for d in range(d_max + 1)], dtype=np.float64)
        cand = (scales_all[:, :, None] / divs).reshape(n, -1)
        codes, err = candidate_search(subs, cand, FP4_E2M1.grid, FP4_E2M1.boundaries)
        outer, decs, _ = hierarchical_select(
            err, len(ADAPTIVE_BIASES), d_max + 1,
            fallback_outer=ADAPTIVE_BIASES.index(0))
        mag = gather_candidate_codes(codes, outer, decs, d_max + 1)
        sign = np.signbit(subs).astype(np.int64)
        return SgEEEncoding(sign_codes=sign.reshape(n, k),
                            mag_codes=mag.reshape(n, k),
                            scale_exponents=exps_all[np.arange(n), outer],
                            sg_decrements=decs, sub_size=sub_size,
                            meta_bits=meta_bits)
    else:
        best_err = np.full(n, np.inf)
        decs = np.zeros((n, n_sub), dtype=np.int64)
        exps = base_e.copy()
        for bias in ADAPTIVE_BIASES:
            cand_e = clamp_exponent(base_e + bias)
            scale = np.exp2(cand_e.astype(np.float64))
            sub_err = np.full((n, n_sub), np.inf)
            sub_dec = np.zeros((n, n_sub), dtype=np.int64)
            for d in range(d_max + 1):
                s = scale[:, None, None] / (1 << d)
                q = FP4_E2M1.quantize(subs / s)
                err = np.sum((q * s - subs) ** 2, axis=2)
                better = err < sub_err
                sub_err = np.where(better, err, sub_err)
                sub_dec = np.where(better, d, sub_dec)
            group_err = np.sum(sub_err, axis=1)
            improved = group_err < best_err
            best_err = np.where(improved, group_err, best_err)
            decs = np.where(improved[:, None], sub_dec, decs)
            exps = np.where(improved, cand_e, exps)
        scale = np.exp2(exps.astype(np.float64))

    local = scale[:, None] / np.exp2(decs.astype(np.float64))
    sign, mag = FP4_E2M1.encode((subs / local[:, :, None]).reshape(n, k))
    return SgEEEncoding(sign_codes=sign, mag_codes=mag, scale_exponents=exps,
                        sg_decrements=decs, sub_size=sub_size, meta_bits=meta_bits)


def sg_ee_decode(enc: SgEEEncoding) -> np.ndarray:
    """Dequantize an :class:`SgEEEncoding` back to a float matrix."""
    n, k = enc.mag_codes.shape
    values = FP4_E2M1.decode(enc.sign_codes, enc.mag_codes)
    scale = np.exp2(enc.scale_exponents.astype(np.float64))
    local = scale[:, None] / np.exp2(enc.sg_decrements.astype(np.float64))
    subs = values.reshape(n, enc.n_subgroups, enc.sub_size) * local[:, :, None]
    return subs.reshape(n, k)


def sg_ee_quantize_groups(groups: np.ndarray, sub_size: int = 8, meta_bits: int = 2,
                          adaptive: bool = False, scale_rule: str = "floor") -> np.ndarray:
    """Encode + decode in one step."""
    return sg_ee_decode(sg_ee_encode(groups, sub_size, meta_bits, adaptive, scale_rule))


class SgEE(TensorFormat):
    """Sg-EE as a standalone tensor format (DSE comparison arm)."""

    def __init__(self, group_size: int = 32, sub_size: int = 8, meta_bits: int = 2,
                 adaptive: bool = False, scale_rule: str = "floor") -> None:
        if group_size % sub_size != 0:
            raise ShapeError("group size must be a multiple of the subgroup size")
        self.group_size = int(group_size)
        self.sub_size = int(sub_size)
        self.meta_bits = int(meta_bits)
        self.adaptive = bool(adaptive)
        self.scale_rule = scale_rule
        mode = "adaptive" if adaptive else "fixed"
        self.name = f"sg-ee-{meta_bits}b-{mode}-g{group_size}s{sub_size}"

    @property
    def meta_bits_per_group(self) -> int:
        """``meta_bits`` per subgroup."""
        return self.meta_bits * (self.group_size // self.sub_size)

    @property
    def ebw(self) -> float:
        return (FP4_E2M1.total_bits
                + (self.meta_bits_per_group + E8M0_BITS) / self.group_size)

    def quantize(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        groups, view = to_groups(x, self.group_size, axis=axis)
        dq = sg_ee_quantize_groups(groups, self.sub_size, self.meta_bits,
                                   self.adaptive, self.scale_rule)
        return from_groups(dq, view)
