"""Sg-EM: subgroup-level extra-mantissa scale refinement (Sec. 4.4.2).

The offline weight quantization of M2XFP. Each subgroup carries a 2-bit
code ``c`` selecting a fractional scale multiplier {1.0, 1.25, 1.5, 1.75}
over the group's E8M0 shared scale. With the adaptive shared scale enabled,
a group-level exponent bias ``b in {-1, 0, +1}`` is co-optimized (Eq. 4)
via hierarchical MSE minimization: the best ``c`` is found per subgroup for
each candidate ``b``, then the ``b`` with the lowest total group error wins.
The bias needs no storage — it is absorbed into the stored E8M0 scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError
from ..formats.e8m0 import E8M0_BITS, clamp_exponent
from ..formats.grouping import from_groups, to_groups
from ..formats.registry import FP4_E2M1
from ..kernels.dispatch import use_reference
from ..kernels.search import (candidate_search, gather_candidate_codes,
                              hierarchical_select)
from ..mx.base import TensorFormat
from ..mx.scale_rules import shared_scale_exponent

__all__ = ["SgEMEncoding", "SG_EM_MULTIPLIERS", "sg_em_encode", "sg_em_decode",
           "sg_em_quantize_groups", "SgEM"]

#: Fractional scale multipliers selected by the 2-bit subgroup code.
SG_EM_MULTIPLIERS = (1.0, 1.25, 1.5, 1.75)

#: Group-level exponent bias candidates under the adaptive shared scale.
ADAPTIVE_BIASES = (-1, 0, 1)


@dataclass
class SgEMEncoding:
    """Bit-level result of Sg-EM quantization over ``(n_groups, k)`` data."""

    sign_codes: np.ndarray        # (n, k)
    mag_codes: np.ndarray         # (n, k) 3-bit FP4 magnitude codes
    scale_exponents: np.ndarray   # (n,) stored exponents (bias already folded in)
    sg_codes: np.ndarray          # (n, n_sub) 2-bit multiplier codes
    sub_size: int

    @property
    def group_size(self) -> int:
        """Elements per group."""
        return int(self.mag_codes.shape[1])

    @property
    def n_subgroups(self) -> int:
        """Subgroups per group."""
        return self.group_size // self.sub_size

    @property
    def meta_bits_per_group(self) -> int:
        """2 bits per subgroup."""
        return 2 * self.n_subgroups


def _subgroup_scales(exps: np.ndarray, sg_codes: np.ndarray) -> np.ndarray:
    """Effective per-subgroup scales ``2^E * (1 + c/4)``."""
    mult = 1.0 + sg_codes.astype(np.float64) / 4.0
    return np.exp2(exps.astype(np.float64))[:, None] * mult


def sg_em_encode(groups: np.ndarray, sub_size: int = 8, adaptive: bool = True,
                 scale_rule: str = "floor") -> SgEMEncoding:
    """Quantize ``(n_groups, k)`` weights with Sg-EM refinement.

    ``adaptive=False`` restricts the search to the fixed shared scale
    (bias 0), which is the "fixed shared scale" mode of Figs. 6-7.

    The default implementation runs the whole (bias x multiplier)
    candidate grid through one batched code-space pass
    (:mod:`repro.kernels.search`); ``REPRO_REFERENCE_KERNELS=1`` selects
    the original nested-loop search. Both emit identical encodings.
    """
    groups = np.asarray(groups, dtype=np.float64)
    if groups.ndim != 2:
        raise ShapeError("sg_em_encode expects a (n_groups, k) matrix")
    n, k = groups.shape
    if k % sub_size != 0:
        raise ShapeError(f"group size {k} not divisible by subgroup size {sub_size}")
    n_sub = k // sub_size
    subs = groups.reshape(n, n_sub, sub_size)

    amax = np.max(np.abs(groups), axis=1)
    base_e = shared_scale_exponent(amax, FP4_E2M1, scale_rule)
    biases = ADAPTIVE_BIASES if adaptive else (0,)

    if not use_reference():
        exps_all = clamp_exponent(base_e[:, None] + np.asarray(biases))
        scales_all = np.exp2(exps_all.astype(np.float64))
        mult = np.asarray(SG_EM_MULTIPLIERS)
        cand = (scales_all[:, :, None] * mult).reshape(n, -1)
        codes, err = candidate_search(subs, cand, FP4_E2M1.grid, FP4_E2M1.boundaries)
        # Groups whose errors all overflow keep the unbiased scale, like
        # the reference's never-taken strict-< update.
        outer, inner, _ = hierarchical_select(err, len(biases), len(mult),
                                              fallback_outer=biases.index(0))
        mag = gather_candidate_codes(codes, outer, inner, len(mult))
        sign = np.signbit(subs).astype(np.int64)
        return SgEMEncoding(sign_codes=sign.reshape(n, k),
                            mag_codes=mag.reshape(n, k),
                            scale_exponents=exps_all[np.arange(n), outer],
                            sg_codes=inner, sub_size=sub_size)

    best_err = np.full(n, np.inf)
    best_codes = np.zeros((n, n_sub), dtype=np.int64)
    best_e = base_e.copy()
    for bias in biases:
        exps = clamp_exponent(base_e + bias)
        scale = np.exp2(exps.astype(np.float64))
        sub_err = np.full((n, n_sub), np.inf)
        sub_code = np.zeros((n, n_sub), dtype=np.int64)
        for code, mult in enumerate(SG_EM_MULTIPLIERS):
            s = scale[:, None, None] * mult
            q = FP4_E2M1.quantize(subs / s)
            err = np.sum((q * s - subs) ** 2, axis=2)
            better = err < sub_err
            sub_err = np.where(better, err, sub_err)
            sub_code = np.where(better, code, sub_code)
        group_err = np.sum(sub_err, axis=1)
        improved = group_err < best_err
        best_err = np.where(improved, group_err, best_err)
        best_codes = np.where(improved[:, None], sub_code, best_codes)
        best_e = np.where(improved, exps, best_e)

    scales = _subgroup_scales(best_e, best_codes)
    q = FP4_E2M1.encode((subs / scales[:, :, None]).reshape(n, k))
    return SgEMEncoding(sign_codes=q[0], mag_codes=q[1], scale_exponents=best_e,
                        sg_codes=best_codes, sub_size=sub_size)


def sg_em_decode(enc: SgEMEncoding) -> np.ndarray:
    """Dequantize an :class:`SgEMEncoding` back to a float matrix."""
    n, k = enc.mag_codes.shape
    values = FP4_E2M1.decode(enc.sign_codes, enc.mag_codes)
    scales = _subgroup_scales(enc.scale_exponents, enc.sg_codes)
    subs = values.reshape(n, enc.n_subgroups, enc.sub_size) * scales[:, :, None]
    return subs.reshape(n, k)


def sg_em_quantize_groups(groups: np.ndarray, sub_size: int = 8,
                          adaptive: bool = True, scale_rule: str = "floor") -> np.ndarray:
    """Encode + decode in one step (the fake-quant transfer function)."""
    return sg_em_decode(sg_em_encode(groups, sub_size, adaptive, scale_rule))


class SgEM(TensorFormat):
    """Sg-EM as a standalone tensor format (weights side of M2XFP)."""

    def __init__(self, group_size: int = 32, sub_size: int = 8,
                 adaptive: bool = True, scale_rule: str = "floor") -> None:
        if group_size % sub_size != 0:
            raise ShapeError("group size must be a multiple of the subgroup size")
        self.group_size = int(group_size)
        self.sub_size = int(sub_size)
        self.adaptive = bool(adaptive)
        self.scale_rule = scale_rule
        mode = "adaptive" if adaptive else "fixed"
        self.name = f"sg-em-{mode}-g{group_size}s{sub_size}"

    @property
    def meta_bits_per_group(self) -> int:
        """2 bits per subgroup."""
        return 2 * (self.group_size // self.sub_size)

    @property
    def ebw(self) -> float:
        return (FP4_E2M1.total_bits
                + (self.meta_bits_per_group + E8M0_BITS) / self.group_size)

    def quantize(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        groups, view = to_groups(x, self.group_size, axis=axis)
        dq = sg_em_quantize_groups(groups, self.sub_size, self.adaptive, self.scale_rule)
        return from_groups(dq, view)
