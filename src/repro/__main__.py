"""Command-line entry point: ``python -m repro <command> ...``.

Thin shell over :mod:`repro.runner.cli` — ``run`` / ``list`` / ``sweep``
subcommands with ``--jobs`` sharding and the content-addressed result
cache, plus ``serve`` (the asyncio TCP quantization server in
:mod:`repro.server`, optionally sharded over ``--workers`` processes)
and ``gateway`` (the HTTP front-end in :mod:`repro.gateway`, routing
across ``--replicas`` consistent-hashed ``QuantServer`` replicas).
The pre-runner style (``python -m repro tbl3 [--full]``) still works as
an alias for ``run``.
"""

from __future__ import annotations

from .runner.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
