"""Command-line entry point: ``python -m repro <experiment-id> [--full]``.

Lists the available experiments when invoked without arguments.
"""

from __future__ import annotations

import sys

from .experiments import list_experiments, run_experiment


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    full = "--full" in args
    ids = [a for a in args if not a.startswith("-")]
    if not ids:
        print("usage: python -m repro <experiment-id> [--full]")
        print("available experiments:", ", ".join(list_experiments()))
        return 1
    for exp_id in ids:
        print(run_experiment(exp_id, fast=not full).render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
