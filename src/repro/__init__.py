"""repro: a full reproduction of "M2XFP: A Metadata-Augmented Microscaling
Data Format for Efficient Low-bit Quantization" (ASPLOS 2026).

Public API highlights:

* :mod:`repro.formats` — mini-float / integer scalar formats, E8M0 scales;
* :mod:`repro.mx` — MXFP4/6/8, NVFP4, SMX, MSFP and the scale rules;
* :mod:`repro.core` — the M2XFP contribution (Elem-EM, Sg-EM, hybrid format,
  bit-exact packing, EBW accounting);
* :mod:`repro.dse` — the encoding design space exploration;
* :mod:`repro.models` / :mod:`repro.eval` — the synthetic LLM substrate and
  the perplexity / task-accuracy harness;
* :mod:`repro.algos` — baseline algorithms (ANT, M-ANT, OliVe, MicroScopiQ,
  BlockDialect, QuaRot/DuQuant, MR-GPTQ);
* :mod:`repro.accel` — the accelerator model (bit-accurate PE, decode unit,
  quantization engine, cycle/energy/area models);
* :mod:`repro.experiments` — one runner per paper table/figure;
* :mod:`repro.kernels` — fast quantization kernels with bit-identical
  fast/reference dispatch;
* :mod:`repro.runner` — the sharded, cached experiment runner and the
  format catalog (``python -m repro``);
* :mod:`repro.codec` — packed-tensor codec: any catalog format serialized
  to true-bit-width bytes with bit-exact decode;
* :mod:`repro.serve` — the micro-batched quantization service.

See README.md for the architecture map and DESIGN.md for the rationale.
"""

from .core import M2NVFP4, M2XFP, ElemEM, SgEM, m2_nvfp4, m2xfp
from .errors import ConfigError, FormatError, ReproError, ShapeError
from .mx import MXFP4, NVFP4, SMX4, TensorFormat, mxfp4, nvfp4, smx4

__version__ = "1.0.0"

__all__ = [
    "M2XFP", "M2NVFP4", "ElemEM", "SgEM", "m2xfp", "m2_nvfp4",
    "MXFP4", "NVFP4", "SMX4", "mxfp4", "nvfp4", "smx4", "TensorFormat",
    "ReproError", "FormatError", "ShapeError", "ConfigError",
    "__version__",
]
