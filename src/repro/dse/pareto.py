"""Pareto-frontier extraction over (EBW, MSE) points."""

from __future__ import annotations

from .explorer import DSEPoint

__all__ = ["pareto_front", "dominates"]


def dominates(a: DSEPoint, b: DSEPoint) -> bool:
    """True if ``a`` is at least as good as ``b`` on both axes and better on one."""
    return (a.ebw <= b.ebw and a.mse <= b.mse
            and (a.ebw < b.ebw or a.mse < b.mse))


def pareto_front(points: list[DSEPoint]) -> list[DSEPoint]:
    """Non-dominated subset, sorted by EBW ascending."""
    front = [p for p in points
             if not any(dominates(q, p) for q in points if q is not p)]
    return sorted(front, key=lambda p: (p.ebw, p.mse))
