"""The EBW-guided design space exploration of Sec. 4 (Figs. 6-7)."""

from __future__ import annotations

from dataclasses import dataclass

from ..eval.mse import model_output_mse
from ..models.profiles import ProfileRuntime
from ..mx.base import TensorFormat
from ..mx.mxfp import MXFP4
from ..mx.nvfp import NVFP4
from .strategies import (PAPER_STRATEGIES, PAPER_SUBGROUP_SIZES, StrategyPoint,
                         build_strategy)

__all__ = ["DSEPoint", "sweep_strategy", "explore", "reference_points"]


@dataclass
class DSEPoint:
    """One (EBW, MSE) measurement in the design space."""

    label: str
    ebw: float
    mse: float
    strategy: str
    sub_size: int
    adaptive: bool


def _measure(runtime: ProfileRuntime, fmt: TensorFormat, max_seq: int) -> float:
    return model_output_mse(runtime, fmt, max_seq=max_seq)


def sweep_strategy(runtime: ProfileRuntime, kind: str, adaptive: bool = False,
                   sub_sizes: tuple[int, ...] = PAPER_SUBGROUP_SIZES,
                   max_seq: int = 4) -> list[DSEPoint]:
    """MSE-vs-EBW curve of one strategy across subgroup sizes."""
    points = []
    for s in sub_sizes:
        point = StrategyPoint(kind=kind, sub_size=s, adaptive=adaptive)
        fmt = build_strategy(point)
        points.append(DSEPoint(label=point.label, ebw=fmt.ebw,
                               mse=_measure(runtime, fmt, max_seq),
                               strategy=kind, sub_size=s, adaptive=adaptive))
    return points


def reference_points(runtime: ProfileRuntime, max_seq: int = 4) -> list[DSEPoint]:
    """The MXFP4 and NVFP4 anchors plotted in Figs. 6-7."""
    out = []
    for fmt, label in ((MXFP4(), "mxfp4"), (NVFP4(), "nvfp4")):
        out.append(DSEPoint(label=label, ebw=fmt.ebw,
                            mse=_measure(runtime, fmt, max_seq),
                            strategy=label, sub_size=0, adaptive=False))
    return out


def explore(runtime: ProfileRuntime, adaptive: bool,
            kinds: tuple[str, ...] | None = None,
            sub_sizes: tuple[int, ...] = PAPER_SUBGROUP_SIZES,
            max_seq: int = 4) -> dict[str, list[DSEPoint]]:
    """Full strategy sweep for one model profile (one panel of Fig. 6/7)."""
    kinds = kinds or PAPER_STRATEGIES
    curves = {kind: sweep_strategy(runtime, kind, adaptive, sub_sizes, max_seq)
              for kind in kinds}
    curves["references"] = reference_points(runtime, max_seq)
    return curves
