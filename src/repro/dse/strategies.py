"""The metadata strategy registry for the encoding design space (Sec. 4.1).

Four strategies x two shared-scale modes, each instantiable at any
subgroup size — the axes of Figs. 5-7. ``build_strategy`` returns a
:class:`~repro.mx.base.TensorFormat` so the explorer can drive any point
through the standard evaluation path.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.elem_em import ElemEM
from ..core.elem_ee import ElemEE
from ..core.sg_em import SgEM
from ..core.sg_ee import SgEE
from ..errors import ConfigError
from ..mx.base import TensorFormat

__all__ = ["StrategyPoint", "build_strategy", "PAPER_STRATEGIES",
           "PAPER_SUBGROUP_SIZES"]


@dataclass(frozen=True)
class StrategyPoint:
    """One (strategy, subgroup size, scale mode) point of the DSE."""

    kind: str           # elem-em-top1 | elem-em-top2 | elem-ee |
    #                     sg-em-1bit | sg-em-2bit | sg-ee-1bit | sg-ee-2bit
    sub_size: int
    adaptive: bool = False
    group_size: int = 32

    @property
    def label(self) -> str:
        """Display label matching the paper's legend."""
        suffix = "-adaptive" if self.adaptive else ""
        return f"{self.kind}{suffix}-s{self.sub_size}"


#: The strategies plotted in Figs. 6-7.
PAPER_STRATEGIES = ("elem-em-top1", "elem-em-top2", "sg-em-1bit",
                    "sg-em-2bit", "sg-ee-1bit", "sg-ee-2bit")

#: Subgroup sweep "32 -> 2" from the figures.
PAPER_SUBGROUP_SIZES = (32, 16, 8, 4, 2)


def build_strategy(point: StrategyPoint) -> TensorFormat:
    """Instantiate the tensor format for a DSE point."""
    g, s = point.group_size, point.sub_size
    if point.kind == "elem-em-top1":
        return ElemEM(g, s, top_k=1)
    if point.kind == "elem-em-top2":
        return ElemEM(g, s, top_k=min(2, s))
    if point.kind == "elem-ee":
        return ElemEE(g, s, meta_bits=2)
    if point.kind == "sg-em-1bit":
        # 1-bit refinement: multipliers {1.0, 1.5} via the restricted search.
        return _SgEM1Bit(g, s, adaptive=point.adaptive)
    if point.kind == "sg-em-2bit":
        return SgEM(g, s, adaptive=point.adaptive)
    if point.kind == "sg-ee-1bit":
        return SgEE(g, s, meta_bits=1, adaptive=point.adaptive)
    if point.kind == "sg-ee-2bit":
        return SgEE(g, s, meta_bits=2, adaptive=point.adaptive)
    raise ConfigError(f"unknown strategy kind {point.kind!r}")


class _SgEM1Bit(SgEM):
    """Sg-EM restricted to one metadata bit (multipliers 1.0 / 1.5)."""

    def __init__(self, group_size: int, sub_size: int, adaptive: bool) -> None:
        super().__init__(group_size, sub_size, adaptive=adaptive)
        self.name = self.name.replace("sg-em", "sg-em-1b")

    @property
    def meta_bits_per_group(self) -> int:
        return self.group_size // self.sub_size

    def quantize(self, x, axis: int = -1):
        # Reuse the 2-bit search but mask the odd multipliers by rounding
        # codes down to {0, 2} — equivalent to searching {1.0, 1.5}.
        from ..formats.grouping import from_groups, to_groups
        from .strategies import _sg_em_1bit_quantize  # self-import for clarity
        groups, view = to_groups(x, self.group_size, axis=axis)
        return from_groups(_sg_em_1bit_quantize(groups, self.sub_size,
                                                self.adaptive), view)


def _sg_em_1bit_quantize(groups, sub_size: int, adaptive: bool):
    """Sg-EM search over the 1-bit multiplier set {1.0, 1.5}."""
    import numpy as np

    from ..formats.e8m0 import clamp_exponent
    from ..formats.registry import FP4_E2M1
    from ..mx.scale_rules import shared_scale_exponent

    n, k = groups.shape
    n_sub = k // sub_size
    subs = groups.reshape(n, n_sub, sub_size)
    amax = np.max(np.abs(groups), axis=1)
    base_e = shared_scale_exponent(amax, FP4_E2M1, "floor")
    biases = (-1, 0, 1) if adaptive else (0,)
    best_err = np.full(n, np.inf)
    best_dq = np.zeros_like(subs)
    for bias in biases:
        scale = np.exp2(clamp_exponent(base_e + bias).astype(np.float64))
        sub_err = np.full((n, n_sub), np.inf)
        sub_dq = np.zeros_like(subs)
        for mult in (1.0, 1.5):
            s = scale[:, None, None] * mult
            q = FP4_E2M1.quantize(subs / s) * s
            err = np.sum((q - subs) ** 2, axis=2)
            better = err < sub_err
            sub_err = np.where(better, err, sub_err)
            sub_dq = np.where(better[:, :, None], q, sub_dq)
        group_err = np.sum(sub_err, axis=1)
        improved = group_err < best_err
        best_err = np.where(improved, group_err, best_err)
        best_dq = np.where(improved[:, None, None], sub_dq, best_dq)
    return best_dq.reshape(n, k)
