"""Encoding design space exploration (paper Sec. 4)."""

from .explorer import DSEPoint, explore, reference_points, sweep_strategy
from .pareto import dominates, pareto_front
from .strategies import (PAPER_STRATEGIES, PAPER_SUBGROUP_SIZES, StrategyPoint,
                         build_strategy)

__all__ = [
    "StrategyPoint", "build_strategy", "PAPER_STRATEGIES",
    "PAPER_SUBGROUP_SIZES", "DSEPoint", "sweep_strategy", "explore",
    "reference_points", "pareto_front", "dominates",
]
