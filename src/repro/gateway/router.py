"""Consistent-hash routing for the multi-replica gateway.

The cluster router's job is **cache affinity**: every upstream
``QuantServer`` replica owns a compiled-plan cache and a weight memo
keyed by the format's configuration fingerprint, so spreading one
format's traffic across replicas would rebuild the same plans N times
and memo-miss every repeated weight. :class:`HashRing` places each
format fingerprint on one replica (with a deterministic failover order
behind it), and keeps placements **stable under membership changes**:
when a replica joins or leaves, only the keys whose arc it owns move —
the classic consistent-hashing guarantee, property-tested in
``tests/test_gateway_router.py``.

Determinism is a hard requirement: the same catalog must land on the
same replicas in every process (the gateway restarts, the bench
harness re-derives placements, tests pin them), so ring points come
from ``hashlib.blake2b`` over the seed and the label — never from
``hash()``, whose randomization (``PYTHONHASHSEED``) would scramble
placement per process.

Example::

    from repro.gateway import HashRing

    ring = HashRing(["127.0.0.1:7431", "127.0.0.1:7432"], seed=0)
    ring.route("M2XFP(...)")        # -> the owning replica
    ring.preference("M2XFP(...)")   # -> [owner, first failover, ...]
"""

from __future__ import annotations

import bisect
import hashlib

from ..errors import ConfigError
from ..server.server import _env_int

__all__ = ["HashRing", "HASH_SEED_ENV", "DEFAULT_VNODES"]

#: Environment knob (documented in the README's env-knob table).
HASH_SEED_ENV = "REPRO_GATEWAY_HASH_SEED"

#: Virtual nodes per replica: enough for a balanced catalog split
#: without making membership changes expensive.
DEFAULT_VNODES = 64


def _u64(seed: int, label: str) -> int:
    """A stable 64-bit ring point for ``label`` under ``seed``."""
    digest = hashlib.blake2b(f"{seed}|{label}".encode("utf-8"),
                             digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Deterministic consistent-hash ring over named replicas.

    Parameters
    ----------
    replicas:
        Initial replica names (any non-empty strings; the gateway uses
        ``host:port``).
    seed:
        Ring salt — all placements change together under a new seed
        (``None`` reads ``REPRO_GATEWAY_HASH_SEED``, default 0).
    vnodes:
        Virtual nodes per replica; more points balance better and
        remap less, at ring-build cost.
    """

    def __init__(self, replicas=(), *, seed: int | None = None,
                 vnodes: int = DEFAULT_VNODES) -> None:
        self.seed = _env_int(HASH_SEED_ENV, 0) if seed is None else int(seed)
        if vnodes < 1:
            raise ConfigError("vnodes must be >= 1")
        self.vnodes = int(vnodes)
        self._members: set[str] = set()
        #: Sorted (point, replica) pairs; the replica in the tuple also
        #: tie-breaks equal points deterministically.
        self._points: list[tuple[int, str]] = []
        for name in replicas:
            self.add(name)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    @property
    def members(self) -> list[str]:
        """Current replica names, sorted."""
        return sorted(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, name: str) -> bool:
        return name in self._members

    def add(self, name: str) -> None:
        """Join a replica: only keys on its new arcs remap onto it."""
        if not name or not isinstance(name, str):
            raise ConfigError(f"replica name must be a non-empty string, "
                              f"got {name!r}")
        if name in self._members:
            raise ConfigError(f"replica {name!r} is already on the ring")
        self._members.add(name)
        for v in range(self.vnodes):
            bisect.insort(self._points, (_u64(self.seed, f"{name}#{v}"),
                                         name))

    def remove(self, name: str) -> None:
        """Leave: only keys the replica owned remap (to their successors)."""
        if name not in self._members:
            raise ConfigError(f"replica {name!r} is not on the ring")
        self._members.discard(name)
        self._points = [p for p in self._points if p[1] != name]

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def route(self, key: str) -> str:
        """The replica owning ``key`` (first point clockwise of its hash)."""
        if not self._points:
            raise ConfigError("cannot route on an empty ring")
        idx = bisect.bisect_right(self._points,
                                  (_u64(self.seed, key), "￿"))
        return self._points[idx % len(self._points)][1]

    def preference(self, key: str, limit: int | None = None) -> list[str]:
        """Distinct replicas in ring order from ``key`` — failover order.

        ``preference(key)[0] == route(key)``; the rest is the stable
        order a request falls over in when the owner is unreachable.
        """
        if not self._points:
            raise ConfigError("cannot route on an empty ring")
        bound = len(self._members) if limit is None else min(
            int(limit), len(self._members))
        start = bisect.bisect_right(self._points,
                                    (_u64(self.seed, key), "￿"))
        out: list[str] = []
        seen: set[str] = set()
        for i in range(len(self._points)):
            name = self._points[(start + i) % len(self._points)][1]
            if name not in seen:
                seen.add(name)
                out.append(name)
                if len(out) >= bound:
                    break
        return out
