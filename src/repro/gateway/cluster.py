"""Local multi-replica cluster: N independent ``QuantServer`` replicas.

``ReplicaCluster`` is the gateway's default upstream topology when no
``--upstream`` endpoints are given: N single-worker
:class:`~repro.server.WorkerPool` instances, each on its **own**
ephemeral port. Distinct ports (rather than one ``SO_REUSEPORT``
shard) is the point — the consistent-hash router needs addressable
replicas so a format's traffic pins to one plan cache / weight memo,
which kernel-level accept balancing would scramble. Each replica keeps
the pool's supervision for free: a crashed replica process restarts on
its own port and the gateway's probe loop picks it back up.

Env knob: ``REPRO_GATEWAY_REPLICAS`` (default 2) — consumed by
``python -m repro gateway`` and the bench harness.

Example::

    from repro.gateway import ReplicaCluster, GatewayThread

    with ReplicaCluster(replicas=2) as cluster:
        with GatewayThread(upstreams=cluster.endpoints, port=0) as gw:
            ...
"""

from __future__ import annotations

from ..errors import ConfigError
from ..server.server import _env_int
from ..server.workers import WorkerPool

__all__ = ["ReplicaCluster", "REPLICAS_ENV", "DEFAULT_REPLICAS"]

#: Environment knob (documented in the README's env-knob table).
REPLICAS_ENV = "REPRO_GATEWAY_REPLICAS"

DEFAULT_REPLICAS = 2


class ReplicaCluster:
    """N supervised single-process ``QuantServer`` replicas.

    Parameters
    ----------
    replicas:
        Replica count (``None`` reads ``REPRO_GATEWAY_REPLICAS``,
        default 2).
    host:
        Bind address shared by every replica (each gets its own
        ephemeral port).
    **server_kwargs:
        Forwarded to each replica's ``QuantServer`` (``max_inflight``,
        ``max_batch``, ...).
    """

    def __init__(self, replicas: int | None = None, *,
                 host: str = "127.0.0.1", restart: bool = True,
                 **server_kwargs) -> None:
        n = _env_int(REPLICAS_ENV, DEFAULT_REPLICAS) \
            if replicas is None else int(replicas)
        if n < 1:
            raise ConfigError("ReplicaCluster needs at least 1 replica")
        self.replicas = n
        self.host = host
        self._restart = restart
        self._server_kwargs = dict(server_kwargs)
        self.pools: list[WorkerPool] = []

    @property
    def endpoints(self) -> list[str]:
        """``host:port`` per started replica — feed to the gateway."""
        return [f"{pool.host}:{pool.port}" for pool in self.pools]

    def start(self) -> "ReplicaCluster":
        if self.pools:
            return self
        try:
            for _ in range(self.replicas):
                pool = WorkerPool(workers=1, host=self.host, port=0,
                                  restart=self._restart,
                                  **self._server_kwargs)
                pool.start()
                self.pools.append(pool)
        except BaseException:
            self.close()
            raise
        return self

    def check(self) -> None:
        """Surface any replica's crash-loop failure."""
        for pool in self.pools:
            pool.check()

    def drain(self) -> None:
        """SIGTERM every replica: graceful in-process drains."""
        for pool in self.pools:
            for proc in pool._procs:
                if proc is not None and proc.is_alive():
                    proc.terminate()

    def close(self) -> None:
        for pool in self.pools:
            pool.close()
        self.pools = []

    def __enter__(self) -> "ReplicaCluster":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
