"""The HTTP gateway: JSON/octet-stream front-end over N replicas.

``QuantGateway`` is the cluster tier above ``QuantServer``: an asyncio
HTTP/1.1 server exposing

* ``POST /v1/quantize`` — base64-JSON or raw-float64 body in, canonical
  JSON or packed ``PackedTensor`` bytes out (see ``gateway/http.py``);
* ``POST /v1/session/{open,append,read,close}`` — streaming KV-cache
  sessions (JSON bodies; see ``gateway/http.py``), routed by hashing
  the **session id** and *pinned*: session state lives on exactly one
  replica, so session ops never failover blindly — a dead home replica
  surfaces a typed error (410 ``SessionLost`` once its state is gone),
  and the client reopens + replays;
* ``GET /healthz`` — cluster health: ok / degraded / down, per-replica
  states (HTTP 503 only when **zero** replicas are routable);
* ``GET /metrics`` — Prometheus text exposition: per-arm request
  counts, rps and p50/p99 latency, BUSY/DRAINING/failover totals,
  per-replica liveness and upstream cache-hit counters.

Each request is routed by the consistent-hash ring
(:class:`~repro.gateway.HashRing`) on the **format fingerprint**, so
one format's traffic lands on one replica and that replica's compiled
plan cache and weight memo stay hot. The ring always contains every
configured replica — placement never flaps with health — and health
only *filters* the preference list at request time.

Failover rides the retry-idempotency contract (DESIGN.md §7.1): a
quantization request is a pure function of its payload + meta, so when
a replica dies mid-request (``ConnectionLost``), times out, or answers
``DRAINING``, the gateway blindly re-sends the same frame to the next
replica in the key's preference order and the client sees the same
bits it would have gotten from the first. Typed quantization errors
(``FormatError``, ``ConfigError``, ...) are deterministic — they would
fail identically everywhere — so they propagate immediately, never
failover. Replica health is fed by a background PING/HEALTH probe
loop; a replica failing ``eject_threshold`` consecutive probes is
ejected from routing until a probe succeeds again.

Env knobs: ``REPRO_GATEWAY_PORT`` (default 7420),
``REPRO_GATEWAY_HASH_SEED`` (ring salt, default 0),
``REPRO_GATEWAY_PROBE_INTERVAL_S`` (default 1.0) — plus
``REPRO_GATEWAY_REPLICAS`` consumed by the CLI / cluster launcher.

Example::

    from repro.gateway import GatewayThread
    from repro.server import ServerThread

    with ServerThread(port=0) as a, ServerThread(port=0) as b:
        with GatewayThread(upstreams=[f"127.0.0.1:{a.port}",
                                      f"127.0.0.1:{b.port}"],
                           port=0) as gw:
            ...  # POST http://127.0.0.1:{gw.port}/v1/quantize
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time

from ..errors import (ConfigError, ConnectionLost, RequestTimeout,
                      ServerBusy, ServerDraining)
from ..obs import Histogram
from ..obs import quantile as _obs_quantile
from ..server.client import AsyncQuantClient
from ..server.server import _env_float, _env_int
from . import http as ghttp
from .router import HashRing

__all__ = ["QuantGateway", "GatewayThread", "GatewayStats", "run_gateway",
           "render_metrics", "healthz_summary", "parse_endpoint",
           "GATEWAY_PORT_ENV", "PROBE_INTERVAL_ENV",
           "DEFAULT_GATEWAY_PORT", "DEFAULT_PROBE_INTERVAL_S"]

#: Environment knobs (documented in the README's env-knob table).
GATEWAY_PORT_ENV = "REPRO_GATEWAY_PORT"
PROBE_INTERVAL_ENV = "REPRO_GATEWAY_PROBE_INTERVAL_S"

DEFAULT_GATEWAY_PORT = 7420
DEFAULT_PROBE_INTERVAL_S = 1.0
DEFAULT_MAX_BODY_BYTES = 1 << 26  # 64 MiB of float64 payload
DEFAULT_EJECT_THRESHOLD = 3
DEFAULT_FAILOVER_PASSES = 2
DEFAULT_LATENCY_WINDOW = 4096

#: Transport-level upstream failures: safe to failover blindly because
#: requests are idempotent (DESIGN.md §7.1). Typed quantization errors
#: are deliberately absent — they are deterministic, not transient.
_FAILOVER_ERRORS = (ConnectionLost, RequestTimeout, ConnectionError,
                    OSError)


def parse_endpoint(spec) -> tuple[str, int]:
    """``"host:port"`` / ``(host, port)`` -> ``(host, port)``."""
    if isinstance(spec, (tuple, list)) and len(spec) == 2:
        return str(spec[0]), int(spec[1])
    if isinstance(spec, str) and ":" in spec:
        host, _, port = spec.rpartition(":")
        try:
            return host, int(port)
        except ValueError:
            pass
    raise ConfigError(f"upstream must be 'host:port' or (host, port), "
                      f"got {spec!r}")


def _quantile(sorted_values, q: float) -> float:
    """Nearest-rank quantile of an already-sorted sequence.

    Delegates to :func:`repro.obs.quantile` — gateway p50/p99 and the
    server-side histograms share one percentile code path by contract
    (DESIGN.md §12)."""
    return _obs_quantile(sorted_values, q)


class GatewayStats:
    """Counters + bounded latency windows behind ``/metrics``.

    Thread-safe (the bench harness snapshots from other threads while
    the gateway loop records). Latencies live in
    :class:`repro.obs.Histogram` reservoirs — explicitly bounded at
    ``window`` samples per arm, so p50/p99 are over recent traffic,
    while counts and rps are lifetime totals. The histograms are
    *ungated* (``REPRO_NO_METRICS`` does not blind them): the gateway's
    own accounting feeds routing and ops decisions, not just
    exposition.
    """

    def __init__(self, window: int = DEFAULT_LATENCY_WINDOW) -> None:
        self._lock = threading.Lock()
        self._window = int(window)
        self._started = time.monotonic()
        self._http_status: dict[str, int] = {}
        self._arms: dict[str, dict] = {}
        self._upstream = {"busy": 0, "draining": 0, "failovers": 0,
                          "no_replica": 0, "probe_failures": 0}
        self._replica_requests: dict[str, int] = {}

    def record_request(self, arm: str, seconds: float,
                       replica: str) -> None:
        with self._lock:
            slot = self._arms.get(arm)
            if slot is None:
                slot = {"count": 0,
                        "latencies": Histogram(self._window, gated=False)}
                self._arms[arm] = slot
            slot["count"] += 1
            slot["latencies"].observe(float(seconds))
            self._replica_requests[replica] = \
                self._replica_requests.get(replica, 0) + 1

    def record_status(self, status: int) -> None:
        with self._lock:
            key = str(int(status))
            self._http_status[key] = self._http_status.get(key, 0) + 1

    def bump(self, key: str, n: int = 1) -> None:
        with self._lock:
            self._upstream[key] = self._upstream.get(key, 0) + n

    def snapshot(self, replicas: dict | None = None) -> dict:
        """A JSON-safe snapshot; feed to :func:`render_metrics`."""
        with self._lock:
            elapsed = max(time.monotonic() - self._started, 1e-9)
            arms = {}
            for arm, slot in sorted(self._arms.items()):
                lat = slot["latencies"].values()  # already ascending
                arms[arm] = {
                    "requests": slot["count"],
                    "rps": round(slot["count"] / elapsed, 3),
                    "p50_ms": round(_quantile(lat, 0.50) * 1e3, 3),
                    "p99_ms": round(_quantile(lat, 0.99) * 1e3, 3),
                }
            return {
                "uptime_s": round(elapsed, 3),
                "requests_total": sum(s["count"]
                                      for s in self._arms.values()),
                "http_status": dict(sorted(self._http_status.items())),
                "arms": arms,
                "upstream": dict(self._upstream),
                "replica_requests": dict(
                    sorted(self._replica_requests.items())),
                "replicas": dict(replicas or {}),
            }


# ----------------------------------------------------------------------
# Pure renderers (golden-pinned from fixed snapshots)
# ----------------------------------------------------------------------
def _esc(label: str) -> str:
    return label.replace("\\", "\\\\").replace('"', '\\"')


def render_metrics(snapshot: dict) -> str:
    """Prometheus text exposition for a :meth:`GatewayStats.snapshot`.

    Pure and deterministic (sorted label sets, fixed metric order) so
    the golden fixture pins the rendering of a synthetic snapshot.
    """
    lines: list[str] = []

    def metric(name: str, kind: str, help_text: str, samples) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        lines.extend(samples)

    metric("repro_gateway_uptime_seconds", "gauge",
           "Seconds since the gateway started.",
           [f"repro_gateway_uptime_seconds {snapshot['uptime_s']:g}"])
    metric("repro_gateway_requests_total", "counter",
           "Quantize requests answered 200, by arm (format:op:packing).",
           [f'repro_gateway_requests_total{{arm="{_esc(a)}"}} '
            f'{s["requests"]}'
            for a, s in sorted(snapshot["arms"].items())])
    metric("repro_gateway_request_rps", "gauge",
           "Lifetime requests/s, by arm.",
           [f'repro_gateway_request_rps{{arm="{_esc(a)}"}} {s["rps"]:g}'
            for a, s in sorted(snapshot["arms"].items())])
    q_samples = []
    for a, s in sorted(snapshot["arms"].items()):
        q_samples.append(f'repro_gateway_request_latency_ms'
                         f'{{arm="{_esc(a)}",quantile="0.5"}} '
                         f'{s["p50_ms"]:g}')
        q_samples.append(f'repro_gateway_request_latency_ms'
                         f'{{arm="{_esc(a)}",quantile="0.99"}} '
                         f'{s["p99_ms"]:g}')
    metric("repro_gateway_request_latency_ms", "gauge",
           "Recent-window request latency quantiles (ms), by arm.",
           q_samples)
    metric("repro_gateway_http_responses_total", "counter",
           "HTTP responses sent, by status code.",
           [f'repro_gateway_http_responses_total{{status="{code}"}} {n}'
            for code, n in sorted(snapshot["http_status"].items())])
    metric("repro_gateway_upstream_events_total", "counter",
           "Upstream routing events: busy, draining, failovers, "
           "no_replica, probe_failures, session_pinned_failures.",
           [f'repro_gateway_upstream_events_total{{event="{k}"}} {v}'
            for k, v in sorted(snapshot["upstream"].items())])
    up_samples, req_samples, hit_samples = [], [], []
    for name, info in sorted(snapshot["replicas"].items()):
        up = 1 if info.get("state") == "up" else 0
        up_samples.append(f'repro_gateway_replica_up'
                          f'{{replica="{_esc(name)}"}} {up}')
        req_samples.append(
            f'repro_gateway_replica_requests_total'
            f'{{replica="{_esc(name)}"}} '
            f'{snapshot["replica_requests"].get(name, 0)}')
        services = (info.get("health") or {}).get("services") or {}
        hit_samples.append(
            f'repro_gateway_replica_weight_cache_hits_total'
            f'{{replica="{_esc(name)}"}} '
            f'{services.get("weight_cache_hits", 0)}')
    metric("repro_gateway_replica_up", "gauge",
           "Replica liveness from the probe loop (1 = up).", up_samples)
    metric("repro_gateway_replica_requests_total", "counter",
           "Quantize requests answered per upstream replica.",
           req_samples)
    metric("repro_gateway_replica_weight_cache_hits_total", "counter",
           "Upstream weight-memo hits, from the replica's last HEALTH "
           "frame.", hit_samples)
    # Federated server-side telemetry: every sample below reads the
    # metrics-registry snapshot that rides each replica's HEALTH meta,
    # so /metrics on the gateway is a one-stop view of the cluster.
    plan_samples, busy_samples, sess_samples = [], [], []
    arm_req_samples, arm_batch_samples, arm_p99_samples = [], [], []
    for name, info in sorted(snapshot["replicas"].items()):
        health = info.get("health") or {}
        rmetrics = health.get("metrics") or {}
        label = f'replica="{_esc(name)}"'
        plan = rmetrics.get("plan_cache") or {}
        lookups = plan.get("hits", 0) + plan.get("misses", 0)
        rate = plan.get("hits", 0) / lookups if lookups else 0.0
        plan_samples.append(
            f'repro_gateway_replica_plan_cache_hit_rate{{{label}}} '
            f'{rate:g}')
        busy_samples.append(
            f'repro_gateway_replica_busy_total{{{label}}} '
            f'{(health.get("stats") or {}).get("busy_rejections", 0)}')
        sess_samples.append(
            f'repro_gateway_replica_sessions_open{{{label}}} '
            f'{(health.get("sessions") or {}).get("open", 0)}')
        for key in sorted(rmetrics):
            if not key.startswith("serve.") or key.endswith(".latency"):
                continue
            svc = rmetrics[key]
            if not isinstance(svc, dict):
                continue
            arm_label = f'{label},arm="{_esc(key[len("serve."):])}"'
            requests = svc.get("requests", 0)
            batches = svc.get("batches", 0)
            batched = requests - svc.get("weight_cache_hits", 0)
            lat = rmetrics.get(f"{key}.latency") or {}
            arm_req_samples.append(
                f'repro_gateway_replica_arm_requests_total'
                f'{{{arm_label}}} {requests}')
            arm_batch_samples.append(
                f'repro_gateway_replica_arm_batch_mean{{{arm_label}}} '
                f'{(batched / batches if batches else 0.0):g}')
            arm_p99_samples.append(
                f'repro_gateway_replica_arm_p99_ms{{{arm_label}}} '
                f'{round(lat.get("p99", 0.0) * 1e3, 3):g}')
    metric("repro_gateway_replica_plan_cache_hit_rate", "gauge",
           "Compiled-plan cache hit rate on the replica "
           "(hits / lookups; 0 before any lookup).", plan_samples)
    metric("repro_gateway_replica_busy_total", "counter",
           "BUSY admission rejections on the replica.", busy_samples)
    metric("repro_gateway_replica_sessions_open", "gauge",
           "Open KV-cache sessions on the replica.", sess_samples)
    metric("repro_gateway_replica_arm_requests_total", "counter",
           "Server-side requests per (replica, service arm).",
           arm_req_samples)
    metric("repro_gateway_replica_arm_batch_mean", "gauge",
           "Mean micro-batch size per (replica, service arm): "
           "non-memoized requests / batches.", arm_batch_samples)
    metric("repro_gateway_replica_arm_p99_ms", "gauge",
           "Server-side submit->finish p99 (ms) per (replica, service "
           "arm), from the replica's latency histogram.",
           arm_p99_samples)
    return "\n".join(lines) + "\n"


def healthz_summary(snapshot: dict, draining: bool = False) \
        -> tuple[int, dict]:
    """``(http_status, body)`` for ``/healthz`` — pure, golden-pinned.

    ``ok`` needs every replica up; anything less (a down, draining or
    ejected replica) is ``degraded`` — the honest middle — and zero
    routable replicas is ``down`` with HTTP 503. A draining gateway
    reports ``draining`` but keeps answering (load balancers need the
    body to take it out of rotation gracefully).
    """
    replicas = snapshot.get("replicas", {})
    routable = [n for n, info in replicas.items()
                if info.get("state") in ("up", "unknown")
                and not info.get("ejected")]
    if draining:
        status = "draining"
    elif replicas and all(info.get("state") == "up"
                          and not info.get("ejected")
                          for info in replicas.values()):
        status = "ok"
    elif routable:
        status = "degraded"
    else:
        status = "down"
    body = {
        "status": status,
        "draining": bool(draining),
        "replicas": {
            name: {"state": info.get("state", "unknown"),
                   "ejected": bool(info.get("ejected")),
                   "consecutive_failures":
                       int(info.get("consecutive_failures", 0))}
            for name, info in sorted(replicas.items())
        },
        "routable": len(routable),
        "requests_total": snapshot.get("requests_total", 0),
    }
    return (503 if status == "down" else 200), body


# ----------------------------------------------------------------------
# Replica handle
# ----------------------------------------------------------------------
class _Replica:
    """One upstream ``QuantServer``: lazy client + probed health."""

    def __init__(self, host: str, port: int, *,
                 timeout: float | None) -> None:
        self.host = host
        self.port = port
        self.name = f"{host}:{port}"
        self.timeout = timeout
        self.state = "unknown"          # unknown | up | down | draining
        self.consecutive_failures = 0
        self.eject_threshold = DEFAULT_EJECT_THRESHOLD
        self.last_health: dict | None = None
        self._client: AsyncQuantClient | None = None
        self._lock: asyncio.Lock | None = None

    @property
    def ejected(self) -> bool:
        return self.consecutive_failures >= self.eject_threshold

    @property
    def routable(self) -> bool:
        return self.state in ("up", "unknown") and not self.ejected

    def info(self) -> dict:
        return {"state": self.state, "ejected": self.ejected,
                "consecutive_failures": self.consecutive_failures,
                "requests_health": None,
                "health": self.last_health}

    async def client(self) -> AsyncQuantClient:
        if self._lock is None:
            self._lock = asyncio.Lock()
        async with self._lock:
            if self._client is None:
                cli = AsyncQuantClient(self.host, self.port,
                                       timeout=self.timeout, retries=0)
                await cli.connect()
                self._client = cli
            return self._client

    async def mark_failed(self) -> None:
        """A transport failure: drop the connection, count the strike."""
        self.state = "down"
        self.consecutive_failures += 1
        await self._drop_client()

    def mark_healthy(self, health: dict) -> None:
        self.last_health = health
        self.consecutive_failures = 0
        self.state = "draining" if health.get("draining") else "up"

    async def _drop_client(self) -> None:
        cli, self._client = self._client, None
        if cli is not None:
            try:
                await cli.close()
            except Exception:
                pass

    async def close(self) -> None:
        await self._drop_client()


# ----------------------------------------------------------------------
# The gateway
# ----------------------------------------------------------------------
class QuantGateway:
    """HTTP front-end routing quantize requests across replicas.

    Parameters
    ----------
    upstreams:
        Replica endpoints (``"host:port"`` strings or tuples). The ring
        contains all of them permanently; health filters at request
        time.
    host / port:
        HTTP bind address; ``port=None`` reads ``REPRO_GATEWAY_PORT``
        (default 7420), ``0`` binds ephemeral.
    hash_seed / vnodes:
        Forwarded to :class:`HashRing` (seed ``None`` reads
        ``REPRO_GATEWAY_HASH_SEED``).
    probe_interval_s:
        PING/HEALTH probe period (``None`` reads
        ``REPRO_GATEWAY_PROBE_INTERVAL_S``, default 1.0).
    upstream_timeout_s:
        Deadline for each upstream attempt (connect + round trip).
    eject_threshold:
        Consecutive probe/request failures before a replica stops
        receiving traffic (a later successful probe reinstates it).
    failover_passes:
        How many times the full preference order is walked before the
        last upstream error is surfaced — pass 2 retries replicas that
        may have restarted meanwhile.
    max_body_bytes / read_timeout_s:
        HTTP request admission bounds (413 / slow-loris drop).
    drain_timeout_s:
        Bound on waiting for in-flight requests during a drain.
    """

    def __init__(self, upstreams, *, host: str = "127.0.0.1",
                 port: int | None = None, hash_seed: int | None = None,
                 vnodes: int | None = None,
                 probe_interval_s: float | None = None,
                 upstream_timeout_s: float = 30.0,
                 eject_threshold: int = DEFAULT_EJECT_THRESHOLD,
                 failover_passes: int = DEFAULT_FAILOVER_PASSES,
                 max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
                 read_timeout_s: float = 60.0,
                 drain_timeout_s: float = 30.0) -> None:
        endpoints = [parse_endpoint(u) for u in upstreams]
        if not endpoints:
            raise ConfigError("gateway needs at least one upstream replica")
        if len({f"{h}:{p}" for h, p in endpoints}) != len(endpoints):
            raise ConfigError(f"duplicate upstream endpoints: {upstreams}")
        self.host = host
        self.port = _env_int(GATEWAY_PORT_ENV, DEFAULT_GATEWAY_PORT) \
            if port is None else int(port)
        self.probe_interval_s = _env_float(PROBE_INTERVAL_ENV,
                                           DEFAULT_PROBE_INTERVAL_S) \
            if probe_interval_s is None else float(probe_interval_s)
        if failover_passes < 1:
            raise ConfigError("failover_passes must be >= 1")
        if eject_threshold < 1:
            raise ConfigError("eject_threshold must be >= 1")
        self.upstream_timeout_s = float(upstream_timeout_s)
        self.failover_passes = int(failover_passes)
        self.max_body_bytes = int(max_body_bytes)
        self.read_timeout_s = float(read_timeout_s)
        self.drain_timeout_s = float(drain_timeout_s)
        self.replicas: dict[str, _Replica] = {}
        for h, p in endpoints:
            rep = _Replica(h, p, timeout=self.upstream_timeout_s)
            rep.eject_threshold = int(eject_threshold)
            self.replicas[rep.name] = rep
        ring_kwargs = {} if vnodes is None else {"vnodes": vnodes}
        self.ring = HashRing(sorted(self.replicas), seed=hash_seed,
                             **ring_kwargs)
        self.stats = GatewayStats()
        self._fingerprints: dict[str, str] = {}
        self._request_ids = itertools.count(1)
        self._inflight = 0
        self._draining = False
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._drained: asyncio.Event | None = None
        self._probe_task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # Lifecycle (mirrors QuantServer)
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._drained = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection, host=self.host, port=self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        # One synchronous probe pass before we are "ready", so the
        # first scrape/healthz already reflects real replica states.
        await self._probe_once()
        self._probe_task = asyncio.create_task(self._probe_loop())

    async def run(self) -> None:
        if self._server is None:
            await self.start()
        try:
            await self._stop.wait()
        finally:
            if self._probe_task is not None:
                self._probe_task.cancel()
                try:
                    await self._probe_task
                except (asyncio.CancelledError, Exception):
                    pass
                self._probe_task = None
            self._server.close()
            await self._server.wait_closed()
            for rep in self.replicas.values():
                await rep.close()

    def request_stop(self) -> None:
        """Exit :meth:`run`; safe from any thread."""
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass

    def request_drain(self) -> None:
        """Graceful drain; safe from any thread / signal handler."""
        if self._loop is not None:
            try:
                self._loop.call_soon_threadsafe(self._start_drain)
            except RuntimeError:
                pass

    @property
    def draining(self) -> bool:
        return self._draining

    def _start_drain(self) -> None:
        if self._draining or self._loop is None:
            return
        self._draining = True
        self._loop.create_task(self._drain())

    async def _drain(self) -> None:
        if self._server is not None:
            self._server.close()
        if self._inflight == 0:
            self._drained.set()
        try:
            await asyncio.wait_for(self._drained.wait(),
                                   self.drain_timeout_s)
        except asyncio.TimeoutError:
            pass
        self._stop.set()

    # ------------------------------------------------------------------
    # Health probing
    # ------------------------------------------------------------------
    async def _probe_one(self, rep: _Replica) -> None:
        try:
            cli = await rep.client()
            health = await cli.ping(deadline_s=self.upstream_timeout_s)
        except Exception:
            self.stats.bump("probe_failures")
            await rep.mark_failed()
        else:
            rep.mark_healthy(health)

    async def _probe_once(self) -> None:
        await asyncio.gather(*(self._probe_one(rep)
                               for rep in self.replicas.values()))

    async def _probe_loop(self) -> None:
        while True:
            await asyncio.sleep(self.probe_interval_s)
            await self._probe_once()

    def replica_info(self) -> dict:
        return {name: rep.info() for name, rep in
                sorted(self.replicas.items())}

    def snapshot(self) -> dict:
        """Stats + replica states (what ``/metrics`` renders)."""
        return self.stats.snapshot(self.replica_info())

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def fingerprint(self, fmt: str) -> str:
        """The route key: ``repr(make_format(fmt))`` (cached).

        Raises the catalog's own :class:`ConfigError` for unknown
        names, so bad formats fail at the gateway (-> 400) without
        burning an upstream round trip.
        """
        fp = self._fingerprints.get(fmt)
        if fp is None:
            from ..runner.formats import make_format
            fp = repr(make_format(fmt))
            self._fingerprints[fmt] = fp
        return fp

    def _candidates(self, fingerprint: str) -> list[_Replica]:
        """Preference-ordered replicas, healthiest filter that is
        non-empty: routable > non-ejected > everyone (last resort)."""
        order = [self.replicas[name]
                 for name in self.ring.preference(fingerprint)]
        for predicate in (lambda r: r.routable,
                          lambda r: not r.ejected,
                          lambda r: True):
            picked = [r for r in order if predicate(r)]
            if picked:
                return picked
        return order

    async def _quantize_upstream(self, x, *, fmt: str, op: str,
                                 dispatch: str, packed: bool):
        """Route + failover one quantize call; returns (result, replica).

        Walks the preference order ``failover_passes`` times. Transport
        failures and DRAINING answers move on to the next replica
        (idempotency makes the blind re-send bit-safe); BUSY moves on
        without a health strike (the replica is alive, just loaded);
        typed quantization errors raise immediately.
        """
        fingerprint = self.fingerprint(fmt)
        last_error: BaseException | None = None
        for _ in range(self.failover_passes):
            for rep in self._candidates(fingerprint):
                try:
                    cli = await rep.client()
                    result = await cli.quantize(
                        x, fmt=fmt, op=op, dispatch=dispatch,
                        packed=packed, fingerprint=fingerprint,
                        deadline_s=self.upstream_timeout_s, retries=0)
                except ServerDraining as exc:
                    self.stats.bump("draining")
                    rep.state = "draining"
                    last_error = exc
                except ServerBusy as exc:
                    self.stats.bump("busy")
                    last_error = exc
                except _FAILOVER_ERRORS as exc:
                    self.stats.bump("failovers")
                    await rep.mark_failed()
                    last_error = exc
                else:
                    if rep.state == "down":
                        rep.state = "up"  # answered: alive again
                    return result, rep
        self.stats.bump("no_replica")
        raise last_error if last_error is not None else ServerBusy(
            "no upstream replica available")

    def _session_replica(self, session_id: str) -> _Replica:
        """The pinned home replica for a session id.

        First *routable* replica in the ring's preference order for the
        id — deterministic while health holds, and the same walk every
        client of this gateway sees, so all ops for one session land on
        one replica. If nothing is routable the top preference is
        returned anyway and the transport error surfaces typed.
        """
        order = [self.replicas[name]
                 for name in self.ring.preference(session_id)]
        for rep in order:
            if rep.routable:
                return rep
        return order[0]

    async def _session_upstream(self, session_id: str, call):
        """One *pinned* session op; returns ``(result, replica)``.

        Deliberately no failover walk: session state lives only on the
        home replica, so a blind re-send elsewhere could not resume the
        stream — it would either invent fresh state (open) or raise
        ``SessionLost`` against a replica that never held the session.
        Transport failures strike the replica's health and surface to
        the client, whose own retry loop re-sends with the same seq —
        the seq-dedup contract makes that bit-safe.
        """
        rep = self._session_replica(session_id)
        try:
            cli = await rep.client()
            result = await call(cli)
        except ServerDraining:
            self.stats.bump("draining")
            rep.state = "draining"
            raise
        except ServerBusy:
            self.stats.bump("busy")
            raise
        except _FAILOVER_ERRORS:
            self.stats.bump("session_pinned_failures")
            await rep.mark_failed()
            raise
        else:
            if rep.state == "down":
                rep.state = "up"  # answered: alive again
            return result, rep

    # ------------------------------------------------------------------
    # HTTP handling
    # ------------------------------------------------------------------
    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await ghttp.read_http_request(
                        reader, self.max_body_bytes,
                        self.read_timeout_s or None)
                except ghttp._HttpError as exc:
                    await self._write(writer, ghttp.error_response(
                        exc, keep_alive=False))
                    break
                except Exception:
                    break  # unframeable / timed-out stream: just close
                if request is None:
                    break
                response = await self._handle(request)
                # Request-id echo: the caller's X-Request-Id (or a
                # gateway-minted one) comes back on every response, so
                # a trace line on any replica can be joined to the HTTP
                # round trip that caused it. Applied here — not in the
                # pure response builders — so the golden response bytes
                # stay header-free and pinned.
                rid = request.headers.get("x-request-id") \
                    or f"gw-{next(self._request_ids)}"
                response.extra_headers = (
                    *tuple(response.extra_headers),
                    ("x-request-id", rid))
                response.keep_alive = response.keep_alive \
                    and request.keep_alive
                await self._write(writer, response)
                if not response.keep_alive:
                    break
        except (ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _write(self, writer: asyncio.StreamWriter,
                     response: ghttp.HttpResponse) -> None:
        self.stats.record_status(response.status)
        writer.write(response.to_bytes())
        await writer.drain()

    async def _handle(self, request: ghttp.HttpRequest) \
            -> ghttp.HttpResponse:
        path, method = request.path, request.method
        if path == "/healthz":
            if method != "GET":
                return ghttp.error_response(ghttp._HttpError(
                    405, f"{method} not allowed on {path}; use GET"))
            code, body = healthz_summary(
                {"replicas": self.replica_info(),
                 "requests_total":
                     self.stats.snapshot()["requests_total"]},
                self._draining)
            return ghttp.json_response(body, status=code)
        if path == "/metrics":
            if method != "GET":
                return ghttp.error_response(ghttp._HttpError(
                    405, f"{method} not allowed on {path}; use GET"))
            return ghttp.text_response(render_metrics(self.snapshot()))
        if path == "/v1/quantize":
            if method != "POST":
                return ghttp.error_response(ghttp._HttpError(
                    405, f"{method} not allowed on {path}; use POST"))
            return await self._handle_quantize(request)
        if path.startswith("/v1/session/"):
            action = path[len("/v1/session/"):]
            if action not in ("open", "append", "read", "close"):
                return ghttp.error_response(ghttp._HttpError(
                    404, f"no route for {path}; session actions are "
                         f"open, append, read, close"))
            if method != "POST":
                return ghttp.error_response(ghttp._HttpError(
                    405, f"{method} not allowed on {path}; use POST"))
            return await self._handle_session(request, action)
        return ghttp.error_response(ghttp._HttpError(
            404, f"no route for {path}; try /v1/quantize, "
                 f"/v1/session/*, /healthz, /metrics"))

    async def _handle_quantize(self, request: ghttp.HttpRequest) \
            -> ghttp.HttpResponse:
        if self._draining:
            return ghttp.error_response(ServerDraining(
                "gateway is draining for shutdown; retry elsewhere"))
        self._inflight += 1
        t0 = time.monotonic()
        try:
            x, fmt, op, dispatch, packed = \
                ghttp.parse_quantize_request(request)
            fingerprint = self.fingerprint(fmt)
            result, rep = await self._quantize_upstream(
                x, fmt=fmt, op=op, dispatch=dispatch, packed=packed)
        except Exception as exc:
            return ghttp.error_response(exc)
        else:
            arm = f"{fmt}:{op}:{'packed' if packed else 'unpacked'}"
            self.stats.record_request(arm, time.monotonic() - t0,
                                      rep.name)
            return ghttp.quantize_response(result, fmt=fmt, op=op,
                                           packed=packed,
                                           fingerprint=fingerprint)
        finally:
            self._inflight -= 1
            if self._draining and self._inflight == 0 and \
                    self._drained is not None:
                self._drained.set()

    async def _handle_session(self, request: ghttp.HttpRequest,
                              action: str) -> ghttp.HttpResponse:
        if self._draining:
            return ghttp.error_response(ServerDraining(
                "gateway is draining for shutdown; no new session work"))
        self._inflight += 1
        t0 = time.monotonic()
        deadline = self.upstream_timeout_s
        try:
            if action == "open":
                cfg = ghttp.parse_session_open(request)
                sid = cfg["session_id"]
                ack, rep = await self._session_upstream(
                    sid, lambda cli: cli.session_open(
                        deadline_s=deadline, retries=0, **cfg))
                response = ghttp.session_ack_response(ack)
            elif action == "append":
                sid, layer, seq, k, v = \
                    ghttp.parse_session_append(request)
                ack, rep = await self._session_upstream(
                    sid, lambda cli: cli.session_append(
                        sid, layer, k, v, seq=seq,
                        deadline_s=deadline, retries=0))
                response = ghttp.session_ack_response(ack)
            elif action == "read":
                sid, layer = ghttp.parse_session_read(request)
                (k, v), rep = await self._session_upstream(
                    sid, lambda cli: cli.session_read(
                        sid, layer, deadline_s=deadline, retries=0))
                response = ghttp.session_kv_response(
                    k, v, session_id=sid, layer=layer)
            else:  # close
                sid = ghttp.parse_session_close(request)
                ack, rep = await self._session_upstream(
                    sid, lambda cli: cli.session_close(
                        sid, deadline_s=deadline, retries=0))
                response = ghttp.session_ack_response(ack)
        except Exception as exc:
            return ghttp.error_response(exc)
        else:
            self.stats.record_request(f"session:{action}",
                                      time.monotonic() - t0, rep.name)
            return response
        finally:
            self._inflight -= 1
            if self._draining and self._inflight == 0 and \
                    self._drained is not None:
                self._drained.set()


def run_gateway(gateway: QuantGateway, ready=None) -> None:
    """Blocking entry point: run ``gateway`` until stopped.

    On the main thread, ``SIGTERM`` triggers a graceful drain (stop
    accepting, 503 new quantizes, finish in-flight, exit) — same
    contract as ``run_server``.
    """
    import signal

    async def _main():
        await gateway.start()
        if threading.current_thread() is threading.main_thread():
            try:
                asyncio.get_running_loop().add_signal_handler(
                    signal.SIGTERM, gateway.request_drain)
            except (NotImplementedError, RuntimeError, ValueError):
                pass
        if ready is not None:
            ready(gateway.port)
        await gateway.run()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass


class GatewayThread:
    """Run a :class:`QuantGateway` on a background thread (tests/bench).

    Mirrors :class:`~repro.server.ServerThread`: entering the context
    starts the loop, waits for the bind + first probe pass, and
    exposes the bound :attr:`port`.
    """

    def __init__(self, **kwargs) -> None:
        self.gateway = QuantGateway(**kwargs)
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def port(self) -> int:
        return self.gateway.port

    def __enter__(self) -> "GatewayThread":
        self._thread = threading.Thread(target=self._main,
                                        name="quant-gateway", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise ConfigError("gateway failed to start in 30s")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def drain(self, timeout: float = 30.0) -> None:
        self.gateway.request_drain()
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __exit__(self, *exc) -> None:
        self.gateway.request_stop()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None

    def _main(self) -> None:
        try:
            run_gateway(self.gateway,
                        ready=lambda port: self._ready.set())
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
