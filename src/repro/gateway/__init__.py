"""HTTP gateway + multi-replica cluster routing.

The serving tier above ``repro.server``: an asyncio HTTP/1.1 JSON
front-end (``POST /v1/quantize``, ``GET /healthz``, ``GET /metrics``)
that proxies onto the binary wire protocol and spreads requests across
N ``QuantServer`` replicas by consistent hashing on the format
fingerprint, with probe-fed health tracking and DRAIN-aware failover
riding the retry-idempotency contract (DESIGN.md §9).

Entry points: ``python -m repro gateway`` (CLI),
:class:`GatewayThread` (in-process, for tests/benchmarks),
:class:`ReplicaCluster` (local replica topology).
"""

from .cluster import DEFAULT_REPLICAS, REPLICAS_ENV, ReplicaCluster
from .gateway import (DEFAULT_GATEWAY_PORT, DEFAULT_PROBE_INTERVAL_S,
                      GATEWAY_PORT_ENV, PROBE_INTERVAL_ENV, GatewayStats,
                      GatewayThread, QuantGateway, healthz_summary,
                      parse_endpoint, render_metrics, run_gateway)
from .router import DEFAULT_VNODES, HASH_SEED_ENV, HashRing

__all__ = [
    "HashRing", "HASH_SEED_ENV", "DEFAULT_VNODES",
    "QuantGateway", "GatewayThread", "GatewayStats", "run_gateway",
    "render_metrics", "healthz_summary", "parse_endpoint",
    "GATEWAY_PORT_ENV", "PROBE_INTERVAL_ENV",
    "DEFAULT_GATEWAY_PORT", "DEFAULT_PROBE_INTERVAL_S",
    "ReplicaCluster", "REPLICAS_ENV", "DEFAULT_REPLICAS",
]
