"""Minimal HTTP/1.1 layer for the gateway (stdlib only, asyncio streams).

One parser and one renderer, both deliberately small and **byte
deterministic**: responses carry a fixed header set in a fixed order
and never a ``Date`` header, so the exact bytes a gateway serves for a
given input are pinned by ``tests/golden/http_vectors.json``
(``scripts/regen_http_vectors.py --regen``). The pure builders here
(:func:`quantize_response`, :func:`error_response`, ...) are the same
code path the live :class:`~repro.gateway.QuantGateway` answers with —
the golden test rebuilds bodies through them and the conformance test
checks the served bytes match.

The error contract maps the library's typed exception hierarchy onto
HTTP statuses (most specific first)::

    ConfigError / ProtocolError        -> 400   (bad request)
    SessionLost                        -> 410   (state gone; reopen)
    FormatError / CodecError           -> 422   (unprocessable numbers)
    ServerBusy / ServerDraining        -> 503 + Retry-After (retryable)
    RequestTimeout                     -> 504   (upstream deadline)
    ConnectionLost / ServerError / ... -> 502   (upstream failure)
    anything else                      -> 500

Every error body is canonical JSON (sorted keys, compact separators)
with ``error`` / ``exc_type`` / ``status`` fields, so a client can
recover the typed exception the wire protocol would have raised.

Request bodies for ``POST /v1/quantize`` come in two encodings:

* ``application/json`` — ``{"format", "op", "dispatch", "packed",
  "shape", "data_b64"}`` with the tensor as base64 little-endian
  C-order float64;
* ``application/octet-stream`` — the raw float64 bytes as the body,
  routing fields in the query string (``?format=m2xfp&op=weight&``
  ``shape=2,64&packed=1``).

Unpacked responses are canonical JSON with ``data_b64``; packed
responses ship the self-describing ``PackedTensor`` container bytes
(``application/x-repro-packed-tensor``) — the same bytes the codec's
golden vectors pin. Response bodies never echo the dispatch mode:
dispatch changes the compute path, not the bits, so responses are
byte-identical across modes (asserted by the golden suite).

Streaming KV sessions ride the same layer: ``POST /v1/session/open``,
``/append``, ``/read`` and ``/close`` take canonical-JSON bodies
(tensors as base64 ``<f8`` with explicit shapes, mirroring the wire
protocol's session frames) and answer with the session ack dict or the
decoded K/V pair. A session whose server-side state is gone answers
410 Gone (:class:`~repro.errors.SessionLost`) — the one status that
tells a client "reopen and replay", never "retry as-is".
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

import numpy as np

from ..errors import (CodecError, ConfigError, ConnectionLost, FormatError,
                      ProtocolError, RequestTimeout, RetryBudgetExceeded,
                      ServerBusy, ServerDraining, ServerError, SessionLost)

__all__ = [
    "HttpRequest", "HttpResponse", "read_http_request",
    "http_status_for", "error_response", "json_response",
    "text_response", "quantize_response", "parse_quantize_request",
    "parse_session_open", "parse_session_append", "parse_session_read",
    "parse_session_close", "session_ack_response", "session_kv_response",
    "canonical_json", "RETRY_AFTER_S",
    "MAX_HEADER_BYTES", "PACKED_CONTENT_TYPE",
]

#: Upper bound on the request line + headers block.
MAX_HEADER_BYTES = 16384

#: ``Retry-After`` value (seconds) on 503 answers.
RETRY_AFTER_S = 1

PACKED_CONTENT_TYPE = "application/x-repro-packed-tensor"

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout", 410: "Gone",
    413: "Payload Too Large", 422: "Unprocessable Entity",
    500: "Internal Server Error", 502: "Bad Gateway",
    503: "Service Unavailable", 504: "Gateway Timeout",
}

#: Exception -> HTTP status, most specific class first (isinstance walk).
_STATUS_ORDER = (
    (SessionLost, 410),
    (ServerDraining, 503),
    (ServerBusy, 503),
    (RequestTimeout, 504),
    (ConnectionLost, 502),
    (RetryBudgetExceeded, 502),
    (ServerError, 502),
    (ProtocolError, 400),
    (ConfigError, 400),
    (FormatError, 422),
    (CodecError, 422),
    # Raw socket failures reaching an upstream (refused connect, reset)
    # are gateway-side 502s. Last: ConnectionError/TimeoutError subclass
    # OSError, so the typed mappings above must win first.
    (ConnectionError, 502),
    (OSError, 502),
)


def http_status_for(exc: BaseException) -> int:
    """The HTTP status the gateway answers for ``exc``."""
    for cls, status in _STATUS_ORDER:
        if isinstance(exc, cls):
            return status
    return 500


def canonical_json(obj) -> bytes:
    """Canonical JSON bytes: sorted keys, compact, ASCII."""
    return json.dumps(obj, sort_keys=True,
                      separators=(",", ":")).encode("ascii")


@dataclass
class HttpRequest:
    """One parsed request: line, query, headers (lower-cased keys), body."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    http_version: str = "HTTP/1.1"

    @property
    def keep_alive(self) -> bool:
        conn = self.headers.get("connection", "").lower()
        if self.http_version == "HTTP/1.0":
            return conn == "keep-alive"
        return conn != "close"


@dataclass
class HttpResponse:
    """One response; :meth:`to_bytes` renders deterministic bytes."""

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    #: Extra headers in emission order (after the fixed set).
    extra_headers: tuple = ()
    keep_alive: bool = True

    def to_bytes(self) -> bytes:
        reason = _REASONS.get(self.status, "Unknown")
        lines = [f"HTTP/1.1 {self.status} {reason}",
                 f"content-type: {self.content_type}",
                 f"content-length: {len(self.body)}"]
        lines.extend(f"{k}: {v}" for k, v in self.extra_headers)
        lines.append("connection: " +
                     ("keep-alive" if self.keep_alive else "close"))
        head = "\r\n".join(lines).encode("ascii") + b"\r\n\r\n"
        return head + self.body


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
async def read_http_request(reader: asyncio.StreamReader,
                            max_body_bytes: int,
                            read_timeout_s: float | None = None) \
        -> HttpRequest | None:
    """Read one request; ``None`` on clean EOF before any byte.

    Mirrors the wire protocol's slow-loris stance: waiting for a
    request to *start* is unbounded (idle keep-alive connections are
    legal), but once the first byte arrives the head + body must
    complete within ``read_timeout_s`` (:class:`ProtocolError` on
    expiry). Oversized heads/bodies raise :class:`ConfigError` carrying
    the HTTP status to answer with.
    """
    try:
        first = await reader.readexactly(1)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-request") from exc

    async def _rest() -> HttpRequest:
        try:
            head = first + await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise _HttpError(413, "request head exceeds the "
                                  f"{MAX_HEADER_BYTES}-byte limit") from None
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError("connection closed mid-request") from exc
        if len(head) > MAX_HEADER_BYTES:
            raise _HttpError(413, "request head exceeds the "
                                  f"{MAX_HEADER_BYTES}-byte limit")
        request = _parse_head(head)
        length = request.headers.get("content-length")
        if request.headers.get("transfer-encoding"):
            raise _HttpError(400, "chunked request bodies are not "
                                  "supported; send Content-Length")
        if length is not None:
            try:
                n = int(length)
            except ValueError:
                raise _HttpError(400, f"bad Content-Length {length!r}") \
                    from None
            if n < 0:
                raise _HttpError(400, f"bad Content-Length {length!r}")
            if n > max_body_bytes:
                raise _HttpError(413, f"request body of {n} bytes exceeds "
                                      f"the {max_body_bytes}-byte limit")
            try:
                request.body = await reader.readexactly(n)
            except asyncio.IncompleteReadError as exc:
                raise ProtocolError("connection closed mid-body") from exc
        return request

    try:
        if read_timeout_s is None:
            return await _rest()
        return await asyncio.wait_for(_rest(), read_timeout_s)
    except asyncio.TimeoutError:
        raise ProtocolError(
            f"request not completed within {read_timeout_s:g}s of its "
            f"first byte (slow-loris guard)") from None


class _HttpError(Exception):
    """A parse/validation failure with its HTTP answer attached."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _parse_head(head: bytes) -> HttpRequest:
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 total
        raise _HttpError(400, f"undecodable request head: {exc}") from exc
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise _HttpError(400, f"malformed request line {lines[0]!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise _HttpError(400, f"unsupported HTTP version {version!r}")
    split = urlsplit(target)
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        if ":" not in line:
            raise _HttpError(400, f"malformed header line {line!r}")
        key, value = line.split(":", 1)
        headers[key.strip().lower()] = value.strip()
    query = {k: v for k, v in parse_qsl(split.query, keep_blank_values=True)}
    return HttpRequest(method=method, path=unquote(split.path) or "/",
                       query=query, headers=headers, http_version=version)


# ----------------------------------------------------------------------
# Response builders (pure — golden-pinned)
# ----------------------------------------------------------------------
def json_response(obj, status: int = 200, *, keep_alive: bool = True,
                  extra_headers: tuple = ()) -> HttpResponse:
    return HttpResponse(status=status, body=canonical_json(obj),
                        extra_headers=extra_headers, keep_alive=keep_alive)


def text_response(text: str, status: int = 200, *,
                  keep_alive: bool = True) -> HttpResponse:
    return HttpResponse(status=status, body=text.encode("utf-8"),
                        content_type="text/plain; version=0.0.4",
                        keep_alive=keep_alive)


def error_response(exc: BaseException, *, status: int | None = None,
                   keep_alive: bool = True) -> HttpResponse:
    """The gateway's typed error answer for ``exc`` (golden-pinned).

    503 answers carry ``Retry-After`` — the HTTP spelling of the wire
    protocol's "BUSY/DRAINING is retryable backpressure" contract.
    """
    if status is None:
        status = exc.status if isinstance(exc, _HttpError) \
            else http_status_for(exc)
    exc_type = "ConfigError" if isinstance(exc, _HttpError) \
        else type(exc).__name__
    body = {"error": str(exc), "exc_type": exc_type, "status": status}
    extra = (("retry-after", str(RETRY_AFTER_S)),) if status == 503 else ()
    return json_response(body, status=status, extra_headers=extra,
                         keep_alive=keep_alive)


def quantize_response(result, *, fmt: str, op: str, packed: bool,
                      fingerprint: str = "",
                      keep_alive: bool = True) -> HttpResponse:
    """The 200 answer for a quantize request.

    ``result`` is the dequantized ``np.ndarray`` (unpacked) or the
    :class:`~repro.codec.PackedTensor` / its bytes (packed). Dispatch
    mode is deliberately absent: the bits do not depend on it.
    """
    if packed:
        blob = result if isinstance(result, (bytes, bytearray)) \
            else result.to_bytes()
        return HttpResponse(
            status=200, body=bytes(blob), content_type=PACKED_CONTENT_TYPE,
            extra_headers=(("x-repro-format", fmt),
                           ("x-repro-op", op)),
            keep_alive=keep_alive)
    arr = np.ascontiguousarray(result, dtype="<f8")
    body = {
        "data_b64": base64.b64encode(arr.tobytes()).decode("ascii"),
        "fingerprint": fingerprint,
        "format": fmt,
        "op": op,
        "packed": False,
        "shape": list(arr.shape),
    }
    return json_response(body, keep_alive=keep_alive)


# ----------------------------------------------------------------------
# Quantize-request parsing
# ----------------------------------------------------------------------
_TRUE = ("1", "true", "yes", "on")
_FALSE = ("0", "false", "no", "off", "")


def _parse_bool(raw, name: str) -> bool:
    if isinstance(raw, bool):
        return raw
    if isinstance(raw, str) and raw.lower() in _TRUE:
        return True
    if isinstance(raw, str) and raw.lower() in _FALSE:
        return False
    raise ConfigError(f"{name} must be a boolean, got {raw!r}")


def _parse_shape(raw) -> list[int]:
    if isinstance(raw, str):
        raw = [part for part in raw.split(",") if part != ""]
    if not isinstance(raw, list):
        raise ConfigError(f"shape must be a list of ints, got {raw!r}")
    try:
        shape = [int(d) for d in raw]
    except (TypeError, ValueError):
        raise ConfigError(f"shape must be a list of ints, got {raw!r}") \
            from None
    if any(d < 0 for d in shape):
        raise ConfigError(f"shape dimensions must be >= 0, got {shape}")
    return shape


def parse_quantize_request(request: HttpRequest):
    """Decode a ``POST /v1/quantize`` body into routing fields + tensor.

    Returns ``(x, fmt, op, dispatch, packed)``; raises
    :class:`ConfigError` (-> 400) on anything malformed. Both body
    encodings land here so the two paths cannot drift.
    """
    ctype = request.headers.get("content-type", "application/json")
    ctype = ctype.split(";", 1)[0].strip().lower()
    if ctype == "application/octet-stream":
        fields: dict = dict(request.query)
        payload = request.body
        if "shape" not in fields:
            raise ConfigError("octet-stream quantize requests need a "
                              "shape=<d0,d1,...> query parameter")
    elif ctype == "application/json":
        try:
            fields = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ConfigError(f"unreadable JSON body: {exc}") from exc
        if not isinstance(fields, dict):
            raise ConfigError("JSON quantize body must be an object")
        raw = fields.get("data_b64")
        if not isinstance(raw, str):
            raise ConfigError("JSON quantize body is missing data_b64")
        try:
            payload = base64.b64decode(raw.encode("ascii"), validate=True)
        except (UnicodeEncodeError, binascii.Error, ValueError) as exc:
            raise ConfigError(f"data_b64 is not valid base64: {exc}") \
                from exc
        if "shape" not in fields:
            raise ConfigError("JSON quantize body is missing shape")
    else:
        raise ConfigError(f"unsupported content-type {ctype!r}; use "
                          f"application/json or application/octet-stream")
    fmt = fields.get("format")
    if not isinstance(fmt, str) or not fmt:
        raise ConfigError("quantize request is missing the format name")
    op = fields.get("op", "activation")
    if op not in ("weight", "activation"):
        raise ConfigError(f"op must be 'weight' or 'activation', got {op!r}")
    from ..serve.service import DISPATCH_MODES
    dispatch = fields.get("dispatch", "inherit")
    if dispatch not in DISPATCH_MODES:
        raise ConfigError(f"dispatch must be one of {DISPATCH_MODES}, "
                          f"got {dispatch!r}")
    packed = _parse_bool(fields.get("packed", False), "packed")
    shape = _parse_shape(fields["shape"])
    n = int(np.prod(shape, dtype=np.int64)) if shape else 1
    if len(payload) != 8 * n:
        raise ConfigError(f"tensor payload has {len(payload)} bytes; "
                          f"shape {shape} needs {8 * n} "
                          f"(little-endian float64)")
    x = np.frombuffer(payload, dtype="<f8").reshape(shape).copy()
    return x, fmt, op, dispatch, packed


# ----------------------------------------------------------------------
# Session request parsing + responses (JSON bodies, golden-pinned)
# ----------------------------------------------------------------------
def _json_object(request: HttpRequest, what: str) -> dict:
    ctype = request.headers.get("content-type", "application/json")
    ctype = ctype.split(";", 1)[0].strip().lower()
    if ctype != "application/json":
        raise ConfigError(f"{what} bodies must be application/json, "
                          f"got {ctype!r}")
    try:
        fields = json.loads(request.body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ConfigError(f"unreadable JSON body: {exc}") from exc
    if not isinstance(fields, dict):
        raise ConfigError(f"{what} body must be a JSON object")
    return fields


def _session_id_of(fields: dict) -> str:
    sid = fields.get("session_id")
    if not isinstance(sid, str) or not sid:
        raise ConfigError("session request is missing session_id")
    return sid


def _int_field(fields: dict, name: str, minimum: int) -> int:
    raw = fields.get(name)
    if isinstance(raw, bool) or not isinstance(raw, int):
        raise ConfigError(f"{name} must be an integer, got {raw!r}")
    if raw < minimum:
        raise ConfigError(f"{name} must be >= {minimum}, got {raw}")
    return raw


def _tensor_field(fields: dict, b64_key: str, shape_key: str) -> np.ndarray:
    raw = fields.get(b64_key)
    if not isinstance(raw, str):
        raise ConfigError(f"session append body is missing {b64_key}")
    try:
        payload = base64.b64decode(raw.encode("ascii"), validate=True)
    except (UnicodeEncodeError, binascii.Error, ValueError) as exc:
        raise ConfigError(f"{b64_key} is not valid base64: {exc}") from exc
    if shape_key not in fields:
        raise ConfigError(f"session append body is missing {shape_key}")
    shape = _parse_shape(fields[shape_key])
    if len(shape) != 2:
        raise ConfigError(f"{shape_key} must be 2-D (tokens, width), "
                          f"got {shape}")
    n = int(np.prod(shape, dtype=np.int64))
    if len(payload) != 8 * n:
        raise ConfigError(f"{b64_key} has {len(payload)} bytes; shape "
                          f"{shape} needs {8 * n} (little-endian float64)")
    return np.frombuffer(payload, dtype="<f8").reshape(shape).copy()


def parse_session_open(request: HttpRequest) -> dict:
    """Decode ``POST /v1/session/open`` into ``session_open`` kwargs.

    Policy / budget validation is deliberately left to the replica (and
    :class:`~repro.kv.KVPolicy`): the gateway checks shape, not
    semantics, so the two layers cannot disagree about what a legal
    policy is.
    """
    fields = _json_object(request, "session open")
    from ..serve.service import DISPATCH_MODES
    dispatch = fields.get("dispatch", "inherit")
    if dispatch not in DISPATCH_MODES:
        raise ConfigError(f"dispatch must be one of {DISPATCH_MODES}, "
                          f"got {dispatch!r}")
    max_tokens = fields.get("max_tokens")
    if max_tokens is not None:
        if isinstance(max_tokens, bool) or not isinstance(max_tokens, int):
            raise ConfigError(f"max_tokens must be an integer or null, "
                              f"got {max_tokens!r}")
    policy = fields.get("policy", "m2xfp")
    if not isinstance(policy, (str, dict)):
        raise ConfigError(f"policy must be a format name or a policy "
                          f"spec object, got {policy!r}")
    return {
        "session_id": _session_id_of(fields),
        "n_layers": _int_field(fields, "n_layers", 1),
        "policy": policy,
        "max_tokens": max_tokens,
        "sink_tokens": _int_field(fields, "sink_tokens", 0)
        if "sink_tokens" in fields else 0,
        "dispatch": dispatch,
        "verify": _parse_bool(fields.get("verify", True), "verify"),
    }


def parse_session_append(request: HttpRequest):
    """Decode ``POST /v1/session/append`` -> (sid, layer, seq, k, v)."""
    fields = _json_object(request, "session append")
    k = _tensor_field(fields, "k_b64", "k_shape")
    v = _tensor_field(fields, "v_b64", "v_shape")
    return (_session_id_of(fields), _int_field(fields, "layer", 0),
            _int_field(fields, "seq", 0), k, v)


def parse_session_read(request: HttpRequest):
    """Decode ``POST /v1/session/read`` -> (session_id, layer)."""
    fields = _json_object(request, "session read")
    return _session_id_of(fields), _int_field(fields, "layer", 0)


def parse_session_close(request: HttpRequest) -> str:
    """Decode ``POST /v1/session/close`` -> session_id."""
    fields = _json_object(request, "session close")
    return _session_id_of(fields)


def session_ack_response(session: dict, *,
                         keep_alive: bool = True) -> HttpResponse:
    """The 200 answer for open/append/close: the replica's ack dict."""
    return json_response({"session": session}, keep_alive=keep_alive)


def session_kv_response(k: np.ndarray, v: np.ndarray, *, session_id: str,
                        layer: int, keep_alive: bool = True) -> HttpResponse:
    """The 200 answer for ``/v1/session/read``: decoded K and V."""
    k = np.ascontiguousarray(k, dtype="<f8")
    v = np.ascontiguousarray(v, dtype="<f8")
    body = {
        "k_b64": base64.b64encode(k.tobytes()).decode("ascii"),
        "k_shape": list(k.shape),
        "layer": int(layer),
        "session_id": session_id,
        "v_b64": base64.b64encode(v.tobytes()).decode("ascii"),
        "v_shape": list(v.shape),
    }
    return json_response(body, keep_alive=keep_alive)
