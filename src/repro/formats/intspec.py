"""Integer and custom non-uniform scalar grids used by baseline formats.

Besides plain symmetric INTx, this module carries the ANT-family scalar
types used by the MX-ANT / MX-M-ANT comparators: ``flint4`` (float-int
hybrid: fine near zero, power-of-two steps for large magnitudes) and
``pot4`` (pure power-of-two).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import FormatError
from .floatspec import quantize_to_grid

__all__ = ["IntSpec", "GridSpec", "int4", "int3", "int8", "flint4", "pot4"]


@dataclass(frozen=True)
class IntSpec:
    """Symmetric signed integer grid with ``bits`` total bits.

    The grid is ``{-(2^(b-1)-1), ..., 2^(b-1)-1}`` (the redundant most
    negative code is dropped, matching common symmetric quantizers).
    """

    name: str
    bits: int

    def __post_init__(self) -> None:
        if self.bits < 2:
            raise FormatError(f"{self.name}: need at least 2 bits")

    @property
    def max_value(self) -> float:
        """Largest representable magnitude."""
        return float((1 << (self.bits - 1)) - 1)

    @property
    def total_bits(self) -> int:
        """Storage width in bits."""
        return self.bits

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Round to the nearest integer in range (RTNE), saturating."""
        q = np.rint(np.asarray(x, dtype=np.float64))
        return np.clip(q, -self.max_value, self.max_value)


@dataclass(frozen=True)
class GridSpec:
    """A signed scalar type defined by an explicit magnitude grid."""

    name: str
    magnitudes: tuple[float, ...]
    total_bits: int
    _grid: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        grid = np.asarray(self.magnitudes, dtype=np.float64)
        if grid[0] != 0.0 or np.any(np.diff(grid) <= 0):
            raise FormatError(f"{self.name}: magnitudes must be ascending from 0")
        object.__setattr__(self, "_grid", grid)

    @property
    def grid(self) -> np.ndarray:
        """Ascending non-negative magnitude grid."""
        return self._grid

    @property
    def max_value(self) -> float:
        """Largest representable magnitude."""
        return float(self._grid[-1])

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Round onto the signed grid (nearest, ties to even index)."""
        x = np.asarray(x, dtype=np.float64)
        idx = quantize_to_grid(np.abs(x), self._grid)
        return np.where(np.signbit(x), -self._grid[idx], self._grid[idx])


int3 = IntSpec("int3", 3)
int4 = IntSpec("int4", 4)
int8 = IntSpec("int8", 8)

# ANT's float-int hybrid: one mantissa bit below 4, exponent-only above,
# giving 8 magnitude levels in 4 bits (sign + 3-bit code).
flint4 = GridSpec("flint4", (0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 8.0), 4)

# Power-of-two type: sign + 3-bit exponent code (0 plus seven octaves).
pot4 = GridSpec("pot4", (0.0, 0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0), 4)
