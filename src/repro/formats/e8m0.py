"""The E8M0 power-of-two shared-scale format from the OCP MX specification.

An E8M0 scale stores only an 8-bit biased exponent: the value is ``2**e``
for ``e`` in [-127, 127] (code 255 is reserved for NaN and never produced
here; out-of-range exponents saturate).
"""

from __future__ import annotations

import numpy as np

__all__ = ["E8M0_MIN_EXP", "E8M0_MAX_EXP", "E8M0_BITS", "clamp_exponent",
           "encode_exponent", "decode_code", "scale_from_exponent"]

E8M0_MIN_EXP = -127
E8M0_MAX_EXP = 127
E8M0_BITS = 8
_BIAS = 127


def clamp_exponent(e: np.ndarray) -> np.ndarray:
    """Saturate integer exponents into the representable E8M0 range."""
    return np.clip(np.asarray(e, dtype=np.int64), E8M0_MIN_EXP, E8M0_MAX_EXP)


def encode_exponent(e: np.ndarray) -> np.ndarray:
    """Exponent -> 8-bit code (bias 127), saturating."""
    return (clamp_exponent(e) + _BIAS).astype(np.int64)


def decode_code(code: np.ndarray) -> np.ndarray:
    """8-bit code -> power-of-two scale value."""
    e = np.asarray(code, dtype=np.int64) - _BIAS
    return np.exp2(e.astype(np.float64))


def scale_from_exponent(e: np.ndarray) -> np.ndarray:
    """Exponent -> ``2**e`` with E8M0 saturation applied."""
    return np.exp2(clamp_exponent(e).astype(np.float64))
