"""Named instances of every scalar format used in the paper."""

from __future__ import annotations

from .floatspec import FloatSpec
from .intspec import flint4, int3, int4, int8, pot4

__all__ = ["FP4_E2M1", "FP6_E2M3", "FP6_E3M2", "FP8_E4M3", "FP8_E5M2",
           "FP16", "BF16", "SCALAR_FORMATS",
           "int3", "int4", "int8", "flint4", "pot4"]

# The element type of MXFP4 / NVFP4 and the baseline of M2XFP.
FP4_E2M1 = FloatSpec("fp4_e2m1", exp_bits=2, man_bits=1, bias=1)

# The metadata target of Algorithm 1: two extra mantissa bits over E2M1.
FP6_E2M3 = FloatSpec("fp6_e2m3", exp_bits=2, man_bits=3, bias=1)

# The alternative OCP FP6 flavour (range-heavy).
FP6_E3M2 = FloatSpec("fp6_e3m2", exp_bits=3, man_bits=2, bias=3)

# OCP FP8 E4M3 (FN variant: top code is NaN, so max normal is 448).
FP8_E4M3 = FloatSpec("fp8_e4m3", exp_bits=4, man_bits=3, bias=7,
                     reserved_top_codes=1)

# OCP FP8 E5M2 (the whole top binade is inf/nan; max normal 57344).
FP8_E5M2 = FloatSpec("fp8_e5m2", exp_bits=5, man_bits=2, bias=15,
                     reserved_top_codes=4)

# Reference high-precision formats (used for scale storage comparisons).
FP16 = FloatSpec("fp16", exp_bits=5, man_bits=10, bias=15, reserved_top_codes=1024)
BF16 = FloatSpec("bf16", exp_bits=8, man_bits=7, bias=127, reserved_top_codes=128)

SCALAR_FORMATS = {spec.name: spec for spec in
                  (FP4_E2M1, FP6_E2M3, FP6_E3M2, FP8_E4M3, FP8_E5M2, FP16, BF16)}
