"""Group reshaping for block/group-wise quantization.

All MX-family quantizers operate on a 2-D view ``(n_groups, group_size)``
taken along one axis of the input tensor (the reduction axis of the GEMM,
per the OCP spec). These helpers move an arbitrary tensor into that view
with zero padding and move results back, exactly inverting the transform.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import FormatError, ShapeError

__all__ = ["GroupView", "to_groups", "from_groups"]


@dataclass(frozen=True)
class GroupView:
    """Bookkeeping needed to undo :func:`to_groups`."""

    shape: tuple[int, ...]
    axis: int
    group_size: int
    axis_len: int
    padded_len: int


def to_groups(x: np.ndarray, group_size: int, axis: int = -1) -> tuple[np.ndarray, GroupView]:
    """View ``x`` as ``(n_groups, group_size)`` along ``axis``, zero padded.

    Returns the 2-D group matrix (a copy) and the :class:`GroupView` needed
    by :func:`from_groups` to restore the original shape.
    """
    x = np.asarray(x, dtype=np.float64)
    if group_size < 1:
        raise ShapeError(f"group_size must be >= 1, got {group_size}")
    if not np.isfinite(x).all():
        # A single NaN/Inf silently poisons the group's shared scale and
        # decodes to garbage; every group-wise quantizer funnels through
        # here, so this is the one place the contract can be enforced.
        raise FormatError("non-finite values (nan/inf) cannot be "
                          "group-quantized")
    axis = axis % x.ndim
    moved = np.moveaxis(x, axis, -1)
    axis_len = moved.shape[-1]
    padded_len = -(-axis_len // group_size) * group_size
    if padded_len != axis_len:
        pad = [(0, 0)] * (moved.ndim - 1) + [(0, padded_len - axis_len)]
        moved = np.pad(moved, pad)
    groups = moved.reshape(-1, group_size)
    view = GroupView(shape=x.shape, axis=axis, group_size=group_size,
                     axis_len=axis_len, padded_len=padded_len)
    return groups, view


def from_groups(groups: np.ndarray, view: GroupView) -> np.ndarray:
    """Invert :func:`to_groups`, dropping any zero padding."""
    groups = np.asarray(groups, dtype=np.float64)
    lead = [view.shape[i] for i in range(len(view.shape)) if i != view.axis]
    moved = groups.reshape(*lead, view.padded_len) if lead else groups.reshape(view.padded_len)
    if view.padded_len != view.axis_len:
        moved = moved[..., : view.axis_len]
    return np.moveaxis(moved, -1, view.axis)
