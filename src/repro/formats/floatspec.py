"""Parameterized mini-float formats (E*M* grids) with bit-exact semantics.

Every low-bit float used by the paper (FP4 E2M1, FP6 E2M3/E3M2, FP8
E4M3/E5M2, and the FP16/BF16 references) is an instance of :class:`FloatSpec`.
A spec owns the full grid of representable magnitudes, indexed by *magnitude
code* (``exponent_field << man_bits | mantissa_field``), which makes two
properties available everywhere in the library:

* rounding is round-to-nearest-even **in code space** — positive mini-float
  bit patterns are consecutive integers in value order, so ties go to the
  value whose code is even, which is exactly "even mantissa LSB";
* the Algorithm-1 metadata encoding relies on FP4 codes being a truncated
  prefix of FP6 codes; keeping codes explicit lets us test that bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import FormatError
from ..kernels.bittwiddle import encode_magnitudes
from ..kernels.dispatch import use_bittwiddle, use_reference
from ..kernels.lut import (cached_boundaries, cached_thresholds,
                           exact_boundaries, threshold_codes)

__all__ = ["FloatSpec", "quantize_to_grid", "quantize_to_grid_reference"]


def quantize_to_grid_reference(x: np.ndarray, grid: np.ndarray) -> np.ndarray:
    """Reference nearest-entry search (the pre-kernel formulation).

    Kept verbatim as the semantic ground truth for the boundary-cache
    kernel; selected globally by ``REPRO_REFERENCE_KERNELS=1``.
    """
    ax = np.asarray(x, dtype=np.float64)
    n = grid.shape[0]
    pos = np.searchsorted(grid, ax, side="left")
    lo = np.clip(pos - 1, 0, n - 1)
    hi = np.clip(pos, 0, n - 1)
    d_lo = ax - grid[lo]
    d_hi = grid[hi] - ax
    take_hi = (d_hi < d_lo) | ((d_hi == d_lo) & (hi % 2 == 0))
    return np.where(take_hi, hi, lo)


def quantize_to_grid(x: np.ndarray, grid: np.ndarray) -> np.ndarray:
    """Round ``|x|`` to the nearest entry of an ascending ``grid``.

    Ties round to the entry with the even index (round-to-nearest-even in
    code space); values beyond the last entry saturate. Returns grid
    *indices*, not values. Dispatches to a cached decision-boundary
    ``searchsorted`` (one binary search, no per-call grid arithmetic);
    grids whose midpoint boundaries are not provably exact (non-dyadic
    grids like BlockDialect's dialect levels) go through bisected
    decision thresholds (:func:`repro.kernels.lut.compiled_thresholds`)
    instead. ``REPRO_REFERENCE_KERNELS=1`` selects the original search;
    all paths are bit-identical.
    """
    if not use_reference():
        ax = np.asarray(x, dtype=np.float64)
        bounds = cached_boundaries(grid)
        if bounds is not None:
            return np.searchsorted(bounds, ax, side="left")
        return np.asarray(threshold_codes(cached_thresholds(grid), ax),
                          dtype=np.int64)
    return quantize_to_grid_reference(x, grid)


@dataclass(frozen=True)
class FloatSpec:
    """A sign-magnitude mini-float format with ``exp_bits``/``man_bits``.

    Values follow IEEE conventions: the zero exponent field holds
    subnormals ``(m / 2^M) * 2^(1 - bias)``; other fields hold normals
    ``(1 + m / 2^M) * 2^(e - bias)``. ``reserved_top_codes`` removes the
    highest magnitude codes from the grid (e.g. the OCP E4M3 NaN code),
    shrinking the saturation point accordingly.
    """

    name: str
    exp_bits: int
    man_bits: int
    bias: int
    reserved_top_codes: int = 0
    _grid: np.ndarray = field(init=False, repr=False, compare=False)
    _bounds: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.exp_bits < 0 or self.man_bits < 0:
            raise FormatError(f"{self.name}: negative field width")
        if self.exp_bits + self.man_bits == 0:
            raise FormatError(f"{self.name}: empty magnitude field")
        n_codes = 1 << (self.exp_bits + self.man_bits)
        if self.reserved_top_codes >= n_codes:
            raise FormatError(f"{self.name}: all codes reserved")
        codes = np.arange(n_codes - self.reserved_top_codes, dtype=np.int64)
        man_mask = (1 << self.man_bits) - 1
        e = codes >> self.man_bits
        m = (codes & man_mask).astype(np.float64)
        frac = m / (1 << self.man_bits)
        subnormal = frac * 2.0 ** (1 - self.bias)
        normal = (1.0 + frac) * np.exp2(e - self.bias)
        grid = np.where(e == 0, subnormal, normal)
        if np.any(np.diff(grid) <= 0):
            raise FormatError(f"{self.name}: grid is not strictly increasing")
        object.__setattr__(self, "_grid", grid)
        # Decision boundaries for the fast encode path, built once here so
        # every later encode/quantize is a single searchsorted. Mini-float
        # grids are dyadic so this never falls back in practice, but the
        # exactness proof is re-checked rather than assumed.
        object.__setattr__(self, "_bounds", exact_boundaries(grid))

    # ------------------------------------------------------------------
    # Derived constants
    # ------------------------------------------------------------------
    @property
    def total_bits(self) -> int:
        """Storage width including the sign bit."""
        return 1 + self.exp_bits + self.man_bits

    @property
    def grid(self) -> np.ndarray:
        """Ascending array of representable non-negative magnitudes."""
        return self._grid

    @property
    def boundaries(self) -> np.ndarray:
        """Cached RTNE decision boundaries between adjacent codes.

        None only for grids whose boundaries would not be search-exact;
        every IEEE-style mini-float grid qualifies.
        """
        return self._bounds

    @property
    def max_value(self) -> float:
        """Largest representable magnitude (``M`` in the paper)."""
        return float(self._grid[-1])

    @property
    def max_pow2(self) -> float:
        """Largest power of two <= max_value (``P`` in the paper)."""
        return float(2.0 ** np.floor(np.log2(self.max_value)))

    @property
    def min_subnormal(self) -> float:
        """Smallest positive representable magnitude."""
        return float(self._grid[1])

    @property
    def code_count(self) -> int:
        """Number of magnitude codes (excluding the sign bit)."""
        return int(self._grid.shape[0])

    # ------------------------------------------------------------------
    # Quantization
    # ------------------------------------------------------------------
    def encode(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Quantize to (sign, magnitude-code) arrays.

        ``sign`` is 0/1 (1 for negative inputs, including -0.0); codes
        saturate at the largest representable magnitude. The default path
        is one ``searchsorted`` against the boundaries precomputed at
        construction; ``REPRO_BITTWIDDLE=1`` selects the integer encoder
        on float64 bit patterns instead. Both match the reference path
        (``REPRO_REFERENCE_KERNELS=1``) bit for bit.
        """
        x = np.asarray(x, dtype=np.float64)
        sign = np.signbit(x).astype(np.int64)
        if use_reference() or self._bounds is None:
            codes = quantize_to_grid_reference(np.abs(x), self._grid)
            return sign, codes.astype(np.int64)
        if use_bittwiddle():
            return sign, encode_magnitudes(self, x)
        codes = np.searchsorted(self._bounds, np.abs(x), side="left")
        return sign, codes.astype(np.int64)

    def decode(self, sign: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Map (sign, magnitude-code) arrays back to float64 values."""
        codes = np.asarray(codes, dtype=np.int64)
        if np.any(codes < 0) or np.any(codes >= self.code_count):
            raise FormatError(f"{self.name}: magnitude code out of range")
        vals = self._grid[codes]
        return np.where(np.asarray(sign, dtype=np.int64) != 0, -vals, vals)

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Fake-quantize: round values onto this format's grid (RTNE).

        The fast path skips the decode-time range validation (the codes
        were just produced in range) and fuses the sign re-application.
        """
        if use_reference() or self._bounds is None:
            sign, codes = self.encode(x)
            return self.decode(sign, codes)
        x = np.asarray(x, dtype=np.float64)
        if use_bittwiddle():
            codes = encode_magnitudes(self, x)
        else:
            codes = np.searchsorted(self._bounds, np.abs(x), side="left")
        vals = self._grid[codes]
        return np.where(np.signbit(x), -vals, vals)

    def packed_codes(self, x: np.ndarray) -> np.ndarray:
        """Full bit patterns ``sign << (E+M) | magnitude_code``."""
        sign, codes = self.encode(x)
        return (sign << (self.exp_bits + self.man_bits)) | codes

    def value_of_code(self, packed: np.ndarray) -> np.ndarray:
        """Decode full bit patterns produced by :meth:`packed_codes`."""
        packed = np.asarray(packed, dtype=np.int64)
        shift = self.exp_bits + self.man_bits
        return self.decode(packed >> shift, packed & ((1 << shift) - 1))

    def __str__(self) -> str:
        return self.name
