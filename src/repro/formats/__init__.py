"""Scalar numeric formats: mini-floats, integer grids, E8M0 scales, grouping."""

from .e8m0 import (E8M0_BITS, E8M0_MAX_EXP, E8M0_MIN_EXP, clamp_exponent,
                   decode_code, encode_exponent, scale_from_exponent)
from .floatspec import FloatSpec, quantize_to_grid
from .grouping import GroupView, from_groups, to_groups
from .intspec import GridSpec, IntSpec, flint4, int3, int4, int8, pot4
from .registry import (BF16, FP4_E2M1, FP6_E2M3, FP6_E3M2, FP8_E4M3,
                       FP8_E5M2, FP16, SCALAR_FORMATS)

__all__ = [
    "FloatSpec", "quantize_to_grid", "IntSpec", "GridSpec",
    "GroupView", "to_groups", "from_groups",
    "E8M0_BITS", "E8M0_MIN_EXP", "E8M0_MAX_EXP",
    "clamp_exponent", "encode_exponent", "decode_code", "scale_from_exponent",
    "FP4_E2M1", "FP6_E2M3", "FP6_E3M2", "FP8_E4M3", "FP8_E5M2", "FP16", "BF16",
    "SCALAR_FORMATS", "int3", "int4", "int8", "flint4", "pot4",
]
