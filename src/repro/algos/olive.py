"""MX-OliVe: outlier-victim pair quantization adapted to MX groups.

OliVe (ISCA'23) stores an outlier at extended precision by *sacrificing*
its neighbor (the "victim", forced to zero) and reusing the victim's bits.
That trade is profitable tensor-wide, where outliers are rare; inside a
32-element MX group the sacrificed neighbor often carries significant
signal, which is exactly why the paper finds MX-OliVe underperforming
plain MXFP4 on several models (Tbl. 3).
"""

from __future__ import annotations

import numpy as np

from ..formats.e8m0 import E8M0_BITS
from ..formats.floatspec import FloatSpec
from ..formats.registry import FP4_E2M1
from ..mx.base import BlockFormat, QuantResult

__all__ = ["MXOliVe"]

# The outlier encoding: an 8-bit "adaptive bias float" with wide range,
# standing in for OliVe's abfloat (sign + 4-bit exponent + 3-bit mantissa).
_OUTLIER_FORMAT = FloatSpec("abfloat8", exp_bits=4, man_bits=3, bias=7)


class MXOliVe(BlockFormat):
    """MXFP4 plus outlier-victim pairs inside each group."""

    def __init__(self, group_size: int = 32, scale_rule: str = "floor",
                 outlier_ratio_threshold: float = 2.0) -> None:
        super().__init__(f"mx-olive-g{group_size}", FP4_E2M1, group_size,
                         scale_rule, scale_bits=E8M0_BITS,
                         meta_bits_per_group=group_size // 8)
        self.outlier_ratio_threshold = float(outlier_ratio_threshold)

    def quantize_groups(self, groups: np.ndarray) -> QuantResult:
        scales = self.group_scales(groups)
        scaled = groups / scales[:, None]
        dq = self.element.quantize(scaled)

        # An element is an outlier when it dominates the rest of its group.
        order = np.argsort(np.abs(groups), axis=1)
        top = order[:, -1]
        second = order[:, -2]
        rows = np.arange(groups.shape[0])
        top_abs = np.abs(groups[rows, top])
        second_abs = np.abs(groups[rows, second])
        is_outlier = top_abs >= self.outlier_ratio_threshold * np.maximum(second_abs, 1e-30)

        # Victim: the pair partner (adjacent index), zeroed to free its bits.
        victim = top ^ 1
        outlier_dq = _OUTLIER_FORMAT.quantize(scaled[rows, top])
        dq[rows[is_outlier], top[is_outlier]] = outlier_dq[is_outlier]
        dq[rows[is_outlier], victim[is_outlier]] = 0.0
        return QuantResult(dequantized=dq * scales[:, None], scales=scales,
                           ebw=self.ebw, details={"outliers": is_outlier})
