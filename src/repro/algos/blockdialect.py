"""BlockDialect (Tbl. 1 / Tbl. 7): block-wise fine-grained format dialects.

Each group of 32 selects one of 16 "dialects" — 4-bit grids whose level
spacing is tuned to different block shapes — via a 4-bit index. Weights
pick the MSE-optimal dialect offline; activations use the paper-described
efficient real-time decision, modelled here as a cheap statistic
(crest factor bucket) instead of a full search.
"""

from __future__ import annotations

import numpy as np

from ..formats.e8m0 import E8M0_BITS
from ..formats.intspec import GridSpec
from ..formats.registry import FP4_E2M1
from ..mx.base import BlockFormat, QuantResult

__all__ = ["DIALECTS", "BlockDialect", "block_dialect"]


def _dialect(gamma: float) -> GridSpec:
    """A 4-bit dialect: 8 magnitude levels with power-law spacing."""
    levels = 6.0 * (np.arange(8) / 7.0) ** gamma
    return GridSpec(f"dialect-{gamma:.2f}", tuple(float(v) for v in levels), 4)


#: 16 dialects spanning uniform-ish to strongly outlier-focused spacing.
DIALECTS = tuple(_dialect(g) for g in np.linspace(0.55, 3.0, 16))


class BlockDialect(BlockFormat):
    """Per-group dialect selection over an E8M0 shared scale."""

    def __init__(self, group_size: int = 32, scale_rule: str = "ceil",
                 online_selection: bool = False) -> None:
        super().__init__(f"blockdialect-g{group_size}", FP4_E2M1, group_size,
                         scale_rule, scale_bits=E8M0_BITS,
                         meta_bits_per_group=4)
        self.online_selection = bool(online_selection)

    def _scales(self, groups: np.ndarray) -> np.ndarray:
        amax = np.max(np.abs(groups), axis=1)
        e = np.where(amax > 0,
                     np.ceil(np.log2(np.where(amax > 0, amax, 1.0) / 6.0)), 0.0)
        return np.exp2(np.clip(e, -127, 127))

    def quantize_groups(self, groups: np.ndarray) -> QuantResult:
        scales = self._scales(groups)
        scaled = groups / scales[:, None]
        n = groups.shape[0]
        if self.online_selection:
            # Crest-factor bucket: spikier blocks pick steeper dialects.
            amax = np.max(np.abs(scaled), axis=1)
            rms = np.sqrt(np.mean(scaled ** 2, axis=1)) + 1e-30
            crest = np.clip(amax / rms, 1.0, 6.6)
            idx = np.clip(((crest - 1.0) / 5.6 * 15.0).astype(np.int64), 0, 15)
            dq = np.zeros_like(scaled)
            for d, grid in enumerate(DIALECTS):
                rows = idx == d
                if np.any(rows):
                    dq[rows] = grid.quantize(scaled[rows])
            return QuantResult(dequantized=dq * scales[:, None], scales=scales,
                               ebw=self.ebw, details={"dialect": idx})
        best_err = np.full(n, np.inf)
        best_dq = np.zeros_like(scaled)
        idx = np.zeros(n, dtype=np.int64)
        for d, grid in enumerate(DIALECTS):
            dq = grid.quantize(scaled)
            err = np.sum((dq - scaled) ** 2, axis=1)
            better = err < best_err
            best_err = np.where(better, err, best_err)
            best_dq = np.where(better[:, None], dq, best_dq)
            idx = np.where(better, d, idx)
        return QuantResult(dequantized=best_dq * scales[:, None], scales=scales,
                           ebw=self.ebw, details={"dialect": idx})

    def quantize_weight(self, w: np.ndarray, axis: int = -1) -> np.ndarray:
        self_online, self.online_selection = self.online_selection, False
        try:
            return self.quantize(w, axis=axis)
        finally:
            self.online_selection = self_online

    def quantize_activation(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        self_online, self.online_selection = self.online_selection, True
        try:
            return self.quantize(x, axis=axis)
        finally:
            self.online_selection = self_online


block_dialect = BlockDialect()
