"""Algorithm-level comparators from the paper's evaluation (Tbls. 3, 7)."""

from .ant import ANT_TYPES, MXAnt
from .blockdialect import DIALECTS, BlockDialect, block_dialect
from .gptq import (GPTQQuantizedLM, collect_calibration_inputs,
                   gptq_quantize_matrix, gptq_weight_override)
from .mant import MANT_TYPES, MXMAnt
from .microscopiq import (MicroScopiQ, MicroScopiQWeights, MXIntActivations,
                          microscopiq)
from .olive import MXOliVe
from .rotation import (RotatedFormat, block_rotation, duquant,
                       hadamard_matrix, quarot)

__all__ = [
    "MXAnt", "ANT_TYPES", "MXMAnt", "MANT_TYPES", "MXOliVe",
    "MicroScopiQ", "MicroScopiQWeights", "MXIntActivations", "microscopiq",
    "BlockDialect", "DIALECTS", "block_dialect",
    "RotatedFormat", "hadamard_matrix", "block_rotation", "quarot", "duquant",
    "gptq_quantize_matrix", "collect_calibration_inputs",
    "gptq_weight_override", "GPTQQuantizedLM",
]

mx_ant = MXAnt()
mx_m_ant = MXMAnt()
mx_olive = MXOliVe()
