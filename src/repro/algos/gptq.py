"""MR-GPTQ: GPTQ-style error compensation over MX grids (Tbl. 7).

Standard GPTQ column recursion adapted to group-wise MX formats: when the
sweep reaches a group boundary, the group's shared scales are derived from
the *current* (already compensated) weights using the target format's
scale machinery — the OCP floor rule for MXFP4, or the Sg-EM adaptive
subgroup-scale search for M2XFP weights. Each column is then quantized on
the FP4 grid under those scales and its error is propagated into the
remaining columns through the damped inverse Hessian:

``w[:, j+1:] -= err_j * Hinv[j, j+1:] / Hinv[j, j]``

which is the optimal (OBQ) update given that the remaining weights will be
re-optimized in later steps.
"""

from __future__ import annotations

import numpy as np

from ..core.sg_em import sg_em_encode
from ..errors import ConfigError
from ..formats.registry import FP4_E2M1
from ..models.quantized import QuantizedLM
from ..models.transformer import TransformerLM
from ..mx.base import TensorFormat
from ..mx.scale_rules import shared_scale

__all__ = ["gptq_quantize_matrix", "collect_calibration_inputs",
           "gptq_weight_override", "GPTQQuantizedLM", "mx_scales_for_block"]


def mx_scales_for_block(block: np.ndarray, mode: str, sub_size: int = 8) -> np.ndarray:
    """Per-element dequantization scales for a ``(rows, group)`` block."""
    rows, k = block.shape
    if mode == "mxfp4":
        amax = np.max(np.abs(block), axis=1)
        return np.repeat(shared_scale(amax, FP4_E2M1, "floor")[:, None], k, axis=1)
    if mode == "sg-em":
        enc = sg_em_encode(block, sub_size=sub_size, adaptive=True)
        base = np.exp2(enc.scale_exponents.astype(np.float64))
        mult = 1.0 + enc.sg_codes.astype(np.float64) / 4.0
        return np.repeat(base[:, None] * mult, sub_size, axis=1)
    raise ConfigError(f"unknown GPTQ scale mode {mode!r}")


def gptq_quantize_matrix(w: np.ndarray, hessian: np.ndarray, mode: str = "mxfp4",
                         group: int = 32, damp: float = 0.05,
                         sub_size: int = 8) -> np.ndarray:
    """GPTQ-compensated MX quantization of ``(out, in)`` weights."""
    w = np.array(w, dtype=np.float64)
    n_in = w.shape[1]
    h = np.array(hessian, dtype=np.float64)
    h += damp * np.mean(np.diag(h)) * np.eye(n_in)
    hinv = np.linalg.inv(h)
    out = np.zeros_like(w)
    scales = np.empty_like(w)
    for j in range(n_in):
        if j % group == 0:
            e = min(j + group, n_in)
            scales[:, j:e] = mx_scales_for_block(w[:, j:e], mode, sub_size)
        s = scales[:, j]
        q = FP4_E2M1.quantize(w[:, j] / s) * s
        out[:, j] = q
        err = (w[:, j] - q) / hinv[j, j]
        if j + 1 < n_in:
            w[:, j + 1:] -= np.outer(err, hinv[j, j + 1:])
    return out


def collect_calibration_inputs(model: TransformerLM,
                               tokens: np.ndarray) -> dict[str, np.ndarray]:
    """Per-projection input activations from a calibration forward pass."""
    captured: dict[str, list[np.ndarray]] = {}

    def record(name: str, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        captured.setdefault(name, []).append(x.reshape(-1, x.shape[-1]))
        return x @ w.T

    model.forward(np.atleast_2d(tokens), linear_fn=record)
    return {name: np.concatenate(chunks, axis=0) for name, chunks in captured.items()}


def gptq_weight_override(model: TransformerLM, calib_tokens: np.ndarray,
                         mode: str = "mxfp4", group: int = 32,
                         damp: float = 0.05) -> dict[str, np.ndarray]:
    """GPTQ-quantized weights for every projection of the model."""
    inputs = collect_calibration_inputs(model, calib_tokens)
    override: dict[str, np.ndarray] = {}
    for li, layer in enumerate(model.layers):
        for name in ("wq", "wk", "wv", "wo", "w_gate", "w_up", "w_down"):
            key = f"l{li}.{name}"
            x = inputs[key]
            hessian = x.T @ x / x.shape[0]
            override[key] = gptq_quantize_matrix(layer[name], hessian, mode,
                                                 group=group, damp=damp)
    return override


def GPTQQuantizedLM(model: TransformerLM, fmt: TensorFormat,
                    calib_tokens: np.ndarray, mode: str = "mxfp4",
                    group: int = 32) -> QuantizedLM:
    """A quantized LM whose weights went through MR-GPTQ compensation.

    ``fmt`` still provides the activation path (e.g. MXFP4 or M2XFP's
    Elem-EM); ``mode`` selects the weight-scale machinery.
    """
    override = gptq_weight_override(model, calib_tokens, mode=mode, group=group)
    return QuantizedLM(model, fmt, weight_override=override,
                       calibration_tokens=calib_tokens)
