"""Rotation-based outlier-free quantization: QuaRot and DuQuant (Tbl. 7).

Both schemes multiply weights and activations by an orthogonal transform
before quantization so outliers spread across channels; because the GEMM
operand rotations cancel (``Q_A(xH) Q_W(WH)^T = x W^T`` up to quantization
noise), fake quantization with self-inverting wrappers is *exactly*
equivalent to running the rotated GEMM:

``x_hat = Q_A(xH) H^T`` and ``W_hat = Q_W(WH) H^T`` give
``x_hat W_hat^T = Q_A(xH) Q_W(WH)^T``.

QuaRot uses block Hadamard transforms; DuQuant uses a channel permutation
followed by block-diagonal random rotations (its calibrated zigzag
permutation is simplified to a seeded one, which preserves the mechanism
of redistributing outliers across blocks).
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..mx.base import TensorFormat

__all__ = ["hadamard_matrix", "block_rotation", "RotatedFormat",
           "quarot", "duquant"]


def hadamard_matrix(n: int) -> np.ndarray:
    """Normalized Hadamard matrix for power-of-two ``n``."""
    if n & (n - 1) != 0 or n < 1:
        raise ShapeError(f"Hadamard size must be a power of two, got {n}")
    h = np.array([[1.0]])
    while h.shape[0] < n:
        h = np.block([[h, h], [h, -h]])
    return h / np.sqrt(n)


def block_rotation(dim: int, block: int = 16, kind: str = "hadamard",
                   seed: int = 0) -> np.ndarray:
    """Block-diagonal orthogonal transform over ``dim`` channels."""
    if dim % block != 0:
        raise ShapeError(f"dim {dim} not divisible by rotation block {block}")
    n_blocks = dim // block
    out = np.zeros((dim, dim))
    rng = np.random.default_rng(seed)
    for b in range(n_blocks):
        if kind == "hadamard":
            q = hadamard_matrix(block)
        elif kind == "random":
            q, _ = np.linalg.qr(rng.standard_normal((block, block)))
        else:
            raise ShapeError(f"unknown rotation kind {kind!r}")
        s = slice(b * block, (b + 1) * block)
        out[s, s] = q
    return out


class RotatedFormat(TensorFormat):
    """An inner format applied in a rotated channel basis."""

    def __init__(self, name: str, inner: TensorFormat, kind: str = "hadamard",
                 block: int = 16, permute: bool = False, seed: int = 7) -> None:
        self.name = name
        self.inner = inner
        self.kind = kind
        self.block = int(block)
        self.permute = bool(permute)
        self.seed = int(seed)
        self._cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    @property
    def ebw(self) -> float:
        return self.inner.ebw

    def _transform(self, dim: int) -> tuple[np.ndarray, np.ndarray]:
        """(forward, inverse) transforms for a channel dimension."""
        if dim not in self._cache:
            rot = block_rotation(dim, self.block, self.kind, self.seed + dim)
            if self.permute:
                perm = np.random.default_rng(self.seed + 13 * dim).permutation(dim)
                rot = rot[perm]  # permute channels before rotating
            self._cache[dim] = (rot.T, rot)  # x @ rot.T rotates channels
        return self._cache[dim]

    def _apply(self, x: np.ndarray, axis: int, weight: bool) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        axis = axis % x.ndim
        moved = np.moveaxis(x, axis, -1)
        fwd, inv = self._transform(moved.shape[-1])
        rotated = moved @ fwd
        if weight:
            q = self.inner.quantize_weight(rotated, axis=-1)
        else:
            q = self.inner.quantize_activation(rotated, axis=-1)
        return np.moveaxis(q @ inv, -1, axis)

    def quantize(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        return self._apply(x, axis, weight=False)

    def quantize_weight(self, w: np.ndarray, axis: int = -1) -> np.ndarray:
        return self._apply(w, axis, weight=True)

    def quantize_activation(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        return self._apply(x, axis, weight=False)


def quarot(inner: TensorFormat) -> RotatedFormat:
    """QuaRot: Hadamard rotation + the given base quantizer."""
    return RotatedFormat(f"quarot[{inner.name}]", inner, kind="hadamard")


def duquant(inner: TensorFormat) -> RotatedFormat:
    """DuQuant: permutation + block random rotations + base quantizer."""
    return RotatedFormat(f"duquant[{inner.name}]", inner, kind="random",
                         permute=True)
