"""MX-ANT: per-group adaptive numeric type selection (ANT, MICRO'22).

ANT picks the best scalar type per tensor/channel among INT4, Flint4 and
PoT4. Following the paper's Sec. 6.1, we adapt it to the group-wise MX
setting ("MX-ANT"): every group of 32 carries an E8M0 scale plus a 2-bit
type index choosing the grid that minimizes the group's MSE.
"""

from __future__ import annotations

import numpy as np

from ..formats.e8m0 import E8M0_BITS
from ..formats.intspec import flint4, int4, pot4
from ..formats.registry import FP4_E2M1
from ..mx.base import BlockFormat, QuantResult

__all__ = ["MXAnt", "ANT_TYPES"]

ANT_TYPES = (int4, flint4, pot4)


class MXAnt(BlockFormat):
    """Group-wise type-adaptive quantizer over the ANT type family."""

    def __init__(self, group_size: int = 32, scale_rule: str = "floor") -> None:
        super().__init__(f"mx-ant-g{group_size}", FP4_E2M1, group_size,
                         scale_rule, scale_bits=E8M0_BITS,
                         meta_bits_per_group=2)

    def quantize_groups(self, groups: np.ndarray) -> QuantResult:
        n, _ = groups.shape
        amax = np.max(np.abs(groups), axis=1)
        best_err = np.full(n, np.inf)
        best_dq = np.zeros_like(groups)
        type_idx = np.zeros(n, dtype=np.int64)
        for idx, typ in enumerate(ANT_TYPES):
            # Per-type power-of-two scale fitted to the type's range.
            with np.errstate(divide="ignore"):
                e = np.where(amax > 0,
                             np.ceil(np.log2(np.where(amax > 0, amax, 1.0)
                                             / typ.max_value)), 0.0)
            scales = np.exp2(np.clip(e, -127, 127))
            dq = typ.quantize(groups / scales[:, None]) * scales[:, None]
            err = np.sum((dq - groups) ** 2, axis=1)
            better = err < best_err
            best_err = np.where(better, err, best_err)
            best_dq = np.where(better[:, None], dq, best_dq)
            type_idx = np.where(better, idx, type_idx)
        scales = np.exp2(np.zeros(n))
        return QuantResult(dequantized=best_dq, scales=scales, ebw=self.ebw,
                           details={"type_index": type_idx})
