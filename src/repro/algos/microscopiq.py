"""MicroScopiQ (ISCA'25): outlier-aware microscaling, adapted per Sec. 6.1.

Weights are split into inlier and outlier blocks; outlier blocks keep
their top elements at higher precision (modelled as INT8 refinement of the
top-2 per group) at the cost of heavy structural metadata (24-bit
permutation list + 16-bit identifier + 8-bit MXScale per block, Tbl. 1).
Activations use naive MXINT quantization — the weakness the paper
identifies for W4A4 operation.
"""

from __future__ import annotations

import numpy as np

from ..formats.e8m0 import E8M0_BITS
from ..formats.intspec import IntSpec
from ..formats.registry import FP4_E2M1
from ..mx.base import BlockFormat, QuantResult, TensorFormat

__all__ = ["MicroScopiQWeights", "MXIntActivations", "MicroScopiQ", "microscopiq"]

#: Structural metadata per outlier block (permutation + identifier + scale).
STRUCTURAL_META_BITS = 48


class MicroScopiQWeights(BlockFormat):
    """Inlier/outlier block split with INT8 top-2 refinement."""

    def __init__(self, group_size: int = 32, scale_rule: str = "floor",
                 outlier_block_fraction: float = 0.25) -> None:
        super().__init__(f"microscopiq-w-g{group_size}", FP4_E2M1, group_size,
                         scale_rule, scale_bits=E8M0_BITS,
                         meta_bits_per_group=int(STRUCTURAL_META_BITS
                                                 * outlier_block_fraction))
        self.outlier_block_fraction = float(outlier_block_fraction)
        self._int8 = IntSpec("int8", 8)

    def quantize_groups(self, groups: np.ndarray) -> QuantResult:
        scales = self.group_scales(groups)
        scaled = groups / scales[:, None]
        dq = self.element.quantize(scaled)

        # Blocks with the highest max/mean ratio are outlier blocks.
        amax = np.max(np.abs(groups), axis=1)
        amean = np.mean(np.abs(groups), axis=1) + 1e-30
        ratio = amax / amean
        n = groups.shape[0]
        n_outlier = max(1, int(round(self.outlier_block_fraction * n)))
        outlier_rows = np.argsort(-ratio)[:n_outlier]

        # Outlier blocks: top-2 magnitudes re-quantized on an INT8 grid
        # aligned to the block max (the extra bits the metadata pays for).
        sub = scaled[outlier_rows]
        order = np.argsort(-np.abs(sub), axis=1)[:, :2]
        top_vals = np.take_along_axis(sub, order, axis=1)
        bmax = np.max(np.abs(sub), axis=1, keepdims=True) + 1e-30
        refined = self._int8.quantize(top_vals / bmax * 127.0) / 127.0 * bmax
        block_dq = dq[outlier_rows]
        np.put_along_axis(block_dq, order, refined, axis=1)
        dq[outlier_rows] = block_dq
        return QuantResult(dequantized=dq * scales[:, None], scales=scales,
                           ebw=self.ebw, details={"outlier_rows": outlier_rows})


class MXIntActivations(BlockFormat):
    """Naive MXINT4: uniform INT grid under a floor-rule pow-2 scale."""

    def __init__(self, group_size: int = 32, bits: int = 4) -> None:
        element = IntSpec(f"int{bits}", bits)
        super().__init__(f"mxint{bits}-g{group_size}", element, group_size,
                         scale_rule="floor", scale_bits=E8M0_BITS)

    def quantize_groups(self, groups: np.ndarray) -> QuantResult:
        imax = self.element.max_value
        p = 2.0 ** np.floor(np.log2(imax))
        amax = np.max(np.abs(groups), axis=1)
        e = np.where(amax > 0,
                     np.floor(np.log2(np.where(amax > 0, amax, 1.0) / p)), 0.0)
        scales = np.exp2(np.clip(e, -127, 127))
        q = self.element.quantize(groups / scales[:, None])
        return QuantResult(dequantized=q * scales[:, None], scales=scales, ebw=self.ebw)


class MicroScopiQ(TensorFormat):
    """The full MicroScopiQ recipe: hybrid weights + MXINT activations."""

    def __init__(self, group_size: int = 32) -> None:
        self.weights = MicroScopiQWeights(group_size)
        self.activations = MXIntActivations(group_size, bits=4)
        self.name = f"microscopiq-g{group_size}"

    @property
    def ebw(self) -> float:
        return self.weights.ebw

    @property
    def weight_ebw(self) -> float:
        return self.weights.ebw

    @property
    def activation_ebw(self) -> float:
        return self.activations.ebw

    def quantize(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        return self.activations.quantize(x, axis=axis)

    def quantize_weight(self, w: np.ndarray, axis: int = -1) -> np.ndarray:
        return self.weights.quantize(w, axis=axis)

    def quantize_activation(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        return self.activations.quantize(x, axis=axis)


microscopiq = MicroScopiQ()
