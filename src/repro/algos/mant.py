"""MX-M-ANT: mathematically adaptive numeric types (M-ANT, HPCA'25).

M-ANT generalizes ANT to a dictionary of 16 data types whose grids are
tuned to different group statistics. We adapt it to the MX setting like
the paper does: group 32, E8M0 scale, 4-bit per-group type index. The
dictionary spans uniform (INT), float (ExMy), power-of-two and power-law
("stretched") grids, which is the M-ANT design space.
"""

from __future__ import annotations

import numpy as np

from ..formats.e8m0 import E8M0_BITS
from ..formats.intspec import GridSpec, flint4, int4, pot4
from ..formats.registry import FP4_E2M1
from ..mx.base import BlockFormat, QuantResult

__all__ = ["MANT_TYPES", "MXMAnt"]


def _power_law(gamma: float) -> GridSpec:
    """An 8-level grid with power-law spacing, normalized to max 6."""
    levels = 6.0 * (np.arange(8) / 7.0) ** gamma
    return GridSpec(f"pl{gamma:.2f}", tuple(float(v) for v in levels), 4)


def _build_dictionary() -> tuple[GridSpec, ...]:
    fp4 = GridSpec("e2m1", tuple(float(v) for v in FP4_E2M1.grid), 4)
    power_laws = tuple(_power_law(g) for g in
                       (0.6, 0.8, 1.2, 1.4, 1.7, 2.0, 2.4, 2.8))
    asym = GridSpec("dense-low", (0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 3.0, 6.0), 4)
    wide = GridSpec("dense-high", (0.0, 1.0, 2.0, 3.0, 4.0, 4.75, 5.5, 6.0), 4)
    log15 = GridSpec("log1.5", (0.0, 0.26, 0.40, 0.59, 0.89, 1.8, 2.7, 6.0), 4)
    mid = GridSpec("mid", (0.0, 0.75, 1.5, 2.25, 3.0, 4.0, 5.0, 6.0), 4)
    return (int4, flint4, pot4, fp4, asym, wide, log15, mid) + power_laws


MANT_TYPES = _build_dictionary()
assert len(MANT_TYPES) == 16


class MXMAnt(BlockFormat):
    """Group-wise 16-type adaptive quantizer (MX-adapted M-ANT)."""

    def __init__(self, group_size: int = 32, scale_rule: str = "floor") -> None:
        super().__init__(f"mx-m-ant-g{group_size}", FP4_E2M1, group_size,
                         scale_rule, scale_bits=E8M0_BITS,
                         meta_bits_per_group=4)

    def quantize_groups(self, groups: np.ndarray) -> QuantResult:
        n, _ = groups.shape
        amax = np.max(np.abs(groups), axis=1)
        best_err = np.full(n, np.inf)
        best_dq = np.zeros_like(groups)
        type_idx = np.zeros(n, dtype=np.int64)
        for idx, typ in enumerate(MANT_TYPES):
            with np.errstate(divide="ignore"):
                e = np.where(amax > 0,
                             np.ceil(np.log2(np.where(amax > 0, amax, 1.0)
                                             / typ.max_value)), 0.0)
            scales = np.exp2(np.clip(e, -127, 127))
            dq = typ.quantize(groups / scales[:, None]) * scales[:, None]
            err = np.sum((dq - groups) ** 2, axis=1)
            better = err < best_err
            best_err = np.where(better, err, best_err)
            best_dq = np.where(better[:, None], dq, best_dq)
            type_idx = np.where(better, idx, type_idx)
        return QuantResult(dequantized=best_dq, scales=np.ones(n), ebw=self.ebw,
                           details={"type_index": type_idx})
