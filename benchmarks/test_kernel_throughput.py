"""Kernel throughput micro-benchmarks (elements/sec per format).

Small, fast-running pytest-benchmark cases so every suite run leaves a
throughput trace per format, plus an opt-in regression gate
(``REPRO_BENCH_REGRESSION=1``, listed in the README's environment-knob
table) that re-runs the full kernel benchmark and compares speedups
against the committed ``BENCH_kernels.json``.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core import ElemEM, M2NVFP4, SgEE, SgEM
from repro.formats.registry import FP4_E2M1
from repro.kernels import fast_kernels, reference_kernels
from repro.mx import MXFP4, NVFP4

_RNG = np.random.default_rng(42)
_ACT = _RNG.standard_normal((128, 2048))
_WEIGHT = _RNG.standard_normal((512, 512))


def _throughput(benchmark, fn, elements: int) -> None:
    benchmark.pedantic(fn, rounds=3, iterations=1)
    benchmark.extra_info["elements_per_sec"] = elements / benchmark.stats["min"]


def test_fp4_encode_throughput(benchmark):
    x = _ACT.ravel()
    _throughput(benchmark, lambda: FP4_E2M1.encode(x), x.size)


def test_mxfp4_throughput(benchmark):
    _throughput(benchmark, lambda: MXFP4().quantize(_ACT, axis=-1), _ACT.size)


def test_nvfp4_throughput(benchmark):
    _throughput(benchmark, lambda: NVFP4().quantize(_ACT, axis=-1), _ACT.size)


def test_elem_em_throughput(benchmark):
    _throughput(benchmark, lambda: ElemEM().quantize(_ACT, axis=-1), _ACT.size)


def test_sg_em_adaptive_throughput(benchmark):
    _throughput(benchmark,
                lambda: SgEM(adaptive=True).quantize(_WEIGHT, axis=-1),
                _WEIGHT.size)


def test_sg_ee_adaptive_throughput(benchmark):
    _throughput(benchmark,
                lambda: SgEE(adaptive=True).quantize(_WEIGHT, axis=-1),
                _WEIGHT.size)


def test_m2nvfp4_weight_throughput(benchmark):
    _throughput(benchmark,
                lambda: M2NVFP4().quantize_weight(_WEIGHT, axis=-1),
                _WEIGHT.size)


def test_sg_em_fast_beats_reference():
    """Cheap inline sanity check that the dispatch actually engages."""
    import time

    def _timed(fn):
        t0 = time.perf_counter()
        fn()
        return time.perf_counter() - t0

    def best_of(fn, reps=3):
        fn()  # warm caches
        return min(_timed(fn) for _ in range(reps))

    w = _RNG.standard_normal((1024, 32))
    fmt = SgEM(adaptive=True)
    with reference_kernels():
        ref = fmt.quantize(w, axis=-1)
        t_ref = best_of(lambda: fmt.quantize(w, axis=-1))
    with fast_kernels():
        fast = fmt.quantize(w, axis=-1)
        t_fast = best_of(lambda: fmt.quantize(w, axis=-1))
    assert fast.tobytes() == ref.tobytes()
    # Conservative bound: the recorded speedup is ~5-9x; anything under
    # 1.5x on warmed best-of-3 timings means the fast path silently
    # stopped dispatching.
    assert t_fast < t_ref / 1.5


@pytest.mark.skipif(os.environ.get("REPRO_BENCH_REGRESSION", "0") != "1",
                    reason="opt-in: export REPRO_BENCH_REGRESSION=1")
def test_no_kernel_throughput_regression():
    """Full fresh benchmark vs the committed BENCH_kernels.json."""
    root = Path(__file__).resolve().parent.parent
    baseline = root / "BENCH_kernels.json"
    assert baseline.exists(), "no committed BENCH_kernels.json baseline"
    sys.path.insert(0, str(root / "scripts"))
    try:
        from check_bench_regression import run_check
        assert run_check(str(baseline), None, threshold=0.2, quick=False) == 0
    finally:
        sys.path.pop(0)


@pytest.mark.skipif(os.environ.get("REPRO_BENCH_REGRESSION", "0") != "1",
                    reason="opt-in: export REPRO_BENCH_REGRESSION=1")
@pytest.mark.parametrize("suite,baseline_name,module", [
    ("codec", "BENCH_codec.json", "bench_codec"),
    ("eval", "BENCH_eval.json", "bench_eval"),
    ("server", "BENCH_server.json", "bench_server"),
    ("kv", "BENCH_kv.json", "bench_kv"),
])
def test_no_bench_suite_regression(suite, baseline_name, module):
    """Quick fresh codec/eval/server/kv benchmarks vs committed baselines.

    Quick mode shrinks tensors and profiles, so the loosened threshold
    below absorbs the extra noise while still catching a silently
    disabled fast path (those regressions are 2-10x, not 40%).
    """
    root = Path(__file__).resolve().parent.parent
    baseline = root / baseline_name
    assert baseline.exists(), f"no committed {baseline_name} baseline"
    sys.path.insert(0, str(root / "scripts"))
    try:
        from check_bench_regression import run_check
        assert run_check(str(baseline), None, threshold=0.4, quick=True,
                         bench_module=module, suite=suite) == 0
    finally:
        sys.path.pop(0)
