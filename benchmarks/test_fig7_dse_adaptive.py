"""Benchmark regenerating paper artifact fig7 (see DESIGN.md index)."""

import pytest

pytestmark = pytest.mark.slow  # full experiment arm; run via `pytest -m slow`

from repro.experiments import run_experiment


def test_fig7_dse_adaptive(benchmark, fast):
    result = benchmark.pedantic(
        lambda: run_experiment("fig7", fast=fast), rounds=1, iterations=1)
    print()
    print(result.render())

    assert any(r[1] == "sg-em-2bit" for r in result.rows)
