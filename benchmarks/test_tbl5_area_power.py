"""Benchmark regenerating paper artifact tbl5 (see DESIGN.md index)."""

import pytest

pytestmark = pytest.mark.slow  # full experiment arm; run via `pytest -m slow`

from repro.experiments import run_experiment


def test_tbl5_area_power(benchmark, fast):
    result = benchmark.pedantic(
        lambda: run_experiment("tbl5", fast=fast), rounds=1, iterations=1)
    print()
    print(result.render())

    assert abs(result.rows[-1][2] - 1.051) < 0.02
