"""Benchmark regenerating paper artifact fig6 (see DESIGN.md index)."""

import pytest

pytestmark = pytest.mark.slow  # full experiment arm; run via `pytest -m slow`

from repro.experiments import run_experiment


def test_fig6_dse_fixed(benchmark, fast):
    result = benchmark.pedantic(
        lambda: run_experiment("fig6", fast=fast), rounds=1, iterations=1)
    print()
    print(result.render())

    assert any(r[1] == "elem-em-top1" for r in result.rows)
