"""Benchmark regenerating paper artifact tbl2 (see DESIGN.md index)."""

import pytest

pytestmark = pytest.mark.slow  # full experiment arm; run via `pytest -m slow`

from repro.experiments import run_experiment


def test_tbl2_zero_shot(benchmark, fast):
    result = benchmark.pedantic(
        lambda: run_experiment("tbl2", fast=fast), rounds=1, iterations=1)
    print()
    print(result.render())

    loss = result.extras["mean_loss"]
    assert loss["m2xfp"] < loss["smx4"]
