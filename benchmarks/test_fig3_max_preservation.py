"""Benchmark regenerating paper artifact fig3 (see DESIGN.md index)."""

import pytest

pytestmark = pytest.mark.slow  # full experiment arm; run via `pytest -m slow`

from repro.experiments import run_experiment


def test_fig3_max_preservation(benchmark, fast):
    result = benchmark.pedantic(
        lambda: run_experiment("fig3", fast=fast), rounds=1, iterations=1)
    print()
    print(result.render())

    assert result.rows, "no rows produced"
    by = {(r[0], r[1]): r for r in result.rows}
    for (model, fmt), row in by.items():
        if fmt == "mxfp4":
            assert row[3] < row[2], "max preservation should lower mxfp4 ppl"
