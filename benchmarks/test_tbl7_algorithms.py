"""Benchmark regenerating paper artifact tbl7 (see DESIGN.md index)."""

import pytest

pytestmark = pytest.mark.slow  # full experiment arm; run via `pytest -m slow`

from repro.experiments import run_experiment


def test_tbl7_algorithms(benchmark, fast):
    result = benchmark.pedantic(
        lambda: run_experiment("tbl7", fast=fast), rounds=1, iterations=1)
    print()
    print(result.render())

    t = result.extras["table"]
    assert t["mr-gptq-m2xfp"][0] <= t["m2xfp"][0] * 1.05
