"""Benchmark regenerating paper artifact fig13 (see DESIGN.md index)."""

import pytest

pytestmark = pytest.mark.slow  # full experiment arm; run via `pytest -m slow`

from repro.experiments import run_experiment


def test_fig13_perf_energy(benchmark, fast):
    result = benchmark.pedantic(
        lambda: run_experiment("fig13", fast=fast), rounds=1, iterations=1)
    print()
    print(result.render())

    assert 1.5 <= result.extras["speedup"] <= 2.3
