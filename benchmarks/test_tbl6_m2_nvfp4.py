"""Benchmark regenerating paper artifact tbl6 (see DESIGN.md index)."""

import pytest

pytestmark = pytest.mark.slow  # full experiment arm; run via `pytest -m slow`

from repro.experiments import run_experiment


def test_tbl6_m2_nvfp4(benchmark, fast):
    result = benchmark.pedantic(
        lambda: run_experiment("tbl6", fast=fast), rounds=1, iterations=1)
    print()
    print(result.render())

    table = result.extras["table"]
    wins = sum(table["m2-nvfp4"][k] < table["nvfp4"][k] for k in table["nvfp4"])
    assert wins >= len(table["nvfp4"]) / 2
