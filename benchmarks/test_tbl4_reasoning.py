"""Benchmark regenerating paper artifact tbl4 (see DESIGN.md index)."""

import pytest

pytestmark = pytest.mark.slow  # full experiment arm; run via `pytest -m slow`

from repro.experiments import run_experiment


def test_tbl4_reasoning(benchmark, fast):
    result = benchmark.pedantic(
        lambda: run_experiment("tbl4", fast=fast), rounds=1, iterations=1)
    print()
    print(result.render())

    loss = result.extras["loss"]
    for (model, method), v in loss.items():
        if method == "m2xfp":
            assert v <= loss[(model, "mxfp4")] + 1e-9
