"""Shared benchmark helpers.

Benchmarks default to fast mode (reduced eval sizes / profile subsets) so
the whole suite regenerates every table and figure in minutes. Set
``REPRO_FULL=1`` for full-size runs matching EXPERIMENTS.md.
"""

from __future__ import annotations

import os

import pytest


def fast_mode() -> bool:
    """False when REPRO_FULL=1 is exported."""
    return os.environ.get("REPRO_FULL", "0") != "1"


@pytest.fixture(scope="session")
def fast() -> bool:
    """Fixture flavour of :func:`fast_mode`."""
    return fast_mode()


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
