"""Benchmark regenerating paper artifact tbl3 (see DESIGN.md index)."""

import pytest

pytestmark = pytest.mark.slow  # full experiment arm; run via `pytest -m slow`

from repro.experiments import run_experiment


def test_tbl3_wikitext_ppl(benchmark, fast):
    result = benchmark.pedantic(
        lambda: run_experiment("tbl3", fast=fast), rounds=1, iterations=1)
    print()
    print(result.render())

    table = result.extras["table"]
    for key in table["fp16"]:
        assert table["m2xfp"][key] < table["mxfp4"][key]
