"""Benchmark regenerating paper artifact tbl8 (see DESIGN.md index)."""

import pytest

pytestmark = pytest.mark.slow  # full experiment arm; run via `pytest -m slow`

from repro.experiments import run_experiment


def test_tbl8_scale_rules(benchmark, fast):
    result = benchmark.pedantic(
        lambda: run_experiment("tbl8", fast=fast), rounds=1, iterations=1)
    print()
    print(result.render())

    for row in result.rows:
        assert row[2] < row[1]  # m2xfp beats mxfp4 under every rule
