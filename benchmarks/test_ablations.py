"""Benchmark regenerating paper artifact ablations (see DESIGN.md index)."""

import pytest

pytestmark = pytest.mark.slow  # full experiment arm; run via `pytest -m slow`

from repro.experiments import run_experiment


def test_ablations(benchmark, fast):
    result = benchmark.pedantic(
        lambda: run_experiment("ablations", fast=fast), rounds=1, iterations=1)
    print()
    print(result.render())

    assert result.extras["clamp_vs_exact"] < 0.5
