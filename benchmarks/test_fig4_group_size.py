"""Benchmark regenerating paper artifact fig4 (see DESIGN.md index)."""

import pytest

pytestmark = pytest.mark.slow  # full experiment arm; run via `pytest -m slow`

from repro.experiments import run_experiment


def test_fig4_group_size(benchmark, fast):
    result = benchmark.pedantic(
        lambda: run_experiment("fig4", fast=fast), rounds=1, iterations=1)
    print()
    print(result.render())

    ebws = [r[1] for r in result.rows[:-1]]
    assert ebws == sorted(ebws)
