"""Network quantization server: protocol, bit-exactness, backpressure.

The contract under test, in order of importance:

1. **End-to-end bit-exactness** — for every catalog format and both
   operand paths, the bytes a client gets over the socket are identical
   to the local ``quantize_weight`` / ``quantize_activation`` output
   (and packed responses are byte-identical to the local codec's
   ``encode``), including under concurrent multi-client load.
2. **Wire stability** — frames are pinned byte-exactly by
   ``tests/golden/wire_vectors.json``; malformed or mis-versioned
   frames are typed protocol errors, never crashes or hangs.
3. **Backpressure** — at the in-flight bound the server answers
   ``BUSY`` immediately instead of buffering without bound.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from concurrent.futures import Future
from pathlib import Path

import numpy as np
import pytest

from repro.codec import PackedTensor, encode
from repro.errors import (CodecError, ConfigError, FormatError,
                          ProtocolError, ServerBusy, ServerDraining,
                          ServerError)
from repro.runner.formats import list_formats, make_format
from repro.server import (AsyncQuantClient, QuantClient, QuantServer,
                          ServerThread, local_expected, protocol)

GOLDEN_PATH = Path(__file__).parent / "golden" / "wire_vectors.json"


# ----------------------------------------------------------------------
# Protocol frames
# ----------------------------------------------------------------------
def test_request_frame_roundtrip(rng):
    x = rng.standard_normal((3, 32))
    blob = protocol.encode_request(7, x, fmt="m2xfp", op="weight",
                                   dispatch="reference", packed=True,
                                   fingerprint="fp")
    frame = protocol.frame_from_bytes(blob)
    assert frame.kind == protocol.KIND_REQUEST
    assert frame.request_id == 7
    req = protocol.decode_request(frame)
    assert (req.format_name, req.op, req.dispatch, req.packed,
            req.fingerprint) == ("m2xfp", "weight", "reference", True, "fp")
    assert req.x.tobytes() == np.asarray(x, dtype=np.float64).tobytes()


def test_response_frame_roundtrips(rng):
    arr = rng.standard_normal((2, 16))
    frame = protocol.frame_from_bytes(
        protocol.encode_response_array(3, arr, fingerprint="f"))
    out = protocol.response_result(frame)
    assert out.tobytes() == arr.tobytes() and out.shape == arr.shape

    pt = encode(make_format("mxfp4"), rng.standard_normal((2, 32)))
    frame = protocol.frame_from_bytes(
        protocol.encode_response_packed(4, pt.to_bytes()))
    assert protocol.response_result(frame).to_bytes() == pt.to_bytes()


@pytest.mark.parametrize("status,exc_cls", [
    (protocol.Status.BUSY, ServerBusy),
    (protocol.Status.FORMAT_ERROR, FormatError),
    (protocol.Status.CONFIG_ERROR, ConfigError),
    (protocol.Status.CODEC_ERROR, CodecError),
    (protocol.Status.PROTOCOL_ERROR, ProtocolError),
    (protocol.Status.INTERNAL_ERROR, ServerError),
    (protocol.Status.DRAINING, ServerDraining),
])
def test_error_status_maps_to_typed_exception(status, exc_cls):
    frame = protocol.frame_from_bytes(
        protocol.encode_response_error(9, status, "boom"))
    with pytest.raises(exc_cls, match="boom"):
        protocol.response_result(frame)


def test_malformed_frames_raise_protocol_error(rng):
    good = protocol.encode_request(1, rng.standard_normal(8), fmt="m2xfp")
    with pytest.raises(ProtocolError, match="magic"):
        protocol.frame_from_bytes(good[:4] + b"XXXX" + good[8:])
    bad_version = bytearray(good)
    bad_version[8] = 99  # version byte (after 4B length + 4B magic)
    with pytest.raises(ProtocolError, match="version"):
        protocol.frame_from_bytes(bytes(bad_version))
    with pytest.raises(ProtocolError, match="length prefix"):
        protocol.frame_from_bytes(good[:-1])
    with pytest.raises(ProtocolError, match="limit"):
        protocol.frame_from_bytes(b"\xff\xff\xff\xff" + good[4:])


def test_request_validation(rng):
    x = rng.standard_normal(8)
    for kwargs, msg in [
        (dict(op="nope"), "op"),
        (dict(dispatch="warp"), "dispatch"),
    ]:
        blob = protocol.encode_request(1, x, fmt="m2xfp", **kwargs)
        with pytest.raises(ProtocolError, match=msg):
            protocol.decode_request(protocol.frame_from_bytes(blob))
    # Payload length must agree with the declared shape.
    frame = protocol.frame_from_bytes(
        protocol.encode_request(1, x, fmt="m2xfp"))
    frame.meta["shape"] = [99]
    with pytest.raises(ProtocolError, match="payload"):
        protocol.decode_request(frame)


# ----------------------------------------------------------------------
# Golden wire vectors
# ----------------------------------------------------------------------
def test_wire_vectors_pinned():
    """Frames rebuilt from committed inputs must match the pinned bytes."""
    assert GOLDEN_PATH.exists(), \
        "wire vectors missing; run scripts/regen_wire_vectors.py --regen"
    with open(GOLDEN_PATH) as f:
        golden = json.load(f)
    assert golden["protocol_version"] == protocol.PROTOCOL_VERSION, \
        "protocol version changed without regenerating the wire vectors"
    scripts = Path(__file__).parent.parent / "scripts"
    sys.path.insert(0, str(scripts))
    try:
        from regen_wire_vectors import build_payload
        rebuilt = build_payload()
    finally:
        sys.path.pop(0)
    assert set(rebuilt["cases"]) == set(golden["cases"])
    for key, case in sorted(golden["cases"].items()):
        fresh = rebuilt["cases"][key]
        assert fresh["request_hex"] == case["request_hex"], \
            f"{key}: request frame drifted from the golden bytes"
        assert fresh["response_hex"] == case["response_hex"], \
            f"{key}: response frame drifted from the golden bytes"
        # The pinned frames must also still parse and round-trip.
        req = protocol.decode_request(
            protocol.frame_from_bytes(bytes.fromhex(case["request_hex"])))
        assert req.format_name == case["format"] and req.op == case["op"]
        result = protocol.response_result(
            protocol.frame_from_bytes(bytes.fromhex(case["response_hex"])))
        expected = local_expected(req.x, fmt=case["format"], op=case["op"],
                                  packed=case["packed"])
        if case["packed"]:
            assert result.to_bytes() == expected.to_bytes()
        else:
            assert result.tobytes() == expected.tobytes()
    # The v2 control frames (PING / HEALTH / DRAIN) are pinned too.
    control = golden["control"]
    assert rebuilt["control"] == control
    ping = protocol.frame_from_bytes(bytes.fromhex(control["ping_hex"]))
    assert ping.kind == protocol.KIND_PING
    assert ping.request_id == control["request_id"]
    health = protocol.decode_health(
        protocol.frame_from_bytes(bytes.fromhex(control["health_hex"])))
    assert health == control["health_info"]
    drain = protocol.frame_from_bytes(bytes.fromhex(control["drain_hex"]))
    assert drain.kind == protocol.KIND_DRAIN


# ----------------------------------------------------------------------
# End-to-end over a real socket
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def server():
    with ServerThread(port=0, max_delay_s=0.0005) as st:
        yield st


def test_every_catalog_format_bit_exact_over_socket(server, rng):
    """Acceptance: socket results == local quantize for all 21 formats."""
    x = rng.standard_normal((4, 64))
    with QuantClient(port=server.port) as cli:
        for name in list_formats():
            for op in ("weight", "activation"):
                out = cli.quantize(x, fmt=name, op=op)
                expect = local_expected(x, fmt=name, op=op)
                assert out.tobytes() == expect.tobytes(), \
                    f"{name}:{op} drifted over the wire"


def test_packed_responses_byte_identical_to_local_encode(server, rng):
    x = rng.standard_normal((4, 64))
    with QuantClient(port=server.port) as cli:
        for name in ("m2xfp", "elem-em", "m2-nvfp4", "mxfp4"):
            pt = cli.quantize(x, fmt=name, op="weight", packed=True)
            assert isinstance(pt, PackedTensor)
            local = encode(make_format(name), x, op="weight", axis=-1)
            assert pt.to_bytes() == local.to_bytes(), \
                f"{name}: packed bytes differ from local codec output"


def test_concurrent_multi_client_load_bit_identical(server, rng):
    """N threads x M requests each: every response equals serial local."""
    arms = [("m2xfp", "activation"), ("elem-em", "activation"),
            ("sg-em", "weight"), ("nvfp4", "activation")]
    inputs = [rng.standard_normal((2 + i % 3, 64)) for i in range(8)]
    expected = {(a, i): local_expected(x, fmt=a[0], op=a[1]).tobytes()
                for a in arms for i, x in enumerate(inputs)}
    failures: list[str] = []

    def hammer(worker_id: int) -> None:
        try:
            with QuantClient(port=server.port) as cli:
                for rep in range(2):
                    for ai, arm in enumerate(arms):
                        for i, x in enumerate(inputs):
                            if (worker_id + ai + i) % 2:
                                continue  # vary interleaving per thread
                            out = cli.quantize(x, fmt=arm[0], op=arm[1])
                            if out.tobytes() != expected[(arm, i)]:
                                failures.append(
                                    f"worker {worker_id}: {arm} input {i}")
        except BaseException as exc:  # pragma: no cover - surfaced below
            failures.append(f"worker {worker_id}: {exc!r}")

    threads = [threading.Thread(target=hammer, args=(w,)) for w in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not failures, failures


def test_pipelined_requests_resolve_in_any_order(server, rng):
    xs = [rng.standard_normal((2, 64)) * (i + 1) for i in range(6)]
    with QuantClient(port=server.port) as cli:
        rids = [cli.submit(x, fmt="m2xfp") for x in xs]
        for rid, x in reversed(list(zip(rids, xs))):  # gather backwards
            out = cli.result(rid)
            assert out.tobytes() == \
                local_expected(x, fmt="m2xfp").tobytes()


def test_dispatch_modes_over_socket(server, rng):
    x = rng.standard_normal((4, 64))
    with QuantClient(port=server.port) as cli:
        for dispatch in ("fast", "reference", "bittwiddle"):
            cli.quantize(x, fmt="m2xfp", op="weight", dispatch=dispatch,
                         verify=True)
    keys = set(server.server._services)
    assert {("m2xfp", d, False) for d in ("fast", "reference", "bittwiddle")} \
        <= keys, "dispatch modes must map to distinct service arms"


def test_fingerprint_pins_the_format_config(server, rng):
    x = rng.standard_normal((2, 64))
    with QuantClient(port=server.port) as cli:
        cli.quantize(x, fmt="m2xfp",
                     fingerprint=repr(make_format("m2xfp")))  # match: fine
        with pytest.raises(ConfigError, match="fingerprint"):
            cli.quantize(x, fmt="m2xfp", fingerprint="bogus-config")


def test_server_errors_are_typed_client_side(server, rng):
    with QuantClient(port=server.port) as cli:
        with pytest.raises(FormatError, match="non-finite"):
            cli.quantize(np.array([[np.nan] * 32]), fmt="mxfp4")
        with pytest.raises(ConfigError, match="unknown format"):
            cli.quantize(rng.standard_normal((2, 32)), fmt="not-a-format")
        # The connection survives typed errors.
        cli.quantize(rng.standard_normal((2, 32)), fmt="mxfp4", verify=True)


def test_mis_versioned_frame_gets_protocol_error(server, rng):
    import socket
    good = bytearray(protocol.encode_request(
        1, rng.standard_normal(8), fmt="m2xfp"))
    good[8] = protocol.PROTOCOL_VERSION + 1  # version byte
    with socket.create_connection(("127.0.0.1", server.port), 10) as sock:
        sock.sendall(bytes(good))
        frame = protocol.recv_frame(sock)
        assert frame.status == protocol.Status.PROTOCOL_ERROR
        with pytest.raises(ProtocolError, match="version"):
            protocol.response_result(frame)


def test_async_client_pipelines(server, rng):
    import asyncio

    xs = [rng.standard_normal((2, 64)) * (i + 1) for i in range(4)]

    async def go():
        async with AsyncQuantClient(port=server.port) as cli:
            outs = await asyncio.gather(*[
                cli.quantize(x, fmt="elem-em", verify=True) for x in xs])
        return outs

    outs = asyncio.run(go())
    for x, out in zip(xs, outs):
        assert out.tobytes() == local_expected(x, fmt="elem-em").tobytes()


# ----------------------------------------------------------------------
# Backpressure
# ----------------------------------------------------------------------
class _StalledService:
    """A service stub whose futures resolve only when the test says so."""

    def __init__(self):
        self.fmt = make_format("m2xfp")
        self.futures: list[Future] = []
        self.released = threading.Event()

    def submit(self, x, op="activation", *, trace=None):
        fut: Future = Future()
        self.futures.append((fut, np.zeros_like(x)))
        if self.released.is_set():
            fut.set_result(np.zeros_like(x))
        return fut

    def release(self):
        self.released.set()
        for fut, result in self.futures:
            if not fut.done():
                fut.set_result(result)

    def close(self):
        self.release()


def test_busy_backpressure_not_a_hang(rng, monkeypatch):
    """At the in-flight bound the server answers BUSY immediately."""
    stub = _StalledService()
    monkeypatch.setattr(QuantServer, "_get_service", lambda self, req: stub)
    with ServerThread(port=0, max_inflight=2) as st:
        with QuantClient(port=st.port, timeout=30.0) as cli:
            x = rng.standard_normal((2, 32))
            rids = [cli.submit(x, fmt="m2xfp") for _ in range(4)]
            # Requests 3 and 4 exceed max_inflight=2 while 1 and 2 are
            # stalled: both must come back BUSY without waiting.
            for rid in rids[2:]:
                with pytest.raises(ServerBusy, match="in-flight"):
                    cli.result(rid)
            assert st.server.stats["busy_rejections"] == 2
            stub.release()
            for rid in rids[:2]:  # the admitted pair still completes
                assert cli.result(rid).shape == x.shape
        # The decrement runs just after the response hits the wire; give
        # the loop a moment before asserting the counter drained.
        deadline = time.monotonic() + 5.0
        while st.server._inflight and time.monotonic() < deadline:
            time.sleep(0.01)
        assert st.server._inflight == 0


# ----------------------------------------------------------------------
# Graceful lifecycle: ping / health / drain
# ----------------------------------------------------------------------
def test_ping_reports_health(rng):
    x = rng.standard_normal((2, 32))
    with ServerThread(port=0) as st, QuantClient(port=st.port) as cli:
        info = cli.ping()
        assert info["status"] == "ok" and info["draining"] is False
        assert info["protocol_version"] == protocol.PROTOCOL_VERSION
        assert info["max_inflight"] == st.server.max_inflight
        cli.quantize(x, fmt="m2xfp")
        assert cli.ping()["stats"]["responses"] >= 1
        assert st.server.stats["pings"] == 2


def test_drain_finishes_inflight_then_exits(rng, monkeypatch):
    """DRAIN answers in-flight work, rejects new work with a retryable
    DRAINING error, and shuts the server down cleanly."""
    x = rng.standard_normal((2, 32))
    stub = _StalledService()
    monkeypatch.setattr(QuantServer, "_get_service", lambda self, req: stub)
    st = ServerThread(port=0).__enter__()
    try:
        with QuantClient(port=st.port, timeout=30.0) as cli:
            rid = cli.submit(x, fmt="m2xfp")  # admitted, then stalled
            ack = cli.drain()
            assert ack["draining"] is True
            with pytest.raises(ServerDraining, match="draining"):
                cli.quantize(x, fmt="m2xfp")
            # The admitted request is not dropped: the drain waits for
            # it, and the answer still reaches this client.
            stub.release()
            assert cli.result(rid).shape == x.shape
        # DRAINING is retryable backpressure (a ServerBusy subclass):
        # clients with a retry budget move to another worker or wait.
        assert issubclass(ServerDraining, ServerBusy)
        deadline = time.monotonic() + 30.0
        while st._thread is not None and st._thread.is_alive() \
                and time.monotonic() < deadline:
            time.sleep(0.02)
        assert st._thread is None or not st._thread.is_alive()
        assert st.server.stats["drain_requests"] == 1
        assert st.server.stats["draining_rejections"] == 1
    finally:
        st.__exit__(None, None, None)


def test_server_thread_drain_method(rng):
    x = rng.standard_normal((2, 32))
    with ServerThread(port=0) as st:
        with QuantClient(port=st.port) as cli:
            cli.quantize(x, fmt="m2xfp")
        st.drain(timeout=30.0)
        assert st.server.draining


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------
def test_cli_serve_parses_and_wires_config(monkeypatch):
    from repro.runner import cli as cli_mod

    captured = {}

    class _FakeServer:
        def __init__(self, **kwargs):
            captured.update(kwargs)

    def _fake_run(server, sock=None, ready=None):
        captured["ran"] = True

    import repro.server as server_pkg
    monkeypatch.setattr(server_pkg, "QuantServer", _FakeServer)
    monkeypatch.setattr(server_pkg, "run_server", _fake_run)
    rc = cli_mod.main(["serve", "--port", "0", "--max-inflight", "7",
                       "--max-batch", "16", "--max-requests", "3",
                       "--read-timeout-s", "5", "--drain-timeout-s", "9"])
    assert rc == 0 and captured["ran"]
    assert captured["port"] == 0
    assert captured["max_inflight"] == 7
    assert captured["max_batch"] == 16
    assert captured["max_requests"] == 3
    assert captured["read_timeout_s"] == 5.0
    assert captured["drain_timeout_s"] == 9.0


@pytest.mark.slow
def test_cli_serve_subprocess_end_to_end(rng):
    import subprocess

    repo = Path(__file__).resolve().parent.parent
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--max-requests", "2"],
        stdout=subprocess.PIPE, text=True, cwd=repo,
        env={**__import__("os").environ, "PYTHONPATH": str(repo / "src")})
    try:
        line = proc.stdout.readline()
        assert "serving on" in line
        port = int(line.split("serving on ")[1].split()[0].rsplit(":", 1)[1])
        x = rng.standard_normal((4, 64))
        with QuantClient(port=port) as cli:
            cli.quantize(x, fmt="m2xfp", verify=True)
            cli.quantize(x, fmt="mxfp4", verify=True)
        assert proc.wait(timeout=60) == 0  # --max-requests 2 exits cleanly
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


# ----------------------------------------------------------------------
# Multi-process worker sharding
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_worker_pool_shards_connections_bit_exactly(rng):
    from repro.server import WorkerPool

    x = rng.standard_normal((4, 64))
    expect = local_expected(x, fmt="m2xfp").tobytes()
    with WorkerPool(workers=2, port=0, max_delay_s=0.0005) as pool:
        assert pool.alive() == 2
        for _ in range(6):  # fresh connections land on either worker
            with QuantClient(port=pool.port) as cli:
                assert cli.quantize(x, fmt="m2xfp").tobytes() == expect
    assert pool.alive() == 0


@pytest.mark.slow
def test_load_generator_smoke():
    """bench_server's quick mode produces the committed-schema payload."""
    scripts = Path(__file__).parent.parent / "scripts"
    sys.path.insert(0, str(scripts))
    try:
        from bench_server import run_benchmarks
        payload = run_benchmarks(quick=True)
    finally:
        sys.path.pop(0)
    assert payload["arms"], "no load-test arms recorded"
    for arm in payload["arms"].values():
        for point in arm.values():
            assert point["requests"] > 0
            assert point["rps"] > 0
            assert point["p50_ms"] <= point["p99_ms"]
    sharded = payload["sharded"]
    assert sharded["single"]["rps"] > 0 and sharded["sharded"]["rps"] > 0
    assert sharded["speedup_sharded_vs_single"] > 0
    chaos = payload["chaos"]
    assert chaos["load"]["requests"] > 0 and chaos["load"]["rps"] > 0
    assert chaos["kill_prob"] > 0
    assert chaos["proxy"]["connections"] > 0
