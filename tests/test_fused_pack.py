"""Fused quantize→pack conformance: the code-space contract end to end.

Four layers, mirroring DESIGN.md §11:

* **Byte identity under the knob** — for every catalog format, both
  operand paths and the adversarial tensor family (zeros, subnormal
  magnitudes, near-overflow-but-finite, ragged trailing groups,
  single-element groups), the container bytes with the fused path
  enabled equal the ``REPRO_NO_FUSED_PACK=1`` fallback bytes exactly —
  and under the non-default dispatch modes, where plans do not compile
  and the knob must be a no-op.
* **Code-space contract** — for the eleven fused families the plan's
  ``run_codes`` emits streams in the codec's declared ``code_layout``
  order, every stream's values fit its declared bit width, the lazy
  ``dequantized`` tensor is bit-identical to the format's own quantize
  output, and ``encode_from_codes`` reproduces ``encode_into``'s
  container byte for byte. Engagement is asserted through
  ``collect_encode_stats`` so a silently-disabled fused path cannot
  pass vacuously.
* **Bit-pattern encoder parity** — the uint64-view masked-bit-pattern
  encoder (``kernels.bittwiddle.encode_packed``, the BFPsim idiom and
  the ``REPRO_BITTWIDDLE`` dispatch analog) derives exactly the codes
  the hot path's boundary-cache ``searchsorted`` derivation emits, for
  every mini-float block element and adversarial scale placement.
* **Golden vectors** — the committed packed / wire / HTTP vectors are
  reproduced byte-identically with the fused path on AND off, and a
  ``KVCacheSession`` run fused reads back the same packed K/V bytes as
  one run through the fallback.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from pathlib import Path

import numpy as np
import pytest

from repro.codec import (FUSED_PACK_ENV, PackedTensor, collect_encode_stats,
                         decode, encode, fused_pack_enabled)
from repro.codec.codecs import codec_for
from repro.kernels import fast_kernels, reference_kernels
from repro.kernels.bittwiddle import encode_packed
from repro.kernels.dispatch import BITTWIDDLE_ENV
from repro.kv import KVCacheSession, KVPolicy
from repro.mx.scale_rules import shared_scale_exponent
from repro.plan import clear_plan_cache, get_plan
from repro.runner.formats import FORMAT_REGISTRY, make_format
from repro.server import protocol

GOLDEN_DIR = Path(__file__).parent / "golden"

ALL_FORMATS = sorted(FORMAT_REGISTRY)

#: The families whose plan executors emit a code-space result; every
#: one must actually *take* the fused path on plan-compilable input —
#: pinned here so a regression that silently falls back to the legacy
#: float path fails loudly instead of passing by byte-equality alone.
FUSED_FORMATS = ("elem-ee", "elem-em", "m2xfp", "mxfp4", "mxfp6-e2m3",
                 "mxfp6-e3m2", "mxfp8-e4m3", "mxfp8-e5m2", "mxint8",
                 "sg-ee", "sg-em")


@contextmanager
def _fused_off():
    old = os.environ.get(FUSED_PACK_ENV)
    os.environ[FUSED_PACK_ENV] = "1"
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(FUSED_PACK_ENV, None)
        else:
            os.environ[FUSED_PACK_ENV] = old


@contextmanager
def _bittwiddle_kernels():
    old = os.environ.get(BITTWIDDLE_ENV)
    os.environ[BITTWIDDLE_ENV] = "1"
    try:
        with fast_kernels():
            yield
    finally:
        if old is None:
            os.environ.pop(BITTWIDDLE_ENV, None)
        else:
            os.environ[BITTWIDDLE_ENV] = old


DISPATCH = {"fast": fast_kernels, "reference": reference_kernels,
            "bittwiddle": _bittwiddle_kernels}


def _adversarial_cases(rng) -> dict:
    """Tensor family stressing scale extremes and geometry edges."""
    return {
        "zeros": np.zeros((3, 64)),
        "subnormal": rng.standard_normal((4, 64)) * 1e-310,
        "huge": np.clip(rng.standard_normal((8, 64)), -2, 2) * 1e307,
        "mixed_decades": rng.standard_normal((4, 64)) * np.exp(
            3 * rng.standard_normal((4, 64))),
        "ragged": rng.standard_normal((5, 50)),    # partial trailing group
        "single_elem_groups": rng.standard_normal((6, 1)),
        "1d": rng.standard_normal(70),
    }


def _both_paths(fmt, x, op):
    """(fused PackedTensor, unfused PackedTensor) for one input."""
    fused = encode(fmt, x, op=op, verify=True)
    with _fused_off():
        unfused = encode(fmt, x, op=op, verify=True)
    return fused, unfused


# ----------------------------------------------------------------------
# Byte identity under the knob, whole catalog
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ALL_FORMATS)
@pytest.mark.parametrize("op", ["weight", "activation"])
def test_fused_bytes_match_fallback(name, op, rng):
    fmt = make_format(name)

    def outcome(x):
        """Container bytes, or the exception type a path raises (some
        formats reject near-overflow input — both paths must agree)."""
        try:
            return encode(fmt, x, op=op, verify=True).to_bytes()
        except Exception as exc:
            return type(exc)

    with np.errstate(over="ignore"):
        for case, x in _adversarial_cases(rng).items():
            fused = outcome(x)
            with _fused_off():
                unfused = outcome(x)
            assert fused == unfused, \
                f"{name}:{op} fused container diverged on '{case}'"


@pytest.mark.parametrize("dispatch", sorted(DISPATCH))
@pytest.mark.parametrize("name", FUSED_FORMATS)
def test_fused_bytes_match_fallback_across_dispatch(name, dispatch,
                                                    heavy_tensor):
    # Plans only compile under the default dispatch, so in the
    # reference and bittwiddle modes this doubles as the proof that
    # the knob is a no-op there — identical bytes either way.
    fmt = make_format(name)
    with DISPATCH[dispatch]():
        for op in ("weight", "activation"):
            fused, unfused = _both_paths(fmt, heavy_tensor, op)
            assert fused.to_bytes() == unfused.to_bytes(), \
                f"{name}:{op} fused container diverged under {dispatch}"


def test_fused_path_engages_for_every_fused_family(rng):
    x = rng.standard_normal((8, 64))
    for name in FUSED_FORMATS:
        fmt = make_format(name)
        for op in ("weight", "activation"):
            with collect_encode_stats() as stats:
                encode(fmt, x, op=op)
            assert stats["fused_encodes"] == 1, \
                f"{name}:{op} did not take the fused quantize→pack path"
            with _fused_off(), collect_encode_stats() as stats:
                encode(fmt, x, op=op)
            assert stats["fused_encodes"] == 0, \
                f"{name}:{op} ignored {FUSED_PACK_ENV}=1"


def test_knob_reads_environment_per_call():
    assert fused_pack_enabled()
    with _fused_off():
        assert not fused_pack_enabled()
    assert fused_pack_enabled()


# ----------------------------------------------------------------------
# The code-space contract itself
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", FUSED_FORMATS)
@pytest.mark.parametrize("op", ["weight", "activation"])
def test_code_space_result_matches_codec_contract(name, op, heavy_tensor):
    fmt = make_format(name)
    x = heavy_tensor
    plan = get_plan(fmt, op, x.shape, axis=-1)
    assert plan.run_codes is not None, f"{name}:{op} plan has no run_codes"
    cs = plan.run_codes(x)

    # Stream order is the codec's declared packing order, and every
    # stream's codes fit the declared width.
    codec = codec_for(fmt)
    pt = PackedTensor(format_name=name, fingerprint=repr(fmt), op=op,
                      shape=x.shape, axis=x.ndim - 1,
                      group_size=int(getattr(fmt, "group_size", 1)))
    assert cs.stream_names == codec.code_layout(fmt, pt)
    for stream in cs.streams:
        values = np.asarray(stream.values)
        assert values.min() >= 0, f"{name}:{op} '{stream.name}' negative code"
        assert values.max() < (1 << stream.width), \
            f"{name}:{op} '{stream.name}' overflows width {stream.width}"

    # The lazy dequantized view is the format's own quantize output.
    if op == "weight":
        expect = np.asarray(fmt.quantize_weight(x, axis=-1), np.float64)
    else:
        expect = np.asarray(fmt.quantize_activation(x, axis=-1), np.float64)
    assert cs.dequantized.tobytes() == expect.tobytes(), \
        f"{name}:{op} code-space dequantized drifted from quantize output"

    # encode_from_codes packs the exact container encode_into derives
    # from the dequantized floats.
    codec.encode_from_codes(fmt, cs, pt)
    legacy = PackedTensor(format_name=name, fingerprint=repr(fmt), op=op,
                          shape=x.shape, axis=x.ndim - 1,
                          group_size=int(getattr(fmt, "group_size", 1)))
    codec.encode_into(fmt, x, legacy)
    assert pt.to_bytes() == legacy.to_bytes(), \
        f"{name}:{op} encode_from_codes container drifted from encode_into"
    # And the packed bytes decode back to the dequantized view.
    assert decode(PackedTensor.from_bytes(pt.to_bytes())).tobytes() \
        == expect.tobytes()


def test_plan_cache_serves_the_codes_sibling(rng):
    clear_plan_cache()
    x = rng.standard_normal((4, 64))
    fmt = make_format("m2xfp")
    first = get_plan(fmt, "weight", x.shape, axis=-1)
    again = get_plan(fmt, "weight", x.shape, axis=-1)
    assert first is again and first.run_codes is again.run_codes


# ----------------------------------------------------------------------
# Bit-pattern encoder parity (the REPRO_BITTWIDDLE dispatch analog)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["mxfp4", "mxfp6-e2m3", "mxfp6-e3m2",
                                  "mxfp8-e4m3", "mxfp8-e5m2"])
def test_encode_packed_matches_boundary_search_codes(name, rng):
    """``encode_packed``'s uint64-view masked-bit-pattern codes equal
    the boundary-cache ``searchsorted`` codes the fused block executor
    packs (see ``plan/executors.py``) — same wire codes, two different
    derivations, pinned against each other."""
    fmt = make_format(name)
    elem, gs = fmt.element, fmt.group_size
    mag_bits = elem.exp_bits + elem.man_bits
    cases = (
        rng.standard_normal((16, gs)) * np.exp(
            2 * rng.standard_normal((16, 1))),
        np.zeros((2, gs)),
        -(rng.random((2, gs)) < 0.5).astype(np.float64) * 0.0,  # -0.0s
        rng.standard_normal((3, gs)) * 1e-300,
        np.clip(rng.standard_normal((3, gs)), -2, 2) * 1e300,
    )
    for groups in cases:
        amax = np.abs(groups).max(axis=-1)
        e = shared_scale_exponent(amax, elem, fmt.scale_rule)
        twiddled = encode_packed(elem, groups, exp_shift=e[:, None])
        scaled = np.abs(groups) * np.exp2(-e.astype(np.float64))[:, None]
        idx = np.searchsorted(elem.boundaries, scaled, side="left")
        searched = (np.signbit(groups).astype(np.int64) << mag_bits) | idx
        assert np.array_equal(twiddled, searched), \
            f"{name}: bit-pattern codes diverged from boundary search"


# ----------------------------------------------------------------------
# Golden vectors, fused on AND off
# ----------------------------------------------------------------------
def _unhex_input(payload) -> np.ndarray:
    vals = [float.fromhex(h) for h in payload["input_hex"]]
    return np.array(vals).reshape(payload["shape"])


def test_golden_packed_vectors_fused_and_unfused():
    payload = json.loads((GOLDEN_DIR / "packed_vectors.json").read_text())
    x = _unhex_input(payload)
    for key, case in sorted(payload["cases"].items()):
        fmt = make_format(case["format"])
        fused, unfused = _both_paths(fmt, x, case["op"])
        assert fused.to_bytes().hex() == case["packed_hex"], \
            f"{key}: fused container drifted from the golden bytes"
        assert unfused.to_bytes().hex() == case["packed_hex"], \
            f"{key}: {FUSED_PACK_ENV}=1 container drifted from the golden bytes"


def test_golden_wire_vectors_fused_and_unfused():
    payload = json.loads((GOLDEN_DIR / "wire_vectors.json").read_text())
    x = _unhex_input(payload)
    for key, case in sorted(payload["cases"].items()):
        if not case["packed"]:
            continue
        fmt = make_format(case["format"])
        for ctx in (None, _fused_off):
            with (ctx() if ctx else np.errstate()):
                pt = encode(fmt, x, op=case["op"], axis=-1, verify=True)
                frame = protocol.encode_response_packed(
                    case["request_id"], pt.to_bytes(), fingerprint=repr(fmt))
            mode = "unfused" if ctx else "fused"
            assert frame.hex() == case["response_hex"], \
                f"{key}: {mode} response frame drifted from the golden bytes"


def test_golden_http_vectors_fused_and_unfused():
    payload = json.loads((GOLDEN_DIR / "http_vectors.json").read_text())
    x = _unhex_input(payload)
    for key, case in sorted(payload["quantize"].items()):
        if not case["packed"]:
            continue
        fmt = make_format(case["format"])
        pinned = bytes.fromhex(case["response_hex"])
        for ctx in (None, _fused_off):
            with (ctx() if ctx else np.errstate()):
                pt = encode(fmt, x, op=case["op"], axis=-1, verify=True)
            mode = "unfused" if ctx else "fused"
            assert pt.to_bytes() in pinned, \
                f"{key}: {mode} container missing from the golden HTTP body"


# ----------------------------------------------------------------------
# KV sessions ride the fused path
# ----------------------------------------------------------------------
@pytest.mark.parametrize("fmt", ["m2xfp", "mxfp4", "elem-em", "sg-em"])
def test_kv_session_blobs_match_fallback(fmt, rng):
    n_layers, dh = 2, 32
    blocks = [(layer, rng.standard_normal((4, dh)),
               rng.standard_normal((4, dh)))
              for layer in range(n_layers) for _ in range(3)]

    def run_session():
        # The session wraps every append in its own (inner, shadowing)
        # collect_encode_stats, so the counts come from its accessor.
        sess = KVCacheSession(n_layers, KVPolicy(fmt), max_tokens=64,
                              sink_tokens=2, verify=True)
        for layer, k, v in blocks:
            sess.append(layer, k, v)
        out = [sess.read(layer) for layer in range(n_layers)]
        fused_encodes = sess.encode_stage_stats()["fused_encodes"]
        sess.close()
        return out, fused_encodes

    fused_out, fused_encodes = run_session()
    assert fused_encodes == 2 * len(blocks), \
        f"{fmt}: session appends did not ride the fused path"
    with _fused_off():
        unfused_out, unfused_encodes = run_session()
    assert unfused_encodes == 0
    for layer, ((kf, vf), (ku, vu)) in enumerate(zip(fused_out, unfused_out)):
        assert kf.tobytes() == ku.tobytes(), \
            f"{fmt}: layer {layer} K blob diverged fused vs unfused"
        assert vf.tobytes() == vu.tobytes(), \
            f"{fmt}: layer {layer} V blob diverged fused vs unfused"
