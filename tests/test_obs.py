"""Unified telemetry subsystem: registry, tracing, footprint helper.

The contract under test (ISSUE 10 / DESIGN.md §12): one process-wide
metrics registry every serving layer registers into under a stable
naming scheme; nearest-rank quantiles as *the* percentile definition
shared by server histograms, the gateway and the benches; gated
instruments that no-op under ``REPRO_NO_METRICS=1``; deterministic
snapshots safe to embed in HEALTH meta; and ``REPRO_TRACE=1``
JSON-lines request traces whose span tree covers
queue→quantize→pack→serialize for both plain and KV-session requests.
"""

from __future__ import annotations

import json
import sys
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.obs import (
    DEFAULT_WINDOW,
    NO_METRICS_ENV,
    TRACE_ENV,
    TRACE_PATH_ENV,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TraceContext,
    current_trace,
    export,
    measured_bits_per_element,
    metrics_enabled,
    quantile,
    registry,
    start_trace,
    trace_enabled,
    use_trace,
)
from repro.serve import QuantService


# ----------------------------------------------------------------------
# Nearest-rank quantiles: one definition for the whole repo
# ----------------------------------------------------------------------
def test_quantile_nearest_rank():
    vals = sorted([5.0, 1.0, 3.0, 2.0, 4.0])
    assert quantile(vals, 0.50) == 3.0
    assert quantile(vals, 0.99) == 5.0
    assert quantile(vals, 0.0001) == 1.0
    assert quantile([], 0.5) == 0.0
    assert quantile([7.5], 0.99) == 7.5


def test_quantile_is_the_gateway_percentile():
    """Gateway /metrics p50/p99 and obs share one code path."""
    from repro.gateway.gateway import _quantile

    rng = np.random.default_rng(7)
    vals = sorted(rng.standard_normal(257).tolist())
    for q in (0.01, 0.5, 0.95, 0.99):
        assert _quantile(vals, q) == quantile(vals, q)


def test_bench_server_latency_summary_matches_histogram():
    """The committed BENCH_server.json percentile math is the obs
    Histogram's nearest-rank math, via bench_server._latency_summary."""
    scripts = Path(__file__).parent.parent / "scripts"
    sys.path.insert(0, str(scripts))
    try:
        from bench_server import _latency_summary
    finally:
        sys.path.remove(str(scripts))
    rng = np.random.default_rng(11)
    samples = (rng.random(321) * 0.01).tolist()
    hist = Histogram(window=len(samples), gated=False)
    for v in samples:
        hist.observe(v)
    out = _latency_summary(samples)
    assert out["p50_ms"] == round(hist.quantile(0.50) * 1e3, 3)
    assert out["p99_ms"] == round(hist.quantile(0.99) * 1e3, 3)
    assert _latency_summary([]) == {"p50_ms": 0.0, "p99_ms": 0.0}


# ----------------------------------------------------------------------
# Instruments and the kill switch
# ----------------------------------------------------------------------
def test_histogram_bounded_reservoir_and_summary():
    hist = Histogram(window=8)
    for v in range(20):
        hist.observe(float(v))
    assert hist.count == 20  # lifetime count survives eviction
    assert hist.values() == [float(v) for v in range(12, 20)]
    summary = hist.summary()
    assert summary == {"count": 20, "p50": 15.0, "p95": 19.0,
                       "p99": 19.0}


def test_gated_instruments_noop_when_disabled(monkeypatch):
    counter, gauge, hist = Counter(), Gauge(), Histogram()
    ungated = Counter(gated=False)
    monkeypatch.setenv(NO_METRICS_ENV, "1")
    assert not metrics_enabled()
    counter.inc()
    gauge.set(3.5)
    hist.observe(1.0)
    ungated.inc()
    assert counter.value == 0 and gauge.value == 0.0 and hist.count == 0
    assert ungated.value == 1  # gateway-style accounting survives
    monkeypatch.delenv(NO_METRICS_ENV)
    counter.inc()
    assert counter.value == 1


def test_registry_get_or_create_and_kind_mismatch():
    reg = MetricsRegistry()
    c = reg.counter("x.requests")
    assert reg.counter("x.requests") is c
    with pytest.raises(TypeError):
        reg.gauge("x.requests")
    h = reg.histogram("x.latency", window=16)
    assert h.window == 16
    assert reg.histogram("x.latency").window == 16  # first wins
    assert reg.histogram("y.latency").window == DEFAULT_WINDOW


def test_registry_snapshot_deterministic_and_json_safe():
    reg = MetricsRegistry()
    reg.counter("b.count").inc(3)
    reg.histogram("a.latency").observe(0.25)
    reg.register_collector("c.stats", lambda: {"requests": 7})
    snap1 = reg.snapshot()
    snap2 = reg.snapshot()  # no traffic in between -> identical
    assert snap1 == snap2
    assert list(snap1) == sorted(snap1)
    json.dumps(snap1)  # HEALTH meta embeds the snapshot as-is
    assert snap1["b.count"] == 3
    assert snap1["a.latency"]["count"] == 1
    assert snap1["c.stats"] == {"requests": 7}


def test_registry_snapshot_empty_when_disabled(monkeypatch):
    reg = MetricsRegistry()
    reg.counter("x").inc()
    monkeypatch.setenv(NO_METRICS_ENV, "1")
    assert reg.snapshot() == {}


def test_registry_collector_error_is_contained():
    reg = MetricsRegistry()

    def bad():
        raise RuntimeError("stats dict exploded")

    reg.register_collector("bad", bad)
    snap = reg.snapshot()
    assert "RuntimeError" in snap["bad"]["error"]


def test_registry_collector_last_wins_and_unregister():
    reg = MetricsRegistry()
    reg.register_collector("arm", lambda: {"gen": 1})
    reg.register_collector("arm", lambda: {"gen": 2})
    assert reg.snapshot()["arm"] == {"gen": 2}
    reg.unregister_collector("arm")
    assert "arm" not in reg.snapshot()


# ----------------------------------------------------------------------
# Registry under concurrent serving traffic (ISSUE 10 satellite 3)
# ----------------------------------------------------------------------
def test_registry_thread_safe_under_concurrent_submits(rng):
    """Concurrent QuantService submits + concurrent snapshots: no
    torn state, and the arm's latency histogram counts every request."""
    x = rng.standard_normal((4, 64))
    n_threads, n_each = 8, 25
    snapshots: list[dict] = []
    with QuantService("m2xfp", max_batch=8, max_delay_s=0.001) as svc:
        stop = threading.Event()

        def submitter():
            for _ in range(n_each):
                svc.submit(x).result()

        def snapshotter():
            while not stop.is_set():
                snapshots.append(registry().snapshot())

        workers = [threading.Thread(target=submitter)
                   for _ in range(n_threads)]
        reader = threading.Thread(target=snapshotter)
        reader.start()
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        stop.set()
        reader.join()
        arm = f"serve.{svc.arm}"
        snap = registry().snapshot()
        assert snap[arm]["requests"] == n_threads * n_each
        assert snap[f"{arm}.latency"]["count"] == n_threads * n_each
        for s in snapshots:  # every mid-flight snapshot was coherent
            if arm in s:
                json.dumps(s)
    # closing the service unregisters its arm
    assert f"serve.{svc.arm}" not in registry().snapshot()


def test_service_registers_stable_arm_names(rng):
    with QuantService("m2xfp", packed=True) as svc:
        assert svc.arm == "m2xfp:inherit:packed"
        svc.submit(rng.standard_normal((2, 64))).result()
        snap = registry().snapshot()
        assert f"serve.{svc.arm}" in snap
        assert f"serve.{svc.arm}.latency" in snap
        # the codec and plan-cache layers register on first use
        assert "plan_cache" in snap and "codec" in snap
        assert snap["codec"]["encodes"] >= 1


# ----------------------------------------------------------------------
# Footprint helper (ISSUE 10 satellite 1)
# ----------------------------------------------------------------------
def test_measured_bits_per_element():
    """One helper behind both serve.stats() and kv.stats(): exact
    payload_bytes*8/elements, None when nothing was packed yet."""
    assert measured_bits_per_element(128, 256) == 4.0
    assert measured_bits_per_element(100, 192) == 100 * 8 / 192
    assert measured_bits_per_element(0, 10) == 0.0
    assert measured_bits_per_element(128, 0) is None


def test_measured_bits_per_element_feeds_service_stats(rng):
    x = rng.standard_normal((4, 64))
    with QuantService("m2xfp", packed=True) as svc:
        svc.submit(x).result()
        stats = svc.stats()
        assert stats["measured_bits_per_element"] == \
            measured_bits_per_element(stats["payload_bytes"],
                                      stats["packed_elements"])


# ----------------------------------------------------------------------
# Span-based request tracing
# ----------------------------------------------------------------------
def test_trace_context_span_schema():
    ctx = TraceContext("req-1", "quantize", arm="m2xfp:inherit:packed")
    with ctx.span("quantize"):
        pass
    ctx.add_span("pack", ctx.t0, ctx.t0 + 0.5)
    line = ctx.to_line()
    assert line["request_id"] == "req-1"
    assert line["kind"] == "quantize"
    assert line["arm"] == "m2xfp:inherit:packed"
    names = [s["name"] for s in line["spans"]]
    assert names == ["quantize", "pack"]
    for span in line["spans"]:
        assert set(span) == {"name", "start_s", "dur_s"}
        assert span["dur_s"] >= 0.0
    assert line["spans"][1]["dur_s"] == 0.5


def test_trace_disabled_by_default():
    assert not trace_enabled()
    assert start_trace("r", "quantize") is None
    assert current_trace() is None


def test_use_trace_is_thread_local():
    ctx = TraceContext("req-2", "quantize")
    seen = {}
    with use_trace(ctx):
        assert current_trace() is ctx

        def other():
            seen["other"] = current_trace()

        t = threading.Thread(target=other)
        t.start()
        t.join()
    assert seen["other"] is None
    assert current_trace() is None


def test_export_writes_sorted_jsonl(tmp_path, monkeypatch):
    path = tmp_path / "t.jsonl"
    monkeypatch.setenv(TRACE_ENV, "1")
    monkeypatch.setenv(TRACE_PATH_ENV, str(path))
    ctx = start_trace("req-3", "quantize")
    assert ctx is not None
    with ctx.span("quantize"):
        pass
    export(ctx)
    export(None)  # tolerated: the untraced path exports nothing
    lines = path.read_text().splitlines()
    assert len(lines) == 1
    rec = json.loads(lines[0])
    assert rec["request_id"] == "req-3"
    assert lines[0] == json.dumps(rec, sort_keys=True)


# ----------------------------------------------------------------------
# End-to-end: REPRO_TRACE=1 across the wire (the acceptance schema)
# ----------------------------------------------------------------------
def test_server_traces_cover_quantize_and_kv_spans(tmp_path, monkeypatch,
                                                   rng):
    """With ``REPRO_TRACE=1`` the server exports one JSON line per
    request; the span tree covers queue→quantize→pack→serialize for
    both a plain packed quantize and a KV-session append."""
    from repro.server import QuantClient, ServerThread

    path = tmp_path / "trace.jsonl"
    monkeypatch.setenv(TRACE_ENV, "1")
    monkeypatch.setenv(TRACE_PATH_ENV, str(path))
    x = rng.standard_normal((2, 64))
    with ServerThread(port=0, max_delay_s=0.0005) as st, \
            QuantClient(port=st.port) as cli:
        cli.quantize(x, fmt="m2xfp", packed=True)
        cli.quantize(x, fmt="m2xfp", packed=False)
        cli.session_open(session_id="tr-kv", n_layers=1,
                         policy={"default": "m2xfp", "op": "weight"})
        cli.session_append("tr-kv", 0, x[:, :16], x[:, 16:32], seq=0)
        cli.session_close("tr-kv")
    records = [json.loads(line)
               for line in path.read_text().splitlines()]
    by_kind = {}
    for rec in records:
        by_kind.setdefault(rec["kind"], []).append(rec)
    packed, unpacked = by_kind["quantize"]
    assert [s["name"] for s in packed["spans"]] == \
        ["queue", "batch", "quantize", "pack", "serialize"]
    assert [s["name"] for s in unpacked["spans"]] == \
        ["queue", "batch", "quantize", "serialize"]
    assert packed["arm"] == "m2xfp:inherit:packed"
    (append,) = by_kind["kv_append"]
    names = [s["name"] for s in append["spans"]]
    assert names[0] == "queue" and names[-1] == "serialize"
    # two fused encodes (K and V), each quantize->pack->verify
    assert names[1:-1] == ["quantize", "pack", "verify"] * 2
    assert append["arm"] == "m2xfp"
    for rec in records:  # request ids propagate from the wire frames
        assert isinstance(rec["request_id"], int)
        for span in rec["spans"]:
            assert span["dur_s"] >= 0.0


def test_untraced_requests_export_nothing(tmp_path, monkeypatch, rng):
    from repro.server import QuantClient, ServerThread

    path = tmp_path / "trace.jsonl"
    monkeypatch.setenv(TRACE_PATH_ENV, str(path))
    monkeypatch.delenv(TRACE_ENV, raising=False)
    x = rng.standard_normal((2, 64))
    with ServerThread(port=0, max_delay_s=0.0005) as st, \
            QuantClient(port=st.port) as cli:
        cli.quantize(x, fmt="m2xfp", packed=True)
    assert not path.exists()
