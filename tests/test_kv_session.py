"""Streaming KV-cache sessions: eviction invariants + bit-exactness.

The contract under test, in order of importance:

1. **Bit-exactness by construction** — for every catalog format under
   every dispatch mode, ``read(layer)`` equals the concatenation of
   one-shot quantizations of the retained blocks byte for byte, and for
   every group-wise (batchable) format it also equals the one-shot
   quantization of the concatenated raw blocks: the streamed cache and
   the batch cache are the same bytes.
2. **Eviction invariants** — the per-layer token budget is never
   exceeded, not even transiently; sink blocks are never evicted; an
   append that cannot fit is refused with ``ConfigError`` and leaves
   the session unchanged.
3. **Lifecycle** — append/read after close and unknown session ids are
   typed errors (``ConfigError`` locally, ``SessionLost`` over the
   wire), never silence.
4. **Wire stability** — the v3 session frames are pinned byte-exactly
   by ``tests/golden/wire_vectors.json``; a version-2 frame is rejected
   with a typed ``ProtocolError``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.codec import decode, encode
from repro.errors import ConfigError, ProtocolError, SessionLost
from repro.kv import KVCacheSession, KVPolicy
from repro.runner.formats import list_formats, make_format
from repro.serve.service import _tensor_scoped
from repro.server import QuantClient, ServerThread, protocol

GOLDEN_PATH = Path(__file__).parent / "golden" / "wire_vectors.json"

#: The non-inherit dispatch modes; "inherit" is the ambient default the
#: rest of this file runs under anyway.
DISPATCHES = ("fast", "reference", "bittwiddle")


def _block(rng, tokens: int, width: int = 64) -> np.ndarray:
    """A (tokens, width) block with outliers and exact zeros mixed in."""
    x = rng.standard_normal((tokens, width)) \
        * np.exp(rng.standard_normal((tokens, width)))
    x[rng.random((tokens, width)) < 0.05] = 0.0
    return x


# ----------------------------------------------------------------------
# Bit-exactness: streamed == batch, every format x dispatch mode
# ----------------------------------------------------------------------
@pytest.mark.parametrize("dispatch", DISPATCHES)
@pytest.mark.parametrize("name", list_formats())
def test_stream_equals_batch(name, dispatch, rng):
    fmt = make_format(name)
    kblocks = [_block(rng, t) for t in (3, 1, 4)]
    vblocks = [_block(rng, t) for t in (3, 1, 4)]
    sess = KVCacheSession(1, KVPolicy(name), dispatch=dispatch)
    for k, v in zip(kblocks, vblocks):
        ack = sess.append(0, k, v)
        assert ack["format"] == name
    K, V = sess.read(0)
    # Contract 1 (every format): concat of per-block one-shot
    # quantizations. Expectations run under ambient dispatch — the
    # kernel parity contract makes the bits mode-independent, so this
    # also cross-checks the session's pinned mode against the default.
    for got, blocks in ((K, kblocks), (V, vblocks)):
        expected = np.concatenate(
            [decode(encode(fmt, b, op="weight", axis=-1).to_bytes(),
                    fmt=fmt) for b in blocks], axis=0)
        assert got.tobytes() == expected.tobytes(), \
            f"{name}/{dispatch}: streamed read != per-block batch bytes"
    # Contract 2 (group-wise formats only): one-shot of the
    # concatenation. Tensor-scoped formats are block-scoped by design —
    # their tensor-level scale depends on the whole input.
    if not _tensor_scoped(fmt):
        whole = decode(encode(fmt, np.concatenate(kblocks, axis=0),
                              op="weight", axis=-1).to_bytes(), fmt=fmt)
        assert K.tobytes() == whole.tobytes(), \
            f"{name}/{dispatch}: streamed cache != batch-quantized cache"


def test_eviction_preserves_survivor_bytes(rng):
    """Evicting old blocks must not disturb the survivors' bytes."""
    fmt = make_format("m2xfp")
    blocks = [_block(rng, 2) for _ in range(6)]
    sess = KVCacheSession(1, "m2xfp", max_tokens=6, sink_tokens=2)
    for b in blocks:
        sess.append(0, b, b)
    assert sess.positions(0) == [(0, 2), (8, 2), (10, 2)]
    K, _ = sess.read(0)
    survivors = [blocks[0], blocks[4], blocks[5]]
    expected = np.concatenate(
        [decode(encode(fmt, b, op="weight", axis=-1).to_bytes(), fmt=fmt)
         for b in survivors], axis=0)
    assert K.tobytes() == expected.tobytes()


# ----------------------------------------------------------------------
# Eviction invariants
# ----------------------------------------------------------------------
def test_budget_never_exceeded_and_sinks_survive(rng):
    max_tokens, sink = 16, 4
    sess = KVCacheSession(1, "m2xfp", max_tokens=max_tokens,
                          sink_tokens=sink)
    sess.append(0, _block(rng, sink), _block(rng, sink))  # the sink block
    for _ in range(40):
        t = int(rng.integers(1, 6))
        b = _block(rng, t)
        try:
            ack = sess.append(0, b, b)
        except ConfigError:
            # Only legal when the append could not fit even after
            # maximal eviction: budget minus pinned sink tokens.
            assert t > max_tokens - sink
            continue
        held = sess.tokens_held(0)
        assert ack["tokens_held"] == held <= max_tokens
        positions = sess.positions(0)
        assert positions[0] == (0, sink), "sink block was evicted"
        # Spans are disjoint, in stream order, and sum to tokens_held.
        starts = [s for s, _ in positions]
        assert starts == sorted(starts)
        assert sum(n for _, n in positions) == held
        K, V = sess.read(0)
        assert K.shape == V.shape == (held, 64)
    stats = sess.stats()
    assert stats["evicted_tokens"] > 0
    assert stats["tokens_appended"] - stats["evicted_tokens"] \
        == sess.tokens_held(0)


def test_impossible_append_refused_without_side_effects(rng):
    sess = KVCacheSession(1, "m2xfp", max_tokens=8, sink_tokens=4)
    sess.append(0, _block(rng, 4), _block(rng, 4))   # pinned sink
    sess.append(0, _block(rng, 4), _block(rng, 4))   # evictable
    before_pos = sess.positions(0)
    before_stats = sess.stats()
    big = _block(rng, 6)   # overshoot 6 > 4 evictable tokens
    with pytest.raises(ConfigError, match="pinned"):
        sess.append(0, big, big)
    assert sess.positions(0) == before_pos
    assert sess.stats() == before_stats
    # A fitting append still works and evicts only the non-sink block.
    sess.append(0, _block(rng, 4), _block(rng, 4))
    assert sess.positions(0) == [(0, 4), (8, 4)]


def test_no_budget_means_no_eviction(rng):
    sess = KVCacheSession(1, "m2xfp")
    for _ in range(10):
        sess.append(0, _block(rng, 3), _block(rng, 3))
    assert sess.tokens_held(0) == 30
    assert sess.stats()["evicted_blocks"] == 0


def test_constructor_validation():
    with pytest.raises(ConfigError, match="n_layers"):
        KVCacheSession(0)
    with pytest.raises(ConfigError, match="dispatch"):
        KVCacheSession(1, dispatch="warp")
    with pytest.raises(ConfigError, match="max_tokens"):
        KVCacheSession(1, max_tokens=0)
    with pytest.raises(ConfigError, match="sink_tokens"):
        KVCacheSession(1, sink_tokens=-1)
    with pytest.raises(ConfigError, match="sink"):
        KVCacheSession(1, max_tokens=8, sink_tokens=8)


# ----------------------------------------------------------------------
# Policy mixing
# ----------------------------------------------------------------------
def test_policy_mixes_formats_per_layer(rng):
    policy = KVPolicy("m2xfp", overrides={1: "elem-em", 2: "m2-nvfp4"})
    sess = KVCacheSession(3, policy)
    block = _block(rng, 4)
    for layer, expected_name in ((0, "m2xfp"), (1, "elem-em"),
                                 (2, "m2-nvfp4")):
        ack = sess.append(layer, block, block)
        assert ack["format"] == expected_name
        fmt = make_format(expected_name)
        K, _ = sess.read(layer)
        one_shot = decode(encode(fmt, block, op="weight",
                                 axis=-1).to_bytes(), fmt=fmt)
        assert K.tobytes() == one_shot.tobytes()


def test_policy_spec_roundtrip_and_validation():
    policy = KVPolicy("m2xfp", overrides={3: "elem-em"}, op="activation")
    spec = policy.spec()
    assert spec == {"default": "m2xfp", "op": "activation",
                    "overrides": {"3": "elem-em"}}
    back = KVPolicy.from_spec(spec)
    assert repr(back) == repr(policy)
    assert KVPolicy.from_spec("elem-em").default == "elem-em"
    assert KVPolicy.from_spec(policy) is policy
    with pytest.raises(ConfigError):
        KVPolicy("no-such-format")
    with pytest.raises(ConfigError):
        KVPolicy("m2xfp", overrides={0: "no-such-format"})
    with pytest.raises(ConfigError, match="op"):
        KVPolicy("m2xfp", op="gradient")
    with pytest.raises(ConfigError):
        KVPolicy.from_spec(42)
    with pytest.raises(ConfigError, match="override"):
        KVPolicy.from_spec({"default": "m2xfp",
                            "overrides": {"not-a-layer": "elem-em"}})


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
def test_append_read_validation(rng):
    sess = KVCacheSession(2, "m2xfp")
    good = _block(rng, 2)
    with pytest.raises(ConfigError, match="layer"):
        sess.append(2, good, good)
    with pytest.raises(ConfigError, match="layer"):
        sess.read(-1)
    with pytest.raises(ConfigError, match="2-D"):
        sess.append(0, good.ravel(), good.ravel())
    with pytest.raises(ConfigError, match="share a shape"):
        sess.append(0, good, good[:1])
    with pytest.raises(ConfigError, match="non-empty"):
        sess.append(0, good[:0], good[:0])
    sess.append(0, good, good)
    with pytest.raises(ConfigError, match="width"):
        sess.append(0, good[:, :32], good[:, :32])
    # Other layers are independent streams (and may differ in width).
    sess.append(1, good[:, :32], good[:, :32])


def test_close_is_idempotent_and_final(rng):
    sess = KVCacheSession(1, "m2xfp")
    sess.append(0, _block(rng, 2), _block(rng, 2))
    final = sess.close()
    assert final["closed"] is True and final["appends"] == 1
    assert sess.close() == final   # idempotent
    for call in (lambda: sess.append(0, _block(rng, 2), _block(rng, 2)),
                 lambda: sess.read(0),
                 lambda: sess.tokens_held(0)):
        with pytest.raises(ConfigError, match="closed"):
            call()


def test_context_manager_closes(rng):
    with KVCacheSession(1, "m2xfp") as sess:
        sess.append(0, _block(rng, 2), _block(rng, 2))
    assert sess.closed


def test_empty_layer_reads_empty():
    sess = KVCacheSession(1, "m2xfp")
    K, V = sess.read(0)
    assert K.shape == V.shape == (0, 0)


def test_stats_track_packed_footprint(rng):
    sess = KVCacheSession(1, "mxfp4")
    sess.append(0, _block(rng, 4), _block(rng, 4))
    stats = sess.stats()
    assert stats["packed_elements"] == 2 * 4 * 64
    assert 0 < stats["measured_bits_per_element"] < 8
    assert stats["payload_bytes"] > 0 and stats["header_bytes"] > 0


def test_session_ids_unique():
    a, b = KVCacheSession(1), KVCacheSession(1)
    assert a.session_id != b.session_id
    assert KVCacheSession(1, session_id="mine").session_id == "mine"


# ----------------------------------------------------------------------
# Wire lifecycle: typed errors end to end
# ----------------------------------------------------------------------
def test_wire_lifecycle_errors(rng):
    k = _block(rng, 2)
    with ServerThread(port=0) as st, QuantClient(port=st.port) as cli:
        with pytest.raises(SessionLost, match="unknown"):
            cli.session_read("ghost", 0)
        with pytest.raises(SessionLost, match="unknown"):
            cli.session_append("ghost", 0, k, k, seq=0)
        with pytest.raises(SessionLost, match="nothing to close"):
            cli.session_close("ghost")
        ack = cli.session_open(session_id="s", n_layers=1)
        assert ack["resumed"] is False and ack["next_seq"] == 0
        cli.session_append("s", 0, k, k, seq=0)
        # An out-of-step seq cannot be reconciled: typed SessionLost.
        with pytest.raises(SessionLost, match="seq"):
            cli.session_append("s", 0, k, k, seq=5)
        cli.session_close("s")
        # The slot is gone: every further op is a typed SessionLost.
        with pytest.raises(SessionLost):
            cli.session_append("s", 0, k, k, seq=1)
        assert st.server.stats["sessions_lost"] >= 4


def test_wire_duplicate_append_replays_ack(rng):
    k = _block(rng, 2)
    with ServerThread(port=0) as st, QuantClient(port=st.port) as cli:
        cli.session_open(session_id="s", n_layers=1)
        first = cli.session_append("s", 0, k, k, seq=0)
        assert first["duplicate"] is False
        replay = cli.session_append("s", 0, k, k, seq=0)
        assert replay["duplicate"] is True
        assert {key: replay[key] for key in first} \
            == {**first, "duplicate": True}
        # The replay did not double-append.
        K, _ = cli.session_read("s", 0)
        assert K.shape == (2, 64)


def test_wire_open_is_idempotent_and_config_checked(rng):
    with ServerThread(port=0) as st, QuantClient(port=st.port) as cli:
        cli.session_open(session_id="s", n_layers=2, max_tokens=8)
        again = cli.session_open(session_id="s", n_layers=2, max_tokens=8)
        assert again["resumed"] is True
        with pytest.raises(ConfigError, match="different"):
            cli.session_open(session_id="s", n_layers=2, max_tokens=16)


def test_wire_session_table_is_bounded():
    with ServerThread(port=0, max_sessions=2) as st, \
            QuantClient(port=st.port) as cli:
        cli.session_open(session_id="a", n_layers=1)
        cli.session_open(session_id="b", n_layers=1)
        from repro.errors import ServerBusy
        with pytest.raises(ServerBusy, match="max open sessions"):
            cli.session_open(session_id="c", n_layers=1, retries=0)
        cli.session_close("a")
        cli.session_open(session_id="c", n_layers=1)
        health = cli.ping()
        assert health["sessions"] == {"open": 2, "max_sessions": 2}


# ----------------------------------------------------------------------
# Golden session frames + version rejection
# ----------------------------------------------------------------------
def _golden():
    assert GOLDEN_PATH.exists(), \
        "wire vectors missing; run scripts/regen_wire_vectors.py --regen"
    with open(GOLDEN_PATH) as f:
        return json.load(f)


def test_session_frames_pinned():
    """Session frames rebuilt from committed inputs match the goldens."""
    golden = _golden()
    assert golden["protocol_version"] == protocol.PROTOCOL_VERSION == 3
    scripts = Path(__file__).parent.parent / "scripts"
    sys.path.insert(0, str(scripts))
    try:
        from regen_wire_vectors import build_payload
        rebuilt = build_payload()
    finally:
        sys.path.pop(0)
    assert rebuilt["sessions"] == golden["sessions"], \
        "session frames drifted from the golden bytes"
    sessions = golden["sessions"]
    cfg = sessions["config"]
    # The pinned frames still parse with the right fields.
    open_req = protocol.decode_session_open(
        protocol.frame_from_bytes(bytes.fromhex(sessions["open_hex"])))
    assert open_req["session_id"] == cfg["session_id"]
    assert open_req["policy"] == cfg["policy"]
    assert open_req["max_tokens"] == cfg["max_tokens"]
    open_ack = protocol.decode_session_ack(
        protocol.frame_from_bytes(bytes.fromhex(sessions["open_ack_hex"])))
    assert open_ack["resumed"] is False and open_ack["next_seq"] == 0
    assert open_ack["policy"] == cfg["policy"]
    append_req = protocol.decode_session_append(
        protocol.frame_from_bytes(bytes.fromhex(sessions["append_hex"])))
    assert append_req["seq"] == 0 and append_req["layer"] == 0
    append_ack = protocol.decode_session_ack(
        protocol.frame_from_bytes(
            bytes.fromhex(sessions["append_ack_hex"])))
    assert append_ack["duplicate"] is False
    assert append_ack["tokens_held"] == append_ack["tokens"]
    k, v = protocol.decode_session_kv(
        protocol.frame_from_bytes(bytes.fromhex(sessions["read_kv_hex"])))
    # The pinned decoded K/V equals re-decoding the appended block
    # through the codec: the golden pins the whole bit-exactness path.
    x = np.array([float.fromhex(h) for h in golden["input_hex"]]) \
        .reshape(golden["shape"])
    fmt = make_format(cfg["policy"]["default"])
    expect_k = decode(encode(fmt, x[:, :16], op="weight",
                             axis=-1).to_bytes(), fmt=fmt)
    assert k.tobytes() == expect_k.tobytes()
    assert v.shape == k.shape
    close_ack = protocol.decode_session_ack(
        protocol.frame_from_bytes(bytes.fromhex(sessions["close_ack_hex"])))
    assert close_ack["closed"] is True
    assert close_ack["session_id"] == cfg["session_id"]


def test_v2_session_frame_rejected():
    """A pre-session (version 2) frame is a typed ProtocolError."""
    golden = _golden()
    for key in ("open_hex", "append_hex", "read_hex", "close_hex"):
        stale = bytearray(bytes.fromhex(golden["sessions"][key]))
        stale[8] = 2   # version byte (after 4B length + 4B magic)
        with pytest.raises(ProtocolError, match="version"):
            protocol.frame_from_bytes(bytes(stale))


def test_session_frame_validation(rng):
    k = rng.standard_normal((2, 8))
    blob = protocol.encode_session_append(1, session_id="s", layer=0,
                                          seq=0, k=k, v=k)
    frame = protocol.frame_from_bytes(blob)
    frame.meta["seq"] = -1
    with pytest.raises(ProtocolError, match="seq"):
        protocol.decode_session_append(frame)
    frame = protocol.frame_from_bytes(blob)
    frame.meta["k_shape"] = [2, 999]
    with pytest.raises(ProtocolError, match="payload"):
        protocol.decode_session_append(frame)
    bad_dispatch = protocol.frame_from_bytes(protocol.encode_session_open(
        1, session_id="s", n_layers=1))
    bad_dispatch.meta["dispatch"] = "warp"
    with pytest.raises(ProtocolError, match="dispatch"):
        protocol.decode_session_open(bad_dispatch)
