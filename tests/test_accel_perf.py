"""Tests for the cycle/traffic/energy/area models and Fig. 13 shape."""

import numpy as np
import pytest

from repro.accel import (ACCELERATORS, REFERENCE_8BIT, ArrayConfig,
                         CoreAreaModel, GemmShape, LLMWorkload, WORKLOADS,
                         compare_on_workload, decode_unit_area_um2,
                         fig13_comparison, gemm_compute_cycles,
                         gemm_dram_traffic, pe_tile_area_um2,
                         quant_engine_area_um2, run_workload, speedup_vs,
                         workload_for)


class TestSystolic:
    def test_eight_bit_costs_four_passes(self):
        hw = ArrayConfig()
        g = GemmShape(4096, 4096, 4096)
        c4 = gemm_compute_cycles(g, hw, 4, 4)
        c8 = gemm_compute_cycles(g, hw, 8, 8)
        assert c8 / c4 > 3.5  # 4x passes minus amortized fill overhead

    def test_cycles_scale_with_work(self):
        hw = ArrayConfig()
        small = gemm_compute_cycles(GemmShape(256, 256, 256), hw)
        big = gemm_compute_cycles(GemmShape(512, 512, 512), hw)
        assert 4 < big / small < 10  # ~8x MACs, fill overhead shrinks it

    def test_traffic_scales_with_ebw(self):
        hw = ArrayConfig()
        g = GemmShape(1024, 1024, 1024)
        t45 = gemm_dram_traffic(g, hw, 4.5, 4.5)
        t825 = gemm_dram_traffic(g, hw, 8.25, 8.25)
        assert t825 > t45 * 1.5

    def test_output_tile_respects_buffer(self):
        hw = ArrayConfig()
        t = hw.output_tile_side()
        assert t % hw.rows == 0
        assert t * t * 4 <= hw.out_buffer_bytes

    def test_peak_macs(self):
        assert ArrayConfig().macs_per_cycle == 32 * 32 * 8


class TestWorkloads:
    def test_all_paper_models_present(self):
        assert set(WORKLOADS) == {"llama2-7b", "llama3-8b", "llama3-70b",
                                  "opt-6.7b", "mistral-7b", "falcon-7b"}

    def test_gqa_shrinks_kv(self):
        gemms = workload_for("llama3-8b").gemms()
        kv = [g for g in gemms if g.n == 1024]
        assert len(kv) == 2 * 32

    def test_70b_is_much_bigger(self):
        assert (workload_for("llama3-70b").total_macs
                > 5 * workload_for("llama2-7b").total_macs)

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            workload_for("gpt-5")


class TestAreaModel:
    def test_component_totals_match_paper(self):
        model = CoreAreaModel()
        assert model.total_area_mm2 == pytest.approx(1.051, rel=0.01)
        assert model.total_power_mw == pytest.approx(204.02, rel=0.01)

    def test_pe_variants_match_paper(self):
        assert pe_tile_area_um2(variant="mxfp4") == pytest.approx(2057.6, rel=0.005)
        assert pe_tile_area_um2(variant="nvfp4") == pytest.approx(2104.7, rel=0.005)
        assert pe_tile_area_um2(variant="m2xfp") == pytest.approx(2140.1, rel=0.005)

    def test_metadata_overhead_small(self):
        assert CoreAreaModel().metadata_overhead_fraction() < 0.005

    def test_decode_unit_tiny(self):
        assert decode_unit_area_um2() == pytest.approx(82.91, rel=0.01)

    def test_quant_engine_area(self):
        assert quant_engine_area_um2() == pytest.approx(2451.47, rel=0.01)

    def test_model_scales_with_array(self):
        big = CoreAreaModel(n_pe_tiles=256)
        assert big.total_area_mm2 > CoreAreaModel().total_area_mm2


class TestFig13:
    def test_m2xfp_fastest(self):
        for wl in WORKLOADS.values():
            points = {p.accelerator: p for p in compare_on_workload(wl)}
            m2 = points["m2xfp"].norm_latency
            assert all(m2 <= p.norm_latency for p in points.values())

    def test_olive_slowest_baseline(self):
        points = {p.accelerator: p for p in
                  compare_on_workload(workload_for("llama2-7b"))}
        olive = points["mx-olive"].norm_latency
        assert all(olive >= p.norm_latency for p in points.values())

    def test_all_beat_8bit_reference(self):
        for p in compare_on_workload(workload_for("mistral-7b")):
            assert p.norm_latency < 1.0
            assert p.norm_energy < 1.0

    def test_headline_ratios_in_band(self):
        grid = fig13_comparison()
        speedup, energy = speedup_vs(grid["average"])
        assert 1.5 <= speedup <= 2.3   # paper: 1.91x
        assert 1.4 <= energy <= 2.2    # paper: 1.75x

    def test_energy_breakdown_sums(self):
        for p in compare_on_workload(workload_for("llama2-7b")):
            total = sum(p.energy_breakdown.values())
            assert total == pytest.approx(p.norm_energy, rel=1e-6)

    def test_average_row_present(self):
        grid = fig13_comparison()
        assert "average" in grid
        assert len(grid["average"]) == len(ACCELERATORS)

    def test_run_workload_result_fields(self):
        res = run_workload(REFERENCE_8BIT, workload_for("llama2-7b"))
        assert res.cycles > 0
        assert res.total_energy_j > 0
        assert res.latency_s == pytest.approx(res.cycles / 500e6)

    def test_mant_pays_extra_core_energy(self):
        wl = workload_for("llama2-7b")
        points = {p.accelerator: p for p in compare_on_workload(wl)}
        assert (points["mx-m-ant"].energy_breakdown["core"]
                > points["mx-ant"].energy_breakdown["core"])
