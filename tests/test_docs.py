"""Tier-1 documentation checks: run scripts/check_docs.py's suite.

Keeps README/DESIGN present, every relative markdown link resolving,
and the README environment-knob table in sync with ``grep REPRO_`` over
``src/`` — so a new knob (or a renamed one) fails the build until it is
documented.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def _load_check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO / "scripts" / "check_docs.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_docs_healthy():
    mod = _load_check_docs()
    assert mod.run_all(REPO) == []


def test_known_knobs_are_documented():
    mod = _load_check_docs()
    table = mod.knobs_in_readme_table(REPO)
    # The knobs this repo has shipped so far; additions belong in both
    # the source and the README table (check_docs enforces the sync).
    for knob in ("REPRO_REFERENCE_KERNELS", "REPRO_BITTWIDDLE",
                 "REPRO_NO_WEIGHT_CACHE", "REPRO_NO_RESULT_CACHE",
                 "REPRO_CACHE_DIR", "REPRO_RESULTS_DIR",
                 "REPRO_PACKED_WEIGHTS", "REPRO_BENCH_REGRESSION"):
        assert knob in table, f"{knob} missing from README env-knob table"


def test_check_docs_detects_dangling_link(tmp_path):
    mod = _load_check_docs()
    (tmp_path / "src").mkdir()
    for name in mod.REQUIRED_DOCS:
        (tmp_path / name).write_text("see [here](missing.md)\n")
    problems = mod.run_all(tmp_path)
    assert any("dangling link" in p for p in problems)
