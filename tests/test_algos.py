"""Tests for the algorithm baselines (ANT, M-ANT, OliVe, MicroScopiQ,
BlockDialect, rotations, MR-GPTQ)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algos import (DIALECTS, MANT_TYPES, BlockDialect, MicroScopiQ,
                         MXAnt, MXMAnt, MXOliVe, block_rotation, duquant,
                         gptq_quantize_matrix, hadamard_matrix, quarot)
from repro.errors import ShapeError
from repro.mx import mxfp4
from repro.mx.fp_group import GroupFP4


class TestAnt:
    def test_type_selection_varies(self, heavy_tensor):
        from repro.formats.grouping import to_groups
        groups, _ = to_groups(heavy_tensor, 32)
        res = MXAnt().quantize_groups(groups)
        assert len(np.unique(res.details["type_index"])) >= 2

    def test_beats_mxfp4(self, heavy_tensor):
        e = np.mean((MXAnt().quantize(heavy_tensor) - heavy_tensor) ** 2)
        e_mx = np.mean((mxfp4.quantize(heavy_tensor) - heavy_tensor) ** 2)
        assert e < e_mx

    def test_ebw_includes_type_index(self):
        assert MXAnt().ebw == 4.0 + (2 + 8) / 32


class TestMAnt:
    def test_sixteen_types(self):
        assert len(MANT_TYPES) == 16

    def test_at_least_as_good_as_ant(self, heavy_tensor):
        e_m = np.mean((MXMAnt().quantize(heavy_tensor) - heavy_tensor) ** 2)
        e_a = np.mean((MXAnt().quantize(heavy_tensor) - heavy_tensor) ** 2)
        assert e_m <= e_a + 1e-12

    def test_ebw(self):
        assert MXMAnt().ebw == 4.0 + (4 + 8) / 32


class TestOliVe:
    def test_victim_zeroed_next_to_outlier(self):
        g = np.full((1, 32), 0.5)
        g[0, 4] = 50.0  # extreme outlier; victim is index 5 (pair partner)
        dq = MXOliVe().quantize(g)
        assert dq[0, 5] == 0.0
        assert abs(dq[0, 4] - 50.0) / 50.0 < 0.2

    def test_no_outlier_no_victim(self, rng):
        g = np.abs(rng.standard_normal((1, 32))) + 1.0  # flat group
        dq = MXOliVe(outlier_ratio_threshold=5.0).quantize(g)
        assert np.count_nonzero(dq) == 32


class TestMicroScopiQ:
    def test_weight_and_activation_paths(self, heavy_tensor):
        fmt = MicroScopiQ()
        w = fmt.quantize_weight(heavy_tensor)
        a = fmt.quantize_activation(heavy_tensor)
        assert not np.allclose(w, a)

    def test_structural_metadata_is_expensive(self):
        # >40 bits per outlier block, reflected in the weight EBW.
        assert MicroScopiQ().weight_ebw > mxfp4.ebw

    def test_weights_better_than_plain_mxfp4(self, heavy_tensor):
        e_w = np.mean((MicroScopiQ().quantize_weight(heavy_tensor)
                       - heavy_tensor) ** 2)
        e_mx = np.mean((mxfp4.quantize(heavy_tensor) - heavy_tensor) ** 2)
        assert e_w < e_mx

    def test_mxint_activations_weaker_on_outliers(self, heavy_tensor):
        e_a = np.mean((MicroScopiQ().quantize_activation(heavy_tensor)
                       - heavy_tensor) ** 2)
        e_mx = np.mean((mxfp4.quantize(heavy_tensor) - heavy_tensor) ** 2)
        assert e_a > e_mx * 0.5  # INT grid is not better than FP4 here


class TestBlockDialect:
    def test_sixteen_dialects(self):
        assert len(DIALECTS) == 16

    def test_offline_beats_online(self, heavy_tensor):
        fmt = BlockDialect()
        e_off = np.mean((fmt.quantize_weight(heavy_tensor) - heavy_tensor) ** 2)
        e_on = np.mean((fmt.quantize_activation(heavy_tensor) - heavy_tensor) ** 2)
        assert e_off <= e_on + 1e-12

    def test_beats_mxfp4(self, heavy_tensor):
        e = np.mean((BlockDialect().quantize_weight(heavy_tensor)
                     - heavy_tensor) ** 2)
        e_mx = np.mean((mxfp4.quantize(heavy_tensor) - heavy_tensor) ** 2)
        assert e < e_mx


class TestRotation:
    def test_hadamard_orthogonal(self):
        h = hadamard_matrix(16)
        assert np.allclose(h @ h.T, np.eye(16), atol=1e-12)

    def test_hadamard_requires_power_of_two(self):
        with pytest.raises(ShapeError):
            hadamard_matrix(12)

    def test_block_rotation_orthogonal(self):
        for kind in ("hadamard", "random"):
            r = block_rotation(64, 16, kind, seed=3)
            assert np.allclose(r @ r.T, np.eye(64), atol=1e-10)

    def test_rotated_gemm_equivalence(self, rng):
        # Fake-quant wrappers must equal the rotated-GEMM computation.
        fmt = quarot(GroupFP4())
        x = rng.standard_normal((8, 64))
        w = rng.standard_normal((16, 64))
        fwd, inv = fmt._transform(64)
        lhs = fmt.quantize_activation(x) @ fmt.quantize_weight(w).T
        rhs = (GroupFP4().quantize_activation(x @ fwd)
               @ GroupFP4().quantize_weight(w @ fwd).T)
        assert np.allclose(lhs, rhs, atol=1e-9)

    def test_rotation_tames_outliers(self, heavy_tensor):
        base = GroupFP4()
        e_plain = np.mean((base.quantize(heavy_tensor) - heavy_tensor) ** 2)
        e_rot = np.mean((quarot(base).quantize(heavy_tensor) - heavy_tensor) ** 2)
        assert e_rot < e_plain

    def test_duquant_permutes(self, heavy_tensor):
        dq = duquant(GroupFP4()).quantize(heavy_tensor)
        assert dq.shape == heavy_tensor.shape


class TestGPTQ:
    def _setup(self, rng, n=96):
        from repro.models.tensors import OutlierSpec, outlier_matrix
        spec = OutlierSpec(outlier_rate=0.02, outlier_scale=10.0)
        w = outlier_matrix(64, n, spec, rng)
        x = rng.standard_normal((400, n)) * np.exp(0.3 * rng.standard_normal(n))
        return w, x, x.T @ x / 400

    def test_reduces_weighted_error(self, rng):
        w, x, h = self._setup(rng)
        q_direct = mxfp4.quantize_weight(w)
        q_gptq = gptq_quantize_matrix(w, h, "mxfp4")
        err_direct = np.linalg.norm(x @ (w - q_direct).T)
        err_gptq = np.linalg.norm(x @ (w - q_gptq).T)
        assert err_gptq < err_direct

    def test_sg_em_mode_better_than_mxfp4_mode(self, rng):
        w, x, h = self._setup(rng)
        e1 = np.linalg.norm(x @ (w - gptq_quantize_matrix(w, h, "mxfp4")).T)
        e2 = np.linalg.norm(x @ (w - gptq_quantize_matrix(w, h, "sg-em")).T)
        assert e2 < e1

    def test_unknown_mode(self, rng):
        w, _, h = self._setup(rng)
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            gptq_quantize_matrix(w, h, "bogus")

    @given(st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_output_on_valid_grid(self, seed):
        rng = np.random.default_rng(seed)
        w = rng.standard_normal((8, 64))
        x = rng.standard_normal((100, 64))
        q = gptq_quantize_matrix(w, x.T @ x / 100, "mxfp4")
        assert np.all(np.isfinite(q))
