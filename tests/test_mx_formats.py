"""Tests for the MX format family (MXFP, NVFP4, SMX, MSFP, group-FP4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import FP4_E2M1
from repro.mx import (MSFP12, MXFP4, MXFP6_E2M3, MXFP8_E4M3, MXINT8, NVFP4,
                      SMX4, SMX6, SMX9, GroupFP4, MaxPreserving, mxfp4, nvfp4,
                      smx4)


class TestMXFP4:
    def test_ebw(self):
        assert mxfp4.ebw == 4.25
        assert MXFP4(group_size=16).ebw == 4.5

    def test_values_on_scaled_grid(self, rng):
        x = rng.standard_normal((4, 64)) * 5
        res = MXFP4().quantize_detailed(x)
        groups = res.dequantized.reshape(-1, 32)
        for g, s in zip(groups, res.scales):
            assert all(abs(v) / s in FP4_E2M1.grid for v in g)

    def test_idempotent(self, rng):
        x = rng.standard_normal((8, 32))
        q1 = mxfp4.quantize(x)
        assert np.allclose(mxfp4.quantize(q1), q1)

    def test_zero_tensor(self):
        assert np.all(mxfp4.quantize(np.zeros((2, 32))) == 0)

    def test_shape_preserved(self, rng):
        x = rng.standard_normal((3, 5, 50))
        assert mxfp4.quantize(x).shape == x.shape

    def test_quantization_reduces_with_bits(self, heavy_tensor):
        e4 = np.mean((MXFP4().quantize(heavy_tensor) - heavy_tensor) ** 2)
        e6 = np.mean((MXFP6_E2M3().quantize(heavy_tensor) - heavy_tensor) ** 2)
        e8 = np.mean((MXFP8_E4M3().quantize(heavy_tensor) - heavy_tensor) ** 2)
        assert e8 < e6 < e4

    def test_mxint8_high_fidelity(self, heavy_tensor):
        err = np.mean((MXINT8().quantize(heavy_tensor) - heavy_tensor) ** 2)
        rel = err / np.mean(heavy_tensor ** 2)
        assert rel < 1e-3


class TestNVFP4:
    def test_ebw(self):
        assert nvfp4.ebw == 4.5

    def test_beats_mxfp4_on_outliers(self, heavy_tensor):
        e_mx = np.mean((mxfp4.quantize(heavy_tensor) - heavy_tensor) ** 2)
        e_nv = np.mean((nvfp4.quantize(heavy_tensor) - heavy_tensor) ** 2)
        assert e_nv < e_mx

    def test_zero_tensor(self):
        assert np.all(NVFP4().quantize(np.zeros((2, 16))) == 0)

    def test_calibrated_scale_clips_spikes(self, rng):
        x = rng.standard_normal((4, 16))
        spike = x.copy()
        spike[0, 0] = 1000.0
        # Calibrated with a too-small tensor amax: the spike must clip hard.
        dq = NVFP4().quantize_activation_calibrated(spike, tensor_amax=5.0)
        assert abs(dq[0, 0]) < 1000.0

    def test_tensor_scale_reported(self, rng):
        res = NVFP4().quantize_detailed(rng.standard_normal((2, 16)))
        assert res.details["tensor_scale"] > 0


class TestSMX:
    def test_ebw_is_4(self):
        assert smx4.ebw == 4.0

    def test_smx_family_fidelity_order(self, heavy_tensor):
        errs = [np.mean((f().quantize(heavy_tensor) - heavy_tensor) ** 2)
                for f in (SMX4, SMX6, SMX9)]
        assert errs[2] < errs[1] < errs[0]

    def test_smx4_worst_4bit_format(self, heavy_tensor):
        e_smx = np.mean((smx4.quantize(heavy_tensor) - heavy_tensor) ** 2)
        e_mx = np.mean((mxfp4.quantize(heavy_tensor) - heavy_tensor) ** 2)
        assert e_smx > e_mx

    def test_micro_exponent_refines_small_pairs(self):
        # One big pair, one tiny pair: the tiny pair gets the halved scale.
        g = np.array([[8.0, 7.0] + [0.2, 0.1] + [0.0] * 12])
        res = SMX4().quantize_groups(g)
        micro = res.details["micro_exponents"][0]
        assert micro[1] >= micro[0]


class TestOtherFormats:
    def test_msfp12_ebw(self):
        assert MSFP12().ebw == 4.5

    def test_group_fp4_maps_max_exactly(self):
        g = np.zeros((1, 32))
        g[0, 5] = 3.17
        dq = GroupFP4().quantize(g)
        # The group max maps to the FP4 max times the FP16 scale (~amax).
        assert abs(dq[0, 5] - 3.17) / 3.17 < 2e-3

    def test_max_preserving_keeps_max(self, rng):
        x = rng.standard_normal((4, 64)) * 4
        dq = MaxPreserving(MXFP4()).quantize(x)
        groups = x.reshape(-1, 32)
        dq_groups = dq.reshape(-1, 32)
        idx = np.argmax(np.abs(groups), axis=1)
        rows = np.arange(groups.shape[0])
        assert np.allclose(dq_groups[rows, idx], groups[rows, idx], rtol=1e-3)

    def test_max_preserving_lowers_error(self, heavy_tensor):
        plain = np.mean((mxfp4.quantize(heavy_tensor) - heavy_tensor) ** 2)
        kept = np.mean((MaxPreserving(MXFP4()).quantize(heavy_tensor)
                        - heavy_tensor) ** 2)
        assert kept < plain

    def test_max_preserving_wraps_nvfp4(self, heavy_tensor):
        dq = MaxPreserving(NVFP4()).quantize(heavy_tensor)
        assert dq.shape == heavy_tensor.shape

    @given(st.integers(2, 6))
    @settings(max_examples=10, deadline=None)
    def test_formats_accept_any_row_count(self, n):
        x = np.random.default_rng(n).standard_normal((n, 32))
        for fmt in (MXFP4(), NVFP4(), SMX4(), GroupFP4()):
            assert fmt.quantize(x).shape == x.shape
