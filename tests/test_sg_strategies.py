"""Tests for Sg-EM, Sg-EE and Elem-EE metadata strategies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (SG_EM_MULTIPLIERS, ElemEE, SgEE, SgEM, sg_ee_decode,
                        sg_ee_encode, sg_em_decode, sg_em_encode,
                        sg_em_quantize_groups)
from repro.errors import ShapeError
from repro.mx import mxfp4


class TestSgEM:
    def test_multiplier_set(self):
        assert SG_EM_MULTIPLIERS == (1.0, 1.25, 1.5, 1.75)

    def test_encode_decode_consistency(self, rng):
        g = rng.standard_normal((30, 32)) * 2
        enc = sg_em_encode(g, sub_size=8)
        dq = sg_em_decode(enc)
        assert np.allclose(dq, sg_em_quantize_groups(g, sub_size=8))

    def test_adaptive_no_worse_than_fixed(self, heavy_tensor):
        e_fixed = np.mean((SgEM(adaptive=False).quantize(heavy_tensor)
                           - heavy_tensor) ** 2)
        e_adapt = np.mean((SgEM(adaptive=True).quantize(heavy_tensor)
                           - heavy_tensor) ** 2)
        assert e_adapt <= e_fixed + 1e-12

    def test_beats_mxfp4(self, heavy_tensor):
        e_sg = np.mean((SgEM().quantize(heavy_tensor) - heavy_tensor) ** 2)
        e_mx = np.mean((mxfp4.quantize(heavy_tensor) - heavy_tensor) ** 2)
        assert e_sg < e_mx

    def test_sg_codes_in_two_bits(self, rng):
        enc = sg_em_encode(rng.standard_normal((50, 32)), sub_size=8)
        assert enc.sg_codes.min() >= 0 and enc.sg_codes.max() <= 3

    def test_bias_absorbed_into_scale(self):
        # Adaptive bias changes the stored exponent, not extra metadata.
        g = np.random.default_rng(5).standard_normal((100, 32)) * 4
        enc = sg_em_encode(g, sub_size=8, adaptive=True)
        assert enc.meta_bits_per_group == 8  # 4 subgroups x 2 bits only

    def test_ebw(self):
        assert SgEM(sub_size=8).ebw == 4.5

    def test_refinement_uses_selected_multiplier(self):
        # A subgroup whose max sits at 1.75x the pow2 scale grid point
        # should pick a non-unity multiplier.
        g = np.full((1, 32), 0.01)
        g[0, :8] = np.array([6.99, 5.0, 4.0, 3.0, 2.0, 1.0, 0.5, 0.2])
        enc = sg_em_encode(g, sub_size=8, adaptive=False)
        assert enc.sg_codes[0, 0] > 0

    def test_invalid_shape(self):
        with pytest.raises(ShapeError):
            sg_em_encode(np.zeros((2, 30)), sub_size=8)


class TestSgEE:
    def test_encode_decode_roundtrip(self, rng):
        g = rng.standard_normal((20, 32))
        enc = sg_ee_encode(g, sub_size=8, meta_bits=2)
        assert sg_ee_decode(enc).shape == g.shape

    def test_fixed_decrement_never_clips_subgroup(self, rng):
        g = rng.standard_normal((50, 32)) * 3
        enc = sg_ee_encode(g, sub_size=8, meta_bits=2)
        scale = np.exp2(enc.scale_exponents.astype(float))
        local = scale[:, None] / np.exp2(enc.sg_decrements.astype(float))
        sub_max = np.max(np.abs(g.reshape(50, 4, 8)), axis=2)
        # Decrement only shrinks the scale when the subgroup still fits.
        fits = sub_max <= scale[:, None] * 6.0
        assert np.all(sub_max[fits] <= local[fits] * 6.0 * 2.0 + 1e-9)

    def test_adaptive_no_worse(self, heavy_tensor):
        e_fixed = np.mean((SgEE(adaptive=False).quantize(heavy_tensor)
                           - heavy_tensor) ** 2)
        e_adapt = np.mean((SgEE(adaptive=True).quantize(heavy_tensor)
                           - heavy_tensor) ** 2)
        assert e_adapt <= e_fixed + 1e-12

    def test_sg_ee_weaker_than_elem_em(self, heavy_tensor):
        # The paper's key DSE finding: range metadata cannot fix the block
        # maximum, precision metadata can.
        from repro.core import ElemEM
        e_ee = np.mean((SgEE(meta_bits=2).quantize(heavy_tensor)
                        - heavy_tensor) ** 2)
        e_em = np.mean((ElemEM().quantize(heavy_tensor) - heavy_tensor) ** 2)
        assert e_em < e_ee

    def test_meta_bits_validation(self):
        with pytest.raises(ShapeError):
            sg_ee_encode(np.zeros((2, 32)), meta_bits=0)

    def test_all_zero_subgroups_take_max_decrement(self):
        from repro.core.sg_ee import _fixed_decrements
        # One group of real data with two all-zero subgroups, one group
        # of nothing but zeros.
        g = np.zeros((2, 32))
        g[0, :16] = [3.0, -1.0, 0.5, 2.0, 1.5, -0.25, 0.75, 4.0] * 2
        subs = g.reshape(2, 4, 8)
        scale = np.ones(2)
        decs = _fixed_decrements(subs, scale, d_max=3)
        assert decs.shape == (2, 4)
        assert np.all(decs[0, 2:] == 3)     # zero subgroups -> deepest range
        assert np.all(decs[1] == 3)         # fully zero group too
        assert np.all((decs >= 0) & (decs <= 3))

    def test_all_zero_groups_quantize_to_zero(self):
        from repro.core import sg_ee_quantize_groups
        g = np.zeros((3, 32))
        dq = sg_ee_quantize_groups(g, sub_size=8, meta_bits=2)
        assert dq.shape == g.shape
        assert np.all(dq == 0.0)
        enc = sg_ee_encode(g, sub_size=8, meta_bits=2)
        assert np.all(enc.mag_codes == 0)
        assert np.all(enc.sg_decrements == 3)


class TestElemEE:
    def test_shape_and_basic_error(self, heavy_tensor):
        fmt = ElemEE()
        dq = fmt.quantize(heavy_tensor)
        assert dq.shape == heavy_tensor.shape
        assert np.mean((dq - heavy_tensor) ** 2) < np.mean(heavy_tensor ** 2)

    def test_ebw(self):
        assert ElemEE(sub_size=8).ebw == 4.5

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=30, deadline=None)
    def test_no_nan(self, seed):
        g = np.random.default_rng(seed).standard_normal((3, 32)) * 10
        from repro.core import elem_ee_quantize_groups
        assert np.all(np.isfinite(elem_ee_quantize_groups(g)))
