"""Smoke tests for the example scripts and remaining edge cases."""

import runpy
import sys

import numpy as np
import pytest

from repro.eval.harness import average_accuracy_loss
from repro.experiments.report import format_table
from repro.models.quantized import Fp16Format


class TestExamples:
    def test_quickstart_runs(self, capsys):
        runpy.run_path("examples/quickstart.py", run_name="__main__")
        out = capsys.readouterr().out
        assert "m2xfp" in out and "bits/element" in out

    def test_kv_cache_runs(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["kv_cache.py"])
        runpy.run_path("examples/kv_cache.py", run_name="__main__")
        out = capsys.readouterr().out
        assert "streaming KV sessions" in out
        assert "improvement" in out
        assert "compiled-plan cache" in out

    def test_kv_cache_static_mode_runs(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["kv_cache.py", "--static"])
        runpy.run_path("examples/kv_cache.py", run_name="__main__")
        out = capsys.readouterr().out
        assert "improvement" in out
        assert "packed KV-cache footprint" in out

    def test_accelerator_sim_runs(self, capsys):
        runpy.run_path("examples/accelerator_sim.py", run_name="__main__")
        out = capsys.readouterr().out
        assert "M2XFP vs MicroScopiQ" in out
        assert "worst error over 1000 subgroups: 0.0" in out


class TestMisc:
    def test_fp16_format_is_identity(self, rng):
        x = rng.standard_normal((5, 7))
        fmt = Fp16Format()
        assert np.array_equal(fmt.quantize(x), x)
        assert fmt.ebw == 16.0

    def test_average_accuracy_loss(self):
        table = {"fp16": {"a": 80.0, "b": 60.0},
                 "q": {"a": 70.0, "b": 55.0}}
        assert average_accuracy_loss(table, "q") == pytest.approx(7.5)

    def test_format_table_empty_rows(self):
        txt = format_table(["x", "y"], [])
        assert "x" in txt

    def test_channel_mxfp4_ebw(self):
        from repro.experiments.fig4_group_size import ChannelMXFP4
        assert ChannelMXFP4().ebw == 4.0

    def test_version_exported(self):
        import repro
        assert repro.__version__ == "1.0.0"

    def test_public_api_importable(self):
        from repro import (M2NVFP4, M2XFP, MXFP4, NVFP4, SMX4, ElemEM, SgEM,
                           TensorFormat, m2xfp)
        assert issubclass(M2XFP, TensorFormat)
        assert m2xfp.name.startswith("m2xfp")

    def test_repr_of_formats(self):
        from repro import mxfp4
        assert "mxfp4" in repr(mxfp4)

    def test_errors_hierarchy(self):
        from repro import ConfigError, FormatError, ReproError, ShapeError
        for exc in (FormatError, ShapeError, ConfigError):
            assert issubclass(exc, ReproError)

    def test_ebw_helper_validation(self):
        from repro.core import ebw
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            ebw(4, 0)
        assert ebw(4, 32, 8, 8) == 4.5

    def test_buffer_model_scales_linearly(self):
        from repro.accel import BufferModel
        small, big = BufferModel(100), BufferModel(200)
        assert big.area_mm2 == pytest.approx(2 * small.area_mm2)
        assert big.power_mw == pytest.approx(2 * small.power_mw)

    def test_tech_constants_cycle_time(self):
        from repro.accel import TECH_28NM
        assert TECH_28NM.cycle_time_s == pytest.approx(2e-9)
