"""Bit-exactness tests for the accelerator's functional units."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel import (FP4_TO_UINT_LUT, PETile, PETileInputs,
                         QuantizationEngine, Top1DecodeUnit,
                         comparator_tree_top1, from_fixed, lut_key, to_fixed)
from repro.core import elem_em_encode, elem_em_quantize_groups
from repro.errors import FormatError, ShapeError


class TestFixedPoint:
    def test_exact_roundtrip(self):
        vals = np.array([0.5, -1.5, 3.0, 6.0])
        assert np.array_equal(from_fixed(to_fixed(vals, 1), 1), vals)

    def test_rejects_inexact(self):
        with pytest.raises(FormatError):
            to_fixed(np.array([0.3]), 1)


class TestDecodeUnit:
    def test_lut_maps_sign_magnitude(self):
        # +v and -v share the same magnitude key.
        for mag in range(8):
            assert FP4_TO_UINT_LUT[mag] == FP4_TO_UINT_LUT[mag | 0x8]

    def test_tree_matches_argmax_lowest_index(self, rng):
        keys = rng.integers(0, 8, (500, 8))
        got = comparator_tree_top1(keys)
        want = np.argmax(keys, axis=1)  # numpy argmax takes first maximum
        assert np.array_equal(got, want)

    def test_all_equal_gives_index_zero(self):
        assert comparator_tree_top1(np.full((1, 8), 3))[0] == 0

    def test_unit_selects_by_magnitude_not_sign(self):
        unit = Top1DecodeUnit()
        codes = np.array([[0x1, 0x2, 0xF, 0x3, 0x0, 0x0, 0x0, 0x0]])
        # 0xF is -6.0: largest magnitude despite the sign bit.
        assert unit.top1(codes)[0] == 2

    def test_matches_encoder_top_choice(self, rng):
        g = rng.standard_normal((100, 32)) * 2
        enc = elem_em_encode(g, sub_size=8)
        packed = (enc.sign_codes << 3) | enc.mag_codes
        unit = Top1DecodeUnit()
        for row in range(100):
            for sub in range(4):
                codes = packed[row, sub * 8:(sub + 1) * 8]
                mag_sub = enc.mag_codes[row, sub * 8:(sub + 1) * 8]
                assert unit.top1(codes[None, :])[0] == np.argmax(mag_sub)

    def test_bad_inputs(self):
        with pytest.raises(ShapeError):
            lut_key(np.array([16]))
        with pytest.raises(ShapeError):
            comparator_tree_top1(np.zeros((1, 4)))

    def test_cycles(self):
        assert Top1DecodeUnit().cycles(10) == 10


class TestPETile:
    def _random_inputs(self, rng):
        x_codes = rng.integers(0, 16, 8)
        # Valid metadata: encode a real group so meta is consistent.
        return PETileInputs(
            w_codes=rng.integers(0, 16, 8), x_codes=x_codes,
            x_meta=int(rng.integers(0, 4)), sg_code=int(rng.integers(0, 4)),
            w_exp=int(rng.integers(-10, 10)), x_exp=int(rng.integers(-10, 10)))

    def test_bit_exact_vs_reference(self, rng):
        pe = PETile()
        for _ in range(300):
            inp = self._random_inputs(rng)
            assert pe.multiply_accumulate(inp) == pe.reference(inp)

    def test_zero_inputs(self):
        pe = PETile()
        inp = PETileInputs(np.zeros(8, int), np.zeros(8, int), 1, 0, 0, 0)
        assert pe.multiply_accumulate(inp) == pe.reference(inp)

    def test_shape_validation(self):
        pe = PETile()
        with pytest.raises(ShapeError):
            pe.multiply_accumulate(PETileInputs(np.zeros(4, int),
                                                np.zeros(8, int), 0, 0, 0, 0))

    def test_subgroup_scale_shift_add(self):
        pe = PETile()
        base = PETileInputs(np.array([2] * 8), np.array([2] * 8), 1, 0, 0, 0)
        scaled = PETileInputs(np.array([2] * 8), np.array([2] * 8), 1, 3, 0, 0)
        assert pe.multiply_accumulate(scaled) == pytest.approx(
            pe.multiply_accumulate(base) * 1.75)

    def test_exponent_alignment(self):
        pe = PETile()
        a = PETileInputs(np.array([2] * 8), np.array([2] * 8), 1, 0, 0, 0)
        b = PETileInputs(np.array([2] * 8), np.array([2] * 8), 1, 0, 3, -1)
        assert pe.multiply_accumulate(b) == pe.multiply_accumulate(a) * 4.0

    @given(st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=100, deadline=None)
    def test_exactness_property(self, seed):
        rng = np.random.default_rng(seed)
        pe = PETile()
        inp = self._random_inputs(rng)
        assert pe.multiply_accumulate(inp) == pe.reference(inp)


class TestQuantEngine:
    def test_matches_algorithm1(self, rng):
        g = rng.standard_normal((50, 32)) * 3
        engine = QuantizationEngine()
        from repro.core import elem_em_decode
        assert np.array_equal(elem_em_decode(engine.encode(g)),
                              elem_em_quantize_groups(g, sub_size=8))

    def test_packed_output_cost(self, rng):
        packed = QuantizationEngine().encode_packed(rng.standard_normal((8, 32)))
        assert packed.bits_per_element == 4.5

    def test_pipeline_timing(self):
        engine = QuantizationEngine()
        assert engine.cycles(0) == 0
        assert engine.cycles(1) == 2
        assert engine.cycles(100) == 101

    def test_streaming_throughput_check(self):
        engine = QuantizationEngine()
        assert not engine.stalls_systolic_array(1.0)
        assert engine.stalls_systolic_array(1.5)

    def test_group_sub_validation(self):
        with pytest.raises(ShapeError):
            QuantizationEngine(group_size=32, sub_size=5)
