"""Tests for Algorithm 1 (Elem-EM activation quantization)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (ElemEM, elem_em_decode, elem_em_encode,
                        elem_em_quantize_groups)
from repro.errors import ShapeError
from repro.mx import mxfp4


def _group_with(value: float, group_max: float = 4.0) -> np.ndarray:
    """A group whose shared scale is 1 (max in [4, 8)) containing ``value``."""
    g = np.full(32, 0.1)
    g[0] = group_max
    g[9] = value  # second subgroup
    return g[None, :]


class TestPaperExamples:
    def test_fig8_bad_case_decodes_to_3p75(self):
        # 3.578 quantizes to FP6 3.5, which the -1..+2 bias window cannot
        # encode; the clamp maps it to 3.75 (Fig. 8's documented bad case).
        enc = elem_em_encode(_group_with(3.578), sub_size=8)
        dec = elem_em_decode(enc)
        assert dec[0, 9] == 3.75

    def test_encodable_value_is_exact_fp6(self):
        # 4.43 -> FP6 4.5 = FP4 4.0 + one step: encodable.
        enc = elem_em_encode(_group_with(4.43), sub_size=8)
        assert elem_em_decode(enc)[0, 9] == 4.5

    def test_bias_window_covers_minus1_to_plus2(self):
        # Values quantizing to FP4 4.0 (the (3.5, 5] bin) can only decode
        # to the biased FP6 candidates {3.75, 4.0, 4.5, 5.0}.
        decoded = set()
        for v in np.linspace(3.55, 4.99, 40):
            enc = elem_em_encode(_group_with(float(v)), sub_size=8)
            decoded.add(float(abs(elem_em_decode(enc)[0, 9])))
        assert decoded <= {3.75, 4.0, 4.5, 5.0}
        assert len(decoded) == 4  # every bias value is reachable

    def test_scale_follows_floor_rule(self):
        g = np.full((1, 32), 0.1)
        g[0, 0] = 9.0  # floor(log2(9/4)) = 1 -> S = 2
        enc = elem_em_encode(g, sub_size=8)
        assert enc.scale_exponents[0] == 1


class TestTopSelection:
    def test_tie_resolves_to_lowest_index(self):
        g = np.full((1, 32), 0.1)
        g[0, 3] = 3.85  # both quantize to the same FP4 code (4.0)
        g[0, 6] = 4.1
        enc = elem_em_encode(g, sub_size=8)
        dec = elem_em_decode(enc)
        # Index 3 wins the tie; only it receives FP6 refinement.
        assert dec[0, 3] == 3.75  # refined toward 3.85
        assert dec[0, 6] == 4.0   # left at the FP4 point

    def test_top1_is_subgroup_local(self):
        g = np.full((1, 32), 0.1)
        g[0, 0], g[0, 8], g[0, 16], g[0, 24] = 4.0, 2.9, 1.4, 0.7
        enc = elem_em_encode(g, sub_size=8)
        dec = elem_em_decode(enc)
        # Each subgroup's max got its own refinement.
        assert dec[0, 8] == 3.0 or abs(dec[0, 8] - 2.9) <= 0.125
        assert abs(dec[0, 16] - 1.4) <= 0.07

    def test_top2_refines_two_elements(self):
        g = np.full((1, 32), 0.1)
        g[0, 0], g[0, 1] = 4.4, 3.3
        enc = elem_em_encode(g, sub_size=8, top_k=2)
        dec = elem_em_decode(enc)
        assert dec[0, 0] == 4.5
        assert abs(dec[0, 1] - 3.3) <= 0.13

    def test_metadata_shape(self):
        enc = elem_em_encode(np.ones((5, 32)), sub_size=8, top_k=2)
        assert enc.metadata.shape == (5, 4, 2)
        assert enc.meta_bits_per_group == 16


class TestProperties:
    def test_reduces_error_vs_mxfp4(self, heavy_tensor):
        fmt = ElemEM()
        e_em = np.mean((fmt.quantize(heavy_tensor) - heavy_tensor) ** 2)
        e_mx = np.mean((mxfp4.quantize(heavy_tensor) - heavy_tensor) ** 2)
        assert e_em < e_mx

    def test_ebw_by_subgroup(self):
        assert ElemEM(sub_size=8).ebw == 4.5
        assert ElemEM(sub_size=4).ebw == 4.75
        assert ElemEM(sub_size=2).ebw == 5.25
        assert ElemEM(sub_size=16).ebw == 4.375

    def test_decode_uses_only_stored_fields(self, rng):
        # Rebuilding the encoding from its raw fields must reproduce the
        # decode exactly (the decoder re-derives top-1 from FP4 codes).
        from repro.core.elem_em import ElemEMEncoding
        g = rng.standard_normal((20, 32)) * 3
        enc = elem_em_encode(g, sub_size=8)
        clone = ElemEMEncoding(sign_codes=enc.sign_codes.copy(),
                               mag_codes=enc.mag_codes.copy(),
                               scale_exponents=enc.scale_exponents.copy(),
                               metadata=enc.metadata.copy(),
                               sub_size=8, top_k=1)
        assert np.array_equal(elem_em_decode(enc), elem_em_decode(clone))

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ShapeError):
            elem_em_encode(np.zeros(32), sub_size=8)
        with pytest.raises(ShapeError):
            elem_em_encode(np.zeros((2, 30)), sub_size=8)
        with pytest.raises(ShapeError):
            elem_em_encode(np.zeros((2, 32)), sub_size=8, top_k=9)

    def test_zero_group(self):
        dq = elem_em_quantize_groups(np.zeros((3, 32)))
        assert np.all(dq == 0)

    def test_tensor_format_roundtrip_shape(self, rng):
        x = rng.standard_normal((7, 45))
        assert ElemEM().quantize(x).shape == x.shape

    @given(st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_never_worse_than_mxfp4_on_the_max(self, seed):
        rng = np.random.default_rng(seed)
        g = rng.standard_normal((1, 32)) * np.exp(rng.standard_normal())
        dq_em = elem_em_quantize_groups(g, sub_size=8)
        dq_mx = mxfp4.quantize(g)
        i = np.argmax(np.abs(g))
        assert abs(dq_em[0, i] - g[0, i]) <= abs(dq_mx[0, i] - g[0, i]) + 1e-12
