"""Gateway chaos: replica failures must stay invisible to HTTP clients.

The contract under test, in order of importance:

1. **Failover transparency** — a replica dying mid-request (chaos-proxy
   connection kills, real SIGKILL) costs the gateway a failover, never
   the client an error: every HTTP response is 200 and bit-exact
   against the local re-derivation. Safe by the idempotency contract
   (DESIGN.md §9): the gateway blindly re-sends the identical request
   to the next replica in the key's preference order.
2. **Drain redistribution** — draining one replica moves its formats'
   traffic onto the survivors with zero client-visible errors.
3. **Honest degradation** — an unreachable/crash-looping replica is
   ejected from routing and ``/healthz`` reports ``degraded`` (or
   ``down`` + 503 when nothing is routable), never a lying ``ok``.
"""

from __future__ import annotations

import base64
import http.client
import json
import os
import signal
import socket
import time

import numpy as np
import pytest

from repro.gateway import GatewayThread, ReplicaCluster
from repro.kv import KVCacheSession
from repro.server import FaultPlan, FaultProxy, QuantClient, ServerThread
from repro.server.client import local_expected

CHAOS_FORMATS = ("m2xfp", "elem-em", "m2-nvfp4", "nvfp4", "smx6")


def _quantize(conn, x, *, fmt, op="weight", packed=False):
    conn.request("POST", "/v1/quantize", json.dumps({
        "format": fmt, "op": op, "packed": packed,
        "shape": list(x.shape),
        "data_b64": base64.b64encode(x.tobytes()).decode()}),
        {"Content-Type": "application/json"})
    resp = conn.getresponse()
    return resp.status, resp.read()


def _assert_exact(status, body, x, *, fmt, op="weight", packed=False):
    assert status == 200, f"{fmt}:{op}: client saw {status}: {body!r}"
    expect = local_expected(x, fmt=fmt, op=op, packed=packed)
    if packed:
        assert body == expect.to_bytes()
    else:
        got = np.frombuffer(
            base64.b64decode(json.loads(body)["data_b64"]), "<f8")
        assert got.tobytes() == \
            np.asarray(expect, np.float64).ravel().tobytes()


def _healthz(conn) -> tuple[int, dict]:
    conn.request("GET", "/healthz")
    resp = conn.getresponse()
    return resp.status, json.loads(resp.read())


def _dead_endpoint() -> str:
    """A host:port that refuses connections (bound once, then closed)."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return f"127.0.0.1:{port}"


# ----------------------------------------------------------------------
# 1. Connection-kill chaos on one replica: zero client-visible errors
# ----------------------------------------------------------------------
def test_replica_kills_fail_over_bit_exactly(rng):
    """One replica's wire is chaos-killed; the gateway's failover keeps
    every HTTP answer 200 and bit-exact."""
    x = rng.standard_normal((2, 64))
    plan = FaultPlan(seed=11, kill_prob=0.35)
    with ServerThread(port=0, max_delay_s=0.0005) as chaotic, \
            ServerThread(port=0, max_delay_s=0.0005) as stable, \
            FaultProxy(target_port=chaotic.port, plan=plan) as px:
        upstreams = [f"127.0.0.1:{px.port}", f"127.0.0.1:{stable.port}"]
        with GatewayThread(upstreams=upstreams, port=0,
                           probe_interval_s=0.2,
                           upstream_timeout_s=15.0) as gw:
            conn = http.client.HTTPConnection("127.0.0.1", gw.port,
                                              timeout=60)
            try:
                for i in range(20):
                    fmt = CHAOS_FORMATS[i % len(CHAOS_FORMATS)]
                    status, body = _quantize(conn, x, fmt=fmt,
                                             packed=(i % 2 == 0))
                    _assert_exact(status, body, x, fmt=fmt,
                                  packed=(i % 2 == 0))
            finally:
                conn.close()
            # The chaos must actually have bitten — and been absorbed.
            snap = gw.gateway.snapshot()
            assert px.stats["killed"] > 0
            if px.stats["killed"] > snap["upstream"]["probe_failures"]:
                assert snap["upstream"]["failovers"] > 0
            assert snap["requests_total"] == 20


# ----------------------------------------------------------------------
# 2. Draining one replica redistributes its traffic
# ----------------------------------------------------------------------
def test_drain_of_one_replica_redistributes_traffic(rng):
    x = rng.standard_normal((2, 64))
    with ServerThread(port=0, max_delay_s=0.0005) as a, \
            ServerThread(port=0, max_delay_s=0.0005) as b:
        upstreams = [f"127.0.0.1:{a.port}", f"127.0.0.1:{b.port}"]
        with GatewayThread(upstreams=upstreams, port=0,
                           probe_interval_s=0.1) as gw:
            conn = http.client.HTTPConnection("127.0.0.1", gw.port,
                                              timeout=60)
            try:
                for fmt in CHAOS_FORMATS:  # warm every arm's owner
                    _assert_exact(*_quantize(conn, x, fmt=fmt), x,
                                  fmt=fmt)
                # Drain replica A out from under the gateway.
                with QuantClient(port=a.port) as direct:
                    ack = direct.drain()
                    assert ack["draining"]
                a.drain(timeout=30.0)
                # Every format keeps answering — the drained replica's
                # arms now ride its failover target. Zero errors.
                for i in range(10):
                    fmt = CHAOS_FORMATS[i % len(CHAOS_FORMATS)]
                    _assert_exact(*_quantize(conn, x, fmt=fmt), x,
                                  fmt=fmt)
                # The probe loop notices and /healthz stops saying ok.
                deadline = time.monotonic() + 15.0
                while time.monotonic() < deadline:
                    code, body = _healthz(conn)
                    if body["status"] != "ok":
                        break
                    time.sleep(0.05)
                assert code == 200 and body["status"] == "degraded"
                name = f"127.0.0.1:{a.port}"
                assert body["replicas"][name]["state"] in ("down",
                                                           "draining")
                # All post-drain traffic landed on the survivor.
                snap = gw.gateway.snapshot()
                survivor = f"127.0.0.1:{b.port}"
                assert snap["replica_requests"][survivor] >= 10
            finally:
                conn.close()


# ----------------------------------------------------------------------
# 3. Unreachable replica: ejection + honest /healthz
# ----------------------------------------------------------------------
def test_dead_replica_is_ejected_and_healthz_degrades(rng):
    x = rng.standard_normal((2, 32))
    dead = _dead_endpoint()
    with ServerThread(port=0, max_delay_s=0.0005) as live:
        upstreams = [f"127.0.0.1:{live.port}", dead]
        with GatewayThread(upstreams=upstreams, port=0,
                           probe_interval_s=0.05,
                           eject_threshold=2) as gw:
            # Probes strike the dead endpoint until it is ejected.
            deadline = time.monotonic() + 15.0
            while not gw.gateway.replicas[dead].ejected and \
                    time.monotonic() < deadline:
                time.sleep(0.05)
            assert gw.gateway.replicas[dead].ejected
            conn = http.client.HTTPConnection("127.0.0.1", gw.port,
                                              timeout=60)
            try:
                code, body = _healthz(conn)
                assert code == 200 and body["status"] == "degraded"
                assert body["replicas"][dead]["ejected"]
                assert body["routable"] == 1
                # Every format still answers via the live replica —
                # including those the ring maps to the dead one.
                for fmt in CHAOS_FORMATS:
                    _assert_exact(*_quantize(conn, x, fmt=fmt), x,
                                  fmt=fmt)
            finally:
                conn.close()


def test_zero_routable_replicas_is_down_not_ok(rng):
    dead = _dead_endpoint()
    with GatewayThread(upstreams=[dead], port=0, probe_interval_s=0.05,
                       eject_threshold=1) as gw:
        conn = http.client.HTTPConnection("127.0.0.1", gw.port,
                                          timeout=30)
        try:
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                code, body = _healthz(conn)
                if code == 503:
                    break
                time.sleep(0.05)
            assert code == 503 and body["status"] == "down"
            # Quantize fails *typed*: a 502 upstream error, not a hang.
            status, payload = _quantize(
                conn, rng.standard_normal((2, 8)), fmt="m2xfp")
            assert status == 502
            assert json.loads(payload)["status"] == 502
        finally:
            conn.close()


# ----------------------------------------------------------------------
# 4. Streaming KV sessions: pinned routing, 410 Gone, replay recovery
# ----------------------------------------------------------------------
def _session(conn, action, fields) -> tuple[int, bytes]:
    conn.request("POST", f"/v1/session/{action}", json.dumps(fields),
                 {"Content-Type": "application/json"})
    resp = conn.getresponse()
    return resp.status, resp.read()


def _append_fields(sid, layer, seq, k, v) -> dict:
    def b64(a):
        return base64.b64encode(
            np.ascontiguousarray(a, dtype="<f8").tobytes()).decode()
    return {"session_id": sid, "layer": layer, "seq": seq,
            "k_b64": b64(k), "k_shape": list(k.shape),
            "v_b64": b64(v), "v_shape": list(v.shape)}


def _read_kv(body: bytes) -> tuple[np.ndarray, np.ndarray]:
    fields = json.loads(body)
    return tuple(
        np.frombuffer(base64.b64decode(fields[f"{side}_b64"]),
                      "<f8").reshape(fields[f"{side}_shape"])
        for side in ("k", "v"))


def test_session_ops_pin_to_one_replica_and_unknown_is_410(rng):
    """All of one session's ops land on its home replica (no failover
    spraying state across the cluster); a session nobody holds answers
    410 Gone carrying the typed SessionLost."""
    blocks = [(rng.standard_normal((2, 64)), rng.standard_normal((2, 64)))
              for _ in range(4)]
    with ServerThread(port=0) as a, ServerThread(port=0) as b:
        upstreams = [f"127.0.0.1:{a.port}", f"127.0.0.1:{b.port}"]
        with GatewayThread(upstreams=upstreams, port=0,
                           probe_interval_s=0.2) as gw:
            conn = http.client.HTTPConnection("127.0.0.1", gw.port,
                                              timeout=60)
            try:
                status, body = _session(conn, "read",
                                        {"session_id": "ghost",
                                         "layer": 0})
                assert status == 410
                err = json.loads(body)
                assert err["exc_type"] == "SessionLost"
                assert err["status"] == 410
                status, _ = _session(conn, "open",
                                     {"session_id": "pinned",
                                      "n_layers": 1})
                assert status == 200
                local = KVCacheSession(1)
                for seq, (k, v) in enumerate(blocks):
                    status, _ = _session(conn, "append", _append_fields(
                        "pinned", 0, seq, k, v))
                    assert status == 200
                    local.append(0, k, v)
                status, body = _session(conn, "read",
                                        {"session_id": "pinned",
                                         "layer": 0})
                assert status == 200
                K, V = _read_kv(body)
                lk, lv = local.read(0)
                assert K.tobytes() == lk.tobytes()
                assert V.tobytes() == lv.tobytes()
                # Exactly one replica ever saw the session.
                touched = [st for st in (a, b)
                           if st.server.stats["session_opens"] > 0]
                assert len(touched) == 1
                assert touched[0].server.stats["session_appends"] \
                    == len(blocks)
            finally:
                conn.close()


@pytest.mark.slow
def test_sigkill_home_replica_yields_410_then_replay_recovers(rng):
    """SIGKILL the replica holding a session's state: the next session
    op surfaces 410 Gone (typed SessionLost) — never a silent fresh
    stream — and the client-side reopen + replay protocol restores a
    bit-exact cache through the gateway."""
    sid = "kv-chaos"
    blocks = [(rng.standard_normal((2, 64)), rng.standard_normal((2, 64)))
              for _ in range(5)]
    with ReplicaCluster(replicas=2, max_delay_s=0.0005,
                        backoff_base_s=0.01) as cluster:
        with GatewayThread(upstreams=cluster.endpoints, port=0,
                           probe_interval_s=0.1,
                           upstream_timeout_s=15.0) as gw:
            conn = http.client.HTTPConnection("127.0.0.1", gw.port,
                                              timeout=60)
            try:
                assert _session(conn, "open", {"session_id": sid,
                                               "n_layers": 1})[0] == 200
                for seq in range(3):
                    k, v = blocks[seq]
                    assert _session(conn, "append", _append_fields(
                        sid, 0, seq, k, v))[0] == 200
                home = gw.gateway._session_replica(sid).name
                victim = next(p for p in cluster.pools
                              if f"{p.host}:{p.port}" == home)
                os.kill(victim._procs[0].pid, signal.SIGKILL)
                # The next append must answer 410 (the home's state died
                # with it) after transient 502/503s — never 200.
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    status, body = _session(conn, "append", _append_fields(
                        sid, 0, 3, *blocks[3]))
                    if status not in (502, 503):
                        break
                    time.sleep(0.1)
                assert status == 410, (status, body)
                assert json.loads(body)["exc_type"] == "SessionLost"
                # Client recovery: reopen + full replay. Routing follows
                # health, so a mid-replay 410 (the home flapping back)
                # just restarts the loop — the protocol converges.
                local = KVCacheSession(1)
                for k, v in blocks:
                    local.append(0, k, v)
                deadline = time.monotonic() + 60.0
                replayed = False
                while not replayed and time.monotonic() < deadline:
                    # Best-effort close first: clears any stale partial
                    # state where the ops currently route, so the open
                    # below starts a fresh stream at seq 0.
                    _session(conn, "close", {"session_id": sid})
                    if _session(conn, "open", {"session_id": sid,
                                               "n_layers": 1})[0] != 200:
                        time.sleep(0.1)
                        continue
                    replayed = True
                    for seq, (k, v) in enumerate(blocks):
                        while True:
                            status, _ = _session(conn, "append",
                                                 _append_fields(
                                                     sid, 0, seq, k, v))
                            if status in (502, 503):
                                time.sleep(0.1)
                                continue
                            break
                        if status != 200:   # routing moved: reopen
                            replayed = False
                            break
                assert replayed, "session replay never converged"
                status, body = _session(conn, "read",
                                        {"session_id": sid, "layer": 0})
                assert status == 200
                K, V = _read_kv(body)
                lk, lv = local.read(0)
                assert K.tobytes() == lk.tobytes()
                assert V.tobytes() == lv.tobytes()
            finally:
                conn.close()


# ----------------------------------------------------------------------
# 5. Real process SIGKILL mid-stream (slow: spawns interpreters)
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_sigkill_replica_mid_stream_invisible_to_clients(rng):
    """SIGKILL a real replica process while requests stream through the
    gateway: zero client-visible errors, bit-exact answers, and the
    supervisor + probe loop bring the replica back."""
    x = rng.standard_normal((2, 64))
    with ReplicaCluster(replicas=2, max_delay_s=0.0005,
                        backoff_base_s=0.01) as cluster:
        with GatewayThread(upstreams=cluster.endpoints, port=0,
                           probe_interval_s=0.1,
                           upstream_timeout_s=15.0) as gw:
            conn = http.client.HTTPConnection("127.0.0.1", gw.port,
                                              timeout=60)
            try:
                for fmt in CHAOS_FORMATS:
                    _assert_exact(*_quantize(conn, x, fmt=fmt), x,
                                  fmt=fmt)
                victim_pool = cluster.pools[0]
                victim = f"{victim_pool.host}:{victim_pool.port}"
                os.kill(victim_pool._procs[0].pid, signal.SIGKILL)
                # Stream right through the kill window: every answer
                # must still be 200 and bit-exact.
                for i in range(30):
                    fmt = CHAOS_FORMATS[i % len(CHAOS_FORMATS)]
                    _assert_exact(*_quantize(conn, x, fmt=fmt), x,
                                  fmt=fmt)
                # Supervision restarted the worker...
                deadline = time.monotonic() + 30.0
                while victim_pool.stats()["restarts"] < 1 and \
                        time.monotonic() < deadline:
                    time.sleep(0.05)
                assert victim_pool.stats()["restarts"] >= 1
                # ... and the probe loop reinstates the replica.
                deadline = time.monotonic() + 30.0
                while gw.gateway.replicas[victim].state != "up" and \
                        time.monotonic() < deadline:
                    time.sleep(0.05)
                assert gw.gateway.replicas[victim].state == "up"
                code, body = _healthz(conn)
                assert body["status"] == "ok"
            finally:
                conn.close()
