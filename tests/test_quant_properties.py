"""Randomized property suite over every format in the catalog.

Each property runs against all formats registered in
``repro.runner.formats.FORMAT_REGISTRY`` under **both** kernel dispatch
modes (fast and ``REPRO_REFERENCE_KERNELS=1``), so a regression in
either implementation — or a divergence between them — trips the suite.

Formats that genuinely do not satisfy a property are exempted by name
with the reason recorded next to the exemption; an exemption is a
documented design fact (e.g. Elem-EM's top-k FP6 refinement is not a
projection), never a shrug.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sg_em import SG_EM_MULTIPLIERS
from repro.errors import FormatError
from repro.formats.registry import FP4_E2M1, FP6_E2M3, SCALAR_FORMATS
from repro.kernels import fast_kernels, reference_kernels
from repro.runner.formats import FORMAT_REGISTRY, make_format

ALL_FORMATS = sorted(FORMAT_REGISTRY)

#: Formats whose quantize() is not a projection.
#: * Elem-EM/EE re-select their per-subgroup refinement targets from the
#:   quantized data on a second pass, so q(q(x)) can refine differently;
#:   the M2XFP hybrids inherit this through their Elem-EM activation
#:   path (M2XFP's Sg-EM weight path *is* idempotent — tested below).
#: * NVFP4's tensor-level FP32 scale is derived from the live tensor
#:   amax, which quantization itself perturbs; m2-nvfp4 builds on it.
#: * MaxPreserving stores the group max FP16-quantized, shifting the
#:   inner format's shared scale on the second pass.
NOT_IDEMPOTENT = {"elem-em", "elem-ee", "m2xfp", "m2-nvfp4",
                  "nvfp4", "mxfp4-maxkeep"}

#: Formats that are monotone on sorted data within one shared-scale
#: group. The exemptions all refine *subgroups* independently (SMX4's
#: pair micro-exponents, Sg-EM/EE multipliers, Elem-EM top-k FP6,
#: MaxPreserving's special-cased group max), so two neighbours can land
#: on differently-refined sub-grids and swap order by one step.
MONOTONE_IN_GROUP = sorted(set(ALL_FORMATS) - {
    "mxfp4-maxkeep", "smx4", "elem-em", "sg-em", "sg-ee",
    "m2xfp", "m2-nvfp4"})


@pytest.fixture(params=["fast", "reference"])
def dispatch(request):
    """Run the test body under one kernel dispatch mode."""
    cm = fast_kernels() if request.param == "fast" else reference_kernels()
    with cm:
        yield request.param


def _draws(n_draws: int = 3, shape=(4, 64)):
    """Adversarially-scaled random tensors (heavy tails, mixed binades)."""
    rng = np.random.default_rng(20260728)
    for _ in range(n_draws):
        x = rng.standard_normal(shape)
        x *= np.exp2(rng.integers(-6, 7, size=shape).astype(np.float64))
        yield x


@pytest.mark.parametrize("name", sorted(set(ALL_FORMATS) - NOT_IDEMPOTENT))
def test_idempotent(name, dispatch):
    """q(q(x)) == q(x): quantized data is a fixed point."""
    fmt = make_format(name)
    for x in _draws():
        q = fmt.quantize(x, axis=-1)
        assert np.array_equal(fmt.quantize(q, axis=-1), q)


@pytest.mark.parametrize("name", ["m2xfp"])
def test_weight_path_idempotent(name, dispatch):
    """M2XFP's offline (Sg-EM) weight path is a projection.

    m2-nvfp4 is excluded: its weight path sits on NVFP4's two-level
    scaling, whose tensor scale moves with the quantized amax.
    """
    fmt = make_format(name)
    for x in _draws():
        q = fmt.quantize_weight(x, axis=-1)
        assert np.array_equal(fmt.quantize_weight(q, axis=-1), q)


@pytest.mark.parametrize("name", ALL_FORMATS)
def test_sign_symmetry(name, dispatch):
    """Sign-magnitude formats commute with negation: q(-x) == -q(x)."""
    fmt = make_format(name)
    for x in _draws():
        assert np.array_equal(fmt.quantize(-x, axis=-1),
                              -fmt.quantize(x, axis=-1))


@pytest.mark.parametrize("name", MONOTONE_IN_GROUP)
def test_monotone_within_group(name, dispatch):
    """Sorted inputs under one shared scale quantize non-decreasingly."""
    fmt = make_format(name)
    g = int(getattr(fmt, "group_size", 32) or 32)
    rng = np.random.default_rng(97)
    for _ in range(6):
        row = np.sort(rng.standard_normal(g) *
                      np.exp2(int(rng.integers(-4, 5))))
        q = fmt.quantize(row[None, :], axis=-1)[0]
        assert np.all(np.diff(q) >= 0), f"{name}: {row!r} -> {q!r}"


@pytest.mark.parametrize("name", ALL_FORMATS)
def test_zeros_preserved(name, dispatch):
    """All-zero groups stay zero, and zeros embedded in data stay zero."""
    fmt = make_format(name)
    assert np.all(fmt.quantize(np.zeros((3, 64)), axis=-1) == 0)
    rng = np.random.default_rng(5)
    x = rng.standard_normal((4, 64))
    x[:, ::5] = 0.0
    q = fmt.quantize(x, axis=-1)
    assert np.all(q[:, ::5] == 0)


@pytest.mark.parametrize("name", sorted(set(ALL_FORMATS) - {"fp16"}))
@pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
def test_nonfinite_rejected(name, bad, dispatch):
    """NaN/Inf raise FormatError instead of poisoning the shared scale."""
    fmt = make_format(name)
    x = np.ones((2, 64))
    x[1, 3] = bad
    with pytest.raises(FormatError):
        fmt.quantize(x, axis=-1)


# ----------------------------------------------------------------------
# On-grid checks: every output value is an element-grid point times the
# format's scale. For dyadic-scale formats the scale is a power of two,
# so the *significand* of each nonzero output (via exact ``np.frexp``)
# must appear among the significands of the element grid (times the
# Sg-EM multipliers for the subgroup-refined formats). Formats with
# non-dyadic scales (NVFP4's E4M3, GroupFP4's FP16 scale) are excluded:
# their outputs have no scale-free invariant to check.
# ----------------------------------------------------------------------

def _significands(values: np.ndarray) -> set:
    vals = np.abs(np.asarray(values, dtype=np.float64).ravel())
    vals = vals[vals > 0]
    return set(np.frexp(vals)[0].tolist())


def _int_grid(max_value: float) -> np.ndarray:
    return np.arange(0.0, max_value + 1.0)


def _grid_sets():
    fp4 = FP4_E2M1.grid
    fp6 = FP6_E2M3.grid
    mult = np.asarray(SG_EM_MULTIPLIERS)
    sg = np.outer(fp4, mult)
    return {
        "mxfp4": _significands(fp4),
        "mxfp6-e2m3": _significands(fp6),
        "mxfp6-e3m2": _significands(SCALAR_FORMATS["fp6_e3m2"].grid),
        "mxfp8-e4m3": _significands(SCALAR_FORMATS["fp8_e4m3"].grid),
        "mxfp8-e5m2": _significands(SCALAR_FORMATS["fp8_e5m2"].grid),
        "mxint8": _significands(_int_grid(127)),
        "smx4": _significands(_int_grid(3)),
        "smx6": _significands(_int_grid(15)),
        "smx9": _significands(_int_grid(127)),
        "msfp12": _significands(_int_grid(7)),
        "msfp16": _significands(_int_grid(127)),
        "elem-ee": _significands(fp4),
        "elem-em": _significands(fp4) | _significands(fp6),
        "sg-em": _significands(sg),
        "sg-ee": _significands(sg),
        "mxfp4-maxkeep": None,  # group max passes through unquantized
    }


GRID_SETS = _grid_sets()


@pytest.mark.parametrize("name", sorted(k for k, v in GRID_SETS.items() if v))
def test_outputs_on_grid(name, dispatch):
    """Nonzero outputs are element-grid points under a power-of-two scale."""
    allowed = GRID_SETS[name]
    fmt = make_format(name)
    for x in _draws():
        q = np.abs(fmt.quantize(x, axis=-1)).ravel()
        sig = np.frexp(q[q > 0])[0]
        extra = set(sig.tolist()) - allowed
        assert not extra, f"{name}: off-grid significands {sorted(extra)[:5]}"


def test_maxkeep_stores_group_max_in_fp16(dispatch):
    """MaxPreserving stores each group's max FP16-quantized, not FP4."""
    from repro.formats.registry import FP16
    fmt = make_format("mxfp4-maxkeep")
    for x in _draws():
        q = fmt.quantize(x, axis=-1)
        groups = np.abs(x).reshape(-1, 32)
        qg = np.abs(q).reshape(-1, 32)
        idx = np.argmax(groups, axis=1)
        rows = np.arange(groups.shape[0])
        assert np.array_equal(qg[rows, idx], FP16.quantize(groups[rows, idx]))


# ----------------------------------------------------------------------
# Scalar FloatSpec properties (the element grids everything builds on).
# ----------------------------------------------------------------------

@pytest.mark.parametrize("spec_name", sorted(SCALAR_FORMATS))
def test_floatspec_decode_on_grid(spec_name, dispatch):
    """encode/decode lands every value exactly on the signed grid."""
    spec = SCALAR_FORMATS[spec_name]
    rng = np.random.default_rng(3)
    x = rng.standard_normal(512) * np.exp2(rng.integers(-8, 9, 512).astype(float))
    sign, mag = spec.encode(x)
    decoded = spec.decode(sign, mag)
    grid_set = set(spec.grid.tolist())
    assert all(abs(v) in grid_set for v in decoded.tolist())
    # Round trip: decoded values re-encode to the same codes.
    sign2, mag2 = spec.encode(decoded)
    assert np.array_equal(mag2, mag)
    nonzero = decoded != 0
    assert np.array_equal(sign2[nonzero], sign[nonzero])


@pytest.mark.parametrize("spec_name", sorted(SCALAR_FORMATS))
def test_floatspec_monotone(spec_name, dispatch):
    """Scalar encode is monotone: larger magnitudes, larger codes."""
    spec = SCALAR_FORMATS[spec_name]
    x = np.sort(np.abs(np.random.default_rng(9).standard_normal(256)))
    _, mag = spec.encode(x)
    assert np.all(np.diff(mag) >= 0)
