"""The single-pass eval engine must be pure amortization.

Engine-vs-legacy equality (bitwise, via ``repr`` of the float cells),
sharing behaviour (wrappers and perplexities reused across grids), the
``REPRO_NO_EVAL_ENGINE`` escape hatch, and the bounded runtime LRU.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.m2xfp import M2XFP
from repro.eval.engine import (EvalEngine, default_engine, engine_enabled,
                               reset_default_engine)
from repro.eval.harness import accuracy_table
from repro.eval.perplexity import perplexity_table, quantized_perplexity
from repro.eval.tasks import ZERO_SHOT_TASKS, TaskSpec
from repro.models import profiles
from repro.models.profiles import RUNTIME_CACHE_SIZE, load_runtime
from repro.mx import MXFP4

_PROFILE = "llama2-7b"
_SMALL = dict(n_seq=2, seq_len=24)


def _formats():
    return {"mxfp4": MXFP4(), "m2xfp": M2XFP()}


class TestEngineEquality:
    def test_perplexity_table_matches_legacy(self, monkeypatch):
        reset_default_engine()
        engine_grid = perplexity_table([_PROFILE], _formats(), **_SMALL)
        monkeypatch.setenv("REPRO_NO_EVAL_ENGINE", "1")
        monkeypatch.setenv("REPRO_NO_PLANS", "1")
        assert not engine_enabled()
        legacy_grid = perplexity_table([_PROFILE], _formats(), **_SMALL)
        assert repr(engine_grid) == repr(legacy_grid)

    def test_accuracy_table_matches_legacy(self, monkeypatch):
        reset_default_engine()
        tasks = {"arc-e": ZERO_SHOT_TASKS["arc-e"],
                 "piqa": ZERO_SHOT_TASKS["piqa"]}
        targets = {"arc-e": 74.58, "piqa": 79.11}
        engine_grid = accuracy_table(_PROFILE, tasks, targets, _formats(),
                                     **_SMALL)
        monkeypatch.setenv("REPRO_NO_EVAL_ENGINE", "1")
        monkeypatch.setenv("REPRO_NO_PLANS", "1")
        legacy_grid = accuracy_table(_PROFILE, tasks, targets, _formats(),
                                     **_SMALL)
        assert repr(engine_grid) == repr(legacy_grid)

    def test_quantized_perplexity_routes_through_engine(self):
        reset_default_engine()
        runtime = load_runtime(_PROFILE, **_SMALL)
        first = quantized_perplexity(runtime, M2XFP())
        before = default_engine().stats()
        second = quantized_perplexity(runtime, M2XFP())
        after = default_engine().stats()
        assert second == first
        assert after["ppl_hits"] == before["ppl_hits"] + 1


class TestEngineSharing:
    def test_wrapper_shared_across_grids(self):
        engine = EvalEngine()
        runtime = load_runtime(_PROFILE, **_SMALL)
        w1 = engine.wrapper(runtime, M2XFP())
        w2 = engine.wrapper(runtime, M2XFP())
        assert w1 is w2
        stats = engine.stats()
        assert stats["wrapper_builds"] == 1 and stats["wrapper_hits"] == 1

    def test_task_items_built_once(self):
        engine = EvalEngine()
        runtime = load_runtime(_PROFILE, **_SMALL)
        spec = TaskSpec("tiny", n_choices=2, n_items=4, context_len=6,
                        cont_len=3, seed=9)
        i1 = engine.task_items(runtime, spec)
        i2 = engine.task_items(runtime, spec)
        assert i1 is i2
        assert engine.stats()["items_builds"] == 1

    def test_different_rules_are_distinct_arms(self):
        engine = EvalEngine()
        runtime = load_runtime(_PROFILE, **_SMALL)
        a = engine.perplexity(runtime, M2XFP(scale_rule="floor"))
        b = engine.perplexity(runtime, M2XFP(scale_rule="ceil"))
        assert a != b
        assert engine.stats()["ppl_evals"] == 2

    def test_fp16_row_is_free(self):
        from repro.models.quantized import Fp16Format

        engine = EvalEngine()
        runtime = load_runtime(_PROFILE, **_SMALL)
        assert engine.perplexity(runtime, Fp16Format()) == runtime.fp16_ppl
        assert engine.stats()["ppl_evals"] == 0


class TestRuntimeLRU:
    def test_cache_is_bounded(self):
        load_runtime(_PROFILE, **_SMALL)
        sentinel = profiles._RUNTIME_CACHE[(_PROFILE, 2, 24)]
        snapshot = dict(profiles._RUNTIME_CACHE)
        try:
            for i in range(RUNTIME_CACHE_SIZE + 3):
                profiles._RUNTIME_CACHE[("fake", i, i)] = sentinel
                if len(profiles._RUNTIME_CACHE) > RUNTIME_CACHE_SIZE:
                    profiles._RUNTIME_CACHE.popitem(last=False)
            load_runtime(_PROFILE, **_SMALL)
            assert len(profiles._RUNTIME_CACHE) <= RUNTIME_CACHE_SIZE + 1
        finally:
            # Restore (not clear): other tests rely on the identity of
            # runtimes their session fixtures already loaded.
            profiles.clear_runtime_cache()
            profiles._RUNTIME_CACHE.update(snapshot)

    def test_repeated_load_is_cached(self):
        r1 = load_runtime(_PROFILE, **_SMALL)
        r2 = load_runtime(_PROFILE, **_SMALL)
        assert r1 is r2
