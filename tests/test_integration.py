"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro.core import m2xfp
from repro.eval import quantized_perplexity
from repro.models import QuantizedLM
from repro.mx import mxfp4, nvfp4, smx4


class TestFormatOrdering:
    """The paper's headline ordering must hold on the shared runtime."""

    def test_fp16_is_best(self, rt_small):
        for fmt in (mxfp4, nvfp4, m2xfp, smx4):
            assert quantized_perplexity(rt_small, fmt) > rt_small.fp16_ppl

    def test_m2xfp_beats_mxfp4(self, rt_small):
        assert (quantized_perplexity(rt_small, m2xfp)
                < quantized_perplexity(rt_small, mxfp4))

    def test_smx4_is_the_worst_4bit_format(self, rt_small):
        smx = quantized_perplexity(rt_small, smx4)
        assert smx > quantized_perplexity(rt_small, mxfp4)
        assert smx > quantized_perplexity(rt_small, nvfp4)
        assert smx > quantized_perplexity(rt_small, m2xfp)

    def test_m2xfp_competitive_with_nvfp4(self, rt_small):
        # On full-size runs the two are a near-tie (paper: 5.77 vs 5.81);
        # the tiny shared runtime is noisier, so assert a band in nll space.
        m2 = quantized_perplexity(rt_small, m2xfp)
        nv = quantized_perplexity(rt_small, nvfp4)
        assert m2 < nv * 1.25


class TestHardwareSoftwareAgreement:
    def test_pe_array_matches_fake_quant_gemm(self, rng):
        """A full subgroup-tiled GEMM through PE tiles must equal the
        algorithmic fake-quant reference bit for bit."""
        from repro.accel import PETile, PETileInputs
        from repro.core.elem_em import elem_em_encode
        from repro.core.sg_em import sg_em_encode

        k = 32
        x = rng.standard_normal((1, k)) * 2
        w = rng.standard_normal((1, k)) * 2
        x_enc = elem_em_encode(x, sub_size=8)
        w_enc = sg_em_encode(w, sub_size=8)

        # Reference: dequantized dot product.
        from repro.core.elem_em import elem_em_decode
        from repro.core.sg_em import sg_em_decode
        ref = float(elem_em_decode(x_enc)[0] @ sg_em_decode(w_enc)[0])

        pe = PETile()
        total = 0.0
        for sub in range(k // 8):
            sl = slice(sub * 8, (sub + 1) * 8)
            inputs = PETileInputs(
                w_codes=(w_enc.sign_codes[0, sl] << 3) | w_enc.mag_codes[0, sl],
                x_codes=(x_enc.sign_codes[0, sl] << 3) | x_enc.mag_codes[0, sl],
                x_meta=int(x_enc.metadata[0, sub, 0]),
                sg_code=int(w_enc.sg_codes[0, sub]),
                w_exp=int(w_enc.scale_exponents[0]),
                x_exp=int(x_enc.scale_exponents[0]))
            total += pe.multiply_accumulate(inputs)
        assert total == pytest.approx(ref, rel=1e-12, abs=1e-12)

    def test_quant_engine_feeds_decode_unit(self, rng):
        from repro.accel import QuantizationEngine, Top1DecodeUnit
        groups = rng.standard_normal((20, 32)) * 3
        enc = QuantizationEngine().encode(groups)
        packed = (enc.sign_codes << 3) | enc.mag_codes
        unit = Top1DecodeUnit()
        for row in range(20):
            for sub in range(4):
                codes = packed[row, sub * 8:(sub + 1) * 8]
                top = unit.top1(codes[None, :])[0]
                mags = enc.mag_codes[row, sub * 8:(sub + 1) * 8]
                assert mags[top] == mags.max()


class TestGPTQIntegration:
    def test_gptq_improves_model_ppl(self, rt_small):
        from repro.algos import GPTQQuantizedLM
        plain = QuantizedLM(rt_small.model, mxfp4).perplexity(rt_small.tokens)
        gptq = GPTQQuantizedLM(rt_small.model, mxfp4,
                               rt_small.calib_tokens).perplexity(rt_small.tokens)
        assert gptq < plain * 1.02  # compensation should not hurt

    def test_rotation_integration(self, rt_small):
        from repro.algos import quarot
        from repro.mx.fp_group import GroupFP4
        ppl = QuantizedLM(rt_small.model,
                          quarot(GroupFP4())).perplexity(rt_small.tokens)
        assert np.isfinite(ppl) and ppl > rt_small.fp16_ppl
