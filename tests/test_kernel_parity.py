"""Fast-vs-reference kernel parity: every format, adversarial tensors.

The fast kernels in :mod:`repro.kernels` must be *bit-identical* to the
reference paths selected by ``REPRO_REFERENCE_KERNELS=1`` — not merely
close. This module sweeps every registered scalar and tensor format over
tensors built to stress the places where float paths usually diverge:
all zeros, exact rounding ties, denormal-range magnitudes, saturating
(inf-free) extremes, and outlier-structured data.
"""

import numpy as np
import pytest

from repro.algos import (BlockDialect, MicroScopiQ, MXAnt, MXMAnt, MXOliVe)
from repro.core import ElemEE, ElemEM, M2NVFP4, M2XFP, SgEE, SgEM
from repro.formats import SCALAR_FORMATS
from repro.formats.floatspec import quantize_to_grid_reference
from repro.kernels import (encode_magnitudes, fast_kernels, reference_kernels,
                           rtne_boundaries)
from repro.mx import (MSFP12, MXFP4, MXFP6_E2M3, MXFP8_E4M3, MXINT8,
                      MaxPreserving, NVFP4, SMX4)

SPECS = sorted(SCALAR_FORMATS)

TENSOR_FORMATS = {
    "mxfp4": lambda: MXFP4(),
    "mxfp4-ceil": lambda: MXFP4(scale_rule="ceil"),
    "mxfp4-rtn1": lambda: MXFP4(scale_rule="rtn1"),
    "mxfp4-rtn2": lambda: MXFP4(scale_rule="rtn2"),
    "mxfp6-e2m3": lambda: MXFP6_E2M3(),
    "mxfp8-e4m3": lambda: MXFP8_E4M3(),
    "mxint8": lambda: MXINT8(),
    "nvfp4": lambda: NVFP4(),
    "smx4": lambda: SMX4(),
    "msfp12": lambda: MSFP12(),
    "max-preserving": lambda: MaxPreserving(MXFP4()),
    "mx-ant": lambda: MXAnt(),
    "mx-m-ant": lambda: MXMAnt(),
    "mx-olive": lambda: MXOliVe(),
    "microscopiq": lambda: MicroScopiQ(),
    "blockdialect": lambda: BlockDialect(),
    "sg-em-adaptive": lambda: SgEM(adaptive=True),
    "sg-em-fixed": lambda: SgEM(adaptive=False),
    "sg-em-ceil": lambda: SgEM(scale_rule="ceil"),
    "sg-em-rtn1": lambda: SgEM(scale_rule="rtn1"),
    "sg-em-rtn2": lambda: SgEM(scale_rule="rtn2"),
    "sg-ee-adaptive": lambda: SgEE(adaptive=True),
    "sg-ee-fixed": lambda: SgEE(adaptive=False),
    "sg-ee-1b": lambda: SgEE(meta_bits=1, adaptive=True),
    "elem-em-top1": lambda: ElemEM(top_k=1),
    "elem-em-top2": lambda: ElemEM(top_k=2),
    "elem-em-ceil": lambda: ElemEM(scale_rule="ceil"),
    "elem-ee": lambda: ElemEE(),
    "m2xfp": lambda: M2XFP(),
    "m2xfp-fixed": lambda: M2XFP(adaptive=False),
    "m2-nvfp4": lambda: M2NVFP4(),
    "m2-nvfp4-fixed": lambda: M2NVFP4(adaptive=False),
}


def _adversarial_tensors():
    """Named (inf/NaN-free) tensors stressing rounding and saturation."""
    rng = np.random.default_rng(20260728)
    shape = (48, 64)
    gauss = rng.standard_normal(shape)
    heavy = gauss * np.exp(2.0 * rng.standard_normal(shape))
    heavy[0] = 0.0                      # an all-zero group among real data
    # Exact FP4/FP6 decision-boundary midpoints across power-of-two scales
    # exercise the ties where RTNE-in-code-space must pick the even code.
    ties = rng.choice([0.0, -0.0, 0.25, 0.5, 0.625, 0.75, 1.25, -1.25,
                       2.5, 3.5, -3.5, 5.0, 6.0, -6.0], size=shape)
    ties = ties * np.exp2(rng.integers(-12, 12, shape).astype(np.float64))
    return {
        "zeros": np.zeros(shape),
        "gauss": gauss,
        "outliers": heavy,
        "ties": ties,
        "denormal-range": gauss * 1e-300,
        "extremes": gauss * 1e300,
    }


TENSORS = _adversarial_tensors()


@pytest.mark.parametrize("tensor_name", sorted(TENSORS))
@pytest.mark.parametrize("spec_name", SPECS)
def test_scalar_encode_parity(spec_name, tensor_name):
    spec = SCALAR_FORMATS[spec_name]
    x = TENSORS[tensor_name]
    ref_codes = quantize_to_grid_reference(np.abs(x), spec.grid)
    with reference_kernels():
        ref_sign, ref_enc = spec.encode(x)
        ref_q = spec.quantize(x)
    with fast_kernels():
        fast_sign, fast_enc = spec.encode(x)
        fast_q = spec.quantize(x)
    bt_codes = encode_magnitudes(spec, x)
    assert np.array_equal(ref_enc, ref_codes)
    assert np.array_equal(fast_enc, ref_codes)
    assert np.array_equal(bt_codes, ref_codes)
    assert np.array_equal(fast_sign, ref_sign)
    assert fast_q.tobytes() == ref_q.tobytes()


@pytest.mark.parametrize("tensor_name", sorted(TENSORS))
@pytest.mark.parametrize("fmt_name", sorted(TENSOR_FORMATS))
def test_tensor_format_parity(fmt_name, tensor_name):
    fmt = TENSOR_FORMATS[fmt_name]()
    x = TENSORS[tensor_name]
    with np.errstate(over="ignore"):
        with reference_kernels():
            ref_w = fmt.quantize_weight(x, axis=-1)
            ref_a = fmt.quantize_activation(x, axis=-1)
        with fast_kernels():
            fast_w = fmt.quantize_weight(x, axis=-1)
            fast_a = fmt.quantize_activation(x, axis=-1)
    assert fast_w.tobytes() == ref_w.tobytes(), "weight path diverged"
    assert fast_a.tobytes() == ref_a.tobytes(), "activation path diverged"


def test_non_dyadic_grids_fall_back_to_reference():
    """BlockDialect's dialect levels round their midpoints — the boundary
    kernel must refuse them so GridSpec.quantize stays bit-identical."""
    from repro.algos.blockdialect import DIALECTS
    from repro.kernels import boundaries_are_exact
    rng = np.random.default_rng(5)
    for spec in DIALECTS:
        assert not boundaries_are_exact(spec.grid)
        mids = 0.5 * (spec.grid[:-1] + spec.grid[1:])
        # Probe exactly on and one ulp around every midpoint, plus noise.
        x = np.concatenate([mids, np.nextafter(mids, 0), np.nextafter(mids, np.inf),
                            rng.uniform(0, spec.max_value, 512)])
        x = np.concatenate([x, -x])
        with reference_kernels():
            ref = spec.quantize(x)
        with fast_kernels():
            fast = spec.quantize(x)
        assert fast.tobytes() == ref.tobytes(), spec.name


def test_mini_float_boundaries_qualify_as_exact():
    from repro.kernels import boundaries_are_exact
    for spec in SCALAR_FORMATS.values():
        assert boundaries_are_exact(spec.grid), spec.name
        assert spec.boundaries is not None


def test_weight_cache_keeps_dispatch_modes_apart(rt_small):
    """The reference escape hatch must never be served fast-path cache."""
    from repro.models.quantized import QuantizedLM
    fmt = M2XFP()
    with fast_kernels():
        fast_lm = QuantizedLM(rt_small.model, fmt)
    with reference_kernels():
        ref_lm = QuantizedLM(rt_small.model, fmt)
    for key, fast_w in fast_lm._weights.items():
        ref_w = ref_lm._weights[key]
        assert fast_w is not ref_w, key          # distinct cache entries
        assert np.array_equal(fast_w, ref_w)     # ...but identical bits


def test_boundaries_are_exact_midpoints():
    spec = SCALAR_FORMATS["fp4_e2m1"]
    mids = 0.5 * (spec.grid[:-1] + spec.grid[1:])
    bounds = rtne_boundaries(spec.grid)
    even_lo = np.arange(mids.shape[0]) % 2 == 0
    assert np.all(bounds[even_lo] == mids[even_lo])
    assert np.all(bounds[~even_lo] < mids[~even_lo])
    # A value exactly on a midpoint lands on the even code on both paths.
    codes = np.searchsorted(bounds, mids, side="left")
    assert np.all(codes % 2 == 0)


def test_bittwiddle_exp_shift_matches_division():
    spec = SCALAR_FORMATS["fp4_e2m1"]
    rng = np.random.default_rng(3)
    x = rng.standard_normal(4096) * np.exp(3 * rng.standard_normal(4096))
    for shift in (-127, -8, -1, 0, 1, 8, 127):
        expect = quantize_to_grid_reference(np.abs(x / 2.0 ** shift), spec.grid)
        got = encode_magnitudes(spec, x, exp_shift=shift)
        assert np.array_equal(got, expect), shift
