"""Batched quantization service: batching is invisible, caching is real.

The contract under test: whatever mix of ``submit`` calls arrives, every
future resolves to *exactly* the tensor the format's own quantizer would
produce for that request alone — micro-batching, the thread pool and the
weight memo are pure throughput moves. Plus the ``REPRO_PACKED_WEIGHTS``
storage mode of ``QuantizedLM``: packed weights decode bit-exactly, so
NLL/perplexity are unchanged while the resident footprint shrinks by the
format's EBW ratio.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codec import PackedTensor
from repro.errors import ConfigError, FormatError
from repro.models.quantized import QuantizedLM
from repro.runner.formats import make_format
from repro.serve import QuantService
from repro.serve.service import _tensor_scoped


@pytest.fixture()
def tensors(rng):
    return [rng.standard_normal((3 + i % 4, 64)) * (1 + i) for i in range(12)]


def test_batched_results_equal_per_tensor_quantize(tensors):
    fmt = make_format("m2xfp")
    with QuantService(fmt, max_batch=32, max_delay_s=0.05) as svc:
        outs = svc.quantize_batch(tensors, op="activation")
        stats = svc.stats()
    for x, out in zip(tensors, outs):
        assert out.tobytes() == fmt.quantize_activation(x, axis=-1).tobytes()
    # The requests really were coalesced, not processed one by one.
    assert stats["batched_requests"] >= 2
    assert stats["batches"] < stats["requests"]


def test_weight_path_batched_and_exact(tensors):
    fmt = make_format("sg-em")
    with QuantService(fmt, max_batch=32, max_delay_s=0.05) as svc:
        outs = svc.quantize_batch(tensors, op="weight")
    for x, out in zip(tensors, outs):
        assert out.tobytes() == fmt.quantize_weight(x, axis=-1).tobytes()


def test_tensor_scoped_formats_never_cross_batch(rng):
    # NVFP4's tensor-level scale depends on the whole input: stacking two
    # tensors would change both results. The service must keep them apart.
    assert _tensor_scoped(make_format("nvfp4"))
    assert _tensor_scoped(make_format("m2-nvfp4"))
    assert not _tensor_scoped(make_format("m2xfp"))
    fmt = make_format("nvfp4")
    xs = [rng.standard_normal((4, 64)), rng.standard_normal((4, 64)) * 1000]
    with QuantService(fmt, max_batch=8, max_delay_s=0.05) as svc:
        outs = svc.quantize_batch(xs, op="activation")
        stats = svc.stats()
    for x, out in zip(xs, outs):
        assert out.tobytes() == fmt.quantize_activation(x, axis=-1).tobytes()
    assert stats["batched_requests"] == 0


def test_thread_pool_path(tensors):
    fmt = make_format("mxfp4")
    with QuantService(fmt, max_batch=4, max_delay_s=0.01, workers=2) as svc:
        outs = svc.quantize_batch(tensors, op="activation")
    for x, out in zip(tensors, outs):
        assert out.tobytes() == fmt.quantize(x, axis=-1).tobytes()


def test_weight_cache_hits_and_disable(rng, monkeypatch):
    w = rng.standard_normal((16, 64))
    with QuantService("sg-em") as svc:
        a = svc.quantize(w, op="weight")
        b = svc.quantize(w, op="weight")
        assert a.tobytes() == b.tobytes()
        assert svc.stats()["weight_cache_hits"] == 1
    monkeypatch.setenv("REPRO_NO_WEIGHT_CACHE", "1")
    with QuantService("sg-em") as svc:
        svc.quantize(w, op="weight")
        svc.quantize(w, op="weight")
        assert svc.stats()["weight_cache_hits"] == 0


def test_packed_mode_returns_containers_with_footprint(rng):
    with QuantService("m2xfp", packed=True) as svc:
        pt = svc.quantize(rng.standard_normal((8, 96)), op="weight")
        stats = svc.stats()
    assert isinstance(pt, PackedTensor)
    assert stats["measured_bits_per_element"] == pytest.approx(4.5, abs=0.2)
    assert stats["nominal_bits_per_element"]["weight"] == pytest.approx(4.5)


def test_errors_propagate_through_futures():
    with QuantService("mxfp4") as svc:
        fut = svc.submit(np.array([[np.nan] * 32]))
        with pytest.raises(FormatError):
            fut.result(timeout=10)


def test_submit_validation(rng):
    svc = QuantService("mxfp4")
    with pytest.raises(ConfigError):
        svc.submit(rng.standard_normal(8), op="nope")
    svc.close()
    with pytest.raises(ConfigError, match="closed"):
        svc.submit(rng.standard_normal(8))
    svc.close()  # idempotent


# ----------------------------------------------------------------------
# Lifecycle hardening: close() drains, dead collectors never hang callers
# ----------------------------------------------------------------------
def test_close_resolves_every_accepted_future(rng):
    # A burst of submissions followed by an immediate close: every future
    # must resolve with its real result (close drains, never drops).
    fmt = make_format("mxfp4")
    svc = QuantService(fmt, max_batch=4, max_delay_s=0.05)
    xs = [rng.standard_normal((2, 64)) for _ in range(16)]
    futs = [svc.submit(x) for x in xs]
    svc.close()
    for x, fut in zip(xs, futs):
        assert fut.done(), "close() returned with a future still pending"
        assert fut.result(timeout=0).tobytes() == \
            fmt.quantize(x, axis=-1).tobytes()


@pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning")
def test_collector_crash_errors_futures_and_close_never_hangs(rng,
                                                              monkeypatch):
    svc = QuantService("mxfp4", max_delay_s=0.001)
    monkeypatch.setattr(svc, "_run_batch",
                        lambda batch: (_ for _ in ()).throw(
                            RuntimeError("collector crash")))
    fut = svc.submit(rng.standard_normal((2, 32)))
    svc._collector.join(timeout=30)
    assert not svc._collector.is_alive()
    # The crashed collector drained its batch on the way out...
    with pytest.raises(ConfigError, match="shut down"):
        fut.result(timeout=30)
    # ...submit() into the dead collector refuses instead of enqueueing
    # into a queue nothing reads...
    with pytest.raises(ConfigError, match="died"):
        svc.submit(rng.standard_normal((2, 32)))
    # ...and close() returns promptly instead of waiting forever.
    svc.close()


@pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning")
def test_close_drains_queue_left_by_dead_collector(rng, monkeypatch):
    # A request that reaches the queue after the collector died (the
    # submit/death race) must be errored by close(), not stranded.
    svc = QuantService("mxfp4", max_delay_s=0.001)
    monkeypatch.setattr(svc, "_run_batch",
                        lambda batch: (_ for _ in ()).throw(
                            RuntimeError("collector crash")))
    svc.submit(rng.standard_normal((2, 32)))  # kills the collector
    svc._collector.join(timeout=30)
    from repro.serve.service import _Request
    from concurrent.futures import Future as _F
    stranded = _F()
    svc._queue.put(_Request(rng.standard_normal((2, 32)), "activation",
                            stranded))
    svc.close()
    assert stranded.done()
    with pytest.raises(ConfigError, match="shut down"):
        stranded.result(timeout=0)
    assert svc._queue.empty()  # fully drained, sentinel included


def test_pinned_dispatch_modes_are_bit_identical_and_namespaced(rng):
    # A service pinned to any dispatch mode returns the same bits (the
    # kernel parity contract) while keying its weight memo on the mode.
    w = rng.standard_normal((8, 64))
    outs = {}
    for mode in ("inherit", "fast", "reference", "bittwiddle"):
        with QuantService("sg-em", dispatch=mode) as svc:
            outs[mode] = svc.quantize(w, op="weight").tobytes()
            key = svc._weight_key(
                __import__("repro.serve.service", fromlist=["_Request"])
                ._Request(w, "weight", None))
            if mode != "inherit":
                assert key[1] == (mode == "reference")
                assert key[2] == (mode == "bittwiddle")
    assert len(set(outs.values())) == 1
    with pytest.raises(ConfigError, match="dispatch"):
        QuantService("mxfp4", dispatch="warp-speed")


def test_dispatch_scope_pins_both_fast_flavours(monkeypatch):
    # A "fast" pin must mask an ambient REPRO_BITTWIDDLE=1 (and
    # "bittwiddle" must force it): the pin means the mode, not a hint.
    from repro.kernels.dispatch import use_bittwiddle, use_reference
    from repro.serve.service import _dispatch_scope
    monkeypatch.setenv("REPRO_BITTWIDDLE", "1")
    with _dispatch_scope("fast"):
        assert not use_bittwiddle() and not use_reference()
    monkeypatch.delenv("REPRO_BITTWIDDLE")
    with _dispatch_scope("bittwiddle"):
        assert use_bittwiddle() and not use_reference()
    with _dispatch_scope("reference"):
        assert use_reference()
    assert not use_bittwiddle()  # scopes restore the environment


# ----------------------------------------------------------------------
# QuantizedLM packed-weight storage (REPRO_PACKED_WEIGHTS=1)
# ----------------------------------------------------------------------
def test_quantized_lm_packed_weights_bit_exact(rt_small, monkeypatch):
    fmt = make_format("m2xfp")
    tokens = rt_small.tokens[:2, :24]
    monkeypatch.delenv("REPRO_PACKED_WEIGHTS", raising=False)
    dense = QuantizedLM(rt_small.model, fmt)
    assert not dense.packed_weights
    nll_dense = dense.nll(tokens)
    monkeypatch.setenv("REPRO_PACKED_WEIGHTS", "1")
    packed = QuantizedLM(rt_small.model, fmt)
    assert packed.packed_weights
    nll_packed = packed.nll(tokens)
    assert nll_packed == nll_dense
    fp = packed.weight_footprint()
    # ~4.5-bit containers vs 64-bit float storage, headers included.
    assert fp["bits_per_element"] < 8.0
    assert fp["total_bytes"] * 10 < fp["dense_float64_bytes"]
    assert dense.weight_footprint()["bits_per_element"] == 64.0


def test_quantized_lm_packed_cache_namespaced(rt_small, monkeypatch):
    # Dense and packed arms share the model-level cache dict but must not
    # serve each other's entries.
    fmt = make_format("mxfp4")
    monkeypatch.setenv("REPRO_PACKED_WEIGHTS", "1")
    packed = QuantizedLM(rt_small.model, fmt)
    monkeypatch.delenv("REPRO_PACKED_WEIGHTS")
    dense = QuantizedLM(rt_small.model, fmt)
    w_packed = packed._weights["l0.wq"]
    w_dense = dense._weights["l0.wq"]
    assert isinstance(w_packed, PackedTensor)
    assert isinstance(w_dense, np.ndarray)
    assert packed._weight("l0.wq").tobytes() == w_dense.tobytes()
