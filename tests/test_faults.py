"""Fault injection: the serving stack under network and process chaos.

The contract under test, in order of importance:

1. **Bit-exactness through faults** — with a retry budget, every
   request that completes through the chaos proxy (kills, truncations,
   corrupted frames, delays) returns bytes identical to the local
   re-derivation. Faults can cost retries, never correctness.
2. **Typed failure, never a hang** — when the retry budget exhausts
   or a deadline fires, the client raises a typed error
   (``RetryBudgetExceeded``, ``RequestTimeout``, ``ConnectionLost``);
   fuzzed/truncated/oversized frames always parse to ``ProtocolError``
   with bounded allocation.
3. **Supervision** — a SIGKILLed worker is restarted and a retrying
   client never surfaces a failure; a crash-looping worker trips a
   hard ``WorkerCrashLoop``; ``close()`` reaps every child (escalating
   to SIGKILL) so no test run leaks processes.
"""

from __future__ import annotations

import asyncio
import os
import random
import signal
import socket
import threading
import time

import numpy as np
import pytest

from repro.errors import (ConfigError, ConnectionLost, ProtocolError,
                          RequestTimeout, RetryBudgetExceeded,
                          ServerDraining, SessionLost, WorkerCrashLoop)
from repro.kv import KVCacheSession
from repro.server import (AsyncQuantClient, FaultPlan, FaultProxy,
                          QuantClient, QuantServer, ServerThread,
                          WorkerPool, local_expected, protocol)
from repro.server.faults import (FAULT_CLOSE_AFTER_ENV, FAULT_KILL_PROB_ENV,
                                 FAULT_SEED_ENV)

#: Formats sampled by the chaos sweeps: the paper's lead format, the
#: per-element variant, and an NVFP4-profile arm (distinct meta paths).
CHAOS_FORMATS = ("m2xfp", "elem-em", "m2-nvfp4")


def _expect_exact(cli, x, *, fmt, op="weight", packed=False):
    out = cli.quantize(x, fmt=fmt, op=op, packed=packed, verify=True)
    exp = local_expected(x, fmt=fmt, op=op, packed=packed)
    if packed:
        assert out.to_bytes() == exp.to_bytes()
    else:
        assert out.tobytes() == exp.tobytes()


# ----------------------------------------------------------------------
# FaultPlan
# ----------------------------------------------------------------------
def test_fault_plan_from_env():
    plan = FaultPlan.from_env({FAULT_SEED_ENV: "9",
                               FAULT_KILL_PROB_ENV: "0.25",
                               FAULT_CLOSE_AFTER_ENV: "3"})
    assert (plan.seed, plan.kill_prob, plan.close_after_frames) \
        == (9, 0.25, 3)
    assert plan.any_faults
    assert not FaultPlan.from_env({}).any_faults


@pytest.mark.parametrize("bad", [
    {"kill_prob": 1.5}, {"truncate_prob": -0.1}, {"delay_s": -1.0},
    {"close_after_frames": 0},
])
def test_fault_plan_validation(bad):
    with pytest.raises(ConfigError):
        FaultPlan(**bad)


def test_fault_plan_env_type_error():
    with pytest.raises(ConfigError, match=FAULT_KILL_PROB_ENV):
        FaultPlan.from_env({FAULT_KILL_PROB_ENV: "often"})


# ----------------------------------------------------------------------
# Chaos proxy: transparency and injected faults
# ----------------------------------------------------------------------
def test_proxy_transparent_without_faults(rng):
    x = rng.standard_normal((3, 64))
    with ServerThread(port=0) as st, \
            FaultProxy(target_port=st.port) as px, \
            QuantClient(port=px.port) as cli:
        for fmt in CHAOS_FORMATS:
            _expect_exact(cli, x, fmt=fmt)
        assert px.stats["frames_forwarded"] >= 2 * len(CHAOS_FORMATS)
        assert px.stats["killed"] == px.stats["truncated"] \
            == px.stats["corrupted"] == 0


def test_chaos_bit_exact_through_mixed_faults(rng):
    """The acceptance gate: heavy chaos, zero wrong bytes."""
    x = rng.standard_normal((4, 64))
    plan = FaultPlan(seed=7, kill_prob=0.08, truncate_prob=0.08,
                     corrupt_prob=0.08, delay_prob=0.25, delay_s=0.002)
    with ServerThread(port=0) as st, \
            FaultProxy(target_port=st.port, plan=plan) as px, \
            QuantClient(port=px.port, retries=16, backoff_base_s=0.005,
                        backoff_max_s=0.05, retry_seed=1,
                        timeout=30.0) as cli:
        for i in range(24):
            fmt = CHAOS_FORMATS[i % len(CHAOS_FORMATS)]
            _expect_exact(cli, x, fmt=fmt, op="weight", packed=(i % 2 == 0))
        # The run must actually have exercised faults, not a quiet wire.
        assert px.stats["killed"] + px.stats["truncated"] \
            + px.stats["corrupted"] > 0
        assert px.stats["delayed"] > 0


def test_chaos_deterministic_replay(rng):
    """Same seed + same serial traffic -> the same fault decisions."""
    x = rng.standard_normal((2, 64))
    plan = FaultPlan(seed=13, kill_prob=0.15, truncate_prob=0.15)

    def run() -> dict:
        with ServerThread(port=0) as st, \
                FaultProxy(target_port=st.port, plan=plan) as px, \
                QuantClient(port=px.port, retries=32,
                            backoff_base_s=0.001, backoff_max_s=0.01,
                            retry_seed=5, timeout=30.0) as cli:
            for _ in range(10):
                _expect_exact(cli, x, fmt="m2xfp")
            return dict(px.stats)

    assert run() == run()


def test_close_after_frames_kills_every_connection(rng):
    """close-after-1 means no response ever arrives; the budget must
    exhaust into a typed, cause-carrying error -- not a hang."""
    x = rng.standard_normal((2, 32))
    plan = FaultPlan(seed=0, close_after_frames=1)
    with ServerThread(port=0) as st, \
            FaultProxy(target_port=st.port, plan=plan) as px, \
            QuantClient(port=px.port, retries=2, backoff_base_s=0.001,
                        backoff_max_s=0.005, retry_seed=0,
                        timeout=10.0) as cli:
        with pytest.raises(RetryBudgetExceeded) as info:
            cli.quantize(x, fmt="m2xfp")
        assert isinstance(info.value.__cause__,
                          (ConnectionLost, RequestTimeout, ConnectionError,
                           OSError))
        assert px.stats["killed"] >= 3  # initial try + 2 retries


def test_async_client_retries_through_kills(rng):
    x = rng.standard_normal((2, 64))
    plan = FaultPlan(seed=21, kill_prob=0.12)

    async def run() -> None:
        async with AsyncQuantClient(port=px.port, retries=16,
                                    backoff_base_s=0.005,
                                    backoff_max_s=0.05, retry_seed=2,
                                    timeout=30.0) as cli:
            for i in range(12):
                fmt = CHAOS_FORMATS[i % len(CHAOS_FORMATS)]
                out = await cli.quantize(x, fmt=fmt, op="activation",
                                         verify=True)
                exp = local_expected(x, fmt=fmt, op="activation")
                assert out.tobytes() == exp.tobytes()

    with ServerThread(port=0) as st, \
            FaultProxy(target_port=st.port, plan=plan) as px:
        asyncio.run(run())
        assert px.stats["killed"] > 0


# ----------------------------------------------------------------------
# Client deadlines: a stalled server cannot hang a request
# ----------------------------------------------------------------------
def _stalled_acceptor():
    """A listener that accepts and then never answers."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.bind(("127.0.0.1", 0))
    sock.listen(8)
    conns: list[socket.socket] = []
    stop = threading.Event()

    def loop() -> None:
        sock.settimeout(0.1)
        while not stop.is_set():
            try:
                conn, _ = sock.accept()
            except (TimeoutError, OSError):
                continue
            conns.append(conn)

    thread = threading.Thread(target=loop, daemon=True)
    thread.start()
    return sock, conns, stop, thread


def test_sync_client_deadline_on_stalled_server():
    sock, conns, stop, thread = _stalled_acceptor()
    try:
        with QuantClient(port=sock.getsockname()[1], timeout=0.3) as cli:
            t0 = time.monotonic()
            with pytest.raises(RequestTimeout) as info:
                cli.quantize(np.zeros((2, 8)), fmt="m2xfp")
            assert time.monotonic() - t0 < 5.0
            assert isinstance(info.value, TimeoutError)  # typed subclass
    finally:
        stop.set()
        thread.join(timeout=5.0)
        for conn in conns:
            conn.close()
        sock.close()


def test_async_client_deadline_on_stalled_server():
    sock, conns, stop, thread = _stalled_acceptor()

    async def run() -> None:
        async with AsyncQuantClient(port=sock.getsockname()[1],
                                    timeout=0.3) as cli:
            with pytest.raises(RequestTimeout):
                await cli.quantize(np.zeros((2, 8)), fmt="m2xfp")

    try:
        t0 = time.monotonic()
        asyncio.run(run())
        assert time.monotonic() - t0 < 5.0
    finally:
        stop.set()
        thread.join(timeout=5.0)
        for conn in conns:
            conn.close()
        sock.close()


def test_pipelined_futures_fail_fast_on_connection_loss(rng):
    """A dead connection rejects every pending pipelined future with a
    typed error immediately -- no waiting out individual deadlines."""
    x = rng.standard_normal((2, 32))

    async def run() -> None:
        async with AsyncQuantClient(port=st.port, timeout=30.0) as cli:
            # Pipeline several requests, then yank the transport.
            futs = [asyncio.ensure_future(
                cli.quantize(x, fmt="m2xfp")) for _ in range(4)]
            await asyncio.sleep(0)  # let the sends go out
            cli._writer.transport.abort()
            t0 = time.monotonic()
            results = await asyncio.gather(*futs, return_exceptions=True)
            assert time.monotonic() - t0 < 5.0
            for res in results:
                # Each pipelined call either finished before the abort
                # or failed fast with the typed connection error.
                assert isinstance(res, np.ndarray) \
                    or isinstance(res, ConnectionLost)

    with ServerThread(port=0) as st:
        asyncio.run(run())


# ----------------------------------------------------------------------
# Frame parser fuzz: truncated / corrupted / oversized input
# ----------------------------------------------------------------------
def _valid_frame_bytes(rng) -> bytes:
    x = rng.standard_normal((2, 16))
    return protocol.encode_request(5, x, fmt="m2xfp", op="weight",
                                   fingerprint="fp")


def test_frame_fuzz_truncation_and_corruption(rng):
    """Seeded property sweep: every mutation parses to a Frame or a
    typed ProtocolError -- never another exception, never a hang."""
    blob = _valid_frame_bytes(rng)
    fuzz = random.Random(20260807)
    for trial in range(400):
        mutated = bytearray(blob)
        mode = fuzz.randrange(3)
        if mode == 0:  # truncate
            mutated = mutated[:fuzz.randrange(len(mutated))]
        elif mode == 1:  # corrupt 1-4 bytes
            for _ in range(fuzz.randint(1, 4)):
                mutated[fuzz.randrange(len(mutated))] ^= \
                    fuzz.randint(1, 255)
        else:  # grow or shrink the buffer vs its prefix
            mutated += bytes(fuzz.randrange(1, 64))
        try:
            frame = protocol.frame_from_bytes(bytes(mutated))
        except ProtocolError:
            continue
        assert isinstance(frame, protocol.Frame)


def test_oversized_length_prefix_rejected_without_allocation():
    huge = (1 << 31).to_bytes(4, "little") + b"x" * 16
    with pytest.raises(ProtocolError, match="exceeds"):
        protocol.frame_from_bytes(huge)


def _read_one(blob: bytes, timeout: float | None = 0.2):
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(blob)
        reader.feed_eof()
        return await protocol.read_frame(reader, timeout)
    return asyncio.run(run())


def test_read_frame_truncated_stream_is_typed(rng):
    blob = _valid_frame_bytes(rng)
    for cut in (1, 3, 7, len(blob) // 2, len(blob) - 1):
        with pytest.raises(ConnectionLost):
            _read_one(blob[:cut])


def test_read_frame_oversized_prefix_rejected():
    with pytest.raises(ProtocolError, match="exceeds"):
        _read_one((1 << 30).to_bytes(4, "little"))


def test_read_frame_slow_loris_guard(rng):
    """A trickling peer is cut off by the frame deadline."""
    blob = _valid_frame_bytes(rng)

    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(blob[:6])  # started, never finishes
        with pytest.raises(ProtocolError, match="slow-loris"):
            await protocol.read_frame(reader, 0.1)

    t0 = time.monotonic()
    asyncio.run(run())
    assert time.monotonic() - t0 < 5.0


def test_server_read_timeout_drops_slow_loris_connection(rng):
    """End to end: a socket trickling a frame is disconnected, and the
    server keeps serving well-behaved clients afterwards."""
    x = rng.standard_normal((2, 32))
    with ServerThread(port=0, read_timeout_s=0.2) as st:
        loris = socket.create_connection(("127.0.0.1", st.port))
        try:
            loris.sendall(b"\x40")  # one byte of a frame, then stall
            loris.settimeout(10.0)
            frame = protocol.recv_frame(loris)
            assert frame.status == protocol.Status.PROTOCOL_ERROR
            assert "slow-loris" in frame.meta["error"]
            assert protocol.recv_frame(loris) is None  # then hung up
        finally:
            loris.close()
        with QuantClient(port=st.port) as cli:
            _expect_exact(cli, x, fmt="m2xfp")


# ----------------------------------------------------------------------
# BUSY retry fairness
# ----------------------------------------------------------------------
def test_busy_retry_fairness_all_clients_complete(rng):
    """Saturate a max_inflight=1 server from several retrying clients:
    everyone finishes and no client starves (bounded per-client p99)."""
    x = rng.standard_normal((2, 64))
    n_clients, n_requests = 4, 6
    latencies: dict[int, list[float]] = {i: [] for i in range(n_clients)}
    errors: list[BaseException] = []

    def worker(idx: int, port: int) -> None:
        try:
            with QuantClient(port=port, retries=200, backoff_base_s=0.002,
                             backoff_max_s=0.02, retry_seed=idx,
                             timeout=30.0) as cli:
                for _ in range(n_requests):
                    t0 = time.monotonic()
                    _expect_exact(cli, x, fmt="m2xfp")
                    latencies[idx].append(time.monotonic() - t0)
        except BaseException as exc:  # surfaced below, not swallowed
            errors.append(exc)

    with ServerThread(port=0, max_inflight=1, max_delay_s=0.0) as st:
        threads = [threading.Thread(target=worker, args=(i, st.port))
                   for i in range(n_clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert not any(t.is_alive() for t in threads), "a client wedged"
    assert not errors, errors
    for idx, lats in latencies.items():
        assert len(lats) == n_requests
        assert max(lats) < 30.0, f"client {idx} starved: p99 {max(lats):.1f}s"


# ----------------------------------------------------------------------
# Worker supervision (multi-process: slow tier)
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_sigkilled_worker_restarts_without_client_failures(rng):
    """The ISSUE's acceptance scenario: SIGKILL one worker mid-load;
    the retrying client sees zero failures and the pool heals."""
    x = rng.standard_normal((2, 64))
    with WorkerPool(workers=2, port=0, backoff_base_s=0.02,
                    healthy_reset_s=0.5) as pool:
        with QuantClient(port=pool.port, retries=10, backoff_base_s=0.02,
                         backoff_max_s=0.2, retry_seed=0,
                         timeout=30.0) as cli:
            _expect_exact(cli, x, fmt="m2xfp")
            os.kill(pool._procs[0].pid, signal.SIGKILL)
            for _ in range(20):
                _expect_exact(cli, x, fmt="m2xfp")
        deadline = time.monotonic() + 30.0
        while pool.stats()["restarts"] < 1 and time.monotonic() < deadline:
            time.sleep(0.05)
        assert pool.stats()["restarts"] >= 1
        assert any(e["exitcode"] == -signal.SIGKILL
                   for e in pool.stats()["exits"])
        deadline = time.monotonic() + 30.0
        while pool.alive() < 2 and time.monotonic() < deadline:
            time.sleep(0.05)
        assert pool.alive() == 2  # healed back to full strength
        pool.check()  # healthy restart must not look like a crash loop


@pytest.mark.slow
def test_crash_loop_trips_budget_with_typed_error():
    pool = WorkerPool(workers=1, port=0, max_restarts=2,
                      backoff_base_s=0.01, backoff_max_s=0.05,
                      healthy_reset_s=1000.0).start()
    try:
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            for proc in list(pool._procs):
                if proc is not None and proc.is_alive():
                    os.kill(proc.pid, signal.SIGKILL)
            try:
                pool.check()
            except WorkerCrashLoop as exc:
                assert "budget" in str(exc)
                break
            time.sleep(0.2)
        else:
            pytest.fail("crash-loop budget never tripped")
        with pytest.raises(WorkerCrashLoop):
            pool.join()
    finally:
        pool.close()
    assert pool.alive() == 0


@pytest.mark.slow
def test_pool_close_reaps_children_no_zombies():
    import multiprocessing as mp
    pool = WorkerPool(workers=2, port=0, reap_timeout_s=5.0).start()
    procs = list(pool._procs)
    pool.close()
    assert all(not p.is_alive() for p in procs)
    assert pool.alive() == 0
    assert not [p for p in mp.active_children() if p in procs]


@pytest.mark.slow
def test_pool_close_escalates_to_kill_when_terminate_ignored():
    """If SIGTERM is swallowed (simulated by a no-op terminate), the
    bounded reap escalates to SIGKILL instead of leaking the child."""
    pool = WorkerPool(workers=1, port=0, reap_timeout_s=0.5,
                      restart=False).start()
    procs = list(pool._procs)
    for proc in procs:
        proc.terminate = lambda: None  # the graceful path goes missing
    t0 = time.monotonic()
    pool.close()
    assert time.monotonic() - t0 < 30.0
    assert all(not p.is_alive() for p in procs)


# ----------------------------------------------------------------------
# Streaming KV sessions under chaos
# ----------------------------------------------------------------------
def _kv_block(rng, tokens: int = 2, width: int = 64) -> np.ndarray:
    return rng.standard_normal((tokens, width)) \
        * np.exp(rng.standard_normal((tokens, width)))


def test_session_appends_resume_bit_exact_through_kills(rng):
    """Mid-session connection kills: the retrying client's seq-dedup
    resume must leave the stream bit-identical to an unfaulted local
    session — duplicates replayed, nothing applied twice, no gaps."""
    blocks = [(_kv_block(rng), _kv_block(rng)) for _ in range(14)]
    plan = FaultPlan(seed=11, kill_prob=0.10, delay_prob=0.2,
                     delay_s=0.002)
    with ServerThread(port=0) as st, \
            FaultProxy(target_port=st.port, plan=plan) as px, \
            QuantClient(port=px.port, retries=16, backoff_base_s=0.005,
                        backoff_max_s=0.05, retry_seed=3,
                        timeout=30.0) as cli:
        cli.session_open(session_id="chaos", n_layers=1, policy="m2xfp",
                         max_tokens=16, sink_tokens=4)
        local = KVCacheSession(1, "m2xfp", max_tokens=16, sink_tokens=4)
        for seq, (k, v) in enumerate(blocks):
            ack = cli.session_append("chaos", 0, k, v, seq=seq)
            ref = local.append(0, k, v)
            assert (ack["start"], ack["tokens_held"]) \
                == (ref["start"], ref["tokens_held"])
        K, V = cli.session_read("chaos", 0)
        lk, lv = local.read(0)
        assert K.tobytes() == lk.tobytes()
        assert V.tobytes() == lv.tobytes()
        assert px.stats["killed"] > 0, "the chaos never bit"
        # Kills mid-append forced retries: the server saw more APPEND
        # frames than there are blocks, yet applied exactly len(blocks).
        assert st.server.stats["session_appends"] >= len(blocks)
        assert local.stats()["appends"] == len(blocks)


class _StalledKVService:
    """A quantize-service stub whose futures resolve on demand."""

    def __init__(self):
        from repro.runner.formats import make_format
        self.fmt = make_format("m2xfp")
        self.futures: list = []
        self.released = threading.Event()

    def submit(self, x, op="activation", *, trace=None):
        from concurrent.futures import Future
        fut: Future = Future()
        self.futures.append((fut, np.zeros_like(x)))
        if self.released.is_set():
            fut.set_result(np.zeros_like(x))
        return fut

    def release(self):
        self.released.set()
        for fut, result in self.futures:
            if not fut.done():
                fut.set_result(result)


def test_drain_rejects_session_ops_but_admits_close(rng, monkeypatch):
    """During a drain, open/append/read answer DRAINING (retryable
    backpressure) while CLOSE stays admitted — an open session is
    rejected cleanly and can still free its slot, never wedged."""
    x = rng.standard_normal((2, 32))
    k = _kv_block(rng)
    stub = _StalledKVService()
    monkeypatch.setattr(QuantServer, "_get_service",
                        lambda self, req: stub)
    st = ServerThread(port=0).__enter__()
    try:
        with QuantClient(port=st.port, timeout=30.0) as cli:
            cli.session_open(session_id="s", n_layers=1)
            cli.session_append("s", 0, k, k, seq=0)
            rid = cli.submit(x, fmt="m2xfp")  # stalls: holds the drain
            ack = cli.drain()
            assert ack["draining"] is True
            with pytest.raises(ServerDraining):
                cli.session_open(session_id="t", n_layers=1, retries=0)
            with pytest.raises(ServerDraining):
                cli.session_append("s", 0, k, k, seq=1, retries=0)
            with pytest.raises(ServerDraining):
                cli.session_read("s", 0, retries=0)
            final = cli.session_close("s", retries=0)
            assert final["closed"] is True
            stub.release()
            assert cli.result(rid).shape == x.shape
    finally:
        st.__exit__(None, None, None)


@pytest.mark.slow
def test_sigkilled_worker_surfaces_session_lost_then_replay(rng):
    """SIGKILL the replica holding a session: the reconnecting client
    must get a typed ``SessionLost`` — never a silently fresh stream —
    and reopening + replaying from its own copy restores bit-exact
    state."""
    blocks = [(_kv_block(rng), _kv_block(rng)) for _ in range(6)]
    with WorkerPool(workers=1, port=0, backoff_base_s=0.02,
                    healthy_reset_s=0.5) as pool:
        with QuantClient(port=pool.port, retries=20, backoff_base_s=0.05,
                         backoff_max_s=0.5, retry_seed=0,
                         timeout=30.0) as cli:
            cli.session_open(session_id="s", n_layers=1)
            for seq in range(3):
                k, v = blocks[seq]
                cli.session_append("s", 0, k, v, seq=seq)
            os.kill(pool._procs[0].pid, signal.SIGKILL)
            # The retry loop reconnects to the restarted worker, whose
            # session table is empty: typed SessionLost, not retryable.
            with pytest.raises(SessionLost):
                cli.session_append("s", 0, *blocks[3], seq=3)
            # Recovery protocol: reopen and replay the client's copy.
            ack = cli.session_open(session_id="s", n_layers=1)
            assert ack["resumed"] is False and ack["next_seq"] == 0
            local = KVCacheSession(1)
            for seq, (k, v) in enumerate(blocks):
                cli.session_append("s", 0, k, v, seq=seq)
                local.append(0, k, v)
            K, V = cli.session_read("s", 0)
            lk, lv = local.read(0)
            assert K.tobytes() == lk.tobytes()
            assert V.tobytes() == lv.tobytes()


@pytest.mark.slow
def test_clean_worker_exit_is_not_restarted(rng):
    """A drain-induced exit (code 0) marks the slot done; supervision
    must not resurrect deliberately stopped workers."""
    x = rng.standard_normal((2, 32))
    with WorkerPool(workers=1, port=0, backoff_base_s=0.02) as pool:
        with QuantClient(port=pool.port, retries=4, backoff_base_s=0.05,
                         timeout=30.0) as cli:
            _expect_exact(cli, x, fmt="m2xfp")
            cli.drain()  # worker finishes in-flight work and exits 0
        deadline = time.monotonic() + 30.0
        while not pool._done_slots and time.monotonic() < deadline:
            time.sleep(0.05)
        assert 0 in pool._done_slots
        assert pool.stats()["restarts"] == 0
        assert pool.stats()["exits"] and \
            pool.stats()["exits"][-1]["exitcode"] == 0
        pool.join()  # all slots done -> returns promptly
