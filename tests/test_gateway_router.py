"""Property tests for the gateway's consistent-hash router.

The router's contract (DESIGN.md §9): deterministic placement (same
catalog -> same replicas in every process, independent of
``PYTHONHASHSEED``), load balance within bound, and the consistent-
hashing guarantee — a membership change only remaps the keys whose
arcs it touches.
"""

from __future__ import annotations

import subprocess
import sys
from collections import Counter
from pathlib import Path

import pytest

from repro.errors import ConfigError
from repro.gateway import HashRing
from repro.runner.formats import list_formats, make_format

REPLICAS = [f"10.0.0.{i}:7421" for i in range(1, 5)]


def catalog_fingerprints() -> list[str]:
    """The real route keys: one fingerprint per catalog format."""
    return [repr(make_format(name)) for name in list_formats()]


def synthetic_keys(n: int = 2000) -> list[str]:
    return [f"Format(key={i})" for i in range(n)]


# ----------------------------------------------------------------------
# Load balance
# ----------------------------------------------------------------------
def test_synthetic_load_balance_within_bound():
    ring = HashRing(REPLICAS, seed=0)
    counts = Counter(ring.route(k) for k in synthetic_keys())
    expected = 2000 / len(REPLICAS)
    assert set(counts) == set(REPLICAS), "every replica must own keys"
    for name, n in counts.items():
        assert 0.5 * expected <= n <= 1.6 * expected, \
            f"{name} owns {n} of 2000 keys (expected ~{expected:.0f})"


def test_catalog_spreads_over_replicas():
    """The 21 real fingerprints spread: no replica hoards the catalog."""
    fingerprints = catalog_fingerprints()
    assert len(fingerprints) == len(list_formats()) >= 21
    ring = HashRing(REPLICAS, seed=0)
    counts = Counter(ring.route(fp) for fp in fingerprints)
    assert len(counts) >= 3, "catalog collapsed onto too few replicas"
    assert max(counts.values()) <= len(fingerprints) // 2, \
        f"one replica owns half the catalog: {counts}"


def test_each_format_pins_to_exactly_one_replica():
    ring = HashRing(REPLICAS, seed=0)
    for fp in catalog_fingerprints():
        owners = {ring.route(fp) for _ in range(10)}
        assert len(owners) == 1  # stable: cache affinity


# ----------------------------------------------------------------------
# Minimal remapping under membership changes
# ----------------------------------------------------------------------
def test_join_moves_only_keys_onto_the_new_replica():
    keys = synthetic_keys()
    ring = HashRing(REPLICAS, seed=0)
    before = {k: ring.route(k) for k in keys}
    newcomer = "10.0.0.5:7421"
    ring.add(newcomer)
    after = {k: ring.route(k) for k in keys}
    moved = [k for k in keys if before[k] != after[k]]
    assert all(after[k] == newcomer for k in moved), \
        "a join may only remap keys onto the joining replica"
    # Expected share: 1/(n+1) of keys; allow 2x slack on the bound.
    assert 0 < len(moved) <= 2.0 * len(keys) / (len(REPLICAS) + 1), \
        f"join remapped {len(moved)} of {len(keys)} keys"


def test_leave_moves_only_the_leavers_keys():
    keys = synthetic_keys()
    ring = HashRing(REPLICAS, seed=0)
    before = {k: ring.route(k) for k in keys}
    leaver = REPLICAS[2]
    ring.remove(leaver)
    after = {k: ring.route(k) for k in keys}
    moved = [k for k in keys if before[k] != after[k]]
    assert moved and all(before[k] == leaver for k in moved), \
        "a leave may only remap the leaving replica's own keys"
    assert all(after[k] != leaver for k in keys)


def test_join_then_leave_is_identity():
    keys = synthetic_keys(500)
    ring = HashRing(REPLICAS, seed=0)
    before = {k: ring.route(k) for k in keys}
    ring.add("10.0.0.9:7421")
    ring.remove("10.0.0.9:7421")
    assert {k: ring.route(k) for k in keys} == before


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
def _placement(ring: HashRing) -> dict:
    return {fp: ring.route(fp) for fp in catalog_fingerprints()}


def test_placement_identical_across_processes():
    """No ``hash()`` anywhere: PYTHONHASHSEED cannot scramble routing."""
    script = (
        "import json\n"
        "from repro.gateway import HashRing\n"
        "from repro.runner.formats import list_formats, make_format\n"
        f"ring = HashRing({REPLICAS!r}, seed=0)\n"
        "print(json.dumps({repr(make_format(n)): "
        "ring.route(repr(make_format(n))) for n in list_formats()},"
        " sort_keys=True))\n")
    src = str(Path(__file__).resolve().parent.parent / "src")
    outs = []
    for hashseed in ("0", "1", "424242"):
        proc = subprocess.run(
            [sys.executable, "-c", script], capture_output=True,
            text=True, check=True,
            env={"PYTHONPATH": src, "PYTHONHASHSEED": hashseed,
                 "PATH": "/usr/bin:/bin"})
        outs.append(proc.stdout.strip())
    assert outs[0] == outs[1] == outs[2]
    import json
    assert json.loads(outs[0]) == _placement(HashRing(REPLICAS, seed=0))


def test_seed_rotates_placements_together():
    keys = synthetic_keys(500)
    a = HashRing(REPLICAS, seed=0)
    b = HashRing(REPLICAS, seed=1)
    assert any(a.route(k) != b.route(k) for k in keys), \
        "a new seed must actually reshuffle the ring"
    # ... but each seed is itself stable.
    assert {k: b.route(k) for k in keys} == \
        {k: HashRing(REPLICAS, seed=1).route(k) for k in keys}


def test_insertion_order_does_not_matter():
    keys = synthetic_keys(500)
    fwd = HashRing(REPLICAS, seed=0)
    rev = HashRing(list(reversed(REPLICAS)), seed=0)
    assert {k: fwd.route(k) for k in keys} == \
        {k: rev.route(k) for k in keys}


# ----------------------------------------------------------------------
# Preference (failover) order
# ----------------------------------------------------------------------
def test_preference_head_is_the_route():
    ring = HashRing(REPLICAS, seed=0)
    for fp in catalog_fingerprints():
        pref = ring.preference(fp)
        assert pref[0] == ring.route(fp)
        assert sorted(pref) == sorted(REPLICAS)  # all, each once
        assert ring.preference(fp, limit=2) == pref[:2]


def test_preference_survives_owner_removal():
    """Failover target = the next preference entry, by construction."""
    ring = HashRing(REPLICAS, seed=0)
    for fp in catalog_fingerprints():
        owner, runner_up = ring.preference(fp)[:2]
        ring.remove(owner)
        assert ring.route(fp) == runner_up
        ring.add(owner)
        assert ring.route(fp) == owner  # restored exactly


# ----------------------------------------------------------------------
# Config errors
# ----------------------------------------------------------------------
def test_ring_config_errors():
    ring = HashRing(REPLICAS, seed=0)
    with pytest.raises(ConfigError):
        ring.add(REPLICAS[0])  # duplicate
    with pytest.raises(ConfigError):
        ring.add("")
    with pytest.raises(ConfigError):
        ring.remove("10.9.9.9:1")  # absent
    with pytest.raises(ConfigError):
        HashRing(REPLICAS, seed=0, vnodes=0)
    empty = HashRing([], seed=0)
    with pytest.raises(ConfigError):
        empty.route("anything")
    with pytest.raises(ConfigError):
        empty.preference("anything")
