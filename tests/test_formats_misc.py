"""Tests for E8M0 scales, integer grids, and group reshaping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FormatError, ShapeError
from repro.formats import (IntSpec, clamp_exponent, decode_code,
                           encode_exponent, flint4, from_groups, int3, int4,
                           int8, pot4, scale_from_exponent, to_groups)
from repro.formats.intspec import GridSpec


class TestE8M0:
    def test_scale_is_power_of_two(self):
        for e in (-127, -1, 0, 5, 127):
            assert scale_from_exponent(np.array([e]))[0] == 2.0 ** e

    def test_clamping(self):
        assert clamp_exponent(np.array([300]))[0] == 127
        assert clamp_exponent(np.array([-300]))[0] == -127

    def test_encode_decode_roundtrip(self):
        e = np.arange(-127, 128)
        assert np.allclose(decode_code(encode_exponent(e)), 2.0 ** e.astype(float))


class TestIntSpec:
    def test_int4_symmetric_range(self):
        assert int4.max_value == 7
        q = int4.quantize(np.array([9.0, -9.0, 3.4, -3.6]))
        assert q.tolist() == [7.0, -7.0, 3.0, -4.0]

    def test_int3_range(self):
        assert int3.max_value == 3

    def test_int8_range(self):
        assert int8.max_value == 127

    def test_too_few_bits_rejected(self):
        with pytest.raises(FormatError):
            IntSpec("bad", 1)

    def test_flint_and_pot_grids_valid(self):
        for spec in (flint4, pot4):
            assert spec.grid[0] == 0.0
            assert np.all(np.diff(spec.grid) > 0)
            assert len(spec.grid) == 8

    def test_gridspec_quantizes_to_member(self, rng):
        x = rng.standard_normal(200) * 4
        q = flint4.quantize(x)
        members = set(np.abs(flint4.grid).tolist())
        assert all(abs(v) in members for v in np.abs(q))

    def test_gridspec_rejects_descending(self):
        with pytest.raises(FormatError):
            GridSpec("bad", (0.0, 2.0, 1.0), 4)


class TestGrouping:
    @pytest.mark.parametrize("shape,axis", [((4, 64), -1), ((4, 64), 0),
                                            ((3, 5, 7), 1), ((17,), 0),
                                            ((2, 33), -1)])
    def test_roundtrip(self, rng, shape, axis):
        x = rng.standard_normal(shape)
        groups, view = to_groups(x, 8, axis=axis)
        assert groups.shape[1] == 8
        assert np.allclose(from_groups(groups, view), x)

    def test_zero_padding(self, rng):
        x = rng.standard_normal(10)
        groups, view = to_groups(x, 8, axis=0)
        assert groups.shape == (2, 8)
        assert np.all(groups[1, 2:] == 0)

    def test_invalid_group_size(self):
        with pytest.raises(ShapeError):
            to_groups(np.zeros(4), 0)

    @given(st.integers(1, 40), st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, n, k):
        x = np.arange(float(n))
        groups, view = to_groups(x, k, axis=0)
        assert np.array_equal(from_groups(groups, view), x)
        assert groups.shape[0] * k >= n
