"""Direct unit tests for ``WorkerPool.stats()`` accounting.

The restart/exit bookkeeping used to be asserted only indirectly
(through chaos scenarios in ``test_faults.py``). These tests pin it
directly: every worker exit is recorded exactly once — whether the
supervisor reaped it live or ``close()``'s SIGTERM->SIGKILL escalation
reaped it at teardown (the case that used to drift: close-reaped exits
were never accounted at all) — and ``stats()`` returns an isolated
snapshot, not a live reference.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.server import QuantClient, WorkerPool, local_expected


class _FakeProc:
    """A dead multiprocessing.Process stand-in for accounting tests."""

    def __init__(self, pid: int, exitcode) -> None:
        self.pid = pid
        self.exitcode = exitcode
        self.terminated = self.killed = False

    def is_alive(self) -> bool:
        return self.exitcode is None

    def terminate(self) -> None:
        self.terminated = True

    def kill(self) -> None:
        self.killed = True

    def join(self, timeout=None) -> None:
        pass


# ----------------------------------------------------------------------
# Pure accounting (no real processes)
# ----------------------------------------------------------------------
def test_close_records_every_reaped_exit_once():
    pool = WorkerPool(workers=2, restart=False)
    pool._procs = [_FakeProc(101, -signal.SIGKILL), _FakeProc(102, 0)]
    pool.close()
    stats = pool.stats()
    assert stats["restarts"] == 0
    assert sorted((e["slot"], e["pid"], e["exitcode"])
                  for e in stats["exits"]) == \
        [(0, 101, -signal.SIGKILL), (1, 102, 0)]


def test_close_never_double_counts_supervisor_records():
    pool = WorkerPool(workers=2, restart=False)
    pool._procs = [_FakeProc(201, -signal.SIGKILL), _FakeProc(202, 0)]
    # The supervisor already accounted slot 0's death...
    with pool._lock:
        pool._record_exit_locked(0, 201, -signal.SIGKILL)
    pool.close()
    # ... so close() must only add slot 1's, not re-record slot 0's.
    exits = pool.stats()["exits"]
    assert len(exits) == 2
    assert [e["pid"] for e in exits] == [201, 202]


def test_close_skips_unreaped_processes():
    """A proc with no exitcode yet has nothing truthful to record."""
    pool = WorkerPool(workers=1, restart=False)
    proc = _FakeProc(301, None)
    pool._procs = [proc]
    pool.close()
    assert pool.stats()["exits"] == []
    assert proc.terminated and proc.killed  # escalation still ran


def test_respawn_failure_records_are_pid_less():
    pool = WorkerPool(workers=1)
    with pool._lock:
        pool._record_exit_locked(0, None, "respawn failed: boom")
        pool._record_exit_locked(0, None, "respawn failed: boom")
    # pid-less records cannot be deduplicated (each is a real event).
    assert len(pool.stats()["exits"]) == 2


def test_stats_returns_an_isolated_snapshot():
    pool = WorkerPool(workers=1)
    with pool._lock:
        pool._record_exit_locked(0, 401, 0)
    snap = pool.stats()
    snap["restarts"] = 99
    snap["exits"].append({"slot": 9})
    snap["exits"][0]["exitcode"] = -15
    fresh = pool.stats()
    assert fresh["restarts"] == 0
    assert fresh["exits"] == [{"slot": 0, "pid": 401, "exitcode": 0}]


# ----------------------------------------------------------------------
# Real processes (slow): the accounting under live supervision
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_kill_restart_and_close_accounting_end_to_end(rng):
    """SIGKILL -> supervised restart; close() reaps and accounts the
    survivors: exactly one record per worker lifetime, no drift."""
    x = rng.standard_normal((2, 32))
    with WorkerPool(workers=1, port=0, max_delay_s=0.0005,
                    backoff_base_s=0.01, healthy_reset_s=1e9) as pool:
        victim_pid = pool._procs[0].pid
        os.kill(victim_pid, signal.SIGKILL)
        deadline = time.monotonic() + 30.0
        while pool.stats()["restarts"] < 1 and \
                time.monotonic() < deadline:
            time.sleep(0.05)
        assert pool.stats()["restarts"] == 1
        with QuantClient(port=pool.port, retries=6, retry_seed=0) as cli:
            out = cli.quantize(x, fmt="m2xfp", op="weight")
            assert out.tobytes() == \
                local_expected(x, fmt="m2xfp", op="weight").tobytes()
        restarted_pid = pool._procs[0].pid
    stats = pool.stats()
    pids = [e["pid"] for e in stats["exits"]]
    assert pids.count(victim_pid) == 1      # supervisor's record
    assert pids.count(restarted_pid) == 1   # close()'s reap record
    assert len(pids) == len(set(pids))      # never double-counted
    kill_exit = next(e for e in stats["exits"]
                     if e["pid"] == victim_pid)
    assert kill_exit["exitcode"] == -signal.SIGKILL


@pytest.mark.slow
def test_unsupervised_pool_close_accounts_exits(rng):
    """restart=False pools have no supervisor; close() is the only
    reaper and must still account every exit (the fixed drift)."""
    x = rng.standard_normal((2, 32))
    with WorkerPool(workers=2, port=0, restart=False,
                    max_delay_s=0.0005) as pool:
        with QuantClient(port=pool.port) as cli:
            cli.quantize(x, fmt="m2xfp")
        pids = [p.pid for p in pool._procs]
        os.kill(pids[0], signal.SIGKILL)  # dies with nobody watching
        deadline = time.monotonic() + 30.0
        while pool.alive() > 1 and time.monotonic() < deadline:
            time.sleep(0.05)
    stats = pool.stats()
    assert stats["restarts"] == 0
    recorded = {e["pid"]: e["exitcode"] for e in stats["exits"]}
    assert set(recorded) == set(pids), \
        "close() must account unsupervised deaths and its own reaps"
    assert recorded[pids[0]] == -signal.SIGKILL
    assert len(stats["exits"]) == len(pids)  # exactly once each
