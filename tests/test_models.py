"""Tests for the synthetic transformer substrate and profiles."""

import numpy as np
import pytest

from repro.models import (PROFILES, Fp16Format, OutlierSpec, QuantizedLM,
                          TransformerConfig, TransformerLM, channel_scales,
                          get_profile, outlier_matrix)
from repro.errors import ConfigError


class TestGenerators:
    def test_channel_scales_have_outliers(self, rng):
        spec = OutlierSpec(outlier_rate=0.05, outlier_scale=10.0)
        s = channel_scales(200, spec, rng)
        assert s.max() / np.median(s) > 5

    def test_outlier_matrix_shape_and_scaling(self, rng):
        w = outlier_matrix(64, 128, OutlierSpec(), rng)
        assert w.shape == (64, 128)
        assert 0.1 < np.std(w) < 10

    def test_shared_in_scales(self, rng):
        spec = OutlierSpec(outlier_rate=0.02, outlier_scale=20.0)
        scales = channel_scales(128, spec, rng)
        w1 = outlier_matrix(64, 128, spec, rng, scales)
        w2 = outlier_matrix(64, 128, spec, rng, scales)
        c1 = np.mean(np.abs(w1), axis=0)
        c2 = np.mean(np.abs(w2), axis=0)
        assert np.corrcoef(c1, c2)[0, 1] > 0.5  # same outlier channels


class TestTransformer:
    def _tiny(self):
        return TransformerLM(TransformerConfig(vocab_size=64, d_model=32,
                                               n_layers=1, n_heads=2, d_ff=48,
                                               seed=3))

    def test_forward_shape(self):
        model = self._tiny()
        logits = model.forward(np.zeros((2, 10), dtype=int))
        assert logits.shape == (2, 10, 64)

    def test_nll_finite_positive(self):
        model = self._tiny()
        tokens = np.random.default_rng(0).integers(0, 64, (2, 12))
        nll = model.nll(tokens)
        assert np.isfinite(nll) and nll > 0

    def test_sampling_deterministic(self):
        model = self._tiny()
        t1 = model.sample(2, 10, np.random.default_rng(7))
        t2 = model.sample(2, 10, np.random.default_rng(7))
        assert np.array_equal(t1, t2)

    def test_continue_sequences(self):
        model = self._tiny()
        prefix = np.zeros((3, 5), dtype=int)
        cont = model.continue_sequences(prefix, 4, np.random.default_rng(1))
        assert cont.shape == (3, 4)
        assert np.all((cont >= 0) & (cont < 64))

    def test_incremental_matches_batch_distribution(self):
        # The KV-cache step must produce the same logits as a full forward.
        model = self._tiny()
        tokens = np.random.default_rng(2).integers(0, 64, (1, 8))
        full = model.forward(tokens)[0, -1]
        caches = [{"k": np.zeros((1, 2, 0, 16)), "v": np.zeros((1, 2, 0, 16))}
                  for _ in model.layers]
        step = None
        for t in range(8):
            step = model._step(tokens[:, t], t, caches)
        assert np.allclose(step[0], full, atol=1e-9)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            TransformerConfig(d_model=30, n_heads=4)

    def test_branch_scale_controls_sensitivity(self):
        cfg_hi = TransformerConfig(seed=3, branch_scale=0.8)
        cfg_lo = TransformerConfig(seed=3, branch_scale=0.1)
        tokens = np.random.default_rng(0).integers(0, 256, (1, 16))
        from repro.mx import mxfp4
        deltas = []
        for cfg in (cfg_hi, cfg_lo):
            model = TransformerLM(cfg)
            ref = model.forward(tokens)
            q = QuantizedLM(model, mxfp4).forward(tokens)
            deltas.append(np.mean((q - ref) ** 2) / np.mean(ref ** 2))
        assert deltas[0] > deltas[1]


class TestProfiles:
    def test_all_paper_models_present(self):
        expected = {"llama2-7b", "llama3-8b", "llama3-70b", "opt-6.7b",
                    "mistral-7b", "falcon-7b", "r1-qwen-1.5b", "r1-qwen-7b"}
        assert set(PROFILES) == expected

    def test_unknown_profile(self):
        with pytest.raises(ConfigError):
            get_profile("gpt-4")

    def test_calibration_hits_target(self, rt_small):
        target = rt_small.profile.target_ppl
        assert abs(rt_small.fp16_ppl - target) / target < 0.10

    def test_runtime_cached(self, rt_small):
        from repro.models import load_runtime
        again = load_runtime("llama2-7b", n_seq=6, seq_len=48)
        assert again is rt_small

    def test_calib_tokens_held_out(self, rt_small):
        assert rt_small.calib_tokens is not None
        assert rt_small.calib_tokens.shape[1] == rt_small.tokens.shape[1]


class TestQuantizedLM:
    def test_identity_format_matches_fp16(self, rt_small):
        qlm = QuantizedLM(rt_small.model, Fp16Format())
        assert qlm.perplexity(rt_small.tokens) == pytest.approx(
            rt_small.fp16_ppl, rel=1e-9)

    def test_quantization_degrades(self, rt_small):
        from repro.mx import mxfp4
        qlm = QuantizedLM(rt_small.model, mxfp4)
        assert qlm.perplexity(rt_small.tokens) > rt_small.fp16_ppl

    def test_weight_override_respected(self, rt_small):
        from repro.mx import mxfp4
        zero = {f"l{li}.{n}": np.zeros_like(layer[n])
                for li, layer in enumerate(rt_small.model.layers)
                for n in ("wq", "wk", "wv", "wo", "w_gate", "w_up", "w_down")}
        qlm = QuantizedLM(rt_small.model, mxfp4, weight_override=zero)
        # With all projections zeroed the model is far worse than plain quant.
        assert qlm.perplexity(rt_small.tokens) > \
            QuantizedLM(rt_small.model, mxfp4).perplexity(rt_small.tokens)

    def test_weights_only_mode(self, rt_small):
        from repro.mx import mxfp4
        w_only = QuantizedLM(rt_small.model, mxfp4, quantize_activations=False)
        full = QuantizedLM(rt_small.model, mxfp4)
        assert w_only.perplexity(rt_small.tokens) <= \
            full.perplexity(rt_small.tokens) + 1e-9

    def test_nvfp4_calibration_path_used(self, rt_small):
        from repro.mx import nvfp4
        qlm = QuantizedLM(rt_small.model, nvfp4,
                          calibration_tokens=rt_small.calib_tokens)
        assert len(qlm._act_amax) == 7 * len(rt_small.model.layers)
