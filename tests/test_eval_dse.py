"""Tests for the evaluation harness and the DSE framework."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse import (DSEPoint, PAPER_STRATEGIES, StrategyPoint,
                       build_strategy, pareto_front, sweep_strategy)
from repro.errors import ConfigError
from repro.eval import (ZERO_SHOT_TASKS, TaskSpec, build_task_items,
                        evaluate_format_on_task, model_output_mse,
                        quantized_perplexity, score_items, tensor_mse)
from repro.mx import mxfp4, nvfp4


class TestPerplexityEval:
    def test_fp16_is_floor(self, rt_small):
        assert quantized_perplexity(rt_small, mxfp4) > rt_small.fp16_ppl

    def test_better_format_lower_ppl(self, rt_small):
        assert (quantized_perplexity(rt_small, nvfp4)
                < quantized_perplexity(rt_small, mxfp4))


class TestMSE:
    def test_model_output_mse_positive(self, rt_small):
        assert model_output_mse(rt_small, mxfp4, max_seq=2) > 0

    def test_model_output_mse_orders_formats(self, rt_small):
        assert (model_output_mse(rt_small, nvfp4, max_seq=3)
                < model_output_mse(rt_small, mxfp4, max_seq=3))

    def test_tensor_mse(self, heavy_tensor):
        assert tensor_mse(heavy_tensor, mxfp4) > 0
        assert tensor_mse(np.zeros((2, 32)), mxfp4) == 0


class TestTasks:
    def test_task_registry(self):
        assert set(ZERO_SHOT_TASKS) == {"arc-e", "arc-c", "hellaswag", "piqa",
                                        "winogrande", "boolq"}

    def test_items_shape(self, rt_small):
        spec = TaskSpec("toy", n_choices=3, n_items=10, context_len=8,
                        cont_len=4, seed=9)
        items = build_task_items(rt_small, spec)
        assert items.contexts.shape == (10, 8)
        assert items.choices.shape == (10, 3, 4)
        assert items.teacher_scores.shape == (10, 3)

    def test_fp16_accuracy_near_target(self, rt_small):
        spec = TaskSpec("toy", n_choices=4, n_items=200, context_len=8,
                        cont_len=4, seed=11)
        items = build_task_items(rt_small, spec)
        acc = evaluate_format_on_task(rt_small, items, None, 75.0)
        assert abs(acc - 75.0) < 10.0  # binomial noise at n=200

    def test_quantized_accuracy_not_above_fp16_much(self, rt_small):
        spec = TaskSpec("toy", n_choices=4, n_items=60, context_len=8,
                        cont_len=4, temperature=1.1, seed=13)
        items = build_task_items(rt_small, spec)
        fp16 = evaluate_format_on_task(rt_small, items, None, 80.0)
        quant = evaluate_format_on_task(rt_small, items, mxfp4, 80.0)
        assert quant <= fp16 + 5.0

    def test_score_items_prefers_sampled_choice(self, rt_small):
        # Teacher scores should be finite, distinct numbers.
        spec = TaskSpec("toy", n_choices=2, n_items=6, context_len=6,
                        cont_len=3, seed=17)
        items = build_task_items(rt_small, spec)
        assert np.all(np.isfinite(items.teacher_scores))

    def test_bad_accuracy_rejected(self, rt_small):
        spec = TaskSpec("toy", n_items=4, context_len=6, cont_len=2, seed=19)
        items = build_task_items(rt_small, spec)
        with pytest.raises(ConfigError):
            evaluate_format_on_task(rt_small, items, None, 200.0)


class TestDSE:
    def test_all_paper_strategies_buildable(self):
        for kind in PAPER_STRATEGIES:
            fmt = build_strategy(StrategyPoint(kind=kind, sub_size=8))
            assert fmt.ebw > 4.0

    def test_unknown_strategy(self):
        with pytest.raises(ConfigError):
            build_strategy(StrategyPoint(kind="bogus", sub_size=8))

    def test_ebw_monotone_in_subgroup(self):
        ebws = [build_strategy(StrategyPoint("elem-em-top1", s)).ebw
                for s in (32, 16, 8, 4, 2)]
        assert all(a < b for a, b in zip(ebws, ebws[1:]))

    def test_sweep_produces_points(self, rt_small):
        points = sweep_strategy(rt_small, "sg-ee-1bit", sub_sizes=(16, 8),
                                max_seq=2)
        assert len(points) == 2
        assert all(p.mse > 0 for p in points)

    def test_adaptive_sweep_comparable(self, rt_small):
        # Adaptive search minimizes *weight tensor* MSE; the model-output
        # MSE with quantized activations tracks it but is not guaranteed to
        # drop point-by-point, so this asserts a band, not strict order
        # (the tensor-level guarantee is tested in test_sg_strategies).
        fixed = sweep_strategy(rt_small, "sg-em-2bit", adaptive=False,
                               sub_sizes=(8,), max_seq=2)[0]
        adaptive = sweep_strategy(rt_small, "sg-em-2bit", adaptive=True,
                                  sub_sizes=(8,), max_seq=2)[0]
        assert adaptive.mse <= fixed.mse * 1.25


class TestPareto:
    def _pt(self, ebw, mse):
        return DSEPoint("p", ebw, mse, "s", 8, False)

    def test_front_excludes_dominated(self):
        pts = [self._pt(4.5, 1.0), self._pt(4.5, 2.0), self._pt(5.0, 0.5),
               self._pt(5.0, 3.0)]
        front = pareto_front(pts)
        assert {(p.ebw, p.mse) for p in front} == {(4.5, 1.0), (5.0, 0.5)}

    @given(st.lists(st.tuples(st.floats(4, 6), st.floats(0.01, 10)),
                    min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_front_is_nondominated(self, raw):
        pts = [self._pt(e, m) for e, m in raw]
        front = pareto_front(pts)
        assert front
        for a in front:
            for b in front:
                if a is not b:
                    assert not (b.ebw <= a.ebw and b.mse <= a.mse
                                and (b.ebw < a.ebw or b.mse < a.mse))
